# Convenience aliases around dune; `make check` is the tier-1 gate.

.PHONY: all check test bench clean

all:
	dune build @all

check:
	dune build @all
	dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
