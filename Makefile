# Convenience aliases around dune; `make check` is the tier-1 gate.

.PHONY: all check test bench fmt doc clean

all:
	dune build @all

check:
	dune build @all
	dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe

fmt:
	@command -v ocamlformat >/dev/null 2>&1 \
	  && dune build @fmt --auto-promote \
	  || echo "ocamlformat not installed; skipping format pass"

doc:
	@command -v odoc >/dev/null 2>&1 \
	  && dune build @doc \
	  || echo "odoc not installed; skipping doc build"

clean:
	dune clean
