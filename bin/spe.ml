(* The `spe` command-line tool: generate synthetic workloads, run the
   secure estimation protocols over files on disk, audit the privacy
   machinery, and print the communication-cost models.

   Run `spe --help` or `spe <command> --help` for usage. *)

module State = Spe_rng.State
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Graph_io = Spe_graph.Graph_io
module Log = Spe_actionlog.Log
module Log_io = Spe_actionlog.Log_io
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Link_strength = Spe_influence.Link_strength
module Maximize = Spe_influence.Maximize
module Wire = Spe_mpc.Wire
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module Posterior = Spe_privacy.Posterior
module Gain = Spe_privacy.Gain
module Leakage = Spe_privacy.Leakage
module Dp_release = Spe_privacy.Dp_release
module Rank_oracle = Spe_rank.Oracle
module Protocol_rank = Spe_rank.Protocol_rank
module Model = Spe_cost.Model
module Serve_addr = Spe_serve.Addr
module Serve_client = Spe_serve.Client
module Serve_proto = Spe_serve.Serve_proto
module Serve_daemon = Spe_serve.Daemon

open Cmdliner

(* --- shared argument definitions ------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are deterministic).")

let graph_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "graph" ] ~docv:"FILE" ~doc:"Social graph file (see spe generate).")

let logs_arg =
  Arg.(
    non_empty
    & opt_all file []
    & info [ "log" ] ~docv:"FILE" ~doc:"Provider action-log file; repeat once per provider.")

let h_arg =
  Arg.(value & opt int 3 & info [ "window"; "h" ] ~docv:"H" ~doc:"Memory-window width h.")

let c_arg =
  Arg.(
    value & opt float 2.
    & info [ "c-factor" ] ~docv:"C" ~doc:"Edge-set obfuscation blow-up (c >= 1).")

let modulus_bits_arg =
  Arg.(
    value & opt int 40
    & info [ "modulus-bits" ] ~docv:"BITS" ~doc:"Share modulus S = 2^BITS.")

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"How many results to print.")

(* Optional variants of --graph/--log for the commands that can instead
   talk to live daemons (--connect): the daemons own the workload, so
   the files are only required for in-process runs. *)
let graph_opt_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "graph" ] ~docv:"FILE"
        ~doc:"Social graph file (see spe generate).  Required unless --connect.")

let logs_opt_arg =
  Arg.(
    value & opt_all file []
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Provider action-log file; repeat once per provider.  Required unless \
           --connect.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Submit the computation as a job to a live host daemon (spe serve) at ADDR \
           (HOST:PORT or unix:PATH) instead of running the parties in-process.  The \
           daemons own the workload, so --graph/--log are not used; --seed, --shards \
           and the protocol parameters travel in the job spec.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "With --connect: submit N identical jobs (pipelined over one connection) and \
           require every reply to agree — an end-to-end determinism check against a \
           live deployment.")

(* Submit a spec to a live deployment and hand the first successful
   reply to [print].  Every failure path is a clean message and a
   nonzero exit: address parse errors are usage errors, connection and
   job failures are runtime errors — never a raw [Unix_error]. *)
let run_connect ~addr_spec ~jobs spec ~print =
  if jobs < 1 then `Error (true, "--jobs must be at least 1")
  else
    match Serve_addr.parse addr_spec with
    | Error msg -> `Error (true, "--connect " ^ msg)
    | Ok addr -> (
      match Serve_client.connect ~retry_for:5. addr with
      | exception Serve_client.Connection_lost msg -> `Error (false, msg)
      | client -> (
        let outcomes =
          try
            Ok
              (Serve_client.run_jobs client
                 (List.init jobs (fun _ -> spec))
                 ~deadline:(Unix.gettimeofday () +. 600.))
          with Serve_client.Connection_lost msg -> Error msg
        in
        Serve_client.close client;
        match outcomes with
        | Error msg -> `Error (false, msg)
        | Ok outcomes -> (
          let ok, busy, failed =
            List.fold_left
              (fun (ok, busy, failed) outcome ->
                match outcome with
                | Serve_client.Busy { queued; max_queue } ->
                  ( ok,
                    Printf.sprintf "busy: %d jobs queued of %d" queued max_queue :: busy,
                    failed )
                | Serve_client.Result (Serve_proto.Failed { kind; detail }) ->
                  ( ok,
                    busy,
                    Printf.sprintf "%s: %s" (Serve_proto.failure_kind_name kind) detail
                    :: failed )
                | Serve_client.Result reply -> (reply :: ok, busy, failed))
              ([], [], []) outcomes
          in
          match (ok, busy, failed) with
          | first :: rest, [], [] ->
            if List.for_all (fun r -> r = first) rest then begin
              print first;
              if jobs > 1 then
                Printf.printf "%d jobs over one daemon connection, all replies identical\n"
                  jobs;
              `Ok ()
            end
            else `Error (false, "daemon replies disagree across identical jobs")
          | _ ->
            let detail = List.sort_uniq compare (busy @ failed) in
            `Error
              ( false,
                Printf.sprintf "%d of %d jobs did not complete: %s" (List.length busy + List.length failed)
                  jobs (String.concat "; " detail) ))))

(* --- differential-privacy release flags (links, scores, rank) --------- *)

(* A Laplace release of the *published* values (Spe_privacy.Dp_release),
   orthogonal to the MPC that computed them.  It is applied client-side
   at the very end — also under --connect, where the daemons reply with
   the exact values and only this process draws the noise.  The sampler
   seed derives from --seed, so releases are replayable and the MPC+DP
   and plaintext+DP regimes coincide whenever the exact values do. *)
let dp_epsilon_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "dp-epsilon" ] ~docv:"EPS"
        ~doc:
          "Also emit a differentially private release of the published values (Laplace \
           mechanism at scale --dp-sensitivity / EPS) and report the exact-vs-DP \
           utility gap as a mean absolute error.  'inf' degenerates to the exact \
           release, byte for byte.")

let dp_sensitivity_arg =
  Arg.(
    value & opt float 1.
    & info [ "dp-sensitivity" ] ~docv:"S"
        ~doc:
          "L1 sensitivity of each released entry (default 1, the conservative bound \
           for strengths, scores and normalised ranks).")

let dp_public_degree_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "dp-public-degree" ] ~docv:"D"
        ~doc:
          "Hub exemption: entries whose node(s) all have total degree at least D are \
           released exactly; only the rest are noised.  Needs --graph.")

(* Salted off --seed so the protocol draws and the release draws never
   share a stream, yet one --seed replays the whole run. *)
let dp_seed ~seed = seed lxor 0x2545f491

let dp_check ~dp_epsilon ~dp_sensitivity ~dp_public_degree =
  match dp_epsilon with
  | None when dp_public_degree <> None || dp_sensitivity <> 1. ->
    Some "--dp-sensitivity/--dp-public-degree need --dp-epsilon"
  | Some e when Float.is_nan e || e <= 0. ->
    Some "--dp-epsilon must be positive (or 'inf' for the exact release)"
  | Some _ when Float.is_nan dp_sensitivity || dp_sensitivity <= 0. ->
    Some "--dp-sensitivity must be positive"
  | Some _ when (match dp_public_degree with Some d -> d < 0 | None -> false) ->
    Some "--dp-public-degree must be >= 0"
  | _ -> None

let dp_params ~seed ~dp_sensitivity epsilon =
  { Dp_release.epsilon; sensitivity = dp_sensitivity; seed = dp_seed ~seed }

(* Arc predicate (strength lists) and node predicate (score / rank
   vectors): hubs are public once every endpoint clears the degree
   threshold.  [None] when no graph is at hand (the caller has already
   rejected --dp-public-degree in that case). *)
let dp_arc_public ~dp_public_degree graph =
  match (dp_public_degree, graph) with
  | Some d, Some g -> Some (Dp_release.hubs ~degree_threshold:d g)
  | _ -> None

let dp_node_public ~dp_public_degree graph =
  match (dp_public_degree, graph) with
  | Some d, Some g -> Some (fun i -> Dp_release.hubs ~degree_threshold:d g (i, i))
  | _ -> None

let dp_header ~what (params : Dp_release.params) count =
  Printf.printf "dp-release: %s, epsilon %g, sensitivity %g, seed %d, %d value(s)%s\n"
    what params.Dp_release.epsilon params.Dp_release.sensitivity params.Dp_release.seed
    count
    (if Dp_release.exact params then " - exact (epsilon = inf)" else "")

let emit_dp_strengths ~params ~public strengths =
  let released = Dp_release.strengths ?public params strengths in
  dp_header ~what:"link strengths" params (List.length strengths);
  Printf.printf "dp-utility: MAE(exact, dp) = %.6f\n"
    (Dp_release.mean_abs_error_strengths strengths released)

(* [plaintext], when given, is the non-MPC reference run through the
   same seeded sampler — the third regime of the comparison; its MAE
   against the MPC release is 0 exactly when the exact values agree. *)
let emit_dp_vector ~params ~public ?plaintext ~what values =
  let released = Dp_release.values ?public params values in
  dp_header ~what params (Array.length values);
  Printf.printf "dp-utility: MAE(exact, dp) = %.6f\n"
    (Dp_release.mean_abs_error values released);
  match plaintext with
  | None -> ()
  | Some reference ->
    let ref_released = Dp_release.values ?public params reference in
    Printf.printf "dp-utility: MAE(plaintext+dp, mpc+dp) = %.6f\n"
      (Dp_release.mean_abs_error ref_released released)

let wire_summary (w : Wire.stats) =
  Printf.printf "communication: %d rounds, %d messages, %.1f KiB\n" w.Wire.rounds
    w.Wire.messages
    (float_of_int w.Wire.bits /. 8192.)

(* Engine selection for the full pipelines: the central reference
   implementation, or the composed Session on any of the three
   engines.  All four produce identical results from the same seed. *)
let pipeline_transport_arg =
  Arg.(
    value
    & opt
        (enum [ ("central", `Central); ("sim", `Sim); ("memory", `Memory); ("socket", `Socket) ])
        `Central
    & info [ "transport" ] ~docv:"ENGINE"
        ~doc:
          "How to execute the protocol pipeline: the central reference implementation \
           (central), the composed party programs on the in-process engine (sim), or \
           each party on its own thread over in-memory channels (memory) or Unix-domain \
           sockets (socket).  The results and the NR/NM statistics are \
           engine-independent; the real transports also report measured framed bytes.")

(* Run a composed pipeline session on the chosen non-central engine;
   returns the result plus the wire rebuilt from the message log, and
   the Net_wire accounting (transport bytes + totals) for the real
   backends. *)
let run_pipeline_session ~trace transport session =
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  match transport with
  | `Sim ->
    let w = Wire.create () in
    let r = Session.run ~trace session ~wire:w in
    (r, w, None)
  | `Memory | `Socket ->
    (* The default 2 s round timeout is tuned for loss detection; a
       full pipeline has long compute rounds (e.g. decrypting every
       Protocol 6 bundle under a 1024-bit key), during which a busy
       party looks exactly like a dead one.  Local transports are
       reliable, so wait out the compute instead of Nacking it. *)
    let config =
      { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
    in
    let r, (res : Endpoint.result) =
      match transport with
      | `Memory -> Endpoint.run_session_memory ~config ~trace session
      | _ -> Endpoint.run_session_socket ~config ~trace session
    in
    let logs =
      Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes
    in
    (r, Net_wire.merge logs, Some (res.Endpoint.transport_bytes, Net_wire.totals logs))

(* Sharded execution: cut the pipeline into a Plan of per-shard
   sessions (results are bit-identical for every K — DESIGN.md,
   "Sharded execution").  On sim the plan is lowered back to one
   session; on memory/socket each stage's sessions run concurrently on
   the Endpoint worker pool. *)
let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Cut the pipeline into K concurrent per-shard sessions (DESIGN.md, \"Sharded \
           execution\").  Results are bit-identical for every K; on the memory and \
           socket transports the shards run concurrently on a worker pool.  Requires a \
           non-central --transport.")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"J"
        ~doc:
          "Worker threads driving a sharded stage's sessions on the memory/socket \
           transports (at most one per shard is ever active).")

(* Run a sharded Plan on a real transport: each stage's sessions go to
   the Endpoint worker pool, with one recording trace per shard when
   observability was asked for.  Returns the merged result, aggregate
   wire statistics (NR = the plan's declared rounds, NM/MS summed over
   every shard's Net_wire log), a transcript grouped by shard, the
   Net_wire accounting, and the per-shard trace sections for
   Metrics.merge. *)
let run_pipeline_plan ~trace ~workers transport (plan : _ Spe_core.Plan.t) =
  let module Plan = Spe_core.Plan in
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  (* Same compute-friendly timeouts as the unsharded transport path. *)
  let config =
    { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
  in
  let recording = Spe_obs.Trace.enabled trace in
  let sections = ref [] and logs_rev = ref [] and transcript_rev = ref [] in
  let transport_total = ref 0 in
  List.iter
    (fun (stage : Plan.stage) ->
      let traces =
        Array.map
          (fun _ ->
            if recording then Spe_obs.Trace.create () else Spe_obs.Trace.disabled ())
          stage.Plan.sessions
      in
      let out =
        match transport with
        | `Memory ->
          Endpoint.run_sessions_memory ~config ~workers ~traces stage.Plan.sessions
        | `Socket ->
          Endpoint.run_sessions_socket ~config ~workers ~traces stage.Plan.sessions
      in
      Array.iteri
        (fun i ((), (res : Endpoint.result)) ->
          transport_total := !transport_total + res.Endpoint.transport_bytes;
          let logs =
            Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes
          in
          logs_rev := logs :: !logs_rev;
          transcript_rev := Wire.messages (Net_wire.merge logs) :: !transcript_rev;
          let parties = Array.length stage.Plan.sessions.(i).Session.parties in
          sections :=
            (Printf.sprintf "%s[%d]" stage.Plan.label i, traces.(i), parties) :: !sections)
        out)
    plan.Plan.stages;
  let r = plan.Plan.result () in
  let totals = Net_wire.totals (Array.concat (List.rev !logs_rev)) in
  let stats =
    {
      Wire.rounds = Plan.total_rounds plan;
      messages = totals.Net_wire.messages;
      bits = 8 * totals.Net_wire.payload_bytes;
    }
  in
  ( r,
    stats,
    List.concat (List.rev !transcript_rev),
    Some (!transport_total, totals),
    List.rev !sections )

let transport_bytes_summary (stats : Wire.stats) = function
  | None -> ()
  | Some (bytes, _) ->
    Printf.printf "transport: %d framed bytes on the wire (%.3fx the payload)\n" bytes
      (float_of_int bytes /. (float_of_int stats.Wire.bits /. 8.))

(* --- observability plumbing (shared by links, scores and shares) ------ *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a session trace (spans, counters, notes - see OBSERVABILITY.md) and \
           write the event dump to FILE.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Print the run's metrics report: human-readable (text) or spe-metrics/2 JSON \
           (json).  The JSON document is the last thing printed, starting at the first \
           column, so it can be split off the human output.")

(* A recording trace when --trace or --metrics asks for one; the
   near-free disabled trace otherwise. *)
let obs_trace trace_file metrics =
  if trace_file <> None || metrics <> None then Spe_obs.Trace.create ()
  else Spe_obs.Trace.disabled ()

(* After the run: cross-check a report against the independent wire
   accounting (NM and MS/8 must agree exactly; on a real transport the
   framed bytes must match Net_wire too), then emit what was asked
   for.  The metrics report goes last so `--metrics json` ends stdout
   with one clean JSON document. *)
let check_and_emit_report report ~messages ~payload_bytes ~net ~dump trace_file metrics =
  let module Metrics = Spe_obs.Metrics in
  if not (Metrics.equal_accounting report ~messages ~payload_bytes) then
    failwith
      (Printf.sprintf
         "trace accounting mismatch: observed %d messages / %d payload bytes, wire \
          accounted %d / %d"
         report.Metrics.messages report.Metrics.payload_bytes messages payload_bytes);
  (match net with
  | None -> ()
  | Some (_, (totals : Spe_net.Net_wire.totals)) -> (
    match report.Metrics.framed_bytes with
    | Some framed when framed = totals.Spe_net.Net_wire.framed_bytes -> ()
    | Some framed ->
      failwith
        (Printf.sprintf "trace framed-byte mismatch: observed %d, Net_wire says %d"
           framed totals.Spe_net.Net_wire.framed_bytes)
    | None -> failwith "trace recorded no framed bytes on a real transport"));
  (match trace_file with
  | None -> ()
  | Some path ->
    let text, events = dump () in
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s (%d events)\n" path events);
  match metrics with
  | None -> ()
  | Some `Text -> print_string (Spe_obs.Obs_io.report_to_text report)
  | Some `Json -> print_string (Spe_obs.Obs_io.report_to_string report)

let emit_observability trace ~protocol ~engine ~parties ~messages ~payload_bytes ~net
    trace_file metrics =
  if Spe_obs.Trace.enabled trace then begin
    let report = Spe_obs.Metrics.of_trace ~protocol ~engine ~parties trace in
    check_and_emit_report report ~messages ~payload_bytes ~net
      ~dump:(fun () ->
        (Spe_obs.Obs_io.trace_to_text trace, List.length (Spe_obs.Trace.events trace)))
      trace_file metrics
  end

(* Sharded transport runs record one trace per shard session; merge
   their reports (Metrics.merge, so --metrics shows the per-shard
   table) and dump the traces one labelled section at a time. *)
let emit_sharded_observability ~protocol ~engine ~messages ~payload_bytes ~net sections
    trace_file metrics =
  match sections with
  | (_, first, _) :: _ when Spe_obs.Trace.enabled first ->
    let module Metrics = Spe_obs.Metrics in
    let report =
      Metrics.merge
        (List.map
           (fun (_, tr, parties) -> Metrics.of_trace ~protocol ~engine ~parties tr)
           sections)
    in
    check_and_emit_report report ~messages ~payload_bytes ~net
      ~dump:(fun () ->
        let buf = Buffer.create 4096 in
        let events = ref 0 in
        List.iter
          (fun (label, tr, _) ->
            events := !events + List.length (Spe_obs.Trace.events tr);
            Buffer.add_string buf (Printf.sprintf "=== %s ===\n" label);
            Buffer.add_string buf (Spe_obs.Obs_io.trace_to_text tr))
          sections;
        (Buffer.contents buf, !events))
      trace_file metrics
  | _ -> ()

let engine_name = function
  | `Central -> "central"
  | `Sim -> "sim"
  | `Memory -> "memory"
  | `Socket -> "socket"

(* The central wire charges exact bit counts; the trace replay rounds
   each message up to whole bytes, so the cross-check must too. *)
let transcript_payload_bytes transcript =
  List.fold_left (fun acc (m : Wire.message) -> acc + ((m.Wire.bits + 7) / 8)) 0 transcript

(* --- spe generate ------------------------------------------------------ *)

let generate_cmd =
  let users =
    Arg.(value & opt int 100 & info [ "users" ] ~docv:"N" ~doc:"Number of users.")
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("ba", `Ba); ("er", `Er); ("ws", `Ws) ]) `Ba
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Graph family: barabasi-albert (ba), erdos-renyi (er) or watts-strogatz (ws).")
  in
  let density =
    Arg.(
      value & opt int 3
      & info [ "density" ] ~docv:"D"
          ~doc:"Attachment count (ba), mean out-degree (er) or ring degree (ws).")
  in
  let actions =
    Arg.(value & opt int 50 & info [ "actions" ] ~docv:"A" ~doc:"Number of propagated actions.")
  in
  let providers =
    Arg.(value & opt int 2 & info [ "providers" ] ~docv:"M" ~doc:"Number of service providers.")
  in
  let probability =
    Arg.(
      value & opt float 0.25
      & info [ "probability" ] ~docv:"P" ~doc:"Planted influence probability per arc.")
  in
  let out_dir =
    Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let classes =
    Arg.(
      value & opt int 0
      & info [ "classes" ] ~docv:"Q"
          ~doc:
            "Non-exclusive mode: partition the actions into Q classes, each supported \
             by a random provider subset, scatter records accordingly and write a \
             spec.txt alongside the logs.  0 (default) = exclusive split.")
  in
  let run seed users model density actions providers probability out_dir classes =
    let s = State.create ~seed () in
    let g =
      match model with
      | `Ba -> Generate.barabasi_albert s ~n:users ~m:density
      | `Er -> Generate.erdos_renyi_gnm s ~n:users ~m:(users * density)
      | `Ws ->
        let k = max 2 (density + (density mod 2)) in
        Generate.watts_strogatz s ~n:users ~k ~beta:0.15
    in
    let planted = Cascade.uniform_probabilities ~p:probability g in
    let log =
      Cascade.generate s planted
        { Cascade.num_actions = actions; seeds_per_action = 1; max_delay = 3 }
    in
    let parts, spec =
      if classes <= 0 then (Partition.exclusive s log ~m:providers, None)
      else begin
        let spec =
          Partition.random_class_spec s ~num_actions:actions ~m:providers ~num_classes:classes
        in
        (Partition.non_exclusive s log ~spec, Some spec)
      end
    in
    (match spec with
    | None -> ()
    | Some spec ->
      let path = Filename.concat out_dir "spec.txt" in
      Spe_actionlog.Spec_io.save spec path;
      Printf.printf "wrote %s (%d classes)\n" path classes);
    let graph_path = Filename.concat out_dir "graph.txt" in
    Graph_io.save g graph_path;
    Printf.printf "wrote %s (%d users, %d arcs)\n" graph_path (Digraph.n g)
      (Digraph.edge_count g);
    Array.iteri
      (fun k part ->
        let path = Filename.concat out_dir (Printf.sprintf "provider-%d.log" (k + 1)) in
        Log_io.save part path;
        Printf.printf "wrote %s (%d records)\n" path (Log.size part))
      parts;
    `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ users $ model $ density $ actions $ providers $ probability
       $ out_dir $ classes))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic social graph and provider action logs.")
    term

(* --- spe links ---------------------------------------------------------- *)

let links_cmd =
  let decay =
    Arg.(
      value
      & opt (some string) None
      & info [ "decay" ] ~docv:"KIND"
          ~doc:
            "Temporal decay for Eq. (2): 'linear' or 'exp:ALPHA'. Default: Eq. (1), no decay.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Action-class spec file: run the non-exclusive pipeline (Protocol 5 first).")
  in
  let obfuscation_arg =
    Arg.(
      value
      & opt (enum [ ("basic", Spe_core.Protocol5.Basic); ("enhanced", Spe_core.Protocol5.Enhanced) ])
          Spe_core.Protocol5.Enhanced
      & info [ "obfuscation" ] ~docv:"MODE"
          ~doc:"Protocol 5 obfuscation for the non-exclusive case: basic or enhanced.")
  in
  let transcript_arg =
    Arg.(value & flag & info [ "transcript" ] ~doc:"Print the full message transcript.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the full strength list to FILE.")
  in
  let print_strengths ~top strengths =
    let sorted = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) strengths in
    Printf.printf "link influence strengths (top %d of %d):\n" top (List.length sorted);
    List.iteri
      (fun i ((u, v), p) -> if i < top then Printf.printf "  %6d -> %-6d  %.4f\n" u v p)
      sorted
  in
  let run seed graph_path log_paths h c_factor modulus_bits decay top spec_path obfuscation
      transport shards workers show_transcript trace_file metrics out connect jobs
      dp_epsilon dp_sensitivity dp_public_degree =
    match
      if shards < 1 then Some "--shards must be at least 1"
      else if workers < 1 then Some "--workers must be at least 1"
      else if jobs < 1 then Some "--jobs must be at least 1"
      else if h < 1 then Some "--window h must be at least 1"
      else if c_factor < 1. then Some "--c-factor must be >= 1"
      else if modulus_bits < 2 || modulus_bits > 61 then
        Some "--modulus-bits must lie in [2, 61]"
      else if connect = None && transport = `Central && shards > 1 then
        Some "--shards needs --transport sim, memory or socket"
      else dp_check ~dp_epsilon ~dp_sensitivity ~dp_public_degree
    with
    | Some msg -> `Error (true, msg)
    | None ->
    match connect with
    | Some addr_spec ->
      if decay <> None || spec_path <> None then
        `Error (true, "--decay and --spec do not travel in a daemon job spec")
      else if show_transcript || trace_file <> None || metrics <> None then
        `Error
          ( true,
            "--transcript/--trace/--metrics are daemon-side with --connect; scrape the \
             daemon's --metrics-addr instead" )
      else if dp_public_degree <> None && graph_path = None then
        `Error (true, "--dp-public-degree needs --graph")
      else
        run_connect ~addr_spec ~jobs
          {
            Serve_proto.default_spec with
            Serve_proto.pipeline = Serve_proto.Links;
            seed;
            shards;
            h;
            c_factor;
            modulus_bits;
          }
          ~print:(function
            | Serve_proto.Strengths strengths ->
              print_strengths ~top strengths;
              (match out with
              | None -> ()
              | Some path ->
                Spe_influence.Result_io.save_strengths strengths path;
                Printf.printf "wrote %s\n" path);
              (match dp_epsilon with
              | None -> ()
              | Some epsilon ->
                emit_dp_strengths
                  ~params:(dp_params ~seed ~dp_sensitivity epsilon)
                  ~public:
                    (dp_arc_public ~dp_public_degree (Option.map Graph_io.load graph_path))
                  strengths)
            | _ -> ())
    | None ->
    match (graph_path, log_paths) with
    | None, _ -> `Error (true, "--graph is required when not using --connect")
    | _, [] -> `Error (true, "--log is required when not using --connect")
    | Some graph_path, log_paths ->
    let graph = Graph_io.load graph_path in
    let logs = Array.of_list (List.map Log_io.load log_paths) in
    let estimator =
      match decay with
      | None -> Protocol4.Eq1
      | Some "linear" -> Protocol4.Eq2 (Link_strength.linear_decay_weights ~h)
      | Some spec when String.length spec > 4 && String.sub spec 0 4 = "exp:" -> (
        match float_of_string_opt (String.sub spec 4 (String.length spec - 4)) with
        | Some alpha -> Protocol4.Eq2 (Link_strength.exponential_decay_weights ~h ~alpha)
        | None -> failwith "bad --decay exp:ALPHA")
      | Some other -> failwith (Printf.sprintf "unknown decay %S" other)
    in
    let config =
      { Protocol4.c_factor; modulus = 1 lsl modulus_bits; h; estimator }
    in
    let spec = Option.map Spe_actionlog.Spec_io.load spec_path in
    let s = State.create ~seed () in
    let trace = obs_trace trace_file metrics in
    let protocol = match spec with None -> "links" | Some _ -> "links-nonexcl" in
    let strengths, stats, transcript, net, parties, payload_bytes, sections =
      match transport with
      | `Central ->
        let r =
          match spec with
          | None -> Driver.link_strengths_exclusive ~trace s ~graph ~logs config
          | Some spec ->
            Driver.link_strengths_non_exclusive ~trace s ~graph ~logs ~spec ~obfuscation
              config
        in
        ( r.Driver.strengths, r.Driver.wire, r.Driver.transcript, None,
          Array.length logs + 1, transcript_payload_bytes r.Driver.transcript, None )
      | (`Sim | `Memory | `Socket) as transport when shards = 1 ->
        let session =
          match spec with
          | None -> Spe_core.Driver_distributed.links_exclusive s ~graph ~logs config
          | Some spec ->
            Spe_core.Driver_distributed.links_non_exclusive s ~graph ~logs ~spec
              ~obfuscation config
        in
        let r, w, net = run_pipeline_session ~trace transport session in
        let stats = Wire.stats w in
        ( r.Protocol4.strengths, stats, Wire.messages w, net,
          Array.length session.Spe_mpc.Session.parties, stats.Wire.bits / 8, None )
      | (`Sim | `Memory | `Socket) as transport -> (
        let plan =
          match spec with
          | None -> Spe_core.Shard.links_exclusive s ~graph ~logs ~shards config
          | Some spec ->
            Spe_core.Shard.links_non_exclusive s ~graph ~logs ~spec ~obfuscation ~shards
              config
        in
        match transport with
        | `Sim ->
          let session = Spe_core.Plan.to_session plan in
          let r, w, net = run_pipeline_session ~trace `Sim session in
          let stats = Wire.stats w in
          ( r.Protocol4.strengths, stats, Wire.messages w, net,
            Array.length session.Spe_mpc.Session.parties, stats.Wire.bits / 8, None )
        | (`Memory | `Socket) as transport ->
          let r, stats, transcript, net, sections =
            run_pipeline_plan ~trace ~workers transport plan
          in
          ( r.Protocol4.strengths, stats, transcript, net, Array.length logs + 1,
            stats.Wire.bits / 8, Some sections ))
    in
    print_strengths ~top strengths;
    (match out with
    | None -> ()
    | Some path ->
      Spe_influence.Result_io.save_strengths strengths path;
      Printf.printf "wrote %s\n" path);
    (match dp_epsilon with
    | None -> ()
    | Some epsilon ->
      emit_dp_strengths
        ~params:(dp_params ~seed ~dp_sensitivity epsilon)
        ~public:(dp_arc_public ~dp_public_degree (Some graph))
        strengths);
    wire_summary stats;
    transport_bytes_summary stats net;
    if show_transcript then begin
      Printf.printf "\ntranscript:\n";
      List.iter
        (fun (msg : Wire.message) ->
          Format.printf "  r%-3d %a -> %a  %d bits@." msg.Wire.round Wire.pp_party
            msg.Wire.src Wire.pp_party msg.Wire.dst msg.Wire.bits)
        transcript
    end;
    (match sections with
    | None ->
      emit_observability trace ~protocol ~engine:(engine_name transport) ~parties
        ~messages:stats.Wire.messages ~payload_bytes ~net trace_file metrics
    | Some sections ->
      emit_sharded_observability ~protocol ~engine:(engine_name transport)
        ~messages:stats.Wire.messages ~payload_bytes ~net sections trace_file metrics);
    `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ graph_opt_arg $ logs_opt_arg $ h_arg $ c_arg $ modulus_bits_arg
       $ decay $ top_arg $ spec_arg $ obfuscation_arg $ pipeline_transport_arg $ shards_arg
       $ workers_arg $ transcript_arg $ trace_file_arg $ metrics_arg $ out_arg $ connect_arg
       $ jobs_arg $ dp_epsilon_arg $ dp_sensitivity_arg $ dp_public_degree_arg))
  in
  Cmd.v
    (Cmd.info "links"
       ~doc:
         "Securely compute link influence strengths (Protocol 4, exclusive case) over \
          provider log files, on any engine (--transport).")
    term

(* --- spe scores ---------------------------------------------------------- *)

let scores_cmd =
  let tau =
    Arg.(value & opt int 8 & info [ "tau" ] ~docv:"TAU" ~doc:"Propagation time threshold.")
  in
  let key_bits =
    Arg.(
      value & opt int 256
      & info [ "key-bits" ] ~docv:"BITS"
          ~doc:"Public-key modulus size for Protocol 6 (1024 = paper's deployment).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write all scores to FILE.")
  in
  let pack_slots =
    Arg.(
      value & opt int 1
      & info [ "pack-slots" ] ~docv:"SLOTS"
          ~doc:
            "Pack up to SLOTS time-difference entries into each Protocol 6 plaintext \
             (clamped to what the key admits).  1 disables packing and is bit-identical \
             to the paper's protocol.")
  in
  let print_scores ~top scores =
    let idx = Array.init (Array.length scores) (fun i -> i) in
    Array.sort (fun a b -> Stdlib.compare scores.(b) scores.(a)) idx;
    Printf.printf "user influence scores (top %d):\n" top;
    Array.iteri
      (fun rank u ->
        if rank < top then Printf.printf "  #%-3d user %-6d score %.3f\n" (rank + 1) u
            scores.(u))
      idx
  in
  let run seed graph_path log_paths tau key_bits pack_slots modulus_bits top transport
      shards workers trace_file metrics out connect jobs dp_epsilon dp_sensitivity
      dp_public_degree =
    match
      if shards < 1 then Some "--shards must be at least 1"
      else if workers < 1 then Some "--workers must be at least 1"
      else if jobs < 1 then Some "--jobs must be at least 1"
      else if pack_slots < 1 then Some "--pack-slots must be at least 1"
      else if tau < 1 then Some "--tau must be at least 1"
      else if key_bits < 16 then Some "--key-bits must be at least 16"
      else if modulus_bits < 2 || modulus_bits > 61 then
        Some "--modulus-bits must lie in [2, 61]"
      else if connect = None && transport = `Central && shards > 1 then
        Some "--shards needs --transport sim, memory or socket"
      else dp_check ~dp_epsilon ~dp_sensitivity ~dp_public_degree
    with
    | Some msg -> `Error (true, msg)
    | None ->
    match connect with
    | Some addr_spec ->
      if trace_file <> None || metrics <> None then
        `Error
          ( true,
            "--trace/--metrics are daemon-side with --connect; scrape the daemon's \
             --metrics-addr instead" )
      else if dp_public_degree <> None && graph_path = None then
        `Error (true, "--dp-public-degree needs --graph")
      else
        run_connect ~addr_spec ~jobs
          {
            Serve_proto.default_spec with
            Serve_proto.pipeline = Serve_proto.Scores;
            seed;
            shards;
            modulus_bits;
            tau;
            key_bits;
            pack_slots;
          }
          ~print:(function
            | Serve_proto.Scores scores ->
              print_scores ~top scores;
              (match out with
              | None -> ()
              | Some path ->
                Spe_influence.Result_io.save_scores scores path;
                Printf.printf "wrote %s\n" path);
              (match dp_epsilon with
              | None -> ()
              | Some epsilon ->
                emit_dp_vector
                  ~params:(dp_params ~seed ~dp_sensitivity epsilon)
                  ~public:
                    (dp_node_public ~dp_public_degree (Option.map Graph_io.load graph_path))
                  ~what:"user scores" scores)
            | _ -> ())
    | None ->
    match (graph_path, log_paths) with
    | None, _ -> `Error (true, "--graph is required when not using --connect")
    | _, [] -> `Error (true, "--log is required when not using --connect")
    | Some graph_path, log_paths ->
    let graph = Graph_io.load graph_path in
    let logs = Array.of_list (List.map Log_io.load log_paths) in
    let config = { Protocol6.default_config with Protocol6.key_bits; pack_slots } in
    let modulus = 1 lsl modulus_bits in
    let s = State.create ~seed () in
    let trace = obs_trace trace_file metrics in
    let scores, stats, net, parties, payload_bytes, sections =
      match transport with
      | `Central ->
        let r = Driver.user_scores_exclusive ~trace s ~graph ~logs ~tau ~modulus config in
        ( r.Driver.scores, r.Driver.wire, None, Array.length logs + 1,
          transcript_payload_bytes r.Driver.transcript, None )
      | (`Sim | `Memory | `Socket) as transport when shards = 1 ->
        let session =
          Spe_core.Driver_distributed.user_scores_exclusive s ~graph ~logs ~tau ~modulus
            config
        in
        let r, w, net = run_pipeline_session ~trace transport session in
        let stats = Wire.stats w in
        ( r.Spe_core.Driver_distributed.scores, stats, net,
          Array.length session.Spe_mpc.Session.parties, stats.Wire.bits / 8, None )
      | (`Sim | `Memory | `Socket) as transport -> (
        let plan =
          Spe_core.Shard.user_scores_exclusive s ~graph ~logs ~tau ~modulus ~shards config
        in
        match transport with
        | `Sim ->
          let session = Spe_core.Plan.to_session plan in
          let r, w, net = run_pipeline_session ~trace `Sim session in
          let stats = Wire.stats w in
          ( r.Spe_core.Driver_distributed.scores, stats, net,
            Array.length session.Spe_mpc.Session.parties, stats.Wire.bits / 8, None )
        | (`Memory | `Socket) as transport ->
          let r, stats, _transcript, net, sections =
            run_pipeline_plan ~trace ~workers transport plan
          in
          ( r.Spe_core.Driver_distributed.scores, stats, net, Array.length logs + 1,
            stats.Wire.bits / 8, Some sections ))
    in
    print_scores ~top scores;
    (match out with
    | None -> ()
    | Some path ->
      Spe_influence.Result_io.save_scores scores path;
      Printf.printf "wrote %s\n" path);
    (match dp_epsilon with
    | None -> ()
    | Some epsilon ->
      emit_dp_vector
        ~params:(dp_params ~seed ~dp_sensitivity epsilon)
        ~public:(dp_node_public ~dp_public_degree (Some graph))
        ~what:"user scores" scores);
    wire_summary stats;
    transport_bytes_summary stats net;
    (match sections with
    | None ->
      emit_observability trace ~protocol:"scores" ~engine:(engine_name transport) ~parties
        ~messages:stats.Wire.messages ~payload_bytes ~net trace_file metrics
    | Some sections ->
      emit_sharded_observability ~protocol:"scores" ~engine:(engine_name transport)
        ~messages:stats.Wire.messages ~payload_bytes ~net sections trace_file metrics);
    `Ok ()
  in
  let term =
    Term.(
      ret (const run $ seed_arg $ graph_opt_arg $ logs_opt_arg $ tau $ key_bits
         $ pack_slots $ modulus_bits_arg $ top_arg $ pipeline_transport_arg $ shards_arg
         $ workers_arg $ trace_file_arg $ metrics_arg $ out_arg $ connect_arg $ jobs_arg
         $ dp_epsilon_arg $ dp_sensitivity_arg $ dp_public_degree_arg))
  in
  Cmd.v
    (Cmd.info "scores"
       ~doc:
         "Securely compute user influence scores (Protocol 6 + Def. 3.3), on any \
          engine (--transport).")
    term

(* --- spe rank ------------------------------------------------------------- *)

(* The second estimand family (ROADMAP item 5): activity-personalised
   PageRank / degree centrality.  The graph is public to H; the per-user
   activity that personalises the teleport vector stays split across the
   providers and only its aggregate is reconstructed (Protocol 1/2
   primitives), so the protocol releases exactly what the plaintext
   fixed-point oracle computes — bit-identical on every engine. *)

let rank_cmd =
  let damping_arg =
    Arg.(
      value & opt float 0.85
      & info [ "damping" ] ~docv:"D" ~doc:"PageRank damping factor, in [0, 1).")
  in
  let iterations_arg =
    Arg.(
      value & opt int 25
      & info [ "iterations" ] ~docv:"I" ~doc:"Power-iteration count (pagerank mode).")
  in
  let fbits_arg =
    Arg.(
      value & opt int 20
      & info [ "fbits" ] ~docv:"B"
          ~doc:
            "Fixed-point fractional bits, in [4, 30] and below --modulus-bits; the \
             documented precision bound against the float recursion shrinks as 2^-B.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("pagerank", `Pagerank); ("degree", `Degree) ]) `Pagerank
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Estimand: 'pagerank' (damped power iteration) or 'degree' (one blend).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the full rank vector to FILE.")
  in
  let print_ranks ~top ranks =
    let n = Array.length ranks in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> Stdlib.compare ranks.(b) ranks.(a)) order;
    Printf.printf "activity-personalised ranks (top %d of %d):\n" (min top n) n;
    Array.iteri
      (fun i u ->
        if i < top then Printf.printf "  #%-3d user %-6d rank %.6f\n" (i + 1) u ranks.(u))
      order
  in
  let run seed graph_path log_paths damping iterations fbits mode modulus_bits top
      transport shards workers trace_file metrics out connect jobs dp_epsilon
      dp_sensitivity dp_public_degree =
    match
      if shards < 1 then Some "--shards must be at least 1"
      else if workers < 1 then Some "--workers must be at least 1"
      else if jobs < 1 then Some "--jobs must be at least 1"
      else if modulus_bits < 2 || modulus_bits > 61 then
        Some "--modulus-bits must lie in [2, 61]"
      else if iterations < 0 then Some "--iterations must be >= 0"
      else if Float.is_nan damping || damping < 0. || damping >= 1. then
        Some "--damping must lie in [0, 1)"
      else if fbits < 4 || fbits > 30 then Some "--fbits must lie in [4, 30]"
      else if fbits >= modulus_bits then Some "--fbits must lie below --modulus-bits"
      else if connect = None && transport = `Central && shards > 1 then
        Some "--shards needs --transport sim, memory or socket"
      else dp_check ~dp_epsilon ~dp_sensitivity ~dp_public_degree
    with
    | Some msg -> `Error (true, msg)
    | None ->
    let oracle =
      {
        Rank_oracle.mode =
          (match mode with `Pagerank -> Rank_oracle.Pagerank | `Degree -> Rank_oracle.Degree);
        damping;
        iterations;
        fbits;
      }
    in
    match connect with
    | Some addr_spec ->
      if trace_file <> None || metrics <> None then
        `Error
          ( true,
            "--trace/--metrics are daemon-side with --connect; scrape the daemon's \
             --metrics-addr instead" )
      else if dp_public_degree <> None && graph_path = None then
        `Error (true, "--dp-public-degree needs --graph")
      else
        run_connect ~addr_spec ~jobs
          {
            Serve_proto.default_spec with
            Serve_proto.pipeline = Serve_proto.Rank;
            seed;
            shards;
            modulus_bits;
            damping;
            iterations;
            fbits;
            rank_degree = (mode = `Degree);
          }
          ~print:(function
            | Serve_proto.Rank_summary { ranks_fx; fbits } ->
              let scale = float_of_int (1 lsl fbits) in
              let ranks = Array.map (fun fx -> float_of_int fx /. scale) ranks_fx in
              print_ranks ~top ranks;
              (match out with
              | None -> ()
              | Some path ->
                Spe_influence.Result_io.save_scores ranks path;
                Printf.printf "wrote %s\n" path);
              (match dp_epsilon with
              | None -> ()
              | Some epsilon ->
                emit_dp_vector
                  ~params:(dp_params ~seed ~dp_sensitivity epsilon)
                  ~public:
                    (dp_node_public ~dp_public_degree (Option.map Graph_io.load graph_path))
                  ~what:"rank vector" ranks)
            | _ -> ())
    | None ->
    match (graph_path, log_paths) with
    | None, _ -> `Error (true, "--graph is required when not using --connect")
    | _, [] -> `Error (true, "--log is required when not using --connect")
    | Some graph_path, log_paths ->
    let graph = Graph_io.load graph_path in
    let logs = Array.of_list (List.map Log_io.load log_paths) in
    let n = Digraph.n graph in
    let aggregate_activity () =
      let a = Array.make n 0 in
      Array.iter
        (fun l ->
          if Log.num_users l <> n then
            invalid_arg "rank: log/graph user universe mismatch";
          Array.iteri (fun i v -> a.(i) <- a.(i) + v) (Log.user_activity l))
        logs;
      a
    in
    let plaintext () =
      Rank_oracle.to_floats oracle (Rank_oracle.fixed oracle graph ~activity:(aggregate_activity ()))
    in
    let emit_dp ?mpc_plaintext ranks =
      match dp_epsilon with
      | None -> ()
      | Some epsilon ->
        emit_dp_vector
          ~params:(dp_params ~seed ~dp_sensitivity epsilon)
          ~public:(dp_node_public ~dp_public_degree (Some graph))
          ?plaintext:mpc_plaintext ~what:"rank vector" ranks
    in
    let config = { Protocol_rank.oracle; modulus = 1 lsl modulus_bits } in
    let s = State.create ~seed () in
    let trace = obs_trace trace_file metrics in
    match transport with
    | `Central -> (
      (* The central engine is the plaintext fixed-point oracle itself:
         same arithmetic, no protocol run and no wire. *)
      match plaintext () with
      | exception Invalid_argument msg -> `Error (false, msg)
      | ranks ->
        print_ranks ~top ranks;
        (match out with
        | None -> ()
        | Some path ->
          Spe_influence.Result_io.save_scores ranks path;
          Printf.printf "wrote %s\n" path);
        emit_dp ranks;
        Printf.printf "engine central: plaintext fixed-point oracle, no protocol run\n";
        `Ok ())
    | (`Sim | `Memory | `Socket) as transport -> (
      match Protocol_rank.plan s ~graph ~logs ~shards config with
      | exception Invalid_argument msg -> `Error (false, msg)
      | plan ->
        let result, stats, net, parties, payload_bytes, sections =
          match transport with
          | `Sim ->
            let session = Spe_core.Plan.to_session plan in
            let r, w, net = run_pipeline_session ~trace `Sim session in
            let stats = Wire.stats w in
            ( r, stats, net, Array.length session.Spe_mpc.Session.parties,
              stats.Wire.bits / 8, None )
          | (`Memory | `Socket) as transport ->
            let r, stats, _transcript, net, sections =
              run_pipeline_plan ~trace ~workers transport plan
            in
            ( r, stats, net, Array.length logs + 1, stats.Wire.bits / 8, Some sections )
        in
        let ranks = result.Protocol_rank.ranks in
        print_ranks ~top ranks;
        (match out with
        | None -> ()
        | Some path ->
          Spe_influence.Result_io.save_scores ranks path;
          Printf.printf "wrote %s\n" path);
        emit_dp ~mpc_plaintext:(plaintext ()) ranks;
        wire_summary stats;
        transport_bytes_summary stats net;
        (match sections with
        | None ->
          emit_observability trace ~protocol:"rank" ~engine:(engine_name transport)
            ~parties ~messages:stats.Wire.messages ~payload_bytes ~net trace_file metrics
        | Some sections ->
          emit_sharded_observability ~protocol:"rank" ~engine:(engine_name transport)
            ~messages:stats.Wire.messages ~payload_bytes ~net sections trace_file metrics);
        `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ graph_opt_arg $ logs_opt_arg $ damping_arg
       $ iterations_arg $ fbits_arg $ mode_arg $ modulus_bits_arg $ top_arg
       $ pipeline_transport_arg $ shards_arg $ workers_arg $ trace_file_arg
       $ metrics_arg $ out_arg $ connect_arg $ jobs_arg $ dp_epsilon_arg
       $ dp_sensitivity_arg $ dp_public_degree_arg))
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:
         "Securely compute activity-personalised PageRank / degree centrality \
          (Protocol_rank over the Protocol 1-3 primitives), bit-identical to the \
          plaintext fixed-point oracle on every engine (--transport, --connect).")
    term

(* --- spe stream ----------------------------------------------------------- *)

(* Epoch-delta streaming: replay the providers' logs as seeded arrival
   streams, accumulate them in sliding-window counters, and re-release
   the pair estimates every epoch, re-running the protocols only over
   the dirtied counter groups (Spe_core.Delta).  The same seed
   derivation as the daemons' Stream jobs, so `spe stream` in-process
   and `spe stream --connect` against a deployment loaded with the same
   workload release identical digests. *)

let stream_cmd =
  let module Source = Spe_actionlog.Source in
  let module Stream = Spe_influence.Stream in
  let module Counters = Spe_influence.Counters in
  let module Delta = Spe_core.Delta in
  let module Plan = Spe_core.Plan in
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let epoch_arg =
    Arg.(
      value & opt int 25
      & info [ "epoch"; "epoch-ticks" ] ~docv:"TICKS"
          ~doc:"Arrival ticks per release epoch.")
  in
  let window_arg =
    Arg.(
      value & opt int 0
      & info [ "window"; "stream-window" ] ~docv:"N"
          ~doc:
            "Sliding temporal window: a record leaves the counters once its timestamp \
             falls N time units behind the stream clock.  0 (the default) keeps \
             everything — pure accumulation.  (Unlike links/scores, --window here is \
             the stream window; the estimator's memory width is -h.)")
  in
  let epochs_arg =
    Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"E" ~doc:"Release epochs to run.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.5
      & info [ "rate" ] ~docv:"R" ~doc:"Mean record arrivals per tick, per provider.")
  in
  let burstiness_arg =
    Arg.(
      value & opt float 0.
      & info [ "burstiness" ] ~docv:"B"
          ~doc:
            "Markov-modulated arrival burstiness in [0, 1): 0 is a plain Poisson \
             process, higher values alternate calm and burst regimes.")
  in
  let jitter_arg =
    Arg.(
      value & opt int 0
      & info [ "jitter" ] ~docv:"J"
          ~doc:"Bounded arrival reordering: each record lands up to J ticks late.")
  in
  let h_only_arg =
    Arg.(value & opt int 3 & info [ "h" ] ~docv:"H" ~doc:"Memory-window width h.")
  in
  let stream_transport_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("memory", `Memory); ("socket", `Socket) ]) `Sim
      & info [ "transport" ] ~docv:"ENGINE"
          ~doc:
            "Engine executing each epoch's delta plan: sim, memory or socket.  The \
             released bits are engine-independent.")
  in
  let verify_full_arg =
    Arg.(
      value & flag
      & info [ "verify-full" ]
          ~doc:
            "Also run a full per-epoch recompute (every counter group re-shared every \
             epoch) in lockstep and assert its release digest matches the delta path's \
             at every epoch — the bit-identity invariant, checked live.")
  in
  let print_summary ~top ~epochs digests recomputed strengths =
    Array.iteri
      (fun e d -> Printf.printf "epoch %d: %d group(s) recomputed, digest %016x\n" e
          recomputed.(e) d)
      digests;
    Printf.printf "%d epoch(s) released\n" epochs;
    let sorted = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) strengths in
    Printf.printf "final link strengths (top %d of %d):\n" top (List.length sorted);
    List.iteri
      (fun i ((u, v), p) -> if i < top then Printf.printf "  %6d -> %-6d  %.4f\n" u v p)
      sorted
  in
  let run seed graph_path log_paths epoch_ticks window epochs rate burstiness jitter h
      c_factor modulus_bits transport top verify_full connect jobs =
    match
      if epoch_ticks < 1 then Some "--epoch must be at least 1"
      else if window < 0 then Some "--stream-window must be >= 0"
      else if epochs < 1 then Some "--epochs must be at least 1"
      else if rate <= 0. then Some "--rate must be positive"
      else if burstiness < 0. || burstiness >= 1. then Some "--burstiness must be in [0, 1)"
      else if jitter < 0 then Some "--jitter must be >= 0"
      else if h < 1 then Some "--h must be at least 1"
      else if c_factor < 1. then Some "--c-factor must be >= 1"
      else if modulus_bits < 2 || modulus_bits > 61 then
        Some "--modulus-bits must lie in [2, 61]"
      else if jobs < 1 then Some "--jobs must be at least 1"
      else None
    with
    | Some msg -> `Error (true, msg)
    | None ->
    match connect with
    | Some addr_spec ->
      if verify_full then
        `Error
          ( true,
            "--verify-full is an in-process check; daemons run the delta plan — compare \
             against a local run with the same seed instead" )
      else
        run_connect ~addr_spec ~jobs
          {
            Serve_proto.default_spec with
            Serve_proto.pipeline = Serve_proto.Stream;
            seed;
            h;
            c_factor;
            modulus_bits;
            epoch_ticks;
            window;
            epochs;
            rate;
            burstiness;
            jitter;
          }
          ~print:(function
            | Serve_proto.Stream_summary { digests; recomputed; strengths } ->
              print_summary ~top ~epochs:(Array.length digests) digests recomputed
                strengths
            | _ -> ())
    | None ->
    match (graph_path, log_paths) with
    | None, _ -> `Error (true, "--graph is required when not using --connect")
    | _, [] -> `Error (true, "--log is required when not using --connect")
    | Some graph_path, log_paths ->
      let graph = Graph_io.load graph_path in
      let logs = Array.of_list (List.map Log_io.load log_paths) in
      if Array.length logs < 2 then `Error (true, "need at least two --log providers")
      else begin
        let m = Array.length logs in
        let num_actions =
          Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs
        in
        let config =
          {
            Protocol4.c_factor;
            modulus = 1 lsl modulus_bits;
            h;
            estimator = Protocol4.Eq1;
          }
        in
        (* One streaming instance: its Delta pipeline, the per-provider
           sources, and windowed accumulators over its published pair
           order.  [verify-full] builds a second one from the same seeds
           — identical ingestion, every group recomputed every epoch. *)
        let instance () =
          let d =
            Delta.create
              (State.create ~seed ())
              ~graph ~m ~num_actions ~group_seed:(seed lxor 0x5bd1e995) config
          in
          let pairs = Delta.pairs d in
          let sources =
            Array.mapi
              (fun k l ->
                Source.create
                  (State.create ~seed:(seed + 101 + k) ())
                  l ~rate ~burstiness ~jitter ())
              logs
          in
          let streams =
            Array.map
              (fun _ ->
                Stream.create
                  ?window:(if window = 0 then None else Some window)
                  ~num_users:(Digraph.n graph) ~num_actions ~h ~pairs ())
              logs
          in
          (d, sources, streams)
        in
        let union_sorted lists = List.sort_uniq compare (List.concat lists) in
        let epoch_input ~epoch ~horizon (sources, streams) =
          let arrivals = ref 0 in
          Array.iteri
            (fun k src ->
              List.iter
                (fun (r : Log.record) ->
                  incr arrivals;
                  let acc = streams.(k) in
                  Stream.advance acc ~now:(max (Stream.now acc) r.Log.time);
                  Stream.add acc r)
                (Source.take_until src ~arrival:horizon))
            sources;
          let dirty_users =
            union_sorted (Array.to_list (Array.map Stream.dirty_users streams))
          in
          let dirty_pairs =
            union_sorted (Array.to_list (Array.map Stream.dirty_pairs streams))
          in
          let inputs =
            Array.map
              (fun acc ->
                let c = Stream.snapshot acc in
                { Protocol4.a = c.Counters.a; c = c.Counters.c })
              streams
          in
          Array.iter Stream.clear_dirty streams;
          (!arrivals, { Delta.epoch; dirty_users; dirty_pairs; inputs })
        in
        let endpoint_config =
          { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
        in
        let run_plan engine (plan : _ Plan.t) =
          match engine with
          | `Sim -> Session.run (Plan.to_session plan) ~wire:(Wire.create ())
          | (`Memory | `Socket) as e ->
            List.iter
              (fun (stage : Plan.stage) ->
                ignore
                  (match e with
                  | `Memory ->
                    Endpoint.run_sessions_memory ~config:endpoint_config ~workers:2
                      stage.Plan.sessions
                  | `Socket ->
                    Endpoint.run_sessions_socket ~config:endpoint_config ~workers:2
                      stage.Plan.sessions))
              plan.Plan.stages;
            plan.Plan.result ()
        in
        let d, srcs, accs = instance () in
        let full_i = if verify_full then Some (instance ()) else None in
        let t0 = Unix.gettimeofday () in
        let total_arrivals = ref 0 in
        let mismatch = ref None in
        let last = ref None in
        for e = 0 to epochs - 1 do
          let horizon = (e + 1) * epoch_ticks in
          let arrivals, input = epoch_input ~epoch:e ~horizon (srcs, accs) in
          total_arrivals := !total_arrivals + arrivals;
          let release = run_plan transport (Delta.epoch_plan d ~mode:Delta.Delta input) in
          last := Some release;
          Printf.printf "epoch %d: %d arrival(s), %d group(s) recomputed, digest %016x%s\n%!"
            e arrivals release.Delta.recomputed release.Delta.digest
            (match full_i with
            | None -> ""
            | Some (fd, fsrcs, faccs) ->
              let _, finput = epoch_input ~epoch:e ~horizon (fsrcs, faccs) in
              let full = run_plan `Sim (Delta.epoch_plan fd ~mode:Delta.Full finput) in
              if full.Delta.digest = release.Delta.digest then " = full"
              else begin
                if !mismatch = None then mismatch := Some e;
                Printf.sprintf " <> full %016x" full.Delta.digest
              end)
        done;
        let wall = Unix.gettimeofday () -. t0 in
        (match !last with
        | None -> ()
        | Some release ->
          let sorted =
            List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) release.Delta.strengths
          in
          Printf.printf "final link strengths (top %d of %d):\n" top (List.length sorted);
          List.iteri
            (fun i ((u, v), p) ->
              if i < top then Printf.printf "  %6d -> %-6d  %.4f\n" u v p)
            sorted);
        Printf.printf "%d epoch(s), %d record(s) in %.2f s (%.1f sustained updates/s)\n"
          epochs !total_arrivals wall
          (if wall > 0. then float_of_int !total_arrivals /. wall else 0.);
        (match !mismatch with
        | None ->
          if verify_full then
            Printf.printf "verify-full: delta releases bit-identical to full recompute\n";
          `Ok ()
        | Some e ->
          `Error
            ( false,
              Printf.sprintf "verify-full: delta and full release digests diverge at epoch %d"
                e ))
      end
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ graph_opt_arg $ logs_opt_arg $ epoch_arg $ window_arg
       $ epochs_arg $ rate_arg $ burstiness_arg $ jitter_arg $ h_only_arg $ c_arg
       $ modulus_bits_arg $ stream_transport_arg $ top_arg $ verify_full_arg
       $ connect_arg $ jobs_arg))
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Replay the action logs as timestamped arrival streams and re-release link \
          strengths every epoch, re-running the secure protocols only over the counter \
          groups the window moved (Spe_core.Delta).  --verify-full checks the released \
          bits against a full per-epoch recompute.")
    term

(* --- spe campaign --------------------------------------------------------- *)

let campaign_cmd =
  let k = Arg.(value & opt int 5 & info [ "k"; "seed-count" ] ~docv:"K" ~doc:"Seed-set size.") in
  let samples =
    Arg.(
      value & opt int 200
      & info [ "samples" ] ~docv:"S" ~doc:"Monte-Carlo cascade samples per evaluation.")
  in
  let run seed graph_path log_paths h k samples =
    let graph = Graph_io.load graph_path in
    let logs = Array.of_list (List.map Log_io.load log_paths) in
    let s = State.create ~seed () in
    let r = Driver.link_strengths_exclusive s ~graph ~logs (Protocol4.default_config ~h) in
    let model = Maximize.of_strengths graph r.Driver.strengths in
    let seeds, spread = Maximize.celf s model ~k ~samples in
    Printf.printf "campaign seeds (CELF on securely learned strengths):\n";
    List.iteri (fun i u -> Printf.printf "  %d. user %d\n" (i + 1) u) seeds;
    Printf.printf "expected spread under the learned model: %.1f users\n" spread;
    wire_summary r.Driver.wire;
    `Ok ()
  in
  let term =
    Term.(ret (const run $ seed_arg $ graph_arg $ logs_arg $ h_arg $ k $ samples))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Pick viral-marketing seeds from securely learned link strengths.")
    term

(* --- spe privacy ------------------------------------------------------------ *)

let privacy_cmd =
  let bound =
    Arg.(value & opt int 10 & info [ "bound" ] ~docv:"A" ~doc:"Counter range bound A.")
  in
  let trials =
    Arg.(value & opt int 1000 & info [ "trials" ] ~docv:"T" ~doc:"Trials per value of x.")
  in
  let prior =
    Arg.(
      value & opt string "uniform"
      & info [ "prior" ] ~docv:"PRIOR" ~doc:"Prior: 'uniform', 'unimodal' or 'geometric:P'.")
  in
  let run seed bound trials prior_spec =
    let prior =
      match prior_spec with
      | "uniform" -> Posterior.uniform_prior ~bound
      | "unimodal" -> Posterior.unimodal_prior ~bound
      | spec when String.length spec > 10 && String.sub spec 0 10 = "geometric:" -> (
        match float_of_string_opt (String.sub spec 10 (String.length spec - 10)) with
        | Some p -> Posterior.geometric_prior ~bound ~p
        | None -> failwith "bad --prior geometric:P")
      | other -> failwith (Printf.sprintf "unknown prior %S" other)
    in
    let s = State.create ~seed () in
    let r = Gain.run s ~prior ~trials_per_x:trials in
    Printf.printf "masking-gain experiment (Sec. 7.2): %d samples\n" (Array.length r.Gain.gains);
    Printf.printf "average gain      = %+.4f\n" r.Gain.average;
    Printf.printf "positive fraction = %.3f\n" r.Gain.positive_fraction;
    Format.printf "%a" Gain.pp_histogram r.Gain.histogram;
    `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ bound $ trials $ prior)) in
  Cmd.v
    (Cmd.info "privacy" ~doc:"Run the Sec. 7.2 masking-gain experiment (Figure 1).")
    term

(* --- spe costs --------------------------------------------------------------- *)

let costs_cmd =
  let n = Arg.(value & opt int 1000 & info [ "users" ] ~docv:"N" ~doc:"Number of users.") in
  let q = Arg.(value & opt int 8000 & info [ "pairs" ] ~docv:"Q" ~doc:"Published pair count |E'|.") in
  let m = Arg.(value & opt int 5 & info [ "providers" ] ~docv:"M" ~doc:"Number of providers.") in
  let actions =
    Arg.(value & opt int 50 & info [ "actions" ] ~docv:"A" ~doc:"Total actions (Table 2).")
  in
  let z =
    Arg.(
      value & opt int 1024 & info [ "ciphertext-bits" ] ~docv:"Z" ~doc:"Ciphertext size in bits (Table 2).")
  in
  let run n q m modulus_bits actions z =
    let node_bits = Wire.bits_for_int_mod (max 2 n) in
    Printf.printf "Table 1 model (Protocol 4):\n";
    Format.printf "%a@."
      Model.pp
      (Model.table1 ~n ~q ~m ~modulus_bits ~node_bits ~counters:(n + q));
    let per = actions / m in
    let firsts = actions - (per * (m - 1)) in
    let actions_per_provider = Array.init m (fun k -> if k = 0 then firsts else per) in
    Printf.printf "\nTable 2 model (Protocol 6):\n";
    Format.printf "%a@."
      Model.pp
      (Model.table2 ~q ~m ~node_bits ~key_bits:(2 * z) ~ciphertext_bits:z
         ~actions_per_provider ());
    `Ok ()
  in
  let term = Term.(ret (const run $ n $ q $ m $ modulus_bits_arg $ actions $ z)) in
  Cmd.v
    (Cmd.info "costs" ~doc:"Print the analytic communication-cost tables (Sec. 7.1).")
    term

(* --- spe leakage ---------------------------------------------------------------- *)

let leakage_cmd =
  let bound =
    Arg.(value & opt int 100 & info [ "bound" ] ~docv:"A" ~doc:"Counter range bound A.")
  in
  let x = Arg.(value & opt int 50 & info [ "value" ] ~docv:"X" ~doc:"True aggregate value.") in
  let trials =
    Arg.(value & opt int 20000 & info [ "trials" ] ~docv:"T" ~doc:"Monte-Carlo trials.")
  in
  let run seed modulus_bits bound x trials =
    let modulus = 1 lsl modulus_bits in
    let t = Leakage.theoretical ~modulus ~input_bound:bound ~x in
    let s = State.create ~seed () in
    let o = Leakage.monte_carlo s ~modulus ~input_bound:bound ~x ~trials in
    let rate hits = float_of_int hits /. float_of_int trials in
    Printf.printf "Protocol 2 leak rates at S = 2^%d, A = %d, x = %d (%d trials):\n"
      modulus_bits bound x trials;
    Printf.printf "  P2 lower bound: theory %.5f, measured %.5f\n" t.Leakage.p2_lower
      (rate o.Leakage.p2_lower_hits);
    Printf.printf "  P2 upper bound: theory %.5f, measured %.5f\n" t.Leakage.p2_upper
      (rate o.Leakage.p2_upper_hits);
    Printf.printf "  P3 any bound:   bound  %.5f, measured %.5f\n"
      (t.Leakage.p3_lower +. t.Leakage.p3_upper)
      (rate (o.Leakage.p3_lower_hits + o.Leakage.p3_upper_hits));
    `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ modulus_bits_arg $ bound $ x $ trials)) in
  Cmd.v
    (Cmd.info "leakage" ~doc:"Measure Protocol 2's Theorem 4.1 leak rates empirically.")
    term

(* --- spe em ------------------------------------------------------------------------ *)

let em_cmd =
  let iterations =
    Arg.(value & opt int 100 & info [ "iterations" ] ~docv:"I" ~doc:"Maximum EM iterations.")
  in
  let run graph_path log_paths h iterations top =
    let graph = Graph_io.load graph_path in
    let logs = List.map Log_io.load log_paths in
    let log = Partition.reunify (Array.of_list logs) in
    let result = Spe_influence.Em.learn log graph ~h ~max_iterations:iterations in
    let strengths = Spe_influence.Em.to_strengths result graph in
    let sorted = List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) strengths in
    Printf.printf "EM baseline (Saito et al.), %d iterations, final log-likelihood %.2f\n"
      result.Spe_influence.Em.iterations
      (match List.rev result.Spe_influence.Em.log_likelihood with ll :: _ -> ll | [] -> nan);
    Printf.printf "top %d arcs:\n" top;
    List.iteri
      (fun i ((u, v), p) -> if i < top then Printf.printf "  %6d -> %-6d  %.4f\n" u v p)
      sorted;
    Printf.printf
      "note: EM runs on the unified log in the clear - it is the non-private baseline\n\
       the paper's counting estimator (spe links) replaces.\n";
    `Ok ()
  in
  let term = Term.(ret (const run $ graph_arg $ logs_arg $ h_arg $ iterations $ top_arg)) in
  Cmd.v
    (Cmd.info "em"
       ~doc:"Learn influence probabilities with the EM baseline (non-private reference).")
    term

(* --- spe metrics ------------------------------------------------------------------- *)

let metrics_cmd =
  let run graph_path =
    let g = Graph_io.load graph_path in
    let module Metrics = Spe_graph.Metrics in
    Printf.printf "nodes              %d\n" (Digraph.n g);
    Printf.printf "arcs               %d\n" (Digraph.edge_count g);
    Printf.printf "max out-degree     %d\n" (Metrics.max_degree g `Out);
    Printf.printf "max in-degree      %d\n" (Metrics.max_degree g `In);
    Printf.printf "reciprocity        %.3f\n" (Metrics.reciprocity g);
    Printf.printf "global clustering  %.3f\n" (Metrics.global_clustering g);
    let pr = Metrics.pagerank g in
    Printf.printf "top PageRank users:";
    List.iter (fun v -> Printf.printf " %d (%.4f)" v pr.(v)) (Metrics.top_k 5 pr);
    Printf.printf "\n";
    `Ok ()
  in
  let term = Term.(ret (const run $ graph_arg)) in
  Cmd.v (Cmd.info "metrics" ~doc:"Print structural metrics of a social graph file.") term

(* --- spe verify ---------------------------------------------------------------------- *)

let verify_cmd =
  let run seed graph_path log_paths h =
    let graph = Graph_io.load graph_path in
    let logs = Array.of_list (List.map Log_io.load log_paths) in
    let s = State.create ~seed () in
    let r = Driver.link_strengths_exclusive s ~graph ~logs (Protocol4.default_config ~h) in
    (* The plaintext reference on the unified log the protocol never
       materialises. *)
    let unified = Partition.reunify logs in
    let ct =
      Spe_influence.Counters.compute unified ~h ~pairs:r.Driver.detail.Protocol4.pairs
    in
    let reference =
      Link_strength.restrict_to_graph ct (Link_strength.all_eq1 ct) graph
    in
    let max_err = ref 0. and worst = ref (0, 0) in
    List.iter2
      (fun ((u, v), exact) (_, secure) ->
        let err = abs_float (exact -. secure) in
        if err > !max_err then begin
          max_err := err;
          worst := (u, v)
        end)
      reference r.Driver.strengths;
    Printf.printf "verified %d arcs against the plaintext reference\n"
      (List.length r.Driver.strengths);
    Printf.printf "max |secure - exact| = %.3e (arc %d -> %d)\n" !max_err (fst !worst)
      (snd !worst);
    Printf.printf "%s\n"
      (if !max_err < 1e-3 then "OK: within the float-masking noise bound (1e-3)"
       else "WARNING: deviation exceeds the expected noise bound");
    wire_summary r.Driver.wire;
    `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ graph_arg $ logs_arg $ h_arg)) in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the secure pipeline AND the plaintext reference on the same files and \
          report the deviation.")
    term

(* --- spe shares ----------------------------------------------------------------------- *)

(* Run the distributed sharing protocols (1 and 2) over a chosen
   engine: the in-process simulated wire, the in-memory transport or
   real Unix-domain sockets.  The shares and the NR/NM/MS statistics
   are engine-independent; the real transports additionally report the
   measured framed bytes and the framing overhead (DESIGN.md,
   "Framing overhead"). *)

let shares_cmd =
  let module P1d = Spe_mpc.Protocol1_distributed in
  let module P2d = Spe_mpc.Protocol2_distributed in
  let module Session = Spe_mpc.Session in
  let module Runtime = Spe_mpc.Runtime in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  let protocol_arg =
    Arg.(
      value
      & opt (enum [ ("1", `P1); ("2", `P2) ]) `P1
      & info [ "protocol" ] ~docv:"P"
          ~doc:"Which sharing protocol: 1 (modular shares) or 2 (integer shares).")
  in
  let transport_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("memory", `Memory); ("socket", `Socket) ]) `Sim
      & info [ "transport" ] ~docv:"T"
          ~doc:
            "Engine hosting the party programs: the simulated wire (sim), in-memory \
             channels (memory) or Unix-domain sockets (socket).")
  in
  let providers_arg =
    Arg.(value & opt int 3 & info [ "providers" ] ~docv:"M" ~doc:"Number of sharing parties.")
  in
  let counters_arg =
    Arg.(value & opt int 8 & info [ "counters" ] ~docv:"L" ~doc:"Counters shared per party.")
  in
  let bound_arg =
    Arg.(
      value & opt int 1000
      & info [ "bound" ] ~docv:"A" ~doc:"Protocol 2 aggregate bound A (ignored by protocol 1).")
  in
  let run seed protocol transport m len modulus_bits bound trace_file metrics =
    if m < 2 then `Error (false, "need at least two providers")
    else begin
      let modulus = 1 lsl modulus_bits in
      let parties = Array.init m (fun k -> Wire.Provider k) in
      let gen = State.create ~seed:(seed lxor 0x5e) () in
      let per_party_max = match protocol with `P1 -> modulus | `P2 -> bound / m in
      let inputs =
        Array.init m (fun _ -> Array.init len (fun _ -> State.next_int gen (max 1 per_party_max)))
      in
      let s = State.create ~seed () in
      let parties', programs, extract =
        match protocol with
        | `P1 ->
          let session = P1d.make s ~parties ~modulus ~inputs in
          ( session.Session.parties,
            session.Session.programs,
            fun () ->
              let r = session.Session.result () in
              (r.Spe_mpc.Protocol1.share1, r.Spe_mpc.Protocol1.share2) )
        | `P2 ->
          let session =
            P2d.make s ~parties ~third_party:Wire.Host ~modulus ~input_bound:bound ~inputs
          in
          ( session.Session.parties,
            session.Session.programs,
            fun () ->
              let r = session.Session.result () in
              (r.Spe_mpc.Protocol2.share1, r.Spe_mpc.Protocol2.share2) )
      in
      let max_rounds = match protocol with `P1 -> P1d.max_rounds | `P2 -> P2d.max_rounds in
      let trace = obs_trace trace_file metrics in
      let stats, transport_bytes =
        match transport with
        | `Sim ->
          let engine = Runtime.create () in
          Array.iteri (fun k p -> Runtime.add_party engine p programs.(k)) parties';
          let w = Wire.create () in
          let _rounds =
            Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
                Runtime.run ~trace engine ~wire:w ~max_rounds)
          in
          (Wire.stats w, None)
        | `Memory | `Socket ->
          let res =
            Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
                match transport with
                | `Memory ->
                  Endpoint.run_memory ~trace ~parties:parties' ~programs ~max_rounds ()
                | _ -> Endpoint.run_socket ~trace ~parties:parties' ~programs ~max_rounds ())
          in
          let logs =
            Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes
          in
          (Wire.stats (Net_wire.merge logs), Some (res.Endpoint.transport_bytes, Net_wire.totals logs))
      in
      let share1, share2 = extract () in
      let preview = min len 8 in
      Printf.printf "protocol %s over %s, %d providers, %d counters, S = 2^%d\n"
        (match protocol with `P1 -> "1" | `P2 -> "2")
        (match transport with `Sim -> "the simulated wire" | `Memory -> "in-memory channels"
                            | `Socket -> "unix sockets")
        m len modulus_bits;
      Printf.printf "share1:";
      for l = 0 to preview - 1 do Printf.printf " %d" share1.(l) done;
      if preview < len then Printf.printf " ...";
      Printf.printf "\nshare2:";
      for l = 0 to preview - 1 do Printf.printf " %d" share2.(l) done;
      if preview < len then Printf.printf " ...";
      Printf.printf "\n";
      let ok = ref true in
      for l = 0 to len - 1 do
        let x = Array.fold_left (fun acc v -> acc + v.(l)) 0 inputs in
        let reconstructed =
          match protocol with
          | `P1 -> (share1.(l) + share2.(l)) mod modulus = x mod modulus
          | `P2 -> share1.(l) + share2.(l) = x
        in
        if not reconstructed then ok := false
      done;
      Printf.printf "reconstruction check: %s\n" (if !ok then "OK" else "FAILED");
      wire_summary stats;
      (match transport_bytes with
      | None -> ()
      | Some (total, totals) ->
        Printf.printf
          "transport: %d framed bytes on the wire (%d payload, overhead factor %.3f)\n"
          total totals.Net_wire.payload_bytes
          (float_of_int total /. float_of_int (max 1 totals.Net_wire.payload_bytes)));
      emit_observability trace
        ~protocol:(match protocol with `P1 -> "shares-p1" | `P2 -> "shares-p2")
        ~engine:(engine_name transport) ~parties:(Array.length parties')
        ~messages:stats.Wire.messages ~payload_bytes:(stats.Wire.bits / 8)
        ~net:transport_bytes trace_file metrics;
      if !ok then `Ok () else `Error (false, "share reconstruction failed")
    end
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ protocol_arg $ transport_arg $ providers_arg $ counters_arg
       $ modulus_bits_arg $ bound_arg $ trace_file_arg $ metrics_arg))
  in
  Cmd.v
    (Cmd.info "shares"
       ~doc:
         "Run the distributed sharing protocols over a real transport (or the simulated \
          wire) and compare the costs.")
    term

(* --- spe serve / scrape / shutdown ---------------------------------------------------- *)

(* Long-lived party daemons (lib/serve).  Each party of the deployment
   runs one `spe serve` process; `spe links|scores --connect` submits
   jobs to the host daemon; `spe scrape` reads a daemon's live metrics;
   `spe shutdown` drains and stops a whole roster. *)

let roster_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "roster" ] ~docv:"SPEC"
        ~doc:
          "Every party's daemon address, in any order: \
           H=ADDR,P1=ADDR,...,Pm=ADDR where ADDR is HOST:PORT or unix:PATH.")

let serve_cmd =
  let party_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "party" ] ~docv:"P" ~doc:"Which party this daemon is: H, P1, P2, ...")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Bind override (default: this party's roster entry) — e.g. bind 0.0.0.0 \
             while the roster advertises a hostname.")
  in
  let max_sessions_arg =
    Arg.(
      value & opt int 4
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Concurrent pipeline jobs (worker threads at H; admission control bound).")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Jobs allowed to wait past the active set; beyond it submissions get a \
                typed busy reply.")
  in
  let metrics_addr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:
            "Also serve live metrics (spe-serve-metrics/1: scheduler gauges plus the \
             cumulative spe-metrics/2 report) at ADDR, over plain TCP or HTTP — see \
             spe scrape and OBSERVABILITY.md.")
  in
  let run party roster listen max_sessions max_queue metrics_addr graph_path log_paths =
    let ( let* ) r f = match r with Error msg -> `Error (true, msg) | Ok v -> f v in
    let* () = if max_sessions < 1 then Error "--max-sessions must be at least 1" else Ok () in
    let* () = if max_queue < 1 then Error "--max-queue must be at least 1" else Ok () in
    let* party = Serve_addr.party_of_string party in
    let* roster = Serve_addr.roster_of_string roster in
    let* listen =
      match listen with
      | None -> Ok None
      | Some s -> Result.map Option.some (Serve_addr.parse s)
    in
    let* metrics_addr =
      match metrics_addr with
      | None -> Ok None
      | Some s -> Result.map Option.some (Serve_addr.parse s)
    in
    if party >= Array.length roster then
      `Error
        ( true,
          Printf.sprintf "--party %s is outside the %d-party roster"
            (Serve_addr.party_name party) (Array.length roster) )
    else if List.length log_paths <> Array.length roster - 1 then
      `Error
        ( true,
          Printf.sprintf
            "the roster has %d providers but %d --log files were given; every daemon \
             loads the full workload (the plan rebuild is what makes the deployment \
             deterministic)"
            (Array.length roster - 1) (List.length log_paths) )
    else begin
      let graph = Graph_io.load graph_path in
      let logs = Array.of_list (List.map Log_io.load log_paths) in
      let config =
        {
          (Serve_daemon.default_config ~party ~roster) with
          Serve_daemon.listen;
          max_sessions;
          max_queue;
          metrics_addr;
        }
      in
      let shown = match listen with Some a -> a | None -> roster.(party) in
      Printf.printf "%s: %s listening on %s (%d parties, %d sessions, queue %d)%s\n%!"
        Serve_proto.protocol
        (Serve_addr.party_name party)
        (Serve_addr.to_string shown)
        (Array.length roster) max_sessions max_queue
        (match metrics_addr with
        | Some a -> Printf.sprintf ", metrics on %s" (Serve_addr.to_string a)
        | None -> "");
      match Serve_daemon.run config { Spe_serve.Job.graph; logs } with
      | () -> `Ok ()
      | exception Failure msg -> `Error (false, msg)
      | exception Unix.Unix_error (err, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot serve on %s: %s"
              (Serve_addr.to_string shown) (Unix.error_message err) )
    end
  in
  let term =
    Term.(
      ret
        (const run $ party_arg $ roster_arg $ listen_arg $ max_sessions_arg $ max_queue_arg
       $ metrics_addr_arg $ graph_arg $ logs_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one party as a long-lived daemon (spe-serve/3): connections to the peer \
          daemons are established once and reused across every submitted pipeline job; \
          the host daemon owns admission control.  Submit work with spe \
          links|scores|rank|stream --connect.")
    term

let scrape_cmd =
  let addr_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR" ~doc:"A daemon's --metrics-addr endpoint.")
  in
  let run addr_spec =
    match Serve_addr.parse addr_spec with
    | Error msg -> `Error (true, "--connect " ^ msg)
    | Ok addr -> (
      match Serve_client.scrape addr with
      | doc ->
        print_string doc;
        `Ok ()
      | exception Unix.Unix_error (err, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot scrape %s: %s" (Serve_addr.to_string addr)
              (Unix.error_message err) ))
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Fetch a serve daemon's live metrics document (spe-serve-metrics/1) from its \
          --metrics-addr.")
    Term.(ret (const run $ addr_arg))

let shutdown_cmd =
  let timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"S" ~doc:"Per-daemon drain timeout in seconds.")
  in
  let run roster timeout =
    match Serve_addr.roster_of_string roster with
    | Error msg -> `Error (true, msg)
    | Ok roster -> (
      match Serve_client.shutdown_roster ~timeout roster with
      | [] ->
        Printf.printf "all %d daemons drained and stopped\n" (Array.length roster);
        `Ok ()
      | stragglers ->
        `Error
          ( false,
            Printf.sprintf "daemon(s) did not confirm shutdown in %.0f s: %s" timeout
              (String.concat ", " (List.map Serve_addr.party_name stragglers)) )
      | exception Serve_client.Connection_lost msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "Gracefully stop a whole daemon roster: H first (it drains in-flight jobs and \
          refuses queued ones with typed replies), then each provider.")
    Term.(ret (const run $ roster_arg $ timeout_arg))

(* --- spe chaos ------------------------------------------------------------------------ *)

(* Deterministic fault campaigns over the sharded pipelines: generate
   seeded fault schedules, run them through Spe_chaos.Harness's
   invariant oracles, shrink every violation to a minimal spe-schedule/1
   reproducer, and replay saved reproducers exactly. *)

let chaos_cmd =
  let module Schedule = Spe_chaos.Schedule in
  let module Harness = Spe_chaos.Harness in
  let module Campaign = Spe_chaos.Campaign in
  let campaign_arg =
    Arg.(
      value & opt int 0
      & info [ "campaign" ] ~docv:"N" ~doc:"Run N seeded fault schedules.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one saved spe-schedule/1 document instead of a campaign.")
  in
  let target_arg =
    Arg.(
      value
      & opt (enum [ ("links", `Links); ("scores", `Scores); ("both", `Both) ]) `Both
      & info [ "target" ] ~docv:"PIPELINE"
          ~doc:"Which pipeline(s) to torment: links, scores or both.")
  in
  let chaos_engine_arg =
    Arg.(
      value
      & opt (enum [ ("memory", `Memory); ("socket", `Socket); ("both", `Both) ]) `Both
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Which transport engine(s) to run on: memory, socket or both.")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Write each shrunk failing schedule to DIR/chaos-ID.json.")
  in
  let daemon_kill_arg =
    Arg.(
      value & flag
      & info [ "daemon-kill" ]
          ~doc:
            "Fault at whole-party granularity: fork a live spe-serve deployment per \
             seed, SIGKILL one provider daemon mid-burst, and check every client gets \
             a typed reply (never a hang), surviving results match the central oracle, \
             and the host keeps serving.  Uses --campaign N seeds and --target.")
  in
  let run campaign seed replay target engine out_dir daemon_kill =
    let read_file path =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let requested_pipeline =
      match target with
      | `Links -> Some Schedule.Links
      | `Scores -> Some Schedule.Scores
      | `Both -> None
    in
    match replay with
    | Some _ when daemon_kill ->
      `Error (true, "--replay and --daemon-kill are mutually exclusive")
    | Some path -> (
      match Schedule.of_string (read_file path) with
      | exception Failure msg -> `Error (false, path ^ ": " ^ msg)
      | sched when Result.is_error (Schedule.check_replay_target sched ~requested:requested_pipeline) ->
        `Error
          ( false,
            path ^ ": "
            ^ Result.fold ~ok:(fun () -> "") ~error:Fun.id
                (Schedule.check_replay_target sched ~requested:requested_pipeline) )
      | sched -> (
        Printf.printf "replaying schedule %s: %s over %s, %d events (seed %d)\n%!"
          (Schedule.id sched)
          (Schedule.pipeline_name sched.Schedule.pipeline)
          (Schedule.engine_name sched.Schedule.engine)
          (List.length sched.Schedule.events)
          sched.Schedule.seed;
        match Harness.run sched with
        | Harness.Pass ->
          Printf.printf "replay: all invariant oracles passed\n";
          `Ok ()
        | Harness.Fail { oracle; detail } ->
          `Error (false, Printf.sprintf "invariant violation (%s): %s" oracle detail)))
    | None when daemon_kill ->
      let n = max campaign 1 in
      let pipelines =
        match requested_pipeline with
        | Some p -> [ p ]
        | None -> [ Schedule.Links; Schedule.Scores ]
      in
      let violations = ref 0 in
      List.iter
        (fun pipeline ->
          for s = seed to seed + n - 1 do
            Printf.printf "daemon-kill %s seed %d: %!" (Schedule.pipeline_name pipeline) s;
            match Spe_chaos.Daemon_fault.run ~seed:s pipeline with
            | Harness.Pass -> Printf.printf "pass\n%!"
            | Harness.Fail { oracle; detail } ->
              incr violations;
              Printf.printf "%s violation: %s\n%!" oracle detail
          done)
        pipelines;
      if !violations = 0 then `Ok ()
      else `Error (false, Printf.sprintf "%d invariant violation(s)" !violations)
    | None ->
      if campaign <= 0 then `Error (true, "use --campaign N or --replay FILE")
      else begin
        let pipelines =
          match target with
          | `Links -> [ Schedule.Links ]
          | `Scores -> [ Schedule.Scores ]
          | `Both -> [ Schedule.Links; Schedule.Scores ]
        in
        let engines =
          match engine with
          | `Memory -> [ Schedule.Memory ]
          | `Socket -> [ Schedule.Socket ]
          | `Both -> [ Schedule.Memory; Schedule.Socket ]
        in
        let targets =
          List.concat_map (fun p -> List.map (fun e -> (p, e)) engines) pipelines
        in
        let t0 = Unix.gettimeofday () in
        let summary =
          Campaign.run
            ~on_result:(fun s sched outcome ->
              match outcome with
              | Harness.Pass -> ()
              | Harness.Fail { oracle; _ } ->
                Printf.printf "seed %d (%s/%s, schedule %s): %s violation, shrinking...\n%!"
                  s
                  (Schedule.pipeline_name sched.Schedule.pipeline)
                  (Schedule.engine_name sched.Schedule.engine)
                  (Schedule.id sched) oracle)
            ~seeds:campaign ~seed ~targets ()
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        List.iter
          (fun (v : Campaign.violation) ->
            let Harness.{ oracle; detail } = v.Campaign.failure in
            Printf.printf
              "seed %d: %s violation shrunk to %d event(s) (schedule %s): %s\n" v.Campaign.seed
              oracle
              (List.length v.Campaign.shrunk.Schedule.events)
              (Schedule.id v.Campaign.shrunk)
              detail;
            match out_dir with
            | None -> ()
            | Some dir ->
              (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
              let path =
                Filename.concat dir
                  (Printf.sprintf "chaos-%s.json" (Schedule.id v.Campaign.shrunk))
              in
              let oc = open_out path in
              output_string oc (Schedule.to_string v.Campaign.shrunk);
              close_out oc;
              Printf.printf "wrote %s\n" path)
          summary.Campaign.violations;
        Printf.printf "campaign: %d schedules in %.1f s, %d violation(s)\n"
          summary.Campaign.runs elapsed
          (List.length summary.Campaign.violations);
        if summary.Campaign.violations = [] then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d invariant violation(s)"
                (List.length summary.Campaign.violations) )
      end
  in
  let term =
    Term.(
      ret
        (const run $ campaign_arg $ seed_arg $ replay_arg $ target_arg $ chaos_engine_arg
       $ out_dir_arg $ daemon_kill_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run deterministic fault campaigns against the sharded pipelines (drops, \
          delays, duplicates, dead links, killed workers) and shrink any invariant \
          violation to a replayable spe-schedule/1 file.")
    term

(* --- entry point ------------------------------------------------------------------ *)

let () =
  let doc = "privacy-preserving estimation of social influence (EDBT 2014)" in
  let info = Cmd.info "spe" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ generate_cmd; links_cmd; scores_cmd; rank_cmd; stream_cmd; campaign_cmd; serve_cmd;
            scrape_cmd; shutdown_cmd; chaos_cmd; privacy_cmd; costs_cmd; leakage_cmd;
            em_cmd; metrics_cmd; verify_cmd; shares_cmd ]))
