(* The reproduction harness (Sec. 7 of the paper).

   Running this executable regenerates every evaluation artifact:

   - Table 1  — communication costs of Protocol 4 (analytic model vs
                the simulated wire, across m and n);
   - Table 2  — communication costs of Protocol 6 (measured with a
                small RSA modulus, plus the paper's z = 1024 analytic
                row);
   - Figure 1 — the Sec. 7.2 masking-gain histograms (uniform and
                unimodal priors, A = 10, 1000 trials per x);
   - Theorem 4.1 — leak rates of Protocol 2, theory vs Monte-Carlo;
   - Ablations — ciphertext packing, share modulus vs output precision,
                CELF vs plain greedy, and the c-factor privacy dial;
   - Bechamel micro-benchmarks — wall-clock per protocol run.

   EXPERIMENTS.md records paper-vs-measured for each artifact. *)

module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Digraph = Spe_graph.Digraph
module Generate = Spe_graph.Generate
module Log = Spe_actionlog.Log
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Counters = Spe_influence.Counters
module Link_strength = Spe_influence.Link_strength
module Maximize = Spe_influence.Maximize
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module Posterior = Spe_privacy.Posterior
module Gain = Spe_privacy.Gain
module Leakage = Spe_privacy.Leakage
module Model = Spe_cost.Model

let section title = Printf.printf "\n=== %s ===\n\n" title

let workload ~seed ~n ~edges ~actions =
  let s = State.create ~seed () in
  let g = Generate.erdos_renyi_gnm s ~n ~m:edges in
  let planted = Cascade.uniform_probabilities ~p:0.25 g in
  let log =
    Cascade.generate s planted
      { Cascade.num_actions = actions; seeds_per_action = 2; max_delay = 3 }
  in
  (s, g, log)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 - communication costs of Protocol 4 (per parameter setting)";
  Printf.printf "%5s %6s %6s %8s | %4s %6s %14s | %s\n" "n" "|E|" "q" "m" "NR" "NM"
    "MS (bits)" "model check";
  let rows = Spe_expt.Comm_costs.table1_sweep () in
  List.iter
    (fun (r : Spe_expt.Comm_costs.row) ->
      Printf.printf "%5d %6d %6d %8d | %4d %6d %14d | %s\n" r.Spe_expt.Comm_costs.n r.edges
        r.q r.m r.measured.Wire.rounds r.measured.Wire.messages r.measured.Wire.bits
        (if r.ok then "analytic = measured" else "MISMATCH"))
    rows;
  Printf.printf "\nPaper's closed forms: NR = 8, NM = m^2 + m + 7, MS = O(m^2 (n+q) log S).\n";
  Printf.printf "Model/measured agreement over all settings: %s\n"
    (if List.for_all (fun r -> r.Spe_expt.Comm_costs.ok) rows then "YES" else "NO");
  let model = Model.table1 ~n:100 ~q:800 ~m:5 ~modulus_bits:40 ~node_bits:7 ~counters:900 in
  Printf.printf "\nPer-round breakdown (n = 100, q = 800, m = 5, log S = 40):\n";
  Format.printf "%a" Model.pp model

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2 - communication costs of Protocol 6";
  Printf.printf "%5s %6s %4s %6s | %4s %6s %14s | %s\n" "n" "q" "m" "A" "NR" "NM"
    "MS (bits)" "model check";
  let rows = Spe_expt.Comm_costs.table2_sweep () in
  List.iter
    (fun (r : Spe_expt.Comm_costs.row) ->
      Printf.printf "%5d %6d %4d %6d | %4d %6d %14d | %s\n" r.Spe_expt.Comm_costs.n r.q r.m
        r.actions r.measured.Wire.rounds r.measured.Wire.messages r.measured.Wire.bits
        (if r.ok then "analytic = measured" else "MISMATCH"))
    rows;
  Printf.printf "\nPaper's closed forms: NR = 4, NM = 3m, MS <= 2qzA (+ broadcasts).\n";
  Printf.printf "Model/measured agreement: %s\n"
    (if List.for_all (fun r -> r.Spe_expt.Comm_costs.ok) rows then "YES" else "NO");
  (match rows with
  | r :: _ ->
    let third = r.Spe_expt.Comm_costs.actions / 3 in
    let model1024 =
      Model.table2 ~q:r.Spe_expt.Comm_costs.q ~m:3 ~node_bits:6 ~key_bits:2048
        ~ciphertext_bits:1024
        ~actions_per_provider:
          [| r.Spe_expt.Comm_costs.actions - (2 * third); third; third |] ()
    in
    Printf.printf "\nAnalytic row at the paper's recommended z = 1024 (same workload):\n";
    Format.printf "%a" Model.pp model1024
  | [] -> ())

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "Figure 1 - gain histograms for Protocol 3's masking (A = 10, 1000 trials/x)";
  List.iter
    (fun (row : Spe_expt.Privacy_expt.figure1_row) ->
      let r = row.Spe_expt.Privacy_expt.result in
      Printf.printf "Prior: %s\n" row.Spe_expt.Privacy_expt.prior_name;
      Printf.printf "  average gain      = %+.4f\n" r.Gain.average;
      Printf.printf "  positive fraction = %.3f\n" r.Gain.positive_fraction;
      Format.printf "%a" Gain.pp_histogram r.Gain.histogram;
      Printf.printf "\n")
    (Spe_expt.Privacy_expt.figure1 ());
  Printf.printf
    "Paper's observation: the average gain is positive but very small - the\n\
     observation helps slightly more often than it hurts, with no significant bias.\n"

(* ------------------------------------------------------------------ *)
(* Theorem 4.1 leakage                                                 *)
(* ------------------------------------------------------------------ *)

let leakage () =
  section "Theorem 4.1 - Protocol 2 leak rates, theory vs Monte-Carlo (S = 2^10, A = 100)";
  Printf.printf "%5s | %18s | %18s | %18s\n" "x" "P2 lower (th/mc)" "P2 upper (th/mc)"
    "P3 any (bound/mc)";
  List.iter
    (fun (row : Spe_expt.Privacy_expt.leakage_row) ->
      let o = row.Spe_expt.Privacy_expt.observed and t = row.Spe_expt.Privacy_expt.theory in
      let rate hits = float_of_int hits /. float_of_int o.Leakage.trials in
      Printf.printf "%5d | %8.4f / %7.4f | %8.4f / %7.4f | %8.4f / %7.4f\n"
        row.Spe_expt.Privacy_expt.x t.Leakage.p2_lower
        (rate o.Leakage.p2_lower_hits)
        t.Leakage.p2_upper
        (rate o.Leakage.p2_upper_hits)
        t.Leakage.p3_lower
        (rate (o.Leakage.p3_lower_hits + o.Leakage.p3_upper_hits)))
    (Spe_expt.Privacy_expt.theorem41 ());
  let s_req = Leakage.required_modulus ~input_bound:100 ~counters:1000 ~epsilon:0.01 in
  Printf.printf "\nSec. 5.1.1 sizing rule: eps = 1%% over 1000 counters needs S >= %d (2^%.1f).\n"
    s_req
    (log (float_of_int s_req) /. log 2.)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_packing () =
  section "Ablation - Protocol 6 ciphertext packing";
  let _, g, log = workload ~seed:31 ~n:60 ~edges:150 ~actions:10 in
  let s = State.create ~seed:32 () in
  let logs = Partition.exclusive s log ~m:3 in
  let run pack_slots =
    let s = State.create ~seed:33 () in
    let wire = Wire.create () in
    let config = { Protocol6.default_config with Protocol6.key_bits = 256; pack_slots } in
    let r = Protocol6.run s ~wire ~graph:g ~logs config in
    (r.Protocol6.ciphertexts, (Wire.stats wire).Wire.bits)
  in
  let ct_plain, bits_plain = run 1 in
  let ct_packed, bits_packed = run Spe_mpc.Pack.max_packed_bits in
  Printf.printf "unpacked: %6d ciphertexts, %10d wire bits\n" ct_plain bits_plain;
  Printf.printf "packed:   %6d ciphertexts, %10d wire bits (%.1fx reduction)\n" ct_packed
    bits_packed
    (float_of_int bits_plain /. float_of_int bits_packed)

let ablation_modulus_precision () =
  section "Ablation - share modulus S vs output precision (Protocol 4)";
  Printf.printf "%8s | %14s\n" "log2 S" "max |err| (rel)";
  List.iter
    (fun bits ->
      let s, g, log = workload ~seed:77 ~n:40 ~edges:120 ~actions:20 in
      let logs = Partition.exclusive s log ~m:3 in
      let config = { (Protocol4.default_config ~h:3) with Protocol4.modulus = 1 lsl bits } in
      let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
      let ct = Counters.compute log ~h:3 ~pairs:r.Driver.detail.Protocol4.pairs in
      let exact = Link_strength.restrict_to_graph ct (Link_strength.all_eq1 ct) g in
      let max_err =
        List.fold_left2
          (fun acc (_, p_exact) (_, p_secure) ->
            Float.max acc (abs_float (p_exact -. p_secure) /. (p_exact +. 1e-9)))
          0. exact r.Driver.strengths
      in
      Printf.printf "%8d | %14.3e\n" bits max_err)
    [ 20; 30; 40; 50 ];
  Printf.printf
    "\nLarger S strengthens Theorem 4.1's privacy but costs float precision\n\
     (53-bit mantissa vs log2 S-bit shares): the deployment dial of Sec. 5.1.1.\n"

let ablation_celf () =
  section "Ablation - influence maximisation: CELF vs plain greedy";
  let s = State.create ~seed:11 () in
  let g = Generate.erdos_renyi_gnm s ~n:40 ~m:160 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.15) } in
  let sg = State.create ~seed:12 () in
  let seeds_g, spread_g = Maximize.greedy sg model ~k:4 ~samples:200 in
  let evals_g = Maximize.evaluations () in
  let sc = State.create ~seed:12 () in
  let seeds_c, spread_c = Maximize.celf sc model ~k:4 ~samples:200 in
  let evals_c = Maximize.evaluations () in
  Printf.printf "greedy: seeds %s spread %.1f (%d spread evaluations)\n"
    (String.concat "," (List.map string_of_int seeds_g))
    spread_g evals_g;
  Printf.printf "celf:   seeds %s spread %.1f (%d spread evaluations, %.1fx fewer)\n"
    (String.concat "," (List.map string_of_int seeds_c))
    spread_c evals_c
    (float_of_int evals_g /. float_of_int evals_c)

let ablation_ris () =
  section "Ablation - seed selection engines: CELF vs reverse influence sampling";
  let s = State.create ~seed:13 () in
  let g = Generate.barabasi_albert s ~n:80 ~m:3 in
  let model = { Maximize.graph = g; probability = (fun _ _ -> 0.08) } in
  let k = 4 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let celf_seeds, celf_time =
    time (fun () -> fst (Maximize.celf (State.create ~seed:14 ()) model ~k ~samples:200))
  in
  let ris_seeds, ris_time =
    time (fun () ->
        let rr = Spe_influence.Ris.sample (State.create ~seed:15 ()) model ~count:20_000 in
        Spe_influence.Ris.select rr ~k)
  in
  let eval seeds = Maximize.spread (State.create ~seed:16 ()) model ~seeds ~samples:3000 in
  Printf.printf "celf: spread %.2f in %.2fs (seeds %s)\n" (eval celf_seeds) celf_time
    (String.concat "," (List.map string_of_int celf_seeds));
  Printf.printf "ris:  spread %.2f in %.2fs (seeds %s, 20k RR sets)\n" (eval ris_seeds)
    ris_time
    (String.concat "," (List.map string_of_int ris_seeds))

let ablation_c_factor () =
  section "Ablation - the c-factor privacy dial (Protocol 4)";
  Printf.printf "%6s | %6s | %14s | %s\n" "c" "q" "MS (bits)" "decoy fraction";
  List.iter
    (fun c_factor ->
      let s, g, log = workload ~seed:55 ~n:60 ~edges:180 ~actions:20 in
      let logs = Partition.exclusive s log ~m:3 in
      let config = { (Protocol4.default_config ~h:3) with Protocol4.c_factor } in
      let r = Driver.link_strengths_exclusive s ~graph:g ~logs config in
      let q = Array.length r.Driver.detail.Protocol4.pairs in
      let e = Digraph.edge_count g in
      Printf.printf "%6.1f | %6d | %14d | %.2f\n" c_factor q r.Driver.wire.Wire.bits
        (float_of_int (q - e) /. float_of_int q))
    [ 1.; 1.5; 2.; 4.; 8. ]

let ablation_estimators () =
  section "Ablation - estimator quality: counting (Eq. 1) vs EM vs attribute shrinkage";
  Printf.printf "%8s | %10s | %10s | %10s | %12s\n" "traces" "Eq1 mse" "EM mse"
    "shrink mse" "EM iterations";
  List.iter
    (fun (r : Spe_expt.Estimators.quality_row) ->
      Printf.printf "%8d | %10.4f | %10.4f | %10.4f | %12d\n" r.Spe_expt.Estimators.traces
        r.eq1_mse r.em_mse r.shrunk_mse r.em_iterations)
    (Spe_expt.Estimators.quality_sweep ())

let ablation_generalisation () =
  section "Ablation - held-out generalisation (the paper's accuracy motivation)";
  Printf.printf "%8s | %12s | %12s | %12s\n" "traces" "Eq1 ll" "EM ll" "planted ll";
  List.iter
    (fun (r : Spe_expt.Estimators.generalisation_row) ->
      Printf.printf "%8d | %12.4f | %12.4f | %12.4f\n" r.Spe_expt.Estimators.traces r.eq1_ll
        r.em_ll r.planted_ll)
    (Spe_expt.Estimators.generalisation_sweep ());
  Printf.printf
    "\nMore conjoined traces push both estimators' held-out likelihood toward\n\
     the planted model's - the reason providers should pool data (Sec. 1),\n\
     which the secure protocols let them do without disclosure.\n"

let ablation_counter_engines () =
  section "Ablation - counter engines: dense probe vs sparse record-pair enumeration";
  Printf.printf "%22s | %12s | %12s | %s\n" "workload" "dense (ms)" "sparse (ms)" "winner";
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    1000. *. (Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun (label, n, edges, actions, c_factor) ->
      let s = State.create ~seed:43 () in
      let g = Generate.erdos_renyi_gnm s ~n ~m:edges in
      let p = if c_factor > 10. then 0.02 else 0.2 in
      let planted = Cascade.uniform_probabilities ~p g in
      let log =
        Cascade.generate s planted
          { Cascade.num_actions = actions; seeds_per_action = 2; max_delay = 3 }
      in
      let ob = Spe_graph.Obfuscate.make s g ~c:c_factor in
      let pairs = Array.make (Spe_graph.Obfuscate.size ob) (0, 0) in
      Spe_graph.Obfuscate.iteri ob (fun i u v -> pairs.(i) <- (u, v));
      let td = time (fun () -> Counters.compute log ~h:3 ~pairs) in
      let ts = time (fun () -> Counters.compute_sparse log ~h:3 ~pairs) in
      Printf.printf "%22s | %12.1f | %12.1f | %s\n" label td ts
        (if td < ts then "dense" else "sparse"))
    [
      ("many actions, small q", 100, 300, 400, 1.);
      ("tiny cascades, all-pairs q", 300, 900, 100, 200.);
    ];
  Printf.printf
    "\nCounters.compute_auto picks the cheaper strategy from the probe-count\n\
     estimates; both engines are verified equal on random workloads.\n"

let ablation_protocol5_overhead () =
  section "Ablation - Protocol 5 obfuscation overhead: basic vs enhanced";
  Printf.printf "%8s | %14s | %14s | %s\n" "horizon" "basic (bits)" "enhanced (bits)" "padding factor";
  List.iter
    (fun horizon_scale ->
      let s = State.create ~seed:47 () in
      let g = Generate.erdos_renyi_gnm s ~n:30 ~m:120 in
      let planted = Cascade.uniform_probabilities ~p:0.3 g in
      let log =
        Cascade.generate s planted
          { Cascade.num_actions = 20; seeds_per_action = 1; max_delay = 3 }
      in
      (* Stretch the time axis: sparser slots mean more padding. *)
      let log =
        Log.map_records log
          (fun r -> { r with Log.time = r.Log.time * horizon_scale })
          ~num_users:30 ~num_actions:20
      in
      let run obfuscation =
        let s = State.create ~seed:48 () in
        let logs = Partition.non_exclusive s log
            ~spec:{ Partition.action_class = Array.make 20 0;
                    class_providers = [| [| 0; 1 |] |]; m = 2 } in
        let wire = Wire.create () in
        let _ =
          Spe_core.Protocol5.run s ~wire ~h:3
            ~providers:[| Wire.Provider 0; Wire.Provider 1 |]
            ~trusted:Wire.Host ~logs ~obfuscation
        in
        (Wire.stats wire).Wire.bits
      in
      let basic = run Spe_core.Protocol5.Basic in
      let enhanced = run Spe_core.Protocol5.Enhanced in
      Printf.printf "%8d | %14d | %14d | %.1fx\n" horizon_scale basic enhanced
        (float_of_int enhanced /. float_of_int basic))
    [ 1; 4; 16 ];
  Printf.printf
    "\nThe enhanced mode's per-slot padding grows with the time horizon: hiding\n\
     the temporal activity profile is cheap on dense timelines and expensive on\n\
     sparse ones - the deployment dial behind Sec. 5.2's two obfuscations.\n"

let ablation_montgomery () =
  section "Ablation - modular exponentiation: plain reduction vs Montgomery";
  let s = State.create ~seed:17 () in
  Printf.printf "%6s | %12s | %12s | %8s\n" "bits" "plain (ms)" "mont (ms)" "speedup";
  List.iter
    (fun bits ->
      let m = Spe_bignum.Nat.succ (Spe_bignum.Nat.shift_left (Spe_bignum.Nat.random_bits_exact s (bits - 1)) 1) in
      let ctx = Spe_bignum.Montgomery.create m in
      let b = Spe_bignum.Nat.random_below s m in
      let e = Spe_bignum.Nat.random_bits_exact s bits in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (Unix.gettimeofday () -. t0, r)
      in
      let t_plain, r1 = time (fun () -> Spe_bignum.Nat.mod_pow ~base:b ~exp:e ~modulus:m) in
      let t_mont, r2 = time (fun () -> Spe_bignum.Montgomery.pow ctx ~base:b ~exp:e) in
      assert (Spe_bignum.Nat.equal r1 r2);
      Printf.printf "%6d | %12.2f | %12.2f | %7.1fx\n" bits (1000. *. t_plain)
        (1000. *. t_mont) (t_plain /. t_mont))
    [ 256; 512; 1024; 2048 ]

let ablation_crypto_hot_paths () =
  section "Ablation - crypto hot paths: CRT decryption and fixed-base encryption";
  let s = State.create ~seed:23 () in
  let time_each n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do ignore (f ()) done;
    1000. *. (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let reps = 20 in
  Printf.printf "%22s | %12s | %12s | %8s\n" "operation (1024-bit)" "plain (ms)" "accel (ms)"
    "speedup";
  (* RSA: CRT decryption against full-size exponentiation. *)
  let kp = Spe_crypto.Rsa.generate s ~bits:1024 in
  let m = Spe_bignum.Nat.random_below s kp.Spe_crypto.Rsa.public.Spe_crypto.Rsa.n in
  let c = Spe_crypto.Rsa.encrypt kp.Spe_crypto.Rsa.public m in
  let dec_plain = Spe_crypto.Rsa.decryptor ~crt:false kp.Spe_crypto.Rsa.secret in
  let dec_crt = Spe_crypto.Rsa.decryptor ~crt:true kp.Spe_crypto.Rsa.secret in
  assert (Spe_bignum.Nat.equal (dec_plain c) (dec_crt c));
  let t_plain = time_each reps (fun () -> dec_plain c) in
  let t_crt = time_each reps (fun () -> dec_crt c) in
  Printf.printf "%22s | %12.2f | %12.2f | %7.1fx\n" "rsa decrypt" t_plain t_crt
    (t_plain /. t_crt);
  (* Paillier: CRT decryption, then fixed-base window encryption. *)
  let pkp = Spe_crypto.Paillier.generate s ~bits:1024 in
  let pm = Spe_bignum.Nat.random_below s pkp.Spe_crypto.Paillier.public.Spe_crypto.Paillier.n in
  let pc = Spe_crypto.Paillier.encrypt s pkp.Spe_crypto.Paillier.public pm in
  let pdec_plain = Spe_crypto.Paillier.decryptor ~crt:false pkp.Spe_crypto.Paillier.secret in
  let pdec_crt = Spe_crypto.Paillier.decryptor ~crt:true pkp.Spe_crypto.Paillier.secret in
  assert (Spe_bignum.Nat.equal (pdec_plain pc) (pdec_crt pc));
  let t_pplain = time_each reps (fun () -> pdec_plain pc) in
  let t_pcrt = time_each reps (fun () -> pdec_crt pc) in
  Printf.printf "%22s | %12.2f | %12.2f | %7.1fx\n" "paillier decrypt" t_pplain t_pcrt
    (t_pplain /. t_pcrt);
  let enc_plain = Spe_crypto.Paillier.encryptor ~fixed_base:false s pkp.Spe_crypto.Paillier.public in
  let enc_fb = Spe_crypto.Paillier.encryptor ~fixed_base:true s pkp.Spe_crypto.Paillier.public in
  let t_eplain = time_each reps (fun () -> enc_plain pm) in
  let t_efb = time_each reps (fun () -> enc_fb pm) in
  Printf.printf "%22s | %12.2f | %12.2f | %7.1fx\n" "paillier encrypt" t_eplain t_efb
    (t_eplain /. t_efb);
  Printf.printf
    "\nCRT splits the secret exponentiation into two half-width ones (Garner\n\
     recombination); fixed-base windows turn the n-th-power re-randomiser into\n\
     table lookups.  Both are on by default behind Cipher; accel = false in\n\
     Protocol 6's config restores the plain paths (PERFORMANCE.md).\n"

let ablation_alternatives () =
  section "Ablation - the cryptographic alternatives the paper rejects (Secs. 4.1, 5.1.1)";
  (* Third-party Protocol 2 vs the millionaires-based variant. *)
  let s = State.create ~seed:19 () in
  let inputs = [| [| 3; 7; 1; 4 |]; [| 4; 2; 9; 5 |] |] in
  let parties = [| Wire.Provider 0; Wire.Provider 1 |] in
  let wire_tp = Wire.create () in
  let _ =
    Spe_mpc.Protocol2.run s ~wire:wire_tp ~parties ~third_party:Wire.Host ~modulus:(1 lsl 16)
      ~input_bound:100 ~inputs
  in
  let wire_crypto = Wire.create () in
  let _ =
    Spe_mpc.Protocol2_crypto.run s ~wire:wire_crypto ~parties ~modulus:(1 lsl 16)
      ~input_bound:100 ~inputs
  in
  Printf.printf "Protocol 2, 4 counters at S = 2^16:\n";
  Printf.printf "  third-party trick       : %8d bits\n" (Wire.stats wire_tp).Wire.bits;
  Printf.printf "  millionaires (Lin-Tzeng): %8d bits (%.0fx more)\n"
    (Wire.stats wire_crypto).Wire.bits
    (float_of_int (Wire.stats wire_crypto).Wire.bits
    /. float_of_int (Wire.stats wire_tp).Wire.bits);
  (* Standard Protocol 4 vs the perfectly hiding OT variant,
     analytically at the paper's scale. *)
  let n = 1000 and edges = 4000 in
  let std =
    (Model.table1 ~n ~q:(2 * edges) ~m:2 ~modulus_bits:40
       ~node_bits:(Wire.bits_for_int_mod n) ~counters:(n + (2 * edges)))
      .Model.ms
  in
  let oblivious =
    Spe_core.Protocol4_oblivious.analytic_wire_bits ~n ~edges ~key_bits:1024 ~modulus_bits:40
  in
  Printf.printf "\nProtocol 4 at n = %d, |E| = %d (analytic):\n" n edges;
  Printf.printf "  published pair set (c = 2)  : %.2e bits\n" (float_of_int std);
  Printf.printf "  perfect hiding via OT       : %.2e bits (%.0fx more)\n"
    (float_of_int oblivious)
    (float_of_int oblivious /. float_of_int std)

let ablation_multi_host () =
  section "Ablation - multi-host Protocol 4 (Sec. 8 future work): shared vs separate batches";
  let s = State.create ~seed:23 () in
  let g = Generate.barabasi_albert s ~n:40 ~m:3 in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log = Cascade.generate s planted { Cascade.num_actions = 20; seeds_per_action = 1; max_delay = 2 } in
  let logs = Partition.exclusive s log ~m:3 in
  List.iter
    (fun t ->
      (* Random arc split across t hosts. *)
      let buckets = Array.make t [] in
      Digraph.iter_edges g (fun u v ->
          let j = State.next_int s t in
          buckets.(j) <- (u, v) :: buckets.(j));
      let graphs = Array.map (fun arcs -> Digraph.create ~n:(Digraph.n g) arcs) buckets in
      let config = Protocol4.default_config ~h:2 in
      let wire = Wire.create () in
      let _ = Spe_core.Protocol4_multi_host.run s ~wire ~graphs ~logs config in
      let shared = (Wire.stats wire).Wire.bits in
      let separate =
        Array.fold_left
          (fun acc gj ->
            if Digraph.edge_count gj = 0 then acc
            else begin
              let w = Wire.create () in
              let pairs = Protocol4.publish_pairs s ~wire:w ~graph:gj ~m:3 ~c_factor:2. in
              let inputs = Array.map (fun l -> Protocol4.provider_input_of_log l ~h:2 ~pairs) logs in
              let _ = Protocol4.run s ~wire:w ~graph:gj ~num_actions:20 ~pairs ~inputs config in
              acc + (Wire.stats w).Wire.bits
            end)
          0 graphs
      in
      Printf.printf "t = %d hosts: shared batch %8d bits, separate runs %8d bits (%.2fx saving)\n"
        t shared separate
        (float_of_int separate /. float_of_int shared))
    [ 2; 3; 5 ]

let ablation_transport () =
  section "Ablation - transport overhead: simulated wire vs in-memory channels vs unix sockets";
  let module P1d = Spe_mpc.Protocol1_distributed in
  let module Session = Spe_mpc.Session in
  let module Runtime = Spe_mpc.Runtime in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  let m = 4 and len = 256 in
  let modulus = 1 lsl 40 in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let gen = State.create ~seed:61 () in
  let inputs = Array.init m (fun _ -> Array.init len (fun _ -> State.next_int gen modulus)) in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "%10s | %10s | %12s | %12s | %s\n" "engine" "time (ms)" "payload (B)"
    "on-wire (B)" "overhead";
  let sim_payload = ref 0 in
  let () =
    let (stats : Wire.stats), dt =
      time (fun () ->
          let s = State.create ~seed:62 () in
          let session = P1d.make s ~parties ~modulus ~inputs in
          let engine = Runtime.create () in
          Array.iteri (fun k p -> Runtime.add_party engine p session.Session.programs.(k))
            session.Session.parties;
          let w = Wire.create () in
          let _ = Runtime.run engine ~wire:w ~max_rounds:P1d.max_rounds in
          Wire.stats w)
    in
    sim_payload := stats.Wire.bits / 8;
    Printf.printf "%10s | %10.2f | %12d | %12s | %s\n" "sim" (1000. *. dt) !sim_payload "-" "-"
  in
  List.iter
    (fun (label, engine) ->
      let (res : Endpoint.result), dt =
        time (fun () ->
            let s = State.create ~seed:62 () in
            let session = P1d.make s ~parties ~modulus ~inputs in
            engine ~parties:session.Session.parties ~programs:session.Session.programs
              ~max_rounds:P1d.max_rounds ())
      in
      let totals =
        Net_wire.totals
          (Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes)
      in
      assert (totals.Net_wire.payload_bytes = !sim_payload);
      Printf.printf "%10s | %10.2f | %12d | %12d | %.3fx\n" label (1000. *. dt)
        totals.Net_wire.payload_bytes res.Endpoint.transport_bytes
        (float_of_int res.Endpoint.transport_bytes /. float_of_int totals.Net_wire.payload_bytes))
    [
      ("memory", fun ~parties ~programs ~max_rounds () ->
          Endpoint.run_memory ~parties ~programs ~max_rounds ());
      ("socket", fun ~parties ~programs ~max_rounds () ->
          Endpoint.run_socket ~parties ~programs ~max_rounds ());
    ];
  Printf.printf
    "\nThe payload bytes are engine-independent (the MS statistic); the real\n\
     transports add the framing derived in DESIGN.md - length prefixes, data\n\
     headers, round barriers and (for sockets) the connection handshakes.\n"

(* ------------------------------------------------------------------ *)
(* Bench trajectory: BENCH_protocols.json                              *)
(* ------------------------------------------------------------------ *)

(* One spe-metrics/2 report per (pipeline, engine) — the full composed
   pipelines from Driver_distributed, each run with a recording trace
   and aggregated by Spe_obs.Metrics exactly like `spe ... --metrics
   json` does.  The rows land in BENCH_protocols.json (schema
   spe-bench/1; field docs in OBSERVABILITY.md) for the plotting
   scripts, and the trace accounting is asserted against Net_wire /
   the simulated wire on every row. *)

let bench_json_path = "BENCH_protocols.json"

let pipeline_reports () =
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  let module Driver_distributed = Spe_core.Driver_distributed in
  let s, g, log = workload ~seed:57 ~n:30 ~edges:90 ~actions:12 in
  let logs = Partition.exclusive s log ~m:3 in
  let p4_config = Protocol4.default_config ~h:2 in
  let p6_config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
  let pipelines =
    [
      ("links", fun st ->
          Session.map ignore (Driver_distributed.links_exclusive st ~graph:g ~logs p4_config));
      ("scores", fun st ->
          Session.map ignore
            (Driver_distributed.user_scores_exclusive st ~graph:g ~logs ~tau:6
               ~modulus:(1 lsl 20) p6_config));
      (* Tentpole ablations: the same scores pipeline with the crypto
         accelerations disabled (plain decrypt exponent, no fixed-base
         windows, per-call Montgomery contexts) and with plaintext
         packing at full width.  Before/after rows for PERFORMANCE.md. *)
      ("scores-noaccel", fun st ->
          Session.map ignore
            (Driver_distributed.user_scores_exclusive st ~graph:g ~logs ~tau:6
               ~modulus:(1 lsl 20)
               { p6_config with Protocol6.accel = false }));
      ("scores-packed", fun st ->
          Session.map ignore
            (Driver_distributed.user_scores_exclusive st ~graph:g ~logs ~tau:6
               ~modulus:(1 lsl 20)
               { p6_config with Protocol6.pack_slots = Spe_mpc.Pack.max_packed_bits }));
    ]
  in
  let run_endpoint trace session runner =
    let (), (res : Endpoint.result) = runner ~trace session in
    let totals =
      Net_wire.totals
        (Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes)
    in
    (totals.Net_wire.messages, totals.Net_wire.payload_bytes)
  in
  let engines =
    [
      ("sim", fun trace session ->
          let w = Wire.create () in
          let () = Session.run ~trace session ~wire:w in
          let stats = Wire.stats w in
          (stats.Wire.messages, stats.Wire.bits / 8));
      ("memory", fun trace session ->
          run_endpoint trace session (fun ~trace s -> Endpoint.run_session_memory ~trace s));
      ("socket", fun trace session ->
          run_endpoint trace session (fun ~trace s -> Endpoint.run_session_socket ~trace s));
    ]
  in
  List.concat_map
    (fun (pipeline, build) ->
      let payload_ref = ref None in
      List.map
        (fun (engine, run) ->
          let session = build (State.create ~seed:64 ()) in
          let trace = Spe_obs.Trace.create () in
          let messages, payload_bytes = run trace session in
          (match !payload_ref with
          | None -> payload_ref := Some payload_bytes
          | Some p -> assert (p = payload_bytes));
          let report =
            Spe_obs.Metrics.of_trace ~protocol:pipeline ~engine
              ~parties:(Array.length session.Spe_mpc.Session.parties) trace
          in
          assert (Spe_obs.Metrics.equal_accounting report ~messages ~payload_bytes);
          report)
        engines)
    pipelines

(* Sharding ablation: the links pipeline cut into k shards on every
   engine (DESIGN.md, "Sharded execution"), j = 4 concurrent sessions
   on the real transports — the memory engine's blocking worker pool
   (the differential oracle) and the socket engine's reactor shard
   pool, where j bounds sessions in flight on the one loop thread,
   not a thread count.  Payload bytes are asserted k-invariant across
   all twelve rows; each row's wall_s is the observed end-to-end wall
   clock of the whole plan (the per-shard session walls live in the
   row's shards table), so the socket rows price the reactor's
   per-shard cost directly. *)
let sharding_reports () =
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  let module Plan = Spe_core.Plan in
  let module Shard = Spe_core.Shard in
  let module Metrics = Spe_obs.Metrics in
  let s, g, log = workload ~seed:67 ~n:120 ~edges:480 ~actions:16 in
  let logs = Partition.exclusive s log ~m:3 in
  let config = Protocol4.default_config ~h:2 in
  (* A full pipeline has long compute rounds; local transports are
     reliable, so wait out the compute instead of Nacking it. *)
  let pool_config =
    { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
  in
  let payload_ref = ref None in
  let check_payload p =
    match !payload_ref with
    | None -> payload_ref := Some p
    | Some q -> assert (p = q)
  in
  List.concat_map
    (fun shards ->
      let protocol = Printf.sprintf "links-k%d" shards in
      List.map
        (fun engine ->
          let plan =
            Shard.links_exclusive (State.create ~seed:68 ()) ~graph:g ~logs ~shards config
          in
          let t0 = Unix.gettimeofday () in
          let report =
            match engine with
            | `Sim ->
              let session = Plan.to_session plan in
              let trace = Spe_obs.Trace.create () in
              let w = Wire.create () in
              let _ = Spe_mpc.Session.run ~trace session ~wire:w in
              let stats = Wire.stats w in
              check_payload (stats.Wire.bits / 8);
              Metrics.of_trace ~protocol ~engine:"sim"
                ~parties:(Array.length session.Session.parties) trace
            | (`Memory | `Socket) as engine ->
              let engine_name = match engine with `Memory -> "memory" | `Socket -> "socket" in
              let reports = ref [] and payload = ref 0 in
              List.iter
                (fun (stage : Plan.stage) ->
                  let traces =
                    Array.map (fun _ -> Spe_obs.Trace.create ()) stage.Plan.sessions
                  in
                  let out =
                    match engine with
                    | `Memory ->
                      Endpoint.run_sessions_memory ~config:pool_config ~workers:4 ~traces
                        stage.Plan.sessions
                    | `Socket ->
                      Endpoint.run_sessions_socket ~config:pool_config ~workers:4 ~traces
                        stage.Plan.sessions
                  in
                  Array.iteri
                    (fun i ((), (res : Endpoint.result)) ->
                      let totals =
                        Net_wire.totals
                          (Array.map
                             (fun (o : Endpoint.outcome) -> o.Endpoint.sent)
                             res.Endpoint.outcomes)
                      in
                      payload := !payload + totals.Net_wire.payload_bytes;
                      reports :=
                        Metrics.of_trace ~protocol ~engine:engine_name
                          ~parties:(Array.length stage.Plan.sessions.(i).Session.parties)
                          traces.(i)
                        :: !reports)
                    out)
                plan.Plan.stages;
              ignore (plan.Plan.result ());
              check_payload !payload;
              Metrics.merge (List.rev !reports)
          in
          { report with Metrics.wall_s = Unix.gettimeofday () -. t0 })
        [ `Sim; `Memory; `Socket ])
    [ 1; 2; 4; 8 ]

(* Rank trajectory: the second estimand family (Protocol_rank) on every
   engine.  Each engine runs the same 2-shard plan from the same seed
   and must publish exactly the plaintext oracle's fixed-point vector —
   the assert below is the bit-identity acceptance check; the rows land
   in BENCH_protocols.json beside the links/scores/stream families. *)
let rank_reports () =
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let module Net_wire = Spe_net.Net_wire in
  let module Plan = Spe_core.Plan in
  let module Metrics = Spe_obs.Metrics in
  let module Oracle = Spe_rank.Oracle in
  let module Protocol_rank = Spe_rank.Protocol_rank in
  let s, g, log = workload ~seed:71 ~n:30 ~edges:90 ~actions:12 in
  let logs = Partition.exclusive s log ~m:3 in
  let oracle = { Oracle.default_config with Oracle.iterations = 10; fbits = 18 } in
  let config = { Protocol_rank.oracle; modulus = 1 lsl 40 } in
  let n = Digraph.n g in
  let activity = Array.make n 0 in
  Array.iter
    (fun l ->
      Array.iteri (fun i v -> activity.(i) <- activity.(i) + v) (Log.user_activity l))
    logs;
  let reference = Oracle.fixed oracle g ~activity in
  let pool_config =
    { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
  in
  let payload_ref = ref None in
  let check_payload p =
    match !payload_ref with
    | None -> payload_ref := Some p
    | Some q -> assert (p = q)
  in
  List.map
    (fun engine ->
      let plan =
        Protocol_rank.plan (State.create ~seed:72 ()) ~graph:g ~logs ~shards:2 config
      in
      let t0 = Unix.gettimeofday () in
      let report, result =
        match engine with
        | `Sim ->
          let session = Plan.to_session plan in
          let trace = Spe_obs.Trace.create () in
          let w = Wire.create () in
          let r = Session.run ~trace session ~wire:w in
          let stats = Wire.stats w in
          check_payload (stats.Wire.bits / 8);
          ( Metrics.of_trace ~protocol:"rank" ~engine:"sim"
              ~parties:(Array.length session.Session.parties) trace,
            r )
        | (`Memory | `Socket) as engine ->
          let engine_name = match engine with `Memory -> "memory" | `Socket -> "socket" in
          let reports = ref [] and payload = ref 0 in
          List.iter
            (fun (stage : Plan.stage) ->
              let traces =
                Array.map (fun _ -> Spe_obs.Trace.create ()) stage.Plan.sessions
              in
              let out =
                match engine with
                | `Memory ->
                  Endpoint.run_sessions_memory ~config:pool_config ~workers:4 ~traces
                    stage.Plan.sessions
                | `Socket ->
                  Endpoint.run_sessions_socket ~config:pool_config ~workers:4 ~traces
                    stage.Plan.sessions
              in
              Array.iteri
                (fun i ((), (res : Endpoint.result)) ->
                  let totals =
                    Net_wire.totals
                      (Array.map
                         (fun (o : Endpoint.outcome) -> o.Endpoint.sent)
                         res.Endpoint.outcomes)
                  in
                  payload := !payload + totals.Net_wire.payload_bytes;
                  reports :=
                    Metrics.of_trace ~protocol:"rank" ~engine:engine_name
                      ~parties:(Array.length stage.Plan.sessions.(i).Session.parties)
                      traces.(i)
                    :: !reports)
                out)
            plan.Plan.stages;
          let r = plan.Plan.result () in
          check_payload !payload;
          (Metrics.merge (List.rev !reports), r)
      in
      assert (result.Protocol_rank.ranks_fx = reference);
      { report with Metrics.wall_s = Unix.gettimeofday () -. t0 })
    [ `Sim; `Memory; `Socket ]

(* DP utility table: MAE of the seeded Laplace release against the
   exact published values — the rank vector and the link strengths —
   per epsilon.  Rides into BENCH_protocols.json as an extra top-level
   member (spe-bench/1 readers ignore members they do not know).
   epsilon = infinity is asserted exact here instead of tabulated:
   infinity has no JSON literal. *)
let dp_utility_extra () =
  let module Json = Spe_obs.Obs_io.Json in
  let module Dp = Spe_privacy.Dp_release in
  let module Oracle = Spe_rank.Oracle in
  let s, g, log = workload ~seed:81 ~n:40 ~edges:120 ~actions:14 in
  let logs = Partition.exclusive s log ~m:3 in
  let n = Digraph.n g in
  let activity = Array.make n 0 in
  Array.iter
    (fun l ->
      Array.iteri (fun i v -> activity.(i) <- activity.(i) + v) (Log.user_activity l))
    logs;
  let oracle = Oracle.default_config in
  let ranks = Oracle.to_floats oracle (Oracle.fixed oracle g ~activity) in
  let strengths =
    (Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:2))
      .Driver.strengths
  in
  assert (Dp.values { Dp.epsilon = infinity; sensitivity = 1.; seed = 4099 } ranks = ranks);
  Printf.printf "\nDP utility (Laplace on the published values, seed 4099):\n";
  let rows =
    List.map
      (fun epsilon ->
        let params = { Dp.epsilon; sensitivity = 1.; seed = 4099 } in
        let released = Dp.values params ranks in
        (* Same params, same draws: the release must replay byte for byte. *)
        assert (Dp.values params ranks = released);
        let rank_mae = Dp.mean_abs_error ranks released in
        let strength_mae =
          Dp.mean_abs_error_strengths strengths (Dp.strengths params strengths)
        in
        Printf.printf "  epsilon %4.1f | rank MAE %.4f | strength MAE %.4f\n" epsilon
          rank_mae strength_mae;
        Json.Obj
          [
            ("epsilon", Json.Float epsilon);
            ("rank_mae", Json.Float rank_mae);
            ("strength_mae", Json.Float strength_mae);
          ])
      [ 0.1; 0.5; 1.0; 5.0 ]
  in
  ("dp_utility", Json.List rows)

(* Serve ablation: the same 50-job links load submitted two ways — a
   fresh addressed socket group per job (every session pays the
   connection rendezvous again) vs one persistent spe-serve deployment
   (the mesh's Hello exchange is paid once per connection, jobs
   multiplex over it and pipeline through H's bounded queue).  Both
   rows land in BENCH_protocols.json; the daemon row's report is the
   deployment's own cumulative scrape report (what `spe scrape`
   serves), relabelled for the trajectory. *)
let serve_reports () =
  let module Schedule = Spe_chaos.Schedule in
  let module Harness = Spe_chaos.Harness in
  let module Proto = Spe_serve.Serve_proto in
  let module Job = Spe_serve.Job in
  let module Daemon = Spe_serve.Daemon in
  let module Client = Spe_serve.Client in
  let module Endpoint = Spe_net.Endpoint in
  let module Plan = Spe_core.Plan in
  let module Shard = Spe_core.Shard in
  let module Metrics = Spe_obs.Metrics in
  let module Transport = Spe_net.Transport in
  let jobs = 50 in
  let protocol = "links-50jobs" in
  let workload = { Schedule.wseed = 11; users = 12; edges = 30; actions = 6; providers = 2 } in
  let graph, logs = Harness.workload_inputs workload in
  let m = Array.length logs in
  let pseed = workload.Schedule.wseed + 1 in
  let config = Protocol4.default_config ~h:2 in
  let pool_config =
    { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
  in
  (* Row 1: per-job spawn, sequential — each job stands its sessions'
     socket groups up from scratch and tears them down again. *)
  let respawn_reports = ref [] in
  let t0 = Unix.gettimeofday () in
  for _job = 1 to jobs do
    let plan =
      Shard.links_exclusive (State.create ~seed:pseed ()) ~graph ~logs ~shards:2 config
    in
    List.iter
      (fun (stage : Plan.stage) ->
        let traces = Array.map (fun _ -> Spe_obs.Trace.create ()) stage.Plan.sessions in
        let out =
          Endpoint.run_sessions_socket ~config:pool_config ~workers:4 ~traces
            stage.Plan.sessions
        in
        Array.iteri
          (fun i ((), (_ : Endpoint.result)) ->
            respawn_reports :=
              Metrics.of_trace ~protocol ~engine:"respawn"
                ~parties:(Array.length stage.Plan.sessions.(i).Spe_mpc.Session.parties)
                traces.(i)
              :: !respawn_reports)
          out)
      plan.Plan.stages;
    ignore (plan.Plan.result ())
  done;
  let respawn_wall = Unix.gettimeofday () -. t0 in
  let respawn =
    { (Metrics.merge (List.rev !respawn_reports)) with Metrics.wall_s = respawn_wall }
  in
  (* Row 2: one persistent deployment, all 50 jobs pipelined at once
     through H's admission queue. *)
  let roster = Transport.Socket.temp_unix_addresses ~m:(m + 1) in
  let maddrs = Transport.Socket.temp_unix_addresses ~m:(m + 1) in
  let daemons =
    Array.init (m + 1) (fun party ->
        Daemon.start
          {
            (Daemon.default_config ~party ~roster) with
            Daemon.metrics_addr = Some maddrs.(party);
            round_timeout = 60.;
            linger = 61.;
            dial_timeout = 15.;
          }
          { Job.graph; logs })
  in
  let client = Client.connect ~retry_for:10. roster.(0) in
  let spec =
    {
      Proto.default_spec with
      Proto.pipeline = Proto.Links;
      seed = pseed;
      shards = 2;
      h = 2;
      c_factor = 2.;
      modulus_bits = 40;
    }
  in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Client.run_jobs client
      (List.init jobs (fun _ -> spec))
      ~deadline:(Unix.gettimeofday () +. 300.)
  in
  let daemon_wall = Unix.gettimeofday () -. t0 in
  let completed =
    List.length
      (List.filter
         (function Client.Result (Proto.Strengths _) -> true | _ -> false)
         outcomes)
  in
  assert (completed = jobs);
  let hellos =
    Array.fold_left
      (fun acc d ->
        acc
        + match List.assoc_opt "hellos_received" (Daemon.gauges d) with
          | Some v -> v
          | None -> 0)
      0 daemons
  in
  let reports = Array.to_list daemons |> List.filter_map Daemon.report in
  Client.close client;
  ignore (Client.shutdown_roster ~timeout:15. roster);
  Array.iter Daemon.wait daemons;
  assert (reports <> []);
  let daemon_row =
    { (Metrics.merge reports) with Metrics.protocol; engine = "daemon"; wall_s = daemon_wall }
  in
  Printf.printf
    "serve ablation (%d links jobs, m = %d): per-job spawn %.2f s (%.0f ms/job),\n\
     persistent daemons %.2f s (%.0f ms/job, %.1fx); %d mesh hellos total for the\n\
     whole deployment — one per connection — vs a fresh rendezvous per session\n\
     per job when respawning.\n\n"
    jobs m respawn_wall
    (1000. *. respawn_wall /. float_of_int jobs)
    daemon_wall
    (1000. *. daemon_wall /. float_of_int jobs)
    (respawn_wall /. daemon_wall) hellos;
  [ respawn; daemon_row ]

(* Streaming ablation: the epoch-delta pipeline vs a full recompute of
   every counter group each epoch, on all three engines.  Both modes
   ingest the identical seeded arrival streams (Spe_actionlog.Source)
   through windowed accumulators, so the released digests must agree
   bit-for-bit — asserted per engine — while the delta rows pay only
   for the dirty groups.  Each row's wall_s is the end-to-end
   streaming wall clock (ingestion + epoch sessions); a synthetic
   "stream-ingest" phase row carries the epoch and record counts, so
   sustained updates/s = phases["stream-ingest"].messages / wall_s is
   recoverable from BENCH_protocols.json alone. *)
let stream_reports () =
  let module Session = Spe_mpc.Session in
  let module Endpoint = Spe_net.Endpoint in
  let module Plan = Spe_core.Plan in
  let module Delta = Spe_core.Delta in
  let module Metrics = Spe_obs.Metrics in
  let module Source = Spe_actionlog.Source in
  let module Stream = Spe_influence.Stream in
  let seed = 91 in
  let epochs = 6 and epoch_ticks = 25 and window = 8 and h = 2 in
  let rate = 0.6 and burstiness = 0.3 and jitter = 2 in
  let s, g, log = workload ~seed ~n:40 ~edges:120 ~actions:10 in
  let logs = Partition.exclusive s log ~m:3 in
  let m = Array.length logs in
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  let config =
    { Protocol4.c_factor = 2.; modulus = 1 lsl 40; h; estimator = Protocol4.Eq1 }
  in
  let instance () =
    let d =
      Delta.create
        (State.create ~seed ())
        ~graph:g ~m ~num_actions ~group_seed:(seed lxor 0x5bd1e995) config
    in
    let pairs = Delta.pairs d in
    let sources =
      Array.mapi
        (fun k l ->
          Source.create (State.create ~seed:(seed + 101 + k) ()) l ~rate ~burstiness ~jitter ())
        logs
    in
    let streams =
      Array.map
        (fun _ ->
          Stream.create ~window ~num_users:(Digraph.n g) ~num_actions ~h ~pairs ())
        logs
    in
    (d, sources, streams)
  in
  let union_sorted lists = List.sort_uniq compare (List.concat lists) in
  let epoch_input ~epoch ~horizon (sources, streams) =
    let arrivals = ref 0 in
    Array.iteri
      (fun k src ->
        List.iter
          (fun (r : Log.record) ->
            incr arrivals;
            let acc = streams.(k) in
            Stream.advance acc ~now:(max (Stream.now acc) r.Log.time);
            Stream.add acc r)
          (Source.take_until src ~arrival:horizon))
      sources;
    let dirty_users = union_sorted (Array.to_list (Array.map Stream.dirty_users streams)) in
    let dirty_pairs = union_sorted (Array.to_list (Array.map Stream.dirty_pairs streams)) in
    let inputs =
      Array.map
        (fun acc ->
          let c = Stream.snapshot acc in
          { Protocol4.a = c.Counters.a; c = c.Counters.c })
        streams
    in
    Array.iter Stream.clear_dirty streams;
    (!arrivals, { Delta.epoch; dirty_users; dirty_pairs; inputs })
  in
  let pool_config =
    { Endpoint.default_config with Endpoint.round_timeout = 300.; linger = 310. }
  in
  let run_stage_sessions engine (stage : Plan.stage) =
    let traces = Array.map (fun _ -> Spe_obs.Trace.create ()) stage.Plan.sessions in
    (match engine with
    | `Memory ->
      ignore
        (Endpoint.run_sessions_memory ~config:pool_config ~workers:2 ~traces
           stage.Plan.sessions)
    | `Socket ->
      ignore
        (Endpoint.run_sessions_socket ~config:pool_config ~workers:2 ~traces
           stage.Plan.sessions));
    Array.to_list
      (Array.mapi
         (fun i trace ->
           Metrics.of_trace ~protocol:"stream" ~engine:"-"
             ~parties:(Array.length stage.Plan.sessions.(i).Session.parties)
             trace)
         traces)
  in
  let run_epoch_plan engine (plan : Delta.release Plan.t) =
    match engine with
    | `Sim ->
      let session = Plan.to_session plan in
      let trace = Spe_obs.Trace.create () in
      let release = Session.run ~trace session ~wire:(Wire.create ()) in
      ( release,
        [
          Metrics.of_trace ~protocol:"stream" ~engine:"-"
            ~parties:(Array.length session.Session.parties) trace;
        ] )
    | (`Memory | `Socket) as engine ->
      let reports =
        List.concat_map (run_stage_sessions engine) plan.Plan.stages
      in
      (plan.Plan.result (), reports)
  in
  let run_mode mode engine_name engine =
    let d, srcs, accs = instance () in
    let reports = ref [] in
    let records = ref 0 in
    let digests = Array.make epochs 0 in
    let t0 = Unix.gettimeofday () in
    for e = 0 to epochs - 1 do
      let horizon = (e + 1) * epoch_ticks in
      let arrivals, input = epoch_input ~epoch:e ~horizon (srcs, accs) in
      records := !records + arrivals;
      let release, rs = run_epoch_plan engine (Delta.epoch_plan d ~mode input) in
      digests.(e) <- release.Delta.digest;
      reports := List.rev_append rs !reports
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let protocol =
      match mode with Delta.Delta -> "stream-delta" | Delta.Full -> "stream-full"
    in
    let merged = Metrics.merge (List.rev !reports) in
    let ingest =
      {
        Metrics.phase = "stream-ingest";
        rounds = epochs;
        messages = !records;
        payload_bytes = 0;
        wall_s = wall;
      }
    in
    let row =
      {
        merged with
        Metrics.protocol;
        engine = engine_name;
        wall_s = wall;
        phases = merged.Metrics.phases @ [ ingest ];
      }
    in
    (row, digests, !records, wall)
  in
  List.concat_map
    (fun (engine_name, engine) ->
      let delta_row, ddig, records, dwall = run_mode Delta.Delta engine_name engine in
      let full_row, fdig, _, fwall = run_mode Delta.Full engine_name engine in
      assert (ddig = fdig);
      let rate wall = if wall > 0. then float_of_int records /. wall else 0. in
      Printf.printf
        "stream %-7s: %d records over %d epochs; delta %.2f s (%.1f upd/s) vs full %.2f s\n\
        \  (%.1f upd/s), %.2fx — released digests bit-identical\n"
        engine_name records epochs dwall (rate dwall) fwall (rate fwall)
        (fwall /. dwall);
      [ delta_row; full_row ])
    [ ("sim", `Sim); ("memory", `Memory); ("socket", `Socket) ]

(* Bench-drift smoke: regenerate one Table 1 and two Table 2 rows
   (unpacked and fully packed) and fail loudly if the measured
   payload bytes ever deviate from the documented closed forms.  CI
   runs this through `bench --bench-json` on every push, so a codec or
   protocol change that silently shifts the wire shows up as a red
   build, not a drifted artifact. *)
let drift_smoke () =
  let module C = Spe_expt.Comm_costs in
  let check label (row : C.row) =
    if not row.C.ok then begin
      Printf.eprintf
        "bench drift: %s payload deviates from the closed form (measured %d bits, model %d)\n"
        label row.C.measured.Wire.bits row.C.model.Spe_cost.Model.ms;
      exit 1
    end
  in
  check "links (Table 1)" (C.table1_row ~seed:1103 ~n:100 ~edges:400 ~m:3);
  check "scores (Table 2)"
    (C.table2_row ~seed:2063 ~n:60 ~edges:150 ~m:3 ~actions:10 ~key_bits:256 ());
  check "scores packed (Table 2)"
    (C.table2_row ~pack_slots:Spe_mpc.Pack.max_packed_bits ~seed:2063 ~n:60 ~edges:150
       ~m:3 ~actions:10 ~key_bits:256 ());
  Printf.printf "payload closed forms: links + scores (packed and unpacked) match the wire\n"

let bench_rows () =
  section "Bench trajectory - one spe-metrics/2 row per (pipeline, engine)";
  drift_smoke ();
  let reports =
    pipeline_reports () @ sharding_reports () @ rank_reports () @ stream_reports ()
    @ serve_reports ()
  in
  Printf.printf "%-8s %-8s | %4s %6s %12s %12s | %s\n" "pipeline" "engine" "NR" "NM"
    "payload (B)" "on-wire (B)" "wall (s)";
  List.iter
    (fun (r : Spe_obs.Metrics.report) ->
      Printf.printf "%-8s %-8s | %4d %6d %12d %12s | %.3f\n" r.Spe_obs.Metrics.protocol
        r.engine r.rounds r.messages r.payload_bytes
        (match r.transport_bytes with None -> "-" | Some b -> string_of_int b)
        r.wall_s)
    reports;
  let extra = [ dp_utility_extra () ] in
  let oc = open_out bench_json_path in
  output_string oc
    (Spe_obs.Obs_io.bench_to_string ~extra ~generated_by:"bench/main.ml" reports);
  close_out oc;
  Printf.printf "\nwrote %s (%d rows, schema %s)\n" bench_json_path (List.length reports)
    Spe_obs.Obs_io.bench_schema

let ablation_discretization () =
  section "Ablation - time discretization (Sec. 2: 'real data needs to be heavily discretized')";
  Printf.printf "%10s | %12s | %16s\n" "bin width" "b episodes" "mean estimate";
  List.iter
    (fun (r : Spe_expt.Estimators.discretization_row) ->
      Printf.printf "%10d | %12d | %16.4f\n" r.Spe_expt.Estimators.step r.episodes
        r.mean_estimate)
    (Spe_expt.Estimators.discretization_sweep ());
  Printf.printf
    "\nToo fine a bin (width 1, h = 3) misses slow follows; too coarse a bin\n\
     collapses distinct events into simultaneity (excluded by t < t').  The\n\
     window model needs bins on the order of the true delay scale (~60).\n"

let ablation_estimator_variants () =
  section "Ablation - estimator family: Eq. 1 vs Jaccard vs partial credit";
  List.iter
    (fun (r : Spe_expt.Estimators.family_row) ->
      Printf.printf "  %-16s spearman vs planted = %.3f\n" r.Spe_expt.Estimators.name
        r.spearman)
    (Spe_expt.Estimators.family_comparison ());
  Printf.printf
    "\nAll three are computed from the same counter interface; Eq. 1 and Jaccard\n\
     are securely computable with Protocol 4 as-is, partial credit needs the\n\
     Protocol 5 trusted-party route (see Spe_influence.Credit).\n"

let ablation_perturbation () =
  section "Ablation - the two privacy paradigms (Sec. 2): MPC exactness vs perturbation";
  Printf.printf "%10s | %18s\n" "epsilon" "mean |error| vs exact";
  List.iter
    (fun (r : Spe_expt.Estimators.perturbation_row) ->
      Printf.printf "%10.2f | %18.4f\n" r.Spe_expt.Estimators.epsilon r.mean_abs_error)
    (Spe_expt.Estimators.perturbation_sweep ());
  Printf.printf
    "\nThe secure protocols reproduce the exact estimates (error ~1e-4 from\n\
     float masking only); Laplace perturbation trades accuracy for privacy.\n"

let scalability () =
  section "Scalability - Protocol 4 wall clock and wire volume vs network size";
  Printf.printf "%7s %8s %8s | %10s | %14s | %10s\n" "n" "|E|" "q" "time (s)" "MS (bits)"
    "arcs/sec";
  List.iter
    (fun (n, edges) ->
      let s = State.create ~seed:(53 + n) () in
      let g = Generate.erdos_renyi_gnm s ~n ~m:edges in
      let planted = Cascade.uniform_probabilities ~p:0.2 g in
      let log =
        Cascade.generate s planted
          { Cascade.num_actions = 40; seeds_per_action = 2; max_delay = 3 }
      in
      let logs = Partition.exclusive s log ~m:3 in
      let t0 = Unix.gettimeofday () in
      let r = Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:3) in
      let dt = Unix.gettimeofday () -. t0 in
      let q = Array.length r.Driver.detail.Protocol4.pairs in
      Printf.printf "%7d %8d %8d | %10.2f | %14d | %10.0f\n" n edges q dt
        r.Driver.wire.Wire.bits
        (float_of_int (List.length r.Driver.strengths) /. dt))
    [ (100, 500); (1000, 5000); (5000, 25_000); (10_000, 50_000) ];
  Printf.printf
    "\nThe full secure pipeline (sharing + masking + quotients) stays\n\
     laptop-interactive through 10^4 users and 5*10^4 arcs.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* How much a fault campaign costs: wall time per seeded schedule, on
   each engine, and how many of the seeds exercised a fatal event.
   The chaos harness trades tight endpoint timeouts for throughput, so
   this is the number to watch when extending the CI campaign. *)
let ablation_chaos () =
  section "Ablation - chaos campaign throughput (Spe_chaos, seeded fault schedules)";
  let module Schedule = Spe_chaos.Schedule in
  let module Harness = Spe_chaos.Harness in
  let module Campaign = Spe_chaos.Campaign in
  Printf.printf "%10s | %6s | %12s | %12s | %s\n" "engine" "seeds" "time (s)"
    "s / schedule" "fatal";
  List.iter
    (fun (label, engine) ->
      let seeds = 8 in
      let fatal = ref 0 in
      let t0 = Unix.gettimeofday () in
      let summary =
        Campaign.run
          ~on_result:(fun _ sched _ ->
            if Schedule.fatal sched <> None then incr fatal)
          ~seeds ~seed:900
          ~targets:[ (Schedule.Links, engine); (Schedule.Scores, engine) ]
          ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%10s | %6d | %12.2f | %12.2f | %d/%d%s\n" label summary.Campaign.runs
        dt
        (dt /. float_of_int seeds)
        !fatal seeds
        (if summary.Campaign.violations = [] then ""
         else Printf.sprintf "  (%d VIOLATIONS)" (List.length summary.Campaign.violations)))
    [ ("memory", Schedule.Memory); ("socket", Schedule.Socket) ]

let bechamel_suite () =
  section "Bechamel micro-benchmarks (wall clock per full run)";
  let open Bechamel in
  let p4_workload =
    let s, g, log = workload ~seed:3 ~n:40 ~edges:120 ~actions:15 in
    let logs = Partition.exclusive s log ~m:3 in
    (g, logs)
  in
  let bench_table1 =
    (* One full Protocol 4 run: the unit of Table 1. *)
    let g, logs = p4_workload in
    Test.make ~name:"table1/protocol4-run"
      (Staged.stage (fun () ->
           let s = State.create ~seed:4 () in
           ignore
             (Driver.link_strengths_exclusive s ~graph:g ~logs (Protocol4.default_config ~h:3))))
  in
  let bench_table2 =
    (* One full Protocol 6 run: the unit of Table 2 (128-bit keys keep
       the run in the micro-benchmark regime). *)
    let g, logs = p4_workload in
    Test.make ~name:"table2/protocol6-run"
      (Staged.stage (fun () ->
           let s = State.create ~seed:5 () in
           let wire = Wire.create () in
           ignore
             (Protocol6.run s ~wire ~graph:g ~logs
                { Protocol6.default_config with Protocol6.key_bits = 128 })))
  in
  let bench_figure1 =
    (* One posterior-and-gain round: the unit of Figure 1. *)
    let prior = Posterior.uniform_prior ~bound:10 in
    Test.make ~name:"figure1/gain-100-trials"
      (Staged.stage (fun () ->
           let s = State.create ~seed:6 () in
           ignore (Gain.run s ~prior ~trials_per_x:100)))
  in
  let bench_leakage =
    Test.make ~name:"theorem41/protocol2-run"
      (Staged.stage (fun () ->
           let s = State.create ~seed:7 () in
           ignore (Leakage.monte_carlo s ~modulus:(1 lsl 12) ~input_bound:100 ~x:50 ~trials:10)))
  in
  let bench_substrate =
    let s = State.create ~seed:8 () in
    let base = Spe_bignum.Nat.random_bits s 1024 in
    let exp = Spe_bignum.Nat.random_bits s 1024 in
    let modulus = Spe_bignum.Nat.succ (Spe_bignum.Nat.random_bits s 1024) in
    Test.make ~name:"substrate/modpow-1024"
      (Staged.stage (fun () -> ignore (Spe_bignum.Nat.mod_pow ~base ~exp ~modulus)))
  in
  let grouped =
    Test.make_grouped ~name:"spe"
      [ bench_table1; bench_table2; bench_figure1; bench_leakage; bench_substrate ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, est) ->
         match Analyze.OLS.estimates est with
         | Some [ ns ] -> Printf.printf "  %-40s %14.0f ns/run\n" name ns
         | _ -> Printf.printf "  %-40s (no estimate)\n" name)

let () =
  (* `bench --bench-json` regenerates just BENCH_protocols.json (the
     CI artifact) without the full multi-minute harness. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--bench-json" then begin
    bench_rows ();
    exit 0
  end;
  Printf.printf "Privacy Preserving Estimation of Social Influence - reproduction harness\n";
  table1 ();
  table2 ();
  figure1 ();
  leakage ();
  ablation_packing ();
  ablation_modulus_precision ();
  ablation_celf ();
  ablation_ris ();
  ablation_c_factor ();
  ablation_estimators ();
  ablation_generalisation ();
  ablation_counter_engines ();
  ablation_protocol5_overhead ();
  ablation_montgomery ();
  ablation_crypto_hot_paths ();
  ablation_alternatives ();
  ablation_multi_host ();
  ablation_transport ();
  ablation_chaos ();
  bench_rows ();
  ablation_discretization ();
  ablation_estimator_variants ();
  ablation_perturbation ();
  scalability ();
  bechamel_suite ();
  Printf.printf "\nDone.\n"
