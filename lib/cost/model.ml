module Wire = Spe_mpc.Wire

type row = { label : string; messages : int; message_bits : int }

type t = { rows : row list; nr : int; nm : int; ms : int }

let totals rows =
  let nm = List.fold_left (fun acc r -> acc + r.messages) 0 rows in
  let ms = List.fold_left (fun acc r -> acc + (r.messages * r.message_bits)) 0 rows in
  (List.length rows, nm, ms)

let table1 ~n ~q ~m ~modulus_bits ~node_bits ~counters =
  if m < 2 then invalid_arg "Model.table1: need at least two providers";
  let f = Wire.float_bits in
  let rows =
    [
      { label = "Step 2 (publish E')"; messages = m; message_bits = 2 * q * node_bits };
      {
        label = "Steps 3-4; Prot. 1, Step 2";
        messages = m * (m - 1);
        message_bits = counters * modulus_bits;
      };
      {
        label = "Steps 3-4; Prot. 1, Step 4";
        messages = m - 2;
        message_bits = counters * modulus_bits;
      };
      {
        label = "Steps 3-4; Prot. 2, Steps 3-4";
        messages = 2;
        message_bits = counters * modulus_bits;
      };
      { label = "Steps 3-4; Prot. 2, Step 6"; messages = 1; message_bits = counters };
      { label = "Step 5 (draw M_i)"; messages = 2; message_bits = n * f };
      { label = "Step 6 (draw r_i)"; messages = 2; message_bits = n * f };
      { label = "Steps 7-8 (masked shares)"; messages = 2; message_bits = (n + q) * f };
    ]
  in
  let nr, nm, ms = totals rows in
  assert (nm = (m * m) + m + 7);
  { rows; nr; nm; ms }

let table2 ?chunks_per_action ~q ~m ~node_bits ~key_bits ~ciphertext_bits
    ~actions_per_provider () =
  if m < 2 then invalid_arg "Model.table2: need at least two providers";
  if Array.length actions_per_provider <> m then
    invalid_arg "Model.table2: one action count per provider";
  (* Packing replaces the q ciphertexts per action with ceil(q / per)
     chunks; the unpacked table is the per = 1 special case. *)
  let chunks = match chunks_per_action with None -> q | Some c -> c in
  if chunks < 1 || chunks > q then
    invalid_arg "Model.table2: chunks_per_action must be in [1, q]";
  let z = ciphertext_bits in
  let total_actions = Array.fold_left ( + ) 0 actions_per_provider in
  (* The m - 1 bundle messages have heterogeneous sizes (chunks z A_k);
     the row records their total as messages * average, so we expand
     them into explicit rows per provider for exactness. *)
  let bundle_rows =
    List.init (m - 1) (fun i ->
        {
          label = Printf.sprintf "Steps 4-9 (bundle from P%d)" (i + 2);
          messages = 1;
          message_bits = chunks * z * actions_per_provider.(i + 1);
        })
  in
  let rows =
    [
      { label = "Step 2 (publish E')"; messages = m; message_bits = 2 * q * node_bits };
      { label = "Step 3 (public key)"; messages = m; message_bits = key_bits };
    ]
    @ bundle_rows
    @ [
        {
          label = "Step 10 (forward to H)";
          messages = 1;
          message_bits = chunks * z * total_actions;
        };
      ]
  in
  let _, nm, ms = totals rows in
  assert (nm = 3 * m);
  (* The analytic table has 4 rounds: the per-provider bundle rows all
     belong to one round. *)
  { rows; nr = 4; nm; ms }

let pp fmt t =
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-32s %6d msg x %10d bits@." r.label r.messages r.message_bits)
    t.rows;
  Format.fprintf fmt "  %-32s NR=%d NM=%d MS=%d bits@." "totals" t.nr t.nm t.ms

let matches_wire t (stats : Wire.stats) =
  t.nm = stats.Wire.messages && t.ms = stats.Wire.bits
  && stats.Wire.rounds <= t.nr
  && stats.Wire.rounds >= t.nr - 1
