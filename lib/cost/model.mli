(** Closed-form communication-cost models of Sec. 7.1 (Tables 1 and 2).

    Each table row gives, for one communication round, the number of
    messages and the per-message size in bits.  The totals NR (rounds),
    NM (messages) and MS (bits) must coincide with what the simulated
    wire measures; the bench harness asserts exactly that and prints
    both side by side.

    One bookkeeping nuance: the analytic tables count the Protocol 1
    collect round (players 3..m to player 2) even when it carries zero
    messages ([m = 2]), whereas the wire only counts rounds that
    actually open.  {!table1} therefore reports [NR = 8] for every [m],
    while a measured [m = 2] run shows 7 rounds and the same NM and
    MS. *)

type row = {
  label : string;  (** Which protocol step the round implements. *)
  messages : int;
  message_bits : int;  (** Size of each message in this round. *)
}

type t = { rows : row list; nr : int; nm : int; ms : int }

val table1 :
  n:int ->
  q:int ->
  m:int ->
  modulus_bits:int ->
  node_bits:int ->
  counters:int ->
  t
(** Protocol 4 (Table 1).  [q = |E'|]; [counters] is the number of
    values pushed through the batched Protocol 2 — [n + q] under Eq. 1,
    [n + q*h] under Eq. 2.  Totals: NR = 8, NM = m^2 + m + 7,
    MS = O(m^2 * counters * log S). *)

val table2 :
  ?chunks_per_action:int ->
  q:int ->
  m:int ->
  node_bits:int ->
  key_bits:int ->
  ciphertext_bits:int ->
  actions_per_provider:int array ->
  unit ->
  t
(** Protocol 6 (Table 2).  [actions_per_provider.(k)] is the paper's
    [A_k] (provider k's controlled actions; exclusive case, so they sum
    to [A]).  Totals: NR = 4, NM = 3m, MS dominated by
    [q * z * (A + sum_(k>=2) A_k) <= 2qzA].

    [?chunks_per_action] generalises the table to plaintext packing
    ([Protocol6.pack_slots]): each action ships [ceil(q / per)]
    ciphertexts instead of [q].  Defaults to [q] — the unpacked
    protocol — so the paper's closed form is the [per = 1] special
    case. *)

val pp : Format.formatter -> t -> unit
(** Render the table rows and totals. *)

val matches_wire : t -> Spe_mpc.Wire.stats -> bool
(** Totals agree with a measured wire: NM and MS exactly, NR within the
    empty-round bookkeeping slack described above. *)
