type payload =
  | Ints of { modulus : int; values : int array }
  | Floats of float array
  | Bits of bool array
  | Nats of { width_bits : int; values : Spe_bignum.Nat.t array }
  | Tuples of { moduli : int array; rows : int array array }
  | Batch of payload list

let rec payload_bits = function
  | Ints { modulus; values } ->
    8 * Bytes.length (Codec.encode_residues ~modulus values)
  | Floats values -> 8 * Bytes.length (Codec.encode_floats values)
  | Bits flags -> 8 * Bytes.length (Codec.encode_bitset flags)
  | Nats { width_bits; values } ->
    8 * Bytes.length (Codec.encode_nats ~width_bits values)
  | Tuples { moduli; rows } ->
    let row_bytes =
      Array.fold_left (fun acc modulus -> acc + Codec.residue_bytes ~modulus) 0 moduli
    in
    8 * row_bytes * Array.length rows
  | Batch payloads -> List.fold_left (fun acc p -> acc + payload_bits p) 0 payloads

type message = { src : Wire.party; dst : Wire.party; payload : payload }

type program = round:int -> inbox:message list -> message list

type t = { mutable parties : (Wire.party * program) list (* registration order *) }

let create () = { parties = [] }

let add_party t party program =
  if List.mem_assoc party t.parties then invalid_arg "Runtime.add_party: duplicate party";
  t.parties <- t.parties @ [ (party, program) ]

let party_label p = Format.asprintf "%a" Wire.pp_party p

let run ?(trace = Spe_obs.Trace.disabled ()) t ~wire ~max_rounds =
  let tracing = Spe_obs.Trace.enabled trace in
  let inboxes : (Wire.party, message list) Hashtbl.t = Hashtbl.create 8 in
  let inbox_of party = Option.value ~default:[] (Hashtbl.find_opt inboxes party) in
  let rec loop round =
    if round > max_rounds then failwith "Runtime.run: protocol did not terminate";
    (* Deliver this round: every party steps on its inbox. *)
    let step () =
      List.concat_map
        (fun (party, program) ->
          let inbox = List.rev (inbox_of party) in
          Hashtbl.remove inboxes party;
          let sends =
            if tracing then
              Spe_obs.Trace.span trace ~party:(party_label party) ~index:round
                Spe_obs.Trace.Compute "step" (fun () -> program ~round ~inbox)
            else program ~round ~inbox
          in
          List.iter
            (fun msg ->
              if msg.src <> party then invalid_arg "Runtime.run: forged source";
              if not (List.mem_assoc msg.dst t.parties) then
                invalid_arg "Runtime.run: message to unknown party")
            sends;
          sends)
        t.parties
    in
    let outputs =
      if tracing then Spe_obs.Trace.span trace ~index:round Spe_obs.Trace.Round "round" step
      else step ()
    in
    match outputs with
    | [] -> round - 1
    | sends ->
      Wire.round wire (fun () ->
          List.iter
            (fun msg ->
              let bits = payload_bits msg.payload in
              Wire.send wire ~src:msg.src ~dst:msg.dst ~bits;
              if tracing then begin
                let src = party_label msg.src in
                Spe_obs.Trace.count trace ~party:src ~round Spe_obs.Trace.Messages 1;
                Spe_obs.Trace.count trace ~party:src ~round Spe_obs.Trace.Payload_bytes
                  (bits / 8)
              end;
              Hashtbl.replace inboxes msg.dst (msg :: inbox_of msg.dst))
            sends);
      loop (round + 1)
  in
  loop 1
