module Nat = Spe_bignum.Nat

let residue_bytes ~modulus = (Wire.bits_for_int_mod modulus + 7) / 8

(* The [_into] variants write at [pos] in a caller-supplied buffer and
   return the end position: the zero-copy path used by [Spe_net.Frame]
   to fill transport send buffers in place. The allocating originals
   delegate to them. *)
let encode_residue_into ~modulus v buf ~pos =
  let width = residue_bytes ~modulus in
  if v < 0 || v >= modulus then invalid_arg "Codec.encode_residues: value out of range";
  (* Plain loop, no closure: this runs per value on the transport send
     path and must not allocate. *)
  for j = 0 to width - 1 do
    Bytes.set buf (pos + j) (Char.chr ((v lsr (8 * (width - 1 - j))) land 0xFF))
  done;
  pos + width

let encode_residues_into ~modulus values buf ~pos =
  let width = residue_bytes ~modulus in
  for i = 0 to Array.length values - 1 do
    ignore (encode_residue_into ~modulus values.(i) buf ~pos:(pos + (i * width)))
  done;
  pos + (width * Array.length values)

let encode_residues ~modulus values =
  let buf = Bytes.create (residue_bytes ~modulus * Array.length values) in
  let _ = encode_residues_into ~modulus values buf ~pos:0 in
  buf

let decode_residues ~modulus ~count buf =
  let width = residue_bytes ~modulus in
  if Bytes.length buf <> width * count then invalid_arg "Codec.decode_residues: length mismatch";
  Array.init count (fun i ->
      let base = i * width in
      let v = ref 0 in
      for j = 0 to width - 1 do
        v := (!v lsl 8) lor Char.code (Bytes.get buf (base + j))
      done;
      if !v >= modulus then invalid_arg "Codec.decode_residues: residue out of range";
      !v)

let encode_floats_into values buf ~pos =
  Array.iteri
    (fun i v -> Bytes.set_int64_be buf (pos + (8 * i)) (Int64.bits_of_float v))
    values;
  pos + (8 * Array.length values)

let encode_floats values =
  let buf = Bytes.create (8 * Array.length values) in
  let _ = encode_floats_into values buf ~pos:0 in
  buf

let decode_floats ~count buf =
  if Bytes.length buf <> 8 * count then invalid_arg "Codec.decode_floats: length mismatch";
  Array.init count (fun i -> Int64.float_of_bits (Bytes.get_int64_be buf (8 * i)))

let encode_nats_into ~width_bits values buf ~pos =
  if width_bits < 1 then invalid_arg "Codec.encode_nats: width must be positive";
  let width = (width_bits + 7) / 8 in
  Array.iteri
    (fun i v ->
      if Nat.bit_length v > width_bits then invalid_arg "Codec.encode_nats: value exceeds width";
      let base = pos + (i * width) in
      for j = 0 to width - 1 do
        (* Byte j holds bits [8*(width-1-j), 8*(width-j)) of v. *)
        let lo = 8 * (width - 1 - j) in
        let byte = ref 0 in
        for b = 7 downto 0 do
          byte := (!byte lsl 1) lor (if Nat.test_bit v (lo + b) then 1 else 0)
        done;
        Bytes.set buf (base + j) (Char.chr !byte)
      done)
    values;
  pos + (width * Array.length values)

let encode_nats ~width_bits values =
  if width_bits < 1 then invalid_arg "Codec.encode_nats: width must be positive";
  let width = (width_bits + 7) / 8 in
  let buf = Bytes.create (width * Array.length values) in
  let _ = encode_nats_into ~width_bits values buf ~pos:0 in
  buf

let decode_nats ~width_bits ~count buf =
  let width = (width_bits + 7) / 8 in
  if Bytes.length buf <> width * count then invalid_arg "Codec.decode_nats: length mismatch";
  Array.init count (fun i ->
      let base = i * width in
      let acc = ref Nat.zero in
      for j = 0 to width - 1 do
        acc := Nat.add (Nat.shift_left !acc 8) (Nat.of_int (Char.code (Bytes.get buf (base + j))))
      done;
      !acc)

let encode_bitset_into flags buf ~pos =
  let n = Array.length flags in
  let width = (n + 7) / 8 in
  Bytes.fill buf pos width '\000';
  Array.iteri
    (fun i flag ->
      if flag then begin
        let byte = pos + (i / 8) and bit = i mod 8 in
        Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lor (1 lsl bit)))
      end)
    flags;
  pos + width

let encode_bitset flags =
  let buf = Bytes.create ((Array.length flags + 7) / 8) in
  let _ = encode_bitset_into flags buf ~pos:0 in
  buf

let decode_bitset ~count buf =
  if Bytes.length buf <> (count + 7) / 8 then invalid_arg "Codec.decode_bitset: length mismatch";
  Array.init count (fun i -> Char.code (Bytes.get buf (i / 8)) land (1 lsl (i mod 8)) <> 0)
