module State = Spe_rng.State

type session = Protocol1.result Session.t

let max_rounds = 10

(* Mirror the central implementation's draw order exactly — party k's
   random pieces come off the shared generator before party k+1's, each
   in (element, piece) order — so the shares are bit-identical to
   Protocol1.run from an equal-positioned generator. *)
let draw_pieces st ~m ~modulus input =
  let len = Array.length input in
  let pieces = Array.init m (fun _ -> Array.make len 0) in
  Array.iteri
    (fun l x ->
      let partial = ref 0 in
      for j = 1 to m - 1 do
        let r = State.next_int st modulus in
        pieces.(j).(l) <- r;
        partial := (!partial + r) mod modulus
      done;
      pieces.(0).(l) <- ((x - !partial) mod modulus + modulus) mod modulus)
    input;
  pieces

let make st ~parties ~modulus ~inputs =
  let m = Array.length parties in
  if m < 2 then invalid_arg "Protocol1_distributed.make: need at least two parties";
  if Array.length inputs <> m then
    invalid_arg "Protocol1_distributed.make: one input vector per party";
  let all_pieces = Array.map (draw_pieces st ~m ~modulus) inputs in
  (* Outputs extracted from the party closures after the run. *)
  let result1 = ref [||] and result2 = ref [||] in
  let programs =
    Array.mapi
      (fun k party ->
        let pieces = all_pieces.(k) in
        (* Party-local state. *)
        let own_piece = ref [||] in
        let aggregate = ref [||] in
        let program ~round ~inbox =
          match round with
          | 1 ->
            (* Keep piece k, address piece j to party j. *)
            own_piece := pieces.(k);
            List.filter_map
              (fun j ->
                if j = k then None
                else
                  Some
                    {
                      Runtime.src = party;
                      dst = parties.(j);
                      payload = Runtime.Ints { modulus; values = pieces.(j) };
                    })
              (List.init m (fun j -> j))
          | 2 ->
            (* Aggregate own piece plus everything received. *)
            let s = Array.copy !own_piece in
            List.iter
              (fun msg ->
                match msg.Runtime.payload with
                | Runtime.Ints { values; _ } ->
                  Array.iteri (fun l v -> s.(l) <- (s.(l) + v) mod modulus) values
                | _ -> invalid_arg "Protocol1_distributed: unexpected payload")
              inbox;
            aggregate := s;
            if k = 0 then begin
              result1 := s;
              []
            end
            else if k = 1 then begin
              result2 := s;
              []
            end
            else
              [ { Runtime.src = party; dst = parties.(1);
                  payload = Runtime.Ints { modulus; values = s } } ]
          | 3 ->
            (* Only party 2 has an inbox: fold the forwarded aggregates. *)
            if k = 1 then begin
              let s = !aggregate in
              List.iter
                (fun msg ->
                  match msg.Runtime.payload with
                  | Runtime.Ints { values; _ } ->
                    Array.iteri (fun l v -> s.(l) <- (s.(l) + v) mod modulus) values
                  | _ -> invalid_arg "Protocol1_distributed: unexpected payload")
                inbox;
              result2 := s
            end;
            []
          | _ -> []
        in
        program)
      parties
  in
  Session.with_label "p1-shares"
    (Session.make ~parties ~programs
       ~rounds:(if m = 2 then 1 else 2)
       ~result:(fun () -> { Protocol1.share1 = !result1; share2 = !result2 }))

let run st ~wire ~parties ~modulus ~inputs =
  Session.run (make st ~parties ~modulus ~inputs) ~wire
