(** Protocol 2 on the message-passing {!Runtime}: Protocol 1's share
    exchange, then the masked wrap-around test through the third party,
    with every player an isolated state machine.

    The jointly-generated secrets of players 1 and 2 (the masks and the
    batch permutation) are precomputed from the shared generator and
    captured by both closures — the same semi-honest
    joint-coin-flipping model as everywhere else (DESIGN.md).  All
    randomness is consumed in exactly the central draw order, so both
    shares (and the leak views) are {e bit-identical} to
    {!Protocol2.run} from an equal-positioned generator; the tests
    assert this, plus wire-total agreement up to byte rounding.

    As with {!Protocol1_distributed}, the party programs are exposed as
    a {!Session.t} so any engine — the in-process {!Runtime.run} or the
    [Spe_net] transport endpoints — can host them. *)

type result = { share1 : int array; share2 : int array }
(** The legacy result of {!run}; {!make}'s session result is the full
    {!Protocol2.result} with the Theorem 4.1 leak views. *)

type session = Protocol2.result Session.t
(** Alias kept from the pre-{!Session} record; the fields live in
    {!Session.t} now.  The session's parties are the sharing parties
    followed by the third party (unless merged, see {!make_lazy}). *)

type handle = {
  share1 : unit -> int array;  (** Player 1's final share (his own view). *)
  share2 : unit -> int array;  (** Player 2's final share (post-verdict). *)
}
(** Per-player accessors for composing sessions: a later phase run by
    player 1 (resp. 2) may read only its own share, rather than the
    orchestrator-level session result. *)

val max_rounds : int
(** A round budget that every instance terminates well within (the
    session itself declares its exact round count). *)

(** {2 Sharded building blocks}

    A sharded pipeline (see [Spe_core.Shard]) cuts the counter space
    into contiguous chunks of the {e already-permuted} publication
    order, runs one verdict-less {!core} per chunk, and announces all
    wrap verdicts in a single full-batch {!verdict} session.  The
    monolithic {!make_lazy} is itself [seq core verdict] over the full
    slice, so both paths are wire-for-wire and bit-for-bit the same
    protocol. *)

type randomness = {
  modulus : int;
  input_bound : int;
  rpieces : int array array array;
      (** [rpieces.(k).(j)] is the Protocol 1 piece party [k] hands to
          party [j]; row 0 is a placeholder computed from the input at
          round 1. *)
  masks : int array;  (** Player 2's wrap-test masks, one per counter. *)
  perm : Spe_rng.Perm.t;  (** The shared batch permutation. *)
}
(** All jointly-pre-drawn randomness for one Protocol 2 batch, drawn in
    exactly the central order by {!draw} — shard slices are cut from
    this {e after} drawing, so sharding never perturbs the stream. *)

val draw :
  Spe_rng.State.t ->
  m:int ->
  modulus:int ->
  input_bound:int ->
  length:int ->
  randomness
(** Draw the full batch's randomness in the central order: per party,
    per counter, the [m - 1] free pieces; then the masks; then the
    permutation.  Raises [Invalid_argument] unless [m >= 2] and
    [0 <= input_bound < modulus]. *)

type slice = {
  randomness : randomness;
      (** The slice's own copies of pieces and masks, with the {e
          induced} permutation: local index [i] maps to the rank of its
          global permuted slot within the slice. *)
  start : int;  (** First counter index of the slice. *)
  positions : int array;
      (** [positions.(i)] is counter [start + i]'s slot in the {e
          global} permuted batch — what {!core.apply_wraps} uses to read
          its verdicts out of the full-batch bitset. *)
}

val slice : randomness -> start:int -> len:int -> slice
(** Cut counters [start .. start + len - 1] out of a drawn batch.
    [slice r ~start:0 ~len] (the full slice) has the identity mapping:
    its induced permutation {e is} [r.perm].  The returned arrays are
    fresh copies, so a core may mutate them freely.  Raises
    [Invalid_argument] on an out-of-range window. *)

type core = {
  session : unit Session.t;
      (** The verdict-less rounds: share exchange, aggregation, masked
          vectors to the third party, who assembles y silently at its
          finishing call.  2 rounds when [m = 2], else 3. *)
  share1 : unit -> int array;  (** Player 1's final share. *)
  share2 : unit -> int array;
      (** Player 2's share; {e pre}-verdict until {!core.apply_wraps}
          runs, final after. *)
  y : unit -> int array;
      (** The third party's assembled wrap-test vector, in the slice's
          induced permuted order; read at or after the core's finishing
          call. *)
  positions : int array;  (** The slice's {!slice.positions}. *)
  apply_wraps : bool array -> unit;
      (** Apply the {e full-batch} verdict bitset (indexed by global
          permuted slot): classifies the Theorem 4.1 player-2 leaks from
          the pre-adjustment shares, then subtracts the modulus where
          wrapped. *)
  p2_leaks : unit -> Protocol2.leak array;
      (** Player 2's leak view; valid after {!core.apply_wraps}. *)
}

val make_core :
  parties:Wire.party array ->
  third_party:Wire.party ->
  slice:slice ->
  inputs:(unit -> int array) array ->
  core
(** Build one verdict-less Protocol 2 core over a slice.  Same
    merged-role rule as {!make_lazy}: the third party may be a sharing
    party with index [>= 2].  Raises [Invalid_argument] on the same
    conditions as {!make_lazy}, or if the slice was drawn for a
    different party count. *)

type verdict = {
  session : unit Session.t;
      (** One round: the third party announces the full-batch wrap
          verdicts to player 2 as a single [Bits] message — exactly the
          unsharded announcement, whatever the shard count. *)
  p3_leaks : unit -> Protocol2.leak array;
      (** The third party's Theorem 4.1 leak view, global permuted
          order. *)
  p3_y : unit -> int array;  (** The y vector the third party saw. *)
}

val make_verdict :
  p1:Wire.party ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  y_of:(unit -> int array) ->
  apply:(bool array -> unit) ->
  verdict
(** Build the verdict announcement.  [y_of] is forced at the third
    party's round 1 (after every core's finishing call when sequenced
    after them) and must return the full batch in global permuted
    order; [apply] runs at player 2's finishing call with the verdict
    bitset.  Raises [Invalid_argument] if [p1 = third_party]. *)

val make_lazy :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  length:int ->
  inputs:(unit -> int array) array ->
  session * handle
(** Build the party programs with {e deferred} inputs: each party's
    thunk is forced inside its own program at round 1, so a composed
    pipeline can share counters that an earlier phase only just
    delivered (e.g. counters built against the published pair set).

    Unlike {!make}, the third party may also be one of the sharing
    parties with index [>= 2] (as the central Protocol 4 uses provider
    3 when [m > 2]); both roles then merge into one program.  It must
    still differ from players 1 and 2. *)

val make :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  session
(** {!make_lazy} with eager inputs and the stricter historical
    restriction that the third party lies outside the sharing
    parties. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  result
(** {!make} driven by {!Session.run}. *)
