(** Protocol 2 on the message-passing {!Runtime}: Protocol 1's share
    exchange, then the masked wrap-around test through the third party,
    with every player an isolated state machine.

    The jointly-generated secrets of players 1 and 2 (the masks and the
    batch permutation) are precomputed from the shared generator and
    captured by both closures — the same semi-honest
    joint-coin-flipping model as everywhere else (DESIGN.md).  All
    randomness is consumed in exactly the central draw order, so both
    shares (and the leak views) are {e bit-identical} to
    {!Protocol2.run} from an equal-positioned generator; the tests
    assert this, plus wire-total agreement up to byte rounding.

    As with {!Protocol1_distributed}, the party programs are exposed as
    a {!Session.t} so any engine — the in-process {!Runtime.run} or the
    [Spe_net] transport endpoints — can host them. *)

type result = { share1 : int array; share2 : int array }
(** The legacy result of {!run}; {!make}'s session result is the full
    {!Protocol2.result} with the Theorem 4.1 leak views. *)

type session = Protocol2.result Session.t
(** Alias kept from the pre-{!Session} record; the fields live in
    {!Session.t} now.  The session's parties are the sharing parties
    followed by the third party (unless merged, see {!make_lazy}). *)

type handle = {
  share1 : unit -> int array;  (** Player 1's final share (his own view). *)
  share2 : unit -> int array;  (** Player 2's final share (post-verdict). *)
}
(** Per-player accessors for composing sessions: a later phase run by
    player 1 (resp. 2) may read only its own share, rather than the
    orchestrator-level session result. *)

val max_rounds : int
(** A round budget that every instance terminates well within (the
    session itself declares its exact round count). *)

val make_lazy :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  length:int ->
  inputs:(unit -> int array) array ->
  session * handle
(** Build the party programs with {e deferred} inputs: each party's
    thunk is forced inside its own program at round 1, so a composed
    pipeline can share counters that an earlier phase only just
    delivered (e.g. counters built against the published pair set).

    Unlike {!make}, the third party may also be one of the sharing
    parties with index [>= 2] (as the central Protocol 4 uses provider
    3 when [m > 2]); both roles then merge into one program.  It must
    still differ from players 1 and 2. *)

val make :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  session
(** {!make_lazy} with eager inputs and the stricter historical
    restriction that the third party lies outside the sharing
    parties. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  result
(** {!make} driven by {!Session.run}. *)
