(** Protocol 2 on the message-passing {!Runtime}: Protocol 1's share
    exchange, then the masked wrap-around test through the third party,
    with every player an isolated state machine.

    Restrictions relative to {!Protocol2.run}: the third party must not
    be one of the sharing parties (use the host), since each runtime
    party runs a single program.  The jointly-generated secrets of
    players 1 and 2 (the masks and the batch permutation) are
    precomputed from a shared generator and captured by both closures —
    the same semi-honest joint-coin-flipping model as everywhere else
    (DESIGN.md).

    The tests assert result equality (integer share reconstruction) and
    wire-total agreement with the central {!Protocol2.run} up to byte
    rounding.

    As with {!Protocol1_distributed}, the party programs are exposed as
    a {!session} so any engine — the in-process {!Runtime.run} or the
    [Spe_net] transport endpoints — can host them. *)

type result = { share1 : int array; share2 : int array }

type session = {
  parties : Wire.party array;
      (** The sharing parties followed by the third party. *)
  programs : Runtime.program array;  (** One per party, same order. *)
  result : unit -> result;
      (** Read the shares out of the party closures; call only after an
          engine has driven the programs to quiescence. *)
}

val max_rounds : int
(** A round budget that every instance terminates well within. *)

val make :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  session
(** Build the party programs without running them. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  result
(** {!make} driven by {!Runtime.run}. *)
