(** Byte-level message encoding.

    The wire statistics of Sec. 7.1 are only as credible as the sizes
    declared on the wire, so this module provides the actual encodings
    and the tests assert that every size formula used by the protocols
    (and hence by the Table 1/2 models) matches the length of a real
    encoded payload, rounded up to whole bits of the stated width.

    Encodings are deliberately plain: fixed-width big-endian residues
    for modular values, IEEE 754 doubles for reals, fixed-width
    naturals for ciphertexts.

    Every encoder has an [_into] variant that writes at a caller-given
    position in an existing buffer and returns the end position — the
    zero-copy path [Spe_net.Frame.encode_into] uses to fill transport
    send buffers in place (allocation-free for integer payloads; the
    allocating originals delegate to them). *)

val residue_bytes : modulus:int -> int
(** Bytes needed for one residue: [ceil(bits_for_int_mod modulus / 8)]. *)

val encode_residues : modulus:int -> int array -> bytes
(** Fixed-width big-endian encoding of a residue vector.  Raises
    [Invalid_argument] on out-of-range entries. *)

val encode_residues_into : modulus:int -> int array -> bytes -> pos:int -> int
(** [encode_residues_into ~modulus values buf ~pos] writes the same
    encoding at [pos] and returns the position one past the last byte
    written.  The caller guarantees capacity
    ([residue_bytes * length]). *)

val encode_residue_into : modulus:int -> int -> bytes -> pos:int -> int
(** Single-value form of {!encode_residues_into}: no array wrapper, no
    allocation (the [Tuples] frame path). *)

val decode_residues : modulus:int -> count:int -> bytes -> int array
(** Inverse; raises [Invalid_argument] on a length mismatch. *)

val encode_floats : float array -> bytes
(** 8 bytes per value, IEEE 754 binary64 big-endian. *)

val encode_floats_into : float array -> bytes -> pos:int -> int
(** In-place variant of {!encode_floats}; returns the end position. *)

val decode_floats : count:int -> bytes -> float array

val encode_nats : width_bits:int -> Spe_bignum.Nat.t array -> bytes
(** Each value in [ceil(width_bits / 8)] big-endian bytes — the
    ciphertext encoding ([width_bits] = the scheme's [z]).  Raises
    [Invalid_argument] if a value exceeds the width. *)

val encode_nats_into : width_bits:int -> Spe_bignum.Nat.t array -> bytes -> pos:int -> int
(** In-place variant of {!encode_nats}; returns the end position. *)

val decode_nats : width_bits:int -> count:int -> bytes -> Spe_bignum.Nat.t array

val encode_bitset : bool array -> bytes
(** One bit per flag, padded to a whole byte — the Protocol 2 verdict
    vector. *)

val encode_bitset_into : bool array -> bytes -> pos:int -> int
(** In-place variant of {!encode_bitset}; returns the end position. *)

val decode_bitset : count:int -> bytes -> bool array
