type 'r t = {
  parties : Wire.party array;
  programs : Runtime.program array;
  rounds : int;
  phases : (string * int) list;
  result : unit -> 'r;
}

let make ~parties ~programs ~rounds ~result =
  if Array.length parties <> Array.length programs then
    invalid_arg "Session.make: one program per party";
  if rounds < 0 then invalid_arg "Session.make: negative round count";
  Array.iteri
    (fun i p ->
      for j = 0 to i - 1 do
        if parties.(j) = p then invalid_arg "Session.make: duplicate party"
      done)
    parties;
  { parties; programs; rounds; phases = [ ("session", rounds) ]; result }

let with_label label t = { t with phases = [ (label, t.rounds) ] }

let with_epoch epoch t =
  if epoch < 0 then invalid_arg "Session.with_epoch: epoch must be >= 0";
  { t with
    phases = List.map (fun (l, n) -> (Printf.sprintf "e%d/%s" epoch l, n)) t.phases
  }

let map f t = { t with result = (fun () -> f (t.result ())) }

let program_of t party =
  let rec find k =
    if k >= Array.length t.parties then None
    else if t.parties.(k) = party then Some t.programs.(k)
    else find (k + 1)
  in
  find 0

(* Union keeping [a]'s order first — engine registration order decides
   inbox ordering, so this must be deterministic. *)
let union_parties a b =
  let extra =
    Array.to_list b.parties
    |> List.filter (fun p -> not (Array.exists (( = ) p) a.parties))
  in
  Array.append a.parties (Array.of_list extra)

let member parties p = Array.exists (( = ) p) parties

let seq a b =
  let parties = union_parties a b in
  let programs =
    Array.map
      (fun party ->
        let pa = program_of a party and pb = program_of b party in
        fun ~round ~inbox ->
          if round <= a.rounds then
            match pa with
            | Some f -> f ~round ~inbox
            | None ->
              if inbox <> [] then
                invalid_arg "Session.seq: message across phase boundary";
              []
          else if round = a.rounds + 1 then begin
            (* Phase A's finishing call: final inbox, mandatory silence;
               then phase B's first round on an empty inbox. *)
            (match pa with
            | Some f ->
              if f ~round ~inbox <> [] then
                invalid_arg "Session.seq: first phase overran its declared rounds"
            | None ->
              if inbox <> [] then
                invalid_arg "Session.seq: message across phase boundary");
            match pb with Some f -> f ~round:1 ~inbox:[] | None -> []
          end
          else
            match pb with
            | Some f -> f ~round:(round - a.rounds) ~inbox
            | None ->
              if inbox <> [] then
                invalid_arg "Session.seq: message across phase boundary";
              [])
      parties
  in
  {
    parties;
    programs;
    rounds = a.rounds + b.rounds;
    phases = a.phases @ b.phases;
    result =
      (fun () ->
        let ra = a.result () in
        let rb = b.result () in
        (ra, rb));
  }

(* The labels of a phase map, comma-joined — used by [par] and [all] to
   keep composed segments naming their source stages. *)
let phase_labels t = String.concat "," (List.map fst t.phases)

let par a b =
  Array.iter
    (fun p ->
      if member b.parties p then invalid_arg "Session.par: party sets must be disjoint")
    a.parties;
  let guard own_parties f ~round ~inbox =
    List.iter
      (fun msg ->
        if not (member own_parties msg.Runtime.src) then
          invalid_arg "Session.par: message across session boundary")
      inbox;
    f ~round ~inbox
  in
  let programs =
    Array.append
      (Array.map (guard a.parties) a.programs)
      (Array.map (guard b.parties) b.programs)
  in
  {
    parties = Array.append a.parties b.parties;
    programs;
    rounds = max a.rounds b.rounds;
    (* Interleaved rounds have no single owner, but the segment can
       still name both sides' stages so a timeout inside the par names
       the pipeline stage rather than an opaque "par". *)
    phases =
      [ (Printf.sprintf "par(%s|%s)" (phase_labels a) (phase_labels b),
         max a.rounds b.rounds) ];
    result =
      (fun () ->
        let ra = a.result () in
        let rb = b.result () in
        (ra, rb));
  }

(* The label a component's phase map gives to its local round [r]. *)
let phase_of_local phases r =
  let rec go segs r =
    match segs with
    | [] -> "session"
    | (label, len) :: rest -> if r <= len then label else go rest (r - len)
  in
  go phases r

let all sessions =
  match sessions with
  | [] -> invalid_arg "Session.all: need at least one session"
  | sessions ->
    let comps = Array.of_list sessions in
    let ns = Array.length comps in
    (* Static schedule: every global round is owned by exactly one
       component round [(s, r)] with [r <= rounds_s], in round-major
       [(r, s)] order, so the total is the sum of the component round
       counts and — because every declared component round is
       message-bearing — every global round is message-bearing too.
       Messages sent by component [s] at global round [g] are banked at
       [g + 1] and replayed at [s]'s next owned round (or at its
       finishing call, which fires at the first global round past its
       last owned one; the final flush lands on the engine's uncharged
       quiescent round). *)
    let max_rounds = Array.fold_left (fun acc c -> max acc c.rounds) 0 comps in
    let schedule =
      List.concat_map
        (fun r ->
          List.filter_map
            (fun s -> if comps.(s).rounds >= r then Some (s, r) else None)
            (List.init ns Fun.id))
        (List.init max_rounds (fun i -> i + 1))
      |> Array.of_list
    in
    let total = Array.length schedule in
    let last_global = Array.make ns 0 in
    Array.iteri (fun g (s, _) -> last_global.(s) <- g + 1) schedule;
    (* First-appearance union: components with identical party orders
       (the sharding case) keep their native inbox ordering. *)
    let parties =
      let acc = ref [] in
      Array.iter
        (fun c ->
          Array.iter (fun p -> if not (List.mem p !acc) then acc := p :: !acc) c.parties)
        comps;
      Array.of_list (List.rev !acc)
    in
    let programs =
      Array.map
        (fun party ->
          let subs = Array.map (fun c -> program_of c party) comps in
          let pending = Array.make ns [] in
          let finished = Array.make ns false in
          let bank s inbox =
            List.iter
              (fun msg ->
                if not (member comps.(s).parties msg.Runtime.src) then
                  invalid_arg "Session.all: message across session boundary")
              inbox;
            match subs.(s) with
            | Some _ -> pending.(s) <- pending.(s) @ inbox
            | None ->
              if inbox <> [] then invalid_arg "Session.all: message across session boundary"
          in
          let finish s =
            if not finished.(s) then begin
              finished.(s) <- true;
              (match subs.(s) with
              | Some f ->
                if f ~round:(comps.(s).rounds + 1) ~inbox:pending.(s) <> [] then
                  invalid_arg "Session.all: component overran its declared rounds"
              | None ->
                if pending.(s) <> [] then
                  invalid_arg "Session.all: message across session boundary");
              pending.(s) <- []
            end
          in
          fun ~round ~inbox ->
            (* 1. Bank the inbox with the component that owned the
               previous global round. *)
            if round >= 2 && round <= total + 1 then bank (fst schedule.(round - 2)) inbox;
            (* 2. Flush finishing calls for components whose last owned
               round has passed (mandatory silence, like [seq]). *)
            for s = 0 to ns - 1 do
              if (not finished.(s)) && last_global.(s) < round then finish s
            done;
            (* 3. Run the owner's local round on its banked inbox. *)
            if round <= total then begin
              let s, r = schedule.(round - 1) in
              match subs.(s) with
              | Some f ->
                let ib = pending.(s) in
                pending.(s) <- [];
                f ~round:r ~inbox:ib
              | None -> []
            end
            else [])
        parties
    in
    let phases =
      let rec build g acc =
        if g > total then List.rev acc
        else
          let s, r = schedule.(g - 1) in
          let label = Printf.sprintf "s%d:%s" s (phase_of_local comps.(s).phases r) in
          match acc with
          | (l, count) :: rest when l = label -> build (g + 1) ((l, count + 1) :: rest)
          | _ -> build (g + 1) ((label, 1) :: acc)
      in
      build 1 []
    in
    {
      parties;
      programs;
      rounds = total;
      phases;
      result = (fun () -> Array.map (fun c -> c.result ()) comps);
    }

let run ?(trace = Spe_obs.Trace.disabled ()) t ~wire =
  Spe_obs.Trace.set_phases trace t.phases;
  let engine = Runtime.create () in
  Array.iteri (fun k p -> Runtime.add_party engine p t.programs.(k)) t.parties;
  let executed =
    Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
        Runtime.run ~trace engine ~wire ~max_rounds:(t.rounds + 1))
  in
  if executed <> t.rounds then
    failwith
      (Printf.sprintf "Session.run: declared %d rounds but executed %d" t.rounds executed);
  t.result ()
