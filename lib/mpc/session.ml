type 'r t = {
  parties : Wire.party array;
  programs : Runtime.program array;
  rounds : int;
  phases : (string * int) list;
  result : unit -> 'r;
}

let make ~parties ~programs ~rounds ~result =
  if Array.length parties <> Array.length programs then
    invalid_arg "Session.make: one program per party";
  if rounds < 0 then invalid_arg "Session.make: negative round count";
  Array.iteri
    (fun i p ->
      for j = 0 to i - 1 do
        if parties.(j) = p then invalid_arg "Session.make: duplicate party"
      done)
    parties;
  { parties; programs; rounds; phases = [ ("session", rounds) ]; result }

let with_label label t = { t with phases = [ (label, t.rounds) ] }

let map f t = { t with result = (fun () -> f (t.result ())) }

let program_of t party =
  let rec find k =
    if k >= Array.length t.parties then None
    else if t.parties.(k) = party then Some t.programs.(k)
    else find (k + 1)
  in
  find 0

(* Union keeping [a]'s order first — engine registration order decides
   inbox ordering, so this must be deterministic. *)
let union_parties a b =
  let extra =
    Array.to_list b.parties
    |> List.filter (fun p -> not (Array.exists (( = ) p) a.parties))
  in
  Array.append a.parties (Array.of_list extra)

let member parties p = Array.exists (( = ) p) parties

let seq a b =
  let parties = union_parties a b in
  let programs =
    Array.map
      (fun party ->
        let pa = program_of a party and pb = program_of b party in
        fun ~round ~inbox ->
          if round <= a.rounds then
            match pa with
            | Some f -> f ~round ~inbox
            | None ->
              if inbox <> [] then
                invalid_arg "Session.seq: message across phase boundary";
              []
          else if round = a.rounds + 1 then begin
            (* Phase A's finishing call: final inbox, mandatory silence;
               then phase B's first round on an empty inbox. *)
            (match pa with
            | Some f ->
              if f ~round ~inbox <> [] then
                invalid_arg "Session.seq: first phase overran its declared rounds"
            | None ->
              if inbox <> [] then
                invalid_arg "Session.seq: message across phase boundary");
            match pb with Some f -> f ~round:1 ~inbox:[] | None -> []
          end
          else
            match pb with
            | Some f -> f ~round:(round - a.rounds) ~inbox
            | None ->
              if inbox <> [] then
                invalid_arg "Session.seq: message across phase boundary";
              [])
      parties
  in
  {
    parties;
    programs;
    rounds = a.rounds + b.rounds;
    phases = a.phases @ b.phases;
    result =
      (fun () ->
        let ra = a.result () in
        let rb = b.result () in
        (ra, rb));
  }

let par a b =
  Array.iter
    (fun p ->
      if member b.parties p then invalid_arg "Session.par: party sets must be disjoint")
    a.parties;
  let guard own_parties f ~round ~inbox =
    List.iter
      (fun msg ->
        if not (member own_parties msg.Runtime.src) then
          invalid_arg "Session.par: message across session boundary")
      inbox;
    f ~round ~inbox
  in
  let programs =
    Array.append
      (Array.map (guard a.parties) a.programs)
      (Array.map (guard b.parties) b.programs)
  in
  {
    parties = Array.append a.parties b.parties;
    programs;
    rounds = max a.rounds b.rounds;
    (* Interleaved rounds have no single owner — collapse to one
       segment covering the longer side. *)
    phases = [ ("par", max a.rounds b.rounds) ];
    result =
      (fun () ->
        let ra = a.result () in
        let rb = b.result () in
        (ra, rb));
  }

let run ?(trace = Spe_obs.Trace.disabled ()) t ~wire =
  Spe_obs.Trace.set_phases trace t.phases;
  let engine = Runtime.create () in
  Array.iteri (fun k p -> Runtime.add_party engine p t.programs.(k)) t.parties;
  let executed =
    Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
        Runtime.run ~trace engine ~wire ~max_rounds:(t.rounds + 1))
  in
  if executed <> t.rounds then
    failwith
      (Printf.sprintf "Session.run: declared %d rounds but executed %d" t.rounds executed);
  t.result ()
