(** Protocol 1 on the message-passing {!Runtime} — each player is an
    isolated state machine that sees only its own input and inbox.

    Functionally identical to {!Protocol1.run}; exists as a mechanised
    cross-check that the central implementation's data flow is honest
    (no party touches a value it was never sent).  The tests assert
    both implementations reconstruct the same sums and charge the same
    wire totals up to byte rounding.

    The party programs are exposed as a {!session} so that any engine
    can host them: the in-process {!Runtime.run} (via {!run}) or the
    [Spe_net] transport endpoints, which carry the same closures over
    real byte streams. *)

type session = {
  parties : Wire.party array;  (** All participants, in engine order. *)
  programs : Runtime.program array;  (** One per party, same order. *)
  result : unit -> Protocol1.result;
      (** Read the shares out of the party closures; call only after an
          engine has driven the programs to quiescence. *)
}

val max_rounds : int
(** A round budget that every instance terminates well within. *)

val make :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  modulus:int ->
  inputs:int array array ->
  session
(** Build the party programs without running them.  Each party draws
    its share randomness from a generator split off the supplied one at
    construction time, so two sessions built from equal-seeded
    generators compute identical shares on any engine. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  modulus:int ->
  inputs:int array array ->
  Protocol1.result
(** Same contract as {!Protocol1.run}: {!make} driven by
    {!Runtime.run}. *)
