(** Protocol 1 on the message-passing {!Runtime} — each player is an
    isolated state machine that sees only its own input and inbox.

    Functionally identical to {!Protocol1.run}; exists as a mechanised
    cross-check that the central implementation's data flow is honest
    (no party touches a value it was never sent).  The share randomness
    is drawn off the supplied generator in exactly the central draw
    order, so a session built from an equal-positioned generator
    computes {e bit-identical} shares to {!Protocol1.run} on any
    engine; the tests assert result equality and wire-total agreement
    up to byte rounding.

    The party programs are exposed as a {!Session.t} so that any engine
    can host them: the in-process {!Runtime.run} (via {!run}) or the
    [Spe_net] transport endpoints, which carry the same closures over
    real byte streams. *)

type session = Protocol1.result Session.t
(** Alias kept from the pre-{!Session} record; the fields live in
    {!Session.t} now. *)

val max_rounds : int
(** A round budget that every instance terminates well within (the
    session itself declares its exact round count). *)

val make :
  Spe_rng.State.t ->
  parties:Wire.party array ->
  modulus:int ->
  inputs:int array array ->
  session
(** Build the party programs without running them. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  modulus:int ->
  inputs:int array array ->
  Protocol1.result
(** Same contract as {!Protocol1.run}: {!make} driven by
    {!Session.run}. *)
