(* Plaintext packing: several small counters per public-key plaintext.

   A Protocol 6 plaintext is a time difference of delta_bits bits, but
   the key's plaintext space holds key_bits - 1 bits — encrypting one
   counter per ciphertext wastes almost the whole block.  Packing
   [slots] counters little-endian into one integer divides the
   ciphertext count (and the NM/MS message bits driven by it) by
   [slots].  The native-int ceiling of 61 bits, not the key, is the
   binding constraint on the decode side: unpacked plaintexts are
   recovered through [Cipher.decrypt_int]. *)

type spec = { slots : int; slot_bits : int }

exception Overflow of { index : int; value : int; slot_bits : int }

let () =
  Printexc.register_printer (function
    | Overflow { index; value; slot_bits } ->
      Some
        (Printf.sprintf
           "Pack.Overflow: value %d at index %d does not fit in a %d-bit slot" value index
           slot_bits)
    | _ -> None)

(* Native ints carry 62 value bits on 64-bit platforms; keep one as
   headroom so slot arithmetic never touches the sign bit. *)
let max_packed_bits = 61

let max_slots ~key_bits ~slot_bits =
  if slot_bits < 1 then invalid_arg "Pack.max_slots: slot_bits must be positive";
  if key_bits < 2 then invalid_arg "Pack.max_slots: key_bits must be at least 2";
  max 1 (min ((key_bits - 1) / slot_bits) (max_packed_bits / slot_bits))

let create ~slots ~slot_bits =
  if slots < 1 then invalid_arg "Pack.create: slots must be positive";
  if slot_bits < 1 then invalid_arg "Pack.create: slot_bits must be positive";
  if slots * slot_bits > max_packed_bits then
    invalid_arg "Pack.create: slots * slot_bits exceeds the 61-bit native-int bound";
  { slots; slot_bits }

let slots t = t.slots
let slot_bits t = t.slot_bits
let plain_bits t = t.slots * t.slot_bits
let chunks t ~q = (q + t.slots - 1) / t.slots

let pack t values =
  let q = Array.length values in
  let bound = 1 lsl t.slot_bits in
  Array.iteri
    (fun index value ->
      if value < 0 || value >= bound then
        raise (Overflow { index; value; slot_bits = t.slot_bits }))
    values;
  Array.init (chunks t ~q) (fun chunk ->
      let acc = ref 0 in
      for l = t.slots - 1 downto 0 do
        let idx = (chunk * t.slots) + l in
        if idx < q then acc := (!acc lsl t.slot_bits) lor values.(idx)
      done;
      !acc)

let unpack t ~q packed =
  if Array.length packed <> chunks t ~q then
    invalid_arg "Pack.unpack: chunk count does not match q";
  let mask = (1 lsl t.slot_bits) - 1 in
  Array.init q (fun idx ->
      let chunk = idx / t.slots and l = idx mod t.slots in
      (packed.(chunk) lsr (l * t.slot_bits)) land mask)
