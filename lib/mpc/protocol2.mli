(** Protocol 2 — secure computation of {e integer} additive shares of a
    sum of private inputs.

    Protocol 1 leaves [s1 + s2 = x mod S]; viewed as integers either
    [s1 + s2 = x] or [s1 + s2 = S + x].  Rather than run an expensive
    millionaires'-problem protocol to decide which, the paper's trick
    uses a curious-but-honest third party T (another provider or the
    host): player 2 draws a mask [r] uniform on [[0, S - A - 1]],
    player 1 sends [s1] and player 2 sends [s2 + r] to T, who announces
    whether [y = s1 + s2 + r >= S].  If so, player 2 replaces
    [s2 <- s2 - S], making [s1 + s2 = x] hold over the integers (with
    [s2] possibly negative).

    Theorem 4.1 bounds the leakage: player 2 sometimes learns a lower
    or an upper bound on the aggregate [x] (never on individual
    inputs), and so may T; both probabilities shrink as [S] grows.
    This module returns the exact leak each of them obtained — the
    Monte-Carlo material for the leakage experiment — and implements
    the batched variant of Sec. 5: all counters are processed in one
    pass, with the pair sequence sent to T permuted by a secret shared
    permutation so that T cannot attribute a leaked bound to a specific
    counter. *)

type leak =
  | Lower_bound of int  (** The player learned [x >= v], with [v > 0]. *)
  | Upper_bound of int  (** The player learned [x <= v], with [v < A]. *)
  | Nothing

val pp_leak : Format.formatter -> leak -> unit

type views = {
  p2_leaks : leak array;
      (** Per counter (original order): what player 2 inferred from the
          wrap-around announcement. *)
  p3_leaks : leak array;
      (** Per counter in T's {e permuted} order: what T inferred from
          [y].  The permutation is secret, so T cannot map these back
          to counters — which is exactly the point. *)
  p3_y : int array;  (** The [y] values T observed (permuted order). *)
}

type result = {
  share1 : int array;  (** Player 1's integer share, in [[0, S)]. *)
  share2 : int array;  (** Player 2's integer share, possibly negative. *)
  views : views;
}

val p2_leak : input_bound:int -> s2:int -> wrapped:bool -> leak
(** Theorem 4.1's classification of what player 2 infers from the wrap
    verdict given his (pre-adjustment) share — shared with the
    distributed twin, where player 2 classifies his own view. *)

val p3_leak : modulus:int -> input_bound:int -> y:int -> leak
(** What T infers from one observed [y] — shared with the distributed
    twin, where T classifies its own view. *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  parties:Wire.party array ->
  third_party:Wire.party ->
  modulus:int ->
  input_bound:int ->
  inputs:int array array ->
  result
(** [run st ~wire ~parties ~third_party ~modulus ~input_bound ~inputs]:
    [input_bound] is the paper's [A] — every entry and every aggregate
    sum must lie in [[0, A]]; [modulus] is [S > A].  [third_party] must
    not be among [parties.(0)], [parties.(1)].  Post-condition:
    [share1.(l) + share2.(l)] equals the l-th aggregate sum exactly.
    Consumes the Protocol 1 rounds plus 2 more (send-to-T, verdict). *)
