(** A round-based message-passing runtime.

    The protocol modules in this library are written "centrally": one
    function computes every party's values and declares the messages on
    the wire.  That style is concise and easy to test, but it cannot
    catch a class of bugs — a party using a value it never received.
    This runtime provides the stricter discipline: each party is a
    closure over its own private state that, once per round, sees
    {e only its inbox} and emits messages; the engine routes payloads,
    encodes them with {!Codec} to charge byte-exact sizes on the wire,
    and stops when a round goes silent.

    [Protocol1_distributed] and [Protocol2_distributed] re-implement
    the share protocols on this runtime; the test suite checks that
    they compute the same results and the same wire totals (up to byte
    rounding) as the central implementations — a mechanised argument
    that the central versions do not cheat. *)

type payload =
  | Ints of { modulus : int; values : int array }
      (** Residue vector, encoded fixed-width per the modulus. *)
  | Floats of float array  (** IEEE doubles. *)
  | Bits of bool array  (** One bit each, byte padded. *)
  | Nats of { width_bits : int; values : Spe_bignum.Nat.t array }
      (** Fixed-width big naturals — ciphertexts and keys (Protocol 6). *)
  | Tuples of { moduli : int array; rows : int array array }
      (** Fixed-shape records: every row holds one residue per modulus,
          each encoded fixed-width per its column modulus — the
          obfuscated action records and counter tables of Protocol 5. *)
  | Batch of payload list
      (** Several payloads in one message; charged the sum of the
          parts.  Lets a distributed protocol keep the central one-round
          one-message structure when a logical message mixes encodings
          (e.g. Protocol 6's action labels + ciphertext bundles). *)

val payload_bits : payload -> int
(** Exact encoded size, as charged on the wire. *)

type message = { src : Wire.party; dst : Wire.party; payload : payload }

type program = round:int -> inbox:message list -> message list
(** One party: called once per round with the messages addressed to it
    (in arrival order); returns its sends.  State lives in the
    closure. *)

type t

val create : unit -> t

val add_party : t -> Wire.party -> program -> unit
(** Raises [Invalid_argument] on a duplicate party. *)

val party_label : Wire.party -> string
(** The party's display name ([Host], [P1], …) as used in trace
    events — the [Spe_obs] layer identifies parties by string so it
    stays dependency-free. *)

val run : ?trace:Spe_obs.Trace.t -> t -> wire:Wire.t -> max_rounds:int -> int
(** Execute rounds until one produces no messages (the quiescent round
    is not charged) or [max_rounds] is hit (then [Failure] — a protocol
    that fails to terminate is a bug).  Every non-quiet round is
    declared on [wire] with each message's encoded size.  Returns the
    number of rounds executed.  Messages to unknown parties raise.

    When [trace] is given and recording, every round is wrapped in a
    [Round] span, every party step in a [Compute] span, and every
    message increments the [Messages] and [Payload_bytes] counters
    (tagged with the sending party and the round) — byte-for-byte the
    same quantities declared on [wire]. *)
