module State = Spe_rng.State
module Perm = Spe_rng.Perm

type result = { share1 : int array; share2 : int array }

type session = {
  parties : Wire.party array;
  programs : Runtime.program array;
  result : unit -> result;
}

let max_rounds = 12

let make st ~parties ~third_party ~modulus ~input_bound ~inputs =
  let m = Array.length parties in
  if m < 2 then invalid_arg "Protocol2_distributed.make: need at least two parties";
  if Array.exists (fun p -> p = third_party) parties then
    invalid_arg "Protocol2_distributed.make: third party must be outside the sharing parties";
  if input_bound < 0 || input_bound >= modulus then
    invalid_arg "Protocol2_distributed.make: need 0 <= A < S";
  let len = if Array.length inputs = 0 then 0 else Array.length inputs.(0) in
  (* Joint secrets of players 1 and 2 (shared-seed coin flipping). *)
  let joint = State.split st in
  let masks = Array.init len (fun _ -> State.next_int joint (modulus - input_bound)) in
  let perm = Perm.random joint len in
  let result1 = ref [||] and result2 = ref [||] in
  (* The y values travel as residues modulo 3S (s1 + s2 + r < 3S). *)
  let y_modulus = 3 * modulus in
  let sharing_programs =
    Array.mapi
      (fun k party ->
        let rng = State.split st in
        let input = inputs.(k) in
        let own_piece = ref [||] in
        let aggregate = ref [||] in
        let fold_inbox inbox s =
          List.iter
            (fun msg ->
              match msg.Runtime.payload with
              | Runtime.Ints { values; _ } ->
                Array.iteri (fun l v -> s.(l) <- (s.(l) + v) mod modulus) values
              | _ -> invalid_arg "Protocol2_distributed: unexpected payload")
            inbox
        in
        let send_masked_to_third s offset_masks =
          let payload =
            Array.init len (fun l -> s.(l) + offset_masks.(l))
          in
          [ { Runtime.src = party; dst = third_party;
              payload = Runtime.Ints { modulus = y_modulus; values = Perm.permute_array perm payload } } ]
        in
        let zero_masks = Array.make len 0 in
        let program ~round ~inbox =
          match round with
          | 1 ->
            let pieces = Array.init m (fun _ -> Array.make len 0) in
            Array.iteri
              (fun l x ->
                let partial = ref 0 in
                for j = 1 to m - 1 do
                  let r = State.next_int rng modulus in
                  pieces.(j).(l) <- r;
                  partial := (!partial + r) mod modulus
                done;
                pieces.(0).(l) <- ((x - !partial) mod modulus + modulus) mod modulus)
              input;
            own_piece := pieces.(k);
            List.filter_map
              (fun j ->
                if j = k then None
                else
                  Some
                    { Runtime.src = party; dst = parties.(j);
                      payload = Runtime.Ints { modulus; values = pieces.(j) } })
              (List.init m (fun j -> j))
          | 2 ->
            let s = Array.copy !own_piece in
            fold_inbox inbox s;
            aggregate := s;
            if k = 0 then begin
              (* Player 1's aggregate is final: ship it to the third
                 party immediately (permuted). *)
              result1 := s;
              send_masked_to_third s zero_masks
            end
            else if k = 1 then
              if m = 2 then begin
                (* No collects to wait for: mask and ship now. *)
                result2 := Array.copy s;
                send_masked_to_third s masks
              end
              else []
            else
              [ { Runtime.src = party; dst = parties.(1);
                  payload = Runtime.Ints { modulus; values = s } } ]
          | 3 when k = 1 && m > 2 ->
            let s = !aggregate in
            fold_inbox inbox s;
            result2 := Array.copy s;
            send_masked_to_third s masks
          | r when r >= 3 && k = 1 -> (
            (* The verdict round: adjust the final share. *)
            match inbox with
            | [ { Runtime.payload = Runtime.Bits verdicts; _ } ] ->
              let s = !result2 in
              for l = 0 to len - 1 do
                if verdicts.(Perm.apply perm l) then s.(l) <- s.(l) - modulus
              done;
              []
            | [] -> []
            | _ -> invalid_arg "Protocol2_distributed: unexpected verdict inbox")
          | _ -> []
        in
        program)
      parties
  in
  (* The third party: buffers the two masked vectors, then announces
     the wrap verdicts. *)
  let buffer = ref [] in
  let third_program ~round:_ ~inbox =
    buffer := !buffer @ inbox;
    match !buffer with
    | [ { Runtime.payload = Runtime.Ints { values = v1; _ }; _ };
        { Runtime.payload = Runtime.Ints { values = v2; _ }; _ } ] ->
      buffer := [];
      let verdicts = Array.init len (fun l -> v1.(l) + v2.(l) >= modulus) in
      [ { Runtime.src = third_party; dst = parties.(1); payload = Runtime.Bits verdicts } ]
    | _ -> []
  in
  {
    parties = Array.append parties [| third_party |];
    programs = Array.append sharing_programs [| third_program |];
    result = (fun () -> { share1 = !result1; share2 = !result2 });
  }

let run st ~wire ~parties ~third_party ~modulus ~input_bound ~inputs =
  let session = make st ~parties ~third_party ~modulus ~input_bound ~inputs in
  let engine = Runtime.create () in
  Array.iteri
    (fun k party -> Runtime.add_party engine party session.programs.(k))
    session.parties;
  let _rounds = Runtime.run engine ~wire ~max_rounds in
  session.result ()
