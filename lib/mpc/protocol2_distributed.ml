module State = Spe_rng.State
module Perm = Spe_rng.Perm

type result = { share1 : int array; share2 : int array }

type session = Protocol2.result Session.t

type handle = { share1 : unit -> int array; share2 : unit -> int array }

let max_rounds = 12

(* ------------------------------------------------------------------ *)
(* Pre-drawn randomness and shard slices                               *)
(* ------------------------------------------------------------------ *)

type randomness = {
  modulus : int;
  input_bound : int;
  rpieces : int array array array;
  masks : int array;
  perm : Perm.t;
}

let draw st ~m ~modulus ~input_bound ~length =
  if m < 2 then invalid_arg "Protocol2_distributed.draw: need at least two parties";
  if input_bound < 0 || input_bound >= modulus then
    invalid_arg "Protocol2_distributed.draw: need 0 <= A < S";
  let len = length in
  (* Mirror the central draw order exactly: the Protocol 1 pieces of
     party 0, then party 1, ..., then player 2's masks, then the shared
     batch permutation — so both shares are bit-identical to
     Protocol2.run from an equal-positioned generator. *)
  let rpieces =
    Array.init m (fun _ ->
        let pieces = Array.init m (fun _ -> Array.make len 0) in
        for l = 0 to len - 1 do
          for j = 1 to m - 1 do
            pieces.(j).(l) <- State.next_int st modulus
          done
        done;
        pieces)
  in
  let masks = Array.init len (fun _ -> State.next_int st (modulus - input_bound)) in
  let perm = Perm.random st len in
  { modulus; input_bound; rpieces; masks; perm }

type slice = { randomness : randomness; start : int; positions : int array }

let slice r ~start ~len =
  let full = Array.length r.masks in
  if start < 0 || len < 0 || start + len > full then
    invalid_arg "Protocol2_distributed.slice: out of range";
  let rpieces =
    Array.map (Array.map (fun row -> Array.sub row start len)) r.rpieces
  in
  let masks = Array.sub r.masks start len in
  (* The slice's counters keep their *global* permuted slots
     ([positions]); the induced permutation sends local index [i] to
     the rank of its global slot within the slice, so concatenating the
     per-slice permuted batches in slot order reassembles the full
     permuted batch.  No extra draws: the induced order is a pure
     function of the one shared permutation. *)
  let positions = Array.init len (fun i -> Perm.apply r.perm (start + i)) in
  let sorted = Array.copy positions in
  Array.sort compare sorted;
  let rank = Hashtbl.create (max 1 len) in
  Array.iteri (fun j p -> Hashtbl.replace rank p j) sorted;
  let perm = Perm.of_array (Array.map (Hashtbl.find rank) positions) in
  { randomness = { r with rpieces; masks; perm }; start; positions }

(* ------------------------------------------------------------------ *)
(* The verdict-less core: Protocol 1 aggregation plus the masked       *)
(* wrap-test vectors to the third party, who assembles y silently at   *)
(* its finishing call.                                                 *)
(* ------------------------------------------------------------------ *)

type core = {
  session : unit Session.t;
  share1 : unit -> int array;
  share2 : unit -> int array;
  y : unit -> int array;
  positions : int array;
  apply_wraps : bool array -> unit;
  p2_leaks : unit -> Protocol2.leak array;
}

let make_core ~parties ~third_party ~slice:sl ~inputs =
  let m = Array.length parties in
  if m < 2 then invalid_arg "Protocol2_distributed.make: need at least two parties";
  if third_party = parties.(0) || third_party = parties.(1) then
    invalid_arg "Protocol2_distributed.make: third party must differ from players 1 and 2";
  if Array.length inputs <> m then
    invalid_arg "Protocol2_distributed.make: one input thunk per party";
  if Array.length sl.randomness.rpieces <> m then
    invalid_arg "Protocol2_distributed.make: randomness drawn for a different party count";
  let { modulus; input_bound = _; rpieces; masks; perm } = sl.randomness in
  let len = Array.length masks in
  let result1 = ref [||] and result2 = ref [||] in
  let p2_leaks = ref [||] in
  (* The y values travel as residues modulo 3S (s1 + s2 + r < 3S). *)
  let y_modulus = 3 * modulus in
  let sharing_programs =
    Array.mapi
      (fun k party ->
        let pieces = rpieces.(k) in
        let own_piece = ref [||] in
        let aggregate = ref [||] in
        (* Only fold share pieces (modulus S): the merged-role case
           below can see the masked vectors (modulus 3S) in the same
           inbox. *)
        let fold_inbox inbox s =
          List.iter
            (fun msg ->
              match msg.Runtime.payload with
              | Runtime.Ints { modulus = md; values } when md = modulus ->
                Array.iteri (fun l v -> s.(l) <- (s.(l) + v) mod modulus) values
              | _ -> ())
            inbox
        in
        let send_masked_to_third s offset_masks =
          let payload = Array.init len (fun l -> s.(l) + offset_masks.(l)) in
          [ { Runtime.src = party; dst = third_party;
              payload = Runtime.Ints { modulus = y_modulus; values = Perm.permute_array perm payload } } ]
        in
        let zero_masks = Array.make len 0 in
        let program ~round ~inbox =
          match round with
          | 1 ->
            let input = inputs.(k) () in
            if Array.length input <> len then
              invalid_arg "Protocol2_distributed: input vector length mismatch";
            Array.iteri
              (fun l x ->
                let partial = ref 0 in
                for j = 1 to m - 1 do
                  partial := (!partial + pieces.(j).(l)) mod modulus
                done;
                pieces.(0).(l) <- ((x - !partial) mod modulus + modulus) mod modulus)
              input;
            own_piece := pieces.(k);
            List.filter_map
              (fun j ->
                if j = k then None
                else
                  Some
                    { Runtime.src = party; dst = parties.(j);
                      payload = Runtime.Ints { modulus; values = pieces.(j) } })
              (List.init m (fun j -> j))
          | 2 ->
            let s = Array.copy !own_piece in
            fold_inbox inbox s;
            aggregate := s;
            if k = 0 then begin
              (* Player 1's aggregate is final: ship it to the third
                 party immediately (permuted). *)
              result1 := s;
              send_masked_to_third s zero_masks
            end
            else if k = 1 then
              if m = 2 then begin
                (* No collects to wait for: mask and ship now. *)
                result2 := Array.copy s;
                send_masked_to_third s masks
              end
              else []
            else
              [ { Runtime.src = party; dst = parties.(1);
                  payload = Runtime.Ints { modulus; values = s } } ]
          | 3 when k = 1 && m > 2 ->
            let s = !aggregate in
            fold_inbox inbox s;
            result2 := Array.copy s;
            send_masked_to_third s masks
          | _ -> []
        in
        program)
      parties
  in
  (* The third party: collects the two masked vectors and assembles y,
     staying silent — announcing the wrap verdicts is a separate
     session ({!make_verdict}), so sharded pipelines can run many cores
     and a single full-batch verdict. *)
  let v1 = ref None and v2 = ref None in
  let y_ref = ref [||] in
  let third_program ~round:_ ~inbox =
    List.iter
      (fun msg ->
        match msg.Runtime.payload with
        | Runtime.Ints { modulus = md; values } when md = y_modulus ->
          if msg.Runtime.src = parties.(0) then v1 := Some values
          else if msg.Runtime.src = parties.(1) then v2 := Some values
        | _ -> ())
      inbox;
    (match (!v1, !v2) with
    | Some a, Some b ->
      v1 := None;
      v2 := None;
      y_ref := Array.init len (fun l -> a.(l) + b.(l))
    | _ -> ());
    []
  in
  (* When the third party is itself a sharing party (the central m > 2
     pipelines use provider 3), merge both roles into one program: the
     share traffic and the masked vectors are disjoint in round and in
     modulus, so each role filters its own messages. *)
  let session_parties, programs =
    match
      Array.to_list parties |> List.mapi (fun i p -> (i, p))
      |> List.find_opt (fun (_, p) -> p = third_party)
    with
    | None ->
      (Array.append parties [| third_party |],
       Array.append sharing_programs [| third_program |])
    | Some (t, _) ->
      let merged ~round ~inbox =
        sharing_programs.(t) ~round ~inbox @ third_program ~round ~inbox
      in
      let programs = Array.copy sharing_programs in
      programs.(t) <- merged;
      (parties, programs)
  in
  let rounds = if m = 2 then 2 else 3 in
  let session =
    Session.with_label "p2-shares"
      (Session.make ~parties:session_parties ~programs ~rounds ~result:(fun () -> ()))
  in
  let input_bound = sl.randomness.input_bound in
  let apply_wraps verdicts =
    (* The verdict vector is indexed by *global* permuted slot; this
       core's counter [l] sits at slot [positions.(l)].  The leak is
       classified from the pre-adjustment share, exactly as the central
       Protocol 2 does. *)
    let s = !result2 in
    let leaks = Array.make len Protocol2.Nothing in
    for l = 0 to len - 1 do
      let wrapped = verdicts.(sl.positions.(l)) in
      leaks.(l) <- Protocol2.p2_leak ~input_bound ~s2:s.(l) ~wrapped;
      if wrapped then s.(l) <- s.(l) - modulus
    done;
    p2_leaks := leaks
  in
  {
    session;
    share1 = (fun () -> !result1);
    share2 = (fun () -> !result2);
    y = (fun () -> !y_ref);
    positions = sl.positions;
    apply_wraps;
    p2_leaks = (fun () -> !p2_leaks);
  }

(* ------------------------------------------------------------------ *)
(* The verdict announcement: one full-batch bitset from the third      *)
(* party to player 2.                                                  *)
(* ------------------------------------------------------------------ *)

type verdict = {
  session : unit Session.t;
  p3_leaks : unit -> Protocol2.leak array;
  p3_y : unit -> int array;
}

let make_verdict ~p1 ~third_party ~modulus ~input_bound ~y_of ~apply =
  if p1 = third_party then
    invalid_arg "Protocol2_distributed.make_verdict: third party must differ from player 2";
  let p3_leaks = ref [||] and p3_y = ref [||] in
  let third_program ~round ~inbox:_ =
    if round = 1 then begin
      let y = y_of () in
      p3_y := y;
      p3_leaks := Array.map (fun yl -> Protocol2.p3_leak ~modulus ~input_bound ~y:yl) y;
      let verdicts = Array.map (fun yl -> yl >= modulus) y in
      [ { Runtime.src = third_party; dst = p1; payload = Runtime.Bits verdicts } ]
    end
    else []
  in
  let p1_program ~round:_ ~inbox =
    (match
       List.find_map
         (fun msg ->
           match msg.Runtime.payload with
           | Runtime.Bits verdicts -> Some verdicts
           | _ -> None)
         inbox
     with
    | Some verdicts -> apply verdicts
    | None -> ());
    []
  in
  let session =
    Session.with_label "p2-verdict"
      (Session.make
         ~parties:[| p1; third_party |]
         ~programs:[| p1_program; third_program |]
         ~rounds:1
         ~result:(fun () -> ()))
  in
  { session; p3_leaks = (fun () -> !p3_leaks); p3_y = (fun () -> !p3_y) }

(* ------------------------------------------------------------------ *)
(* The classic single-batch session: a full-length core sequenced with *)
(* its verdict — wire-for-wire the original monolithic session.        *)
(* ------------------------------------------------------------------ *)

let make_lazy st ~parties ~third_party ~modulus ~input_bound ~length ~inputs =
  let m = Array.length parties in
  if m < 2 then invalid_arg "Protocol2_distributed.make: need at least two parties";
  if third_party = parties.(0) || third_party = parties.(1) then
    invalid_arg "Protocol2_distributed.make: third party must differ from players 1 and 2";
  if input_bound < 0 || input_bound >= modulus then
    invalid_arg "Protocol2_distributed.make: need 0 <= A < S";
  if Array.length inputs <> m then
    invalid_arg "Protocol2_distributed.make: one input thunk per party";
  let r = draw st ~m ~modulus ~input_bound ~length in
  let sl = slice r ~start:0 ~len:length in
  let core = make_core ~parties ~third_party ~slice:sl ~inputs in
  (* The full slice's induced permutation is the shared permutation
     itself, so the core's y is already the full permuted batch. *)
  let verdict =
    make_verdict ~p1:parties.(1) ~third_party ~modulus ~input_bound ~y_of:core.y
      ~apply:core.apply_wraps
  in
  let session =
    Session.with_label "p2-shares"
      (Session.map
         (fun ((), ()) ->
           {
             Protocol2.share1 = core.share1 ();
             share2 = core.share2 ();
             views =
               {
                 Protocol2.p2_leaks = core.p2_leaks ();
                 p3_leaks = verdict.p3_leaks ();
                 p3_y = verdict.p3_y ();
               };
           })
         (Session.seq core.session verdict.session))
  in
  (session, { share1 = core.share1; share2 = core.share2 })

let make st ~parties ~third_party ~modulus ~input_bound ~inputs =
  if Array.exists (fun p -> p = third_party) parties then
    invalid_arg "Protocol2_distributed.make: third party must be outside the sharing parties";
  let length = if Array.length inputs = 0 then 0 else Array.length inputs.(0) in
  let session, _ =
    make_lazy st ~parties ~third_party ~modulus ~input_bound ~length
      ~inputs:(Array.map (fun input () -> input) inputs)
  in
  session

let run st ~wire ~parties ~third_party ~modulus ~input_bound ~inputs =
  let { Protocol2.share1; share2; _ } =
    Session.run (make st ~parties ~third_party ~modulus ~input_bound ~inputs) ~wire
  in
  ({ share1; share2 } : result)
