module Dist = Spe_rng.Dist

type session = float Session.t

let make st ~p1 ~p2 ~host ~a1 ~a2 =
  if a1 < 0 || a2 < 0 then invalid_arg "Protocol3_distributed.make: inputs must be non-negative";
  if p1 = p2 || p1 = host || p2 = host then
    invalid_arg "Protocol3_distributed.make: parties must be distinct";
  (* Steps 1-2: jointly drawn mask, consumed straight off the supplied
     generator exactly as Protocol3.run does — bit-identical masked
     values, hence a bit-identical quotient. *)
  let r = Dist.mask_pair st in
  let quotient = ref 0. in
  let sender value party ~round ~inbox:_ =
    if round = 1 then
      [ { Runtime.src = party; dst = host;
          payload = Runtime.Floats [| r *. float_of_int value |] } ]
    else []
  in
  let host_program ~round:_ ~inbox =
    let masked_of party =
      List.find_map
        (fun msg ->
          match msg.Runtime.payload with
          | Runtime.Floats v when msg.Runtime.src = party -> Some v.(0)
          | _ -> None)
        inbox
    in
    (match (masked_of p1, masked_of p2) with
    | Some m1, Some m2 -> quotient := (if m2 = 0. then 0. else m1 /. m2)
    | _ -> ());
    []
  in
  Session.with_label "p3-divide"
    (Session.make
       ~parties:[| p1; p2; host |]
       ~programs:[| sender a1 p1; sender a2 p2; host_program |]
       ~rounds:1
       ~result:(fun () -> !quotient))

let run st ~wire ~p1 ~p2 ~host ~a1 ~a2 =
  Session.run (make st ~p1 ~p2 ~host ~a1 ~a2) ~wire
