(** A first-class, engine-agnostic protocol session.

    A session packages everything an engine needs to execute a
    multi-party protocol — the parties, one {!Runtime.program} per
    party, the exact number of charged rounds, and a thunk that reads
    the result out of the party closures once an engine has driven the
    programs to quiescence.  [Protocol1_distributed],
    [Protocol2_distributed] and [Protocol3_distributed] each used to
    carry their own copy of this record; they now alias this type, and
    the Protocol 4/5/6 pipelines in [Spe_core] are built by {e
    composing} sessions with the combinators below.

    Any engine can host a session: the in-process {!Runtime.run} (via
    {!run}), or the [Spe_net] endpoints, which carry the same party
    closures over memory channels or sockets.

    {2 Composition semantics}

    {!seq} splices a second phase directly after the first with no idle
    round in between: phase A's programs see local rounds [1..rounds_a]
    plus one finishing call at [rounds_a + 1] (their final inbox, at
    which they must be silent), and phase B's programs start at the
    same global round with local round [1].  Dataflow between phases
    goes through the party closures — a phase-B program may read a
    ref (or call an accessor) that a phase-A program of the {e same}
    party filled.  Phases must be self-contained: a message across the
    phase boundary raises.

    {!par} interleaves two sessions over {e disjoint} party sets in the
    same rounds; each program sees only messages originating inside its
    own session. *)

type 'r t = {
  parties : Wire.party array;  (** All participants, in engine order. *)
  programs : Runtime.program array;  (** One per party, same order. *)
  rounds : int;
      (** Exact number of charged (message-bearing) rounds the session
          executes on any engine.  Engines use [rounds + 1] as the
          round budget; {!seq} uses it to splice phases. *)
  phases : (string * int) list;
      (** The {e phase map}: ordered [(label, rounds)] segments summing
          to {!field-rounds}.  {!make} produces one segment (relabel it
          with {!with_label}); {!seq} concatenates.  Engines install it
          on their {!Spe_obs.Trace} so metrics and timeout errors can
          name the pipeline stage an engine round belongs to. *)
  result : unit -> 'r;
      (** Read the result out of the party closures; call only after an
          engine has driven the programs to quiescence. *)
}

val make :
  parties:Wire.party array ->
  programs:Runtime.program array ->
  rounds:int ->
  result:(unit -> 'r) ->
  'r t
(** Raises [Invalid_argument] on mismatched array lengths, duplicate
    parties, or a negative round count.  The phase map is a single
    segment labelled ["session"] — see {!with_label}. *)

val with_label : string -> 'r t -> 'r t
(** [with_label label t] names [t]'s rounds for observability: its
    phase map becomes the single segment [(label, t.rounds)].  Protocol
    builders label their sessions (e.g. [p4-mask]) before composing
    them with {!seq} so per-phase metrics and timeout messages read
    well. *)

val with_epoch : int -> 'r t -> 'r t
(** [with_epoch e t] prefixes every segment of [t]'s phase map with
    [e<e>/] — e.g. [p4-mask] becomes [e3/p4-mask] — so traces, metrics
    and timeout errors from an epoch-delta plan ([Spe_core.Delta]) name
    the release epoch a round belongs to.  Raises [Invalid_argument] on
    a negative epoch. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-compose the result thunk. *)

val seq : 'a t -> 'b t -> ('a * 'b) t
(** [seq a b] runs [a] to completion, then [b], as one session over the
    union of both party sets (a party appearing in both runs its [a]
    program through [a]'s rounds, then its [b] program).  The combined
    round count is the sum and the phase maps concatenate.  Raises at
    execution time if a phase-A program sends after its declared
    rounds, or if a message crosses the phase boundary. *)

val par : 'a t -> 'b t -> ('a * 'b) t
(** [par a b] runs both sessions concurrently over the disjoint union
    of their party sets; the combined round count is the max.
    Interleaved rounds have no single owner, so the phase map is one
    segment — but it preserves both sides' labels as
    [par(<a labels>|<b labels>)], so a timeout inside the par still
    names the pipeline stages.  Raises [Invalid_argument] if the party
    sets intersect, and at execution time if a message crosses the
    session boundary. *)

val all : 'r t list -> 'r array t
(** [all sessions] multiplexes any number of sessions — with {e
    arbitrary, possibly overlapping} party sets — into one session by
    tagging rounds: every global round is owned by exactly one
    component round, in round-major [(round, session)] order, so the
    combined round count is the {e sum} of the component counts.
    Messages a component sends are banked by the wrapper programs and
    replayed at that component's next owned round; finishing calls
    (final inbox, mandatory silence) fire once a component's last owned
    round has passed.  This is what sharded pipelines need: [par]
    requires disjoint party sets, which per-shard sessions over the
    same providers violate.

    Requirements: every component round must be message-bearing (true
    of any session whose declared {!field-rounds} is honest — a silent
    round would already desynchronise {!run}), and components sharing
    parties should list them in a consistent order so banked inboxes
    replay in each component's native delivery order (shard sessions
    built from one template do).

    The phase map tags each component's segments as
    [s<i>:<component label>]; the result is the array of component
    results in input order.  Raises [Invalid_argument] on an empty
    list, at execution time on a message across a session boundary, or
    if a component sends at its finishing call. *)

val run : ?trace:Spe_obs.Trace.t -> 'r t -> wire:Wire.t -> 'r
(** Drive the session with the in-process {!Runtime.run} and return the
    result.  Raises [Failure] if the executed round count differs from
    the declared {!field-rounds} — a mis-declared session would silently
    desynchronise {!seq}, so this is checked on every run.

    When [trace] is given, the session's phase map is installed on it,
    the whole execution is wrapped in a [Session] span, and
    {!Runtime.run} records per-round spans and per-message counters —
    see {!Spe_obs.Trace}. *)
