(** Plaintext packing: several small counters per public-key plaintext.

    A Protocol 6 plaintext is one time difference of [delta_bits] bits,
    while the key's plaintext space holds [key_bits - 1] bits;
    encrypting one counter per ciphertext wastes almost the whole
    block.  A {!spec} lays [slots] counters of [slot_bits] bits each
    little-endian into one integer, dividing the ciphertext count —
    and with it the NM/MS rows of the Table 2 cost model — by [slots].

    Every value is bounds-checked on the way in ({!Overflow} carries
    the offending index and value), and the packed width is capped at
    61 bits because the decode side recovers plaintexts through
    [Cipher.decrypt_int], which returns a native [int].
    PERFORMANCE.md works the slot arithmetic through a full example. *)

type spec
(** A packing layout: slot count and per-slot width. *)

exception Overflow of { index : int; value : int; slot_bits : int }
(** Raised by {!pack} when [values.(index)] is negative or does not
    fit in [slot_bits] bits. *)

val max_packed_bits : int
(** The 61-bit cap on [slots * slot_bits]: native ints carry 62 value
    bits on 64-bit platforms, one kept as headroom. *)

val max_slots : key_bits:int -> slot_bits:int -> int
(** [max_slots ~key_bits ~slot_bits] is the widest admissible slot
    count for a key of [key_bits] bits: at least 1, and bounded by
    both the key's plaintext space ([key_bits - 1] bits) and
    {!max_packed_bits}. *)

val create : slots:int -> slot_bits:int -> spec
(** Raises [Invalid_argument] unless [slots >= 1], [slot_bits >= 1]
    and [slots * slot_bits <= max_packed_bits]. *)

val slots : spec -> int
val slot_bits : spec -> int

val plain_bits : spec -> int
(** [slots * slot_bits]: the plaintext width a key must hold — pass it
    to keygen as [?plain_bits] to get a typed error instead of silent
    wrapping. *)

val chunks : spec -> q:int -> int
(** [ceil(q / slots)]: plaintexts needed for a vector of [q] values. *)

val pack : spec -> int array -> int array
(** [pack t values] lays consecutive groups of [slots t] values into
    one integer each, little-endian; the result has [chunks t ~q]
    entries.  Raises {!Overflow} on any out-of-range value. *)

val unpack : spec -> q:int -> int array -> int array
(** Inverse of {!pack} for a vector of [q] values.  Raises
    [Invalid_argument] if the chunk count does not match [q]. *)
