(** Protocol 3 on the message-passing {!Runtime}, completing the
    distributed-twin validation set (Protocols 1-3).

    Players 1 and 2 hold the private integers; the host receives the
    masked reals and divides.  The joint mask (Steps 1-2) is consumed
    off the supplied generator in the central draw order, so the
    quotient is bit-identical to [Protocol3.run] on any engine. *)

type session = float Session.t

val make :
  Spe_rng.State.t ->
  p1:Wire.party ->
  p2:Wire.party ->
  host:Wire.party ->
  a1:int ->
  a2:int ->
  session
(** Build the three party programs without running them; the session
    result is the quotient the host computed (zero on a zero
    denominator, as in [Protocol3.run]). *)

val run :
  Spe_rng.State.t ->
  wire:Wire.t ->
  p1:Wire.party ->
  p2:Wire.party ->
  host:Wire.party ->
  a1:int ->
  a2:int ->
  float
(** {!make} driven by {!Session.run}. *)
