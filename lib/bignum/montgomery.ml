(* Word-level Montgomery multiplication (CIOS) over Nat's base-2^30
   limbs.  All intermediate products fit the 63-bit native int:
   (2^30 - 1)^2 + 2 * (2^30 - 1) < 2^61. *)

let limb_bits = Nat.limb_bits
let limb_mask = (1 lsl limb_bits) - 1

type t = {
  modulus : Nat.t;
  n : int array;  (* modulus limbs, width k *)
  k : int;
  n0_inv : int;  (* -modulus^-1 mod 2^limb_bits *)
  r2 : int array;  (* R^2 mod modulus, width k *)
  one_mont : int array;  (* R mod modulus, width k *)
}

let modulus ctx = ctx.modulus

(* Inverse of an odd limb modulo 2^limb_bits by Newton iteration:
   each step doubles the number of correct low bits. *)
let inv_limb m0 =
  let inv = ref m0 in
  for _ = 1 to 6 do
    inv := !inv * (2 - (m0 * !inv)) land limb_mask
  done;
  !inv land limb_mask

(* One CIOS pass: result = a * b * R^-1 mod modulus, operands in
   Montgomery form, arrays of width k. *)
let mont_mul ctx a b =
  let k = ctx.k in
  let t = Array.make (k + 2) 0 in
  for i = 0 to k - 1 do
    (* t += a.(i) * b *)
    let ai = a.(i) in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = t.(j) + (ai * b.(j)) + !c in
      t.(j) <- s land limb_mask;
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k) <- s land limb_mask;
    t.(k + 1) <- t.(k + 1) + (s lsr limb_bits);
    (* t += m * modulus with m chosen to zero the low limb, then shift. *)
    let m = t.(0) * ctx.n0_inv land limb_mask in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = t.(j) + (m * ctx.n.(j)) + !c in
      t.(j) <- s land limb_mask;
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k) <- s land limb_mask;
    t.(k + 1) <- t.(k + 1) + (s lsr limb_bits);
    (* Divide by the base: t.(0) is zero by construction. *)
    for j = 0 to k do
      t.(j) <- t.(j + 1)
    done;
    t.(k + 1) <- 0
  done;
  (* Conditional subtraction: t < 2 * modulus at this point. *)
  let ge_modulus =
    if t.(k) > 0 then true
    else begin
      let rec cmp j = if j < 0 then true else if t.(j) <> ctx.n.(j) then t.(j) > ctx.n.(j) else cmp (j - 1) in
      cmp (k - 1)
    end
  in
  let out = Array.make ctx.k 0 in
  if ge_modulus then begin
    let borrow = ref 0 in
    for j = 0 to k - 1 do
      let d = t.(j) - ctx.n.(j) - !borrow in
      if d < 0 then begin
        out.(j) <- d + (1 lsl limb_bits);
        borrow := 1
      end
      else begin
        out.(j) <- d;
        borrow := 0
      end
    done
  end
  else Array.blit t 0 out 0 k;
  out

let create modulus =
  if Nat.is_even modulus || Nat.compare modulus (Nat.of_int 3) < 0 then
    invalid_arg "Montgomery.create: modulus must be odd and >= 3";
  let k = Nat.num_limbs modulus in
  let n = Nat.to_limbs modulus ~width:k in
  let n0_inv = limb_mask land ((1 lsl limb_bits) - inv_limb n.(0)) in
  let r = Nat.shift_left Nat.one (limb_bits * k) in
  let r2 = Nat.to_limbs (Nat.rem (Nat.mul r r) modulus) ~width:k in
  let one_mont = Nat.to_limbs (Nat.rem r modulus) ~width:k in
  { modulus; n; k; n0_inv; r2; one_mont }

let to_mont ctx x =
  let x = Nat.rem x ctx.modulus in
  mont_mul ctx (Nat.to_limbs x ~width:ctx.k) ctx.r2 |> Nat.of_limbs

let of_mont ctx x =
  let one = Array.make ctx.k 0 in
  one.(0) <- 1;
  mont_mul ctx (Nat.to_limbs x ~width:ctx.k) one |> Nat.of_limbs

let mul ctx a b =
  Nat.of_limbs (mont_mul ctx (Nat.to_limbs a ~width:ctx.k) (Nat.to_limbs b ~width:ctx.k))

let pow ctx ~base ~exp =
  let base_m = Nat.to_limbs (to_mont ctx base) ~width:ctx.k in
  let acc = ref (Array.copy ctx.one_mont) in
  for i = Nat.bit_length exp - 1 downto 0 do
    acc := mont_mul ctx !acc !acc;
    if Nat.test_bit exp i then acc := mont_mul ctx !acc base_m
  done;
  of_mont ctx (Nat.of_limbs !acc)

(* Limb-level access for the sibling [Fixed_base] module. *)
let width ctx = ctx.k
let one_mont_limbs ctx = Array.copy ctx.one_mont
let to_mont_limbs ctx x = Nat.to_limbs (to_mont ctx x) ~width:ctx.k
let of_mont_limbs ctx a = of_mont ctx (Nat.of_limbs a)
let mul_limbs = mont_mul
