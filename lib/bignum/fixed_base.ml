(* Fixed-base window exponentiation over the Montgomery core.

   The table stores, for every w-bit digit position i and every digit
   value d, the Montgomery form of base^(d * 2^(w*i)).  An exponent of
   e bits then costs at most ceil(e / w) - 1 multiplications and no
   squarings, against ~1.5 * e multiplications for binary
   square-and-multiply: the squaring chain is paid once, at table
   build time, and amortised across every later exponentiation with
   the same base (Paillier's per-key randomness base in Protocol 6).

   Memory: ceil(max_exp_bits / w) positions * (2^w - 1) entries * k
   limbs.  The default w = 4 keeps a 2048-bit table near 1 MB. *)

type t = {
  ctx : Montgomery.t;
  window : int;
  table : int array array array;
      (* table.(i).(d - 1) = base^(d * 2^(window * i)) in Montgomery
         form, d in [1, 2^window). *)
  max_exp_bits : int;
}

let default_window = 4

let create ?(window = default_window) ctx ~base ~max_exp_bits =
  if window < 1 || window > 8 then invalid_arg "Fixed_base.create: window must be in [1, 8]";
  if max_exp_bits < 1 then invalid_arg "Fixed_base.create: max_exp_bits must be positive";
  let digits = (1 lsl window) - 1 in
  let positions = (max_exp_bits + window - 1) / window in
  let base_m = Montgomery.to_mont_limbs ctx base in
  let table =
    Array.init positions (fun _ -> Array.make digits [||])
  in
  (* Walk the powers base^1, base^2, base^3, ... once; every (position,
     digit) slot is one further multiplication by the running power's
     position base. *)
  let cursor = ref base_m in
  for i = 0 to positions - 1 do
    table.(i).(0) <- !cursor;
    for d = 2 to digits do
      table.(i).(d - 1) <- Montgomery.mul_limbs ctx table.(i).(d - 2) !cursor
    done;
    if i < positions - 1 then begin
      (* Advance to base^(2^(window * (i + 1))): square window times. *)
      let next = ref table.(i).(digits - 1) in
      (* table.(i).(digits - 1) = base^((2^w - 1) * 2^(w*i)); one more
         multiply by the position base gives base^(2^(w*(i+1))). *)
      next := Montgomery.mul_limbs ctx !next table.(i).(0);
      cursor := !next
    end
  done;
  { ctx; window; table; max_exp_bits }

let max_exp_bits t = t.max_exp_bits

let pow t exp =
  let bits = Nat.bit_length exp in
  if bits > t.max_exp_bits then invalid_arg "Fixed_base.pow: exponent exceeds table";
  let positions = (bits + t.window - 1) / t.window in
  let acc = ref (Montgomery.one_mont_limbs t.ctx) in
  for i = 0 to positions - 1 do
    let d = ref 0 in
    for b = t.window - 1 downto 0 do
      let bit = (i * t.window) + b in
      d := (!d lsl 1) lor (if bit < bits && Nat.test_bit exp bit then 1 else 0)
    done;
    if !d > 0 then acc := Montgomery.mul_limbs t.ctx !acc t.table.(i).(!d - 1)
  done;
  Montgomery.of_mont_limbs t.ctx !acc
