(** Fixed-base window exponentiation for repeated-base workloads.

    When the {e same} base is raised to many different exponents under
    one odd modulus — Paillier's per-key randomness base in Protocol 6
    encrypts thousands of plaintexts under a single key — the squaring
    chain of binary exponentiation is redundant work: it depends only
    on the base.  A fixed-base window table precomputes
    [base^(d * 2^(w*i))] in Montgomery form for every [w]-bit digit
    position [i] and digit value [d], after which each exponentiation
    is at most [ceil(e / w)] Montgomery multiplications and {e zero}
    squarings, against [~1.5 e] multiplications for
    {!Montgomery.pow} — roughly a [6x] reduction at the default
    [w = 4].  PERFORMANCE.md derives the exact operation counts and
    the bench measures them. *)

type t
(** A precomputed window table for one (modulus, base) pair. *)

val default_window : int
(** The default digit width [w = 4]: 15 table entries per digit
    position, the sweet spot for 256–2048-bit exponents. *)

val create : ?window:int -> Montgomery.t -> base:Nat.t -> max_exp_bits:int -> t
(** [create ctx ~base ~max_exp_bits] builds the table covering
    exponents of up to [max_exp_bits] bits.  Build cost is one
    Montgomery multiplication per table entry
    ([ceil(max_exp_bits / w) * (2^w - 1)]).  Raises
    [Invalid_argument] if [window] is outside [[1, 8]] or
    [max_exp_bits < 1]. *)

val max_exp_bits : t -> int
(** The largest exponent bit length the table covers. *)

val pow : t -> Nat.t -> Nat.t
(** [pow t exp] is [base^exp mod modulus] in ordinary (non-Montgomery)
    form.  Raises [Invalid_argument] if [exp] is wider than
    [max_exp_bits]. *)
