(** Montgomery modular arithmetic for odd moduli.

    {!Nat.mod_pow} reduces with a full Knuth-D division after every
    multiplication; Montgomery form replaces those divisions with
    shift-and-add reductions, which is the standard speed-up for the
    RSA/Paillier workloads of Protocol 6 (the bench quantifies the
    factor).  The context precomputes [R = 2^(limb_bits * k) > modulus],
    [R^2 mod modulus] and [-modulus^-1 mod 2^limb_bits]. *)

type t
(** A reduction context for one odd modulus. *)

val create : Nat.t -> t
(** [create modulus] builds a context.  Raises [Invalid_argument] if
    the modulus is even or < 3. *)

val modulus : t -> Nat.t

val to_mont : t -> Nat.t -> Nat.t
(** Map [x] (reduced mod modulus first) into Montgomery form
    [x * R mod modulus]. *)

val of_mont : t -> Nat.t -> Nat.t
(** Inverse mapping. *)

val mul : t -> Nat.t -> Nat.t -> Nat.t
(** Product of two Montgomery-form values, in Montgomery form. *)

val pow : t -> base:Nat.t -> exp:Nat.t -> Nat.t
(** [pow ctx ~base ~exp] is [base^exp mod modulus] for ordinary
    (non-Montgomery) [base], returned in ordinary form — a drop-in
    replacement for {!Nat.mod_pow} on odd moduli. *)

(**/**)

(* Limb-level access for the sibling [Fixed_base] module: raw
   Montgomery-form limb arrays of the context's width, avoiding a
   Nat round-trip per multiplication.  Not part of the public API. *)
val width : t -> int
val one_mont_limbs : t -> int array
val to_mont_limbs : t -> Nat.t -> int array
val of_mont_limbs : t -> int array -> Nat.t
val mul_limbs : t -> int array -> int array -> int array

(**/**)
