(* The schedule document: pure data, a strict spe-schedule/1 JSON
   round-trip, and the compiler from per-frame events to a
   Spe_net.Fault policy.  Everything stateful (running the plan,
   applying kills and skew) lives in Harness. *)

module Json = Spe_obs.Obs_io.Json
module Fault = Spe_net.Fault

type pipeline = Links | Scores
type engine = Memory | Socket

type workload = {
  wseed : int;
  users : int;
  edges : int;
  actions : int;
  providers : int;
}

type event =
  | Drop of { session : int; src : int; dst : int; nth : int }
  | Delay of { session : int; src : int; dst : int; nth : int; seconds : float }
  | Duplicate of { session : int; src : int; dst : int; nth : int }
  | Blackhole of { session : int; src : int; dst : int; from_nth : int }
  | Kill of { session : int }
  | Skew of { factor : float }

type t = {
  seed : int;
  pipeline : pipeline;
  engine : engine;
  shards : int;
  workers : int;
  workload : workload;
  events : event list;
}

let schema = "spe-schedule/1"
let pipeline_name = function Links -> "links" | Scores -> "scores"
let engine_name = function Memory -> "memory" | Socket -> "socket"

(* A replayed schedule pins its own pipeline; silently running it when
   the operator asked for the other one would "pass" the wrong target.
   [requested = None] means no restriction (--target both). *)
let check_replay_target t ~requested =
  match requested with
  | None -> Ok ()
  | Some p when p = t.pipeline -> Ok ()
  | Some p ->
    Error
      (Printf.sprintf
         "schedule targets the %s pipeline but --target %s was requested; rerun with \
          --target %s (or both)"
         (pipeline_name t.pipeline) (pipeline_name p) (pipeline_name t.pipeline))

let skew t =
  List.fold_left
    (fun acc ev -> match ev with Skew { factor } -> acc *. factor | _ -> acc)
    1.0 t.events

let fatal t =
  List.find_opt
    (function Kill _ | Blackhole _ -> true | _ -> false)
    t.events

let kills_session t session =
  List.exists (function Kill k -> k.session = session | _ -> false) t.events

let fault_for t ~session =
  (* Bucket this session's per-frame events by directed link.  Lookups
     happen on the sender's hot path, but these tables are tiny (the
     generator emits a handful of events) and the policy's own mutex
     already serializes decisions. *)
  let drops = Hashtbl.create 8 (* (src, dst) -> nth, multi *) in
  let dups = Hashtbl.create 8 (* (src, dst) -> nth, multi *) in
  let delays = Hashtbl.create 8 (* (src, dst, nth) -> seconds *) in
  let holes = Hashtbl.create 4 (* (src, dst) -> earliest from_nth *) in
  let any = ref false in
  List.iter
    (fun ev ->
      match ev with
      | Drop e when e.session = session ->
        any := true;
        Hashtbl.add drops (e.src, e.dst) e.nth
      | Duplicate e when e.session = session ->
        any := true;
        Hashtbl.add dups (e.src, e.dst) e.nth
      | Delay e when e.session = session ->
        any := true;
        Hashtbl.replace delays (e.src, e.dst, e.nth) e.seconds
      | Blackhole e when e.session = session ->
        any := true;
        let prev =
          Option.value ~default:max_int (Hashtbl.find_opt holes (e.src, e.dst))
        in
        Hashtbl.replace holes (e.src, e.dst) (min prev e.from_nth)
      | _ -> ())
    t.events;
  if not !any then None
  else
    let counters = Hashtbl.create 8 (* (src, dst) -> frames seen *) in
    Some
      (Fault.make (fun ~src ~dst ->
           let n =
             Option.value ~default:0 (Hashtbl.find_opt counters (src, dst))
           in
           Hashtbl.replace counters (src, dst) (n + 1);
           match Hashtbl.find_opt holes (src, dst) with
           | Some from_nth when n >= from_nth -> Fault.Drop
           | _ ->
             if List.mem n (Hashtbl.find_all drops (src, dst)) then Fault.Drop
             else (
               match Hashtbl.find_opt delays (src, dst, n) with
               | Some seconds -> Fault.Delay seconds
               | None ->
                 if List.mem n (Hashtbl.find_all dups (src, dst)) then
                   Fault.Duplicate
                 else Fault.Deliver)))

(* ---------- JSON ---------- *)

let fail fmt = Printf.ksprintf failwith fmt

let as_int key j =
  match Json.member key j with
  | Json.Int i -> i
  | _ -> fail "Schedule: field %S must be an integer" key

let as_float key j =
  match Json.member key j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> fail "Schedule: field %S must be a number" key

let as_string key j =
  match Json.member key j with
  | Json.String s -> s
  | _ -> fail "Schedule: field %S must be a string" key

let event_to_json ev =
  let link kind session src dst tail =
    Json.Obj
      ([
         ("kind", Json.String kind);
         ("session", Json.Int session);
         ("src", Json.Int src);
         ("dst", Json.Int dst);
       ]
      @ tail)
  in
  match ev with
  | Drop e -> link "drop" e.session e.src e.dst [ ("nth", Json.Int e.nth) ]
  | Delay e ->
    link "delay" e.session e.src e.dst
      [ ("nth", Json.Int e.nth); ("seconds", Json.Float e.seconds) ]
  | Duplicate e ->
    link "duplicate" e.session e.src e.dst [ ("nth", Json.Int e.nth) ]
  | Blackhole e ->
    link "blackhole" e.session e.src e.dst
      [ ("from_nth", Json.Int e.from_nth) ]
  | Kill e ->
    Json.Obj [ ("kind", Json.String "kill"); ("session", Json.Int e.session) ]
  | Skew e ->
    Json.Obj [ ("kind", Json.String "skew"); ("factor", Json.Float e.factor) ]

let event_of_json j =
  match as_string "kind" j with
  | "drop" ->
    Drop
      {
        session = as_int "session" j;
        src = as_int "src" j;
        dst = as_int "dst" j;
        nth = as_int "nth" j;
      }
  | "delay" ->
    Delay
      {
        session = as_int "session" j;
        src = as_int "src" j;
        dst = as_int "dst" j;
        nth = as_int "nth" j;
        seconds = as_float "seconds" j;
      }
  | "duplicate" ->
    Duplicate
      {
        session = as_int "session" j;
        src = as_int "src" j;
        dst = as_int "dst" j;
        nth = as_int "nth" j;
      }
  | "blackhole" ->
    Blackhole
      {
        session = as_int "session" j;
        src = as_int "src" j;
        dst = as_int "dst" j;
        from_nth = as_int "from_nth" j;
      }
  | "kill" -> Kill { session = as_int "session" j }
  | "skew" -> Skew { factor = as_float "factor" j }
  | kind -> fail "Schedule: unknown event kind %S" kind

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("seed", Json.Int t.seed);
      ("pipeline", Json.String (pipeline_name t.pipeline));
      ("engine", Json.String (engine_name t.engine));
      ("shards", Json.Int t.shards);
      ("workers", Json.Int t.workers);
      ( "workload",
        Json.Obj
          [
            ("seed", Json.Int t.workload.wseed);
            ("users", Json.Int t.workload.users);
            ("edges", Json.Int t.workload.edges);
            ("actions", Json.Int t.workload.actions);
            ("providers", Json.Int t.workload.providers);
          ] );
      ("events", Json.List (List.map event_to_json t.events));
    ]

let of_json j =
  (match as_string "schema" j with
  | s when s = schema -> ()
  | s -> fail "Schedule: unsupported schema %S (want %S)" s schema);
  let pipeline =
    match as_string "pipeline" j with
    | "links" -> Links
    | "scores" -> Scores
    | s -> fail "Schedule: unknown pipeline %S" s
  in
  let engine =
    match as_string "engine" j with
    | "memory" -> Memory
    | "socket" -> Socket
    | s -> fail "Schedule: unknown engine %S" s
  in
  let w = Json.member "workload" j in
  let workload =
    {
      wseed = as_int "seed" w;
      users = as_int "users" w;
      edges = as_int "edges" w;
      actions = as_int "actions" w;
      providers = as_int "providers" w;
    }
  in
  let events =
    match Json.member "events" j with
    | Json.List evs -> List.map event_of_json evs
    | _ -> failwith "Schedule: field \"events\" must be a list"
  in
  {
    seed = as_int "seed" j;
    pipeline;
    engine;
    shards = as_int "shards" j;
    workers = as_int "workers" j;
    workload;
    events;
  }

let to_string t = Json.to_string ~pretty:true (to_json t) ^ "\n"
let of_string s = of_json (Json.of_string s)

let id t =
  String.sub
    (Digest.to_hex (Digest.string (Json.to_string ~pretty:false (to_json t))))
    0 12
