(** The daemon kill target: chaos at whole-party granularity.

    Forks one {!Spe_serve.Daemon} per party over a temp unix-domain
    roster, submits a burst of jobs, SIGKILLs one provider daemon
    mid-flight, and judges the aftermath with the schedule harness's
    oracle vocabulary:

    - {b termination}: every job gets a reply within
      {!Harness.wall_budget}, and every forked daemon is reaped — a
      dead peer must never hang a client or leak a process.
    - {b attribution}: failures carry a typed peer-death kind
      ([Peer_down] / [Round_timeout] / [Shard_failed]), never a generic
      rejection.
    - {b result}: completed jobs are bit-identical to the central
      [Driver] oracle.
    - {b recovery}: a probe job submitted after the burst still gets a
      typed reply — the host keeps serving with a dead provider. *)

val run : ?jobs:int -> seed:int -> Schedule.pipeline -> Harness.outcome
(** [jobs] (default 4) concurrent submissions; the seed picks which
    provider dies.  Deterministic up to OS timing of the kill. *)
