(* The daemon kill target: real OS-level party isolation.

   The in-process campaigns ({!Harness.run}) fault individual frames and
   pool workers inside one process; this module faults a whole party.
   It forks one {!Spe_serve.Daemon} per party over a temp unix-domain
   roster, submits a burst of jobs from a client, SIGKILLs one provider
   daemon mid-flight, and judges the aftermath with the same oracle
   vocabulary as the schedule harness:

   - {b termination}: every submitted job gets a reply within the wall
     budget — a killed peer must never hang a client — and every forked
     daemon is reaped at the end (no leaked processes).
   - {b attribution}: failed jobs carry a typed peer-death kind
     ([Peer_down], [Round_timeout] or [Shard_failed]), never a generic
     rejection.
   - {b result}: jobs that did complete are bit-identical to the
     central [Driver] oracle.
   - {b recovery}: after the kill, the host daemon still answers — a
     probe job submitted once the burst settled gets its own typed
     reply. *)

module Daemon = Spe_serve.Daemon
module Client = Spe_serve.Client
module Serve_proto = Spe_serve.Serve_proto
module Job = Spe_serve.Job
module Driver = Spe_core.Driver
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module State = Spe_rng.State

let fail oracle fmt = Printf.ksprintf (fun detail -> Harness.Fail { Harness.oracle; detail }) fmt

(* The same fixed workloads and configs as the schedule harness's
   oracle, expressed as a wire spec the daemons rebuild from. *)
let spec_of ~pseed = function
  | Schedule.Links ->
    {
      Serve_proto.default_spec with
      Serve_proto.pipeline = Serve_proto.Links;
      seed = pseed;
      shards = 3;
      h = 2;
      c_factor = 2.;
      modulus_bits = 40;
    }
  | Schedule.Scores ->
    {
      Serve_proto.default_spec with
      Serve_proto.pipeline = Serve_proto.Scores;
      seed = pseed;
      shards = 3;
      modulus_bits = 20;
      tau = 6;
      key_bits = 128;
    }

let oracle_reply pipeline ~pseed ~graph ~logs =
  match pipeline with
  | Schedule.Links ->
    let r =
      Driver.link_strengths_exclusive (State.create ~seed:pseed ()) ~graph ~logs
        (Protocol4.default_config ~h:2)
    in
    Serve_proto.Strengths r.Driver.strengths
  | Schedule.Scores ->
    let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
    let r =
      Driver.user_scores_exclusive (State.create ~seed:pseed ()) ~graph ~logs ~tau:6
        ~modulus:(1 lsl 20) config
    in
    Serve_proto.Scores r.Driver.scores

let peer_death_kind = function
  | Serve_proto.Peer_down | Serve_proto.Round_timeout | Serve_proto.Shard_failed -> true
  | Serve_proto.Rejected | Serve_proto.Busy_queue | Serve_proto.Other -> false

(* Reap every forked daemon; SIGKILL stragglers past the deadline.
   Returns the pids that had to be forced. *)
let reap_children pids ~deadline =
  let forced = ref [] in
  List.iter
    (fun pid ->
      let rec poll () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () >= deadline then begin
            forced := pid :: !forced;
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          end
          else begin
            Thread.delay 0.05;
            poll ()
          end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      poll ())
    pids;
  !forced

let run ?(jobs = 4) ~seed pipeline =
  let w = Harness.default_workload pipeline in
  let graph, logs = Harness.workload_inputs w in
  let pseed = w.Schedule.wseed + 1 in
  let spec = spec_of ~pseed pipeline in
  let m = w.Schedule.providers in
  let roster = Spe_net.Transport.Socket.temp_unix_addresses ~m:(m + 1) in
  let workload = { Job.graph; logs } in
  let config party =
    {
      (Daemon.default_config ~party ~roster) with
      Daemon.max_sessions = 2;
      (* Tight enough that even the slow failure path (a session whose
         dead peer the host never talks to directly) resolves well
         inside the wall budget; the workloads complete far faster. *)
      round_timeout = 5.;
      linger = 6.;
      dial_timeout = 15.;
    }
  in
  let pids =
    List.init (m + 1) (fun party -> Daemon.spawn (config party) workload)
  in
  let victim = 1 + (seed mod m) in
  let finally_reap () =
    reap_children pids ~deadline:(Unix.gettimeofday () +. 10.)
  in
  match Client.connect ~retry_for:15. roster.(0) with
  | exception Client.Connection_lost msg ->
    List.iter (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) pids;
    ignore (finally_reap ());
    fail "termination" "could not reach the host daemon: %s" msg
  | client ->
    let verdict =
      match
        let submitted = List.init jobs (fun _ -> Client.submit client spec) in
        (* Let the burst get into flight, then kill one provider. *)
        Thread.delay 0.3;
        (try Unix.kill (List.nth pids victim) Sys.sigkill with Unix.Unix_error _ -> ());
        let deadline = Unix.gettimeofday () +. Harness.wall_budget in
        let replies = Hashtbl.create 8 in
        let rec collect () =
          if Hashtbl.length replies < List.length submitted then
            match Client.next_reply client ~deadline with
            | None -> Error (fail "termination" "job replies missing after the kill: a client hung")
            | Some (job, outcome) ->
              Hashtbl.replace replies job outcome;
              collect ()
          else Ok ()
        in
        match collect () with
        | Error f -> f
        | Ok () -> (
          let expected = lazy (oracle_reply pipeline ~pseed ~graph ~logs) in
          let bad =
            List.filter_map
              (fun job ->
                match Hashtbl.find_opt replies job with
                | None -> Some (Printf.sprintf "job %d: no reply" job)
                | Some (Client.Busy _) ->
                  Some (Printf.sprintf "job %d: Busy from a near-empty queue" job)
                | Some (Client.Result (Serve_proto.Failed { kind; detail })) ->
                  if peer_death_kind kind then None
                  else
                    Some
                      (Printf.sprintf "job %d: untyped failure %s (%s)" job
                         (Serve_proto.failure_kind_name kind)
                         detail)
                | Some (Client.Result reply) ->
                  if reply = Lazy.force expected then None
                  else Some (Printf.sprintf "job %d: result differs from the central oracle" job))
              submitted
          in
          match bad with
          | _ :: _ -> fail "attribution" "%s" (String.concat "; " bad)
          | [] -> (
            (* Recovery probe: the host must still be answering. *)
            let probe = Client.submit client spec in
            match Client.next_reply client ~deadline:(Unix.gettimeofday () +. Harness.wall_budget) with
            | None -> fail "termination" "post-kill probe job got no reply: daemon wedged"
            | Some (job, _) when job <> probe ->
              fail "termination" "post-kill probe got a stale reply for job %d" job
            | Some (_, Client.Result (Serve_proto.Failed { kind; _ }))
              when peer_death_kind kind ->
              Harness.Pass
            | Some (_, Client.Result (Serve_proto.Failed { kind; detail })) ->
              fail "attribution" "post-kill probe failed untyped: %s (%s)"
                (Serve_proto.failure_kind_name kind) detail
            | Some (_, _) ->
              (* A full result would mean the dead peer took part. *)
              fail "result" "post-kill probe succeeded despite a dead provider"))
      with
      | verdict -> verdict
      | exception Client.Connection_lost msg ->
        fail "termination" "client connection died: %s" msg
    in
    Client.close client;
    ignore (Client.shutdown_roster ~timeout:10. roster);
    let forced = finally_reap () in
    (match verdict with
    | Harness.Pass when forced <> [] ->
      fail "termination" "%d daemon(s) had to be SIGKILLed at cleanup" (List.length forced)
    | v -> v)
