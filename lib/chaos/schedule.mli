(** A fault schedule: the reproducible script one chaos run executes.

    A schedule pins everything a run needs to be replayed bit-for-bit:
    the workload generator parameters, which pipeline and transport
    engine to drive, the shard/worker cut, and a list of {!event}s.
    Per-frame events key on the {e n-th frame of one directed link
    within one shard session} — each sender emits its frames to a given
    link in program order, so that index is deterministic where a
    global transmission index (racing across sender threads) would not
    be.  {!fault_for} compiles the per-frame events into a
    {!Spe_net.Fault} policy for one session; worker kills and timeout
    skew are applied by the harness itself.

    Schedules serialize as versioned [spe-schedule/1] JSON (strict
    reader, like the [spe-metrics] documents) so a shrunk reproducer
    from CI replays exactly via [spe chaos --replay FILE]. *)

type pipeline =
  | Links  (** The Sec. 5.1 link-strength pipeline (Protocol 4, exclusive). *)
  | Scores  (** The Sec. 6 user-scores pipeline (Protocol 6, exclusive). *)

type engine =
  | Memory  (** {!Spe_net.Transport.Memory} shard groups. *)
  | Socket  (** Socketpair {!Spe_net.Transport.Socket} shard groups. *)

type workload = {
  wseed : int;  (** Seed for the graph/log generators (and, +1, the pipeline). *)
  users : int;
  edges : int;
  actions : int;
  providers : int;
}
(** Everything needed to regenerate the run's inputs from scratch. *)

type event =
  | Drop of { session : int; src : int; dst : int; nth : int }
      (** Lose the [nth] frame (0-based) on the [src -> dst] link of
          shard session [session] (global index across plan stages). *)
  | Delay of { session : int; src : int; dst : int; nth : int; seconds : float }
      (** Hold that frame for [seconds] before delivering it. *)
  | Duplicate of { session : int; src : int; dst : int; nth : int }
      (** Deliver that frame twice. *)
  | Blackhole of { session : int; src : int; dst : int; from_nth : int }
      (** Drop every frame on the link from index [from_nth] on — a
          link that dies mid-run.  Fatal: the run is expected to end in
          a typed [Round_timeout]. *)
  | Kill of { session : int }
      (** Kill the pool worker right after it claims this session.
          Fatal: the run is expected to end in [Shard_failed] wrapping
          [Worker_killed]. *)
  | Skew of { factor : float }
      (** Multiply the endpoint round timeout (and linger) by [factor]
          for the whole run. *)

type t = {
  seed : int;  (** The seed {!Harness.generate} drew this schedule from. *)
  pipeline : pipeline;
  engine : engine;
  shards : int;  (** The plan cut passed to [Spe_core.Shard]. *)
  workers : int;  (** Pool worker threads per stage. *)
  workload : workload;
  events : event list;
}

val schema : string
(** The schedule document schema tag: ["spe-schedule/1"]. *)

val pipeline_name : pipeline -> string
(** ["links"] / ["scores"] — also the metrics [protocol] label. *)

val engine_name : engine -> string
(** ["memory"] / ["socket"]. *)

val check_replay_target : t -> requested:pipeline option -> (unit, string) result
(** Refuse to replay a schedule under a mismatched [--target]: the
    error names both the schedule's pipeline and the requested one.
    [requested = None] (i.e. [--target both]) always passes. *)

val skew : t -> float
(** The product of every {!Skew} factor (1.0 when there are none). *)

val fatal : t -> event option
(** The first {!Kill} or {!Blackhole}, if any: the event that entitles
    the run to fail (with correct attribution).  A schedule without a
    fatal event must complete and match the central oracle. *)

val kills_session : t -> int -> bool
(** Whether some {!Kill} names this global session index. *)

val fault_for : t -> session:int -> Spe_net.Fault.t option
(** Compile the per-frame events targeting [session] into a transport
    fault policy ([None] when the session has none).  The policy keeps
    one frame counter per directed link; when several events hit the
    same frame, a blackhole wins over a drop, a drop over a delay, a
    delay over a duplicate. *)

val id : t -> string
(** A short content digest of the serialized schedule — the stable name
    used in metrics reports ([Metrics.report.schedule]), shrunk-file
    names and log lines. *)

val to_json : t -> Spe_obs.Obs_io.Json.t
(** The schedule as a [spe-schedule/1] object. *)

val of_json : Spe_obs.Obs_io.Json.t -> t
(** Inverse of {!to_json}.  Raises [Failure] on a missing or unsupported
    schema tag, an unknown event kind, or any missing/ill-typed
    field. *)

val to_string : t -> string
(** Pretty-printed [spe-schedule/1] JSON, newline-terminated. *)

val of_string : string -> t
(** Parse + {!of_json}. *)
