type violation = {
  seed : int;
  schedule : Schedule.t;
  shrunk : Schedule.t;
  failure : Harness.failure;
}

type summary = { runs : int; violations : violation list }

let fails ?bug sched =
  match Harness.run ?bug sched with
  | Harness.Pass -> None
  | Harness.Fail f -> Some f

(* Delta-debugging over the event list: try removing chunks, halving
   the chunk size whenever nothing removable remains, until single
   events are all load-bearing. *)
let shrink_events ?bug (sched : Schedule.t) =
  let still_fails events = fails ?bug { sched with Schedule.events } <> None in
  let rec pass events chunk =
    let n = List.length events in
    if chunk < 1 || n = 0 then events
    else begin
      (* Remove the chunk starting at each offset in turn; restart the
         pass after a successful removal (earlier offsets may have
         become removable). *)
      let rec try_offsets off =
        if off >= n then None
        else
          let kept =
            List.filteri (fun i _ -> i < off || i >= off + chunk) events
          in
          if List.length kept < n && still_fails kept then Some kept
          else try_offsets (off + chunk)
      in
      match try_offsets 0 with
      | Some kept -> pass kept chunk
      | None -> pass events (chunk / 2)
    end
  in
  let events = pass sched.Schedule.events (List.length sched.Schedule.events) in
  { sched with Schedule.events }

(* Candidate simplifications of one event's numeric fields, most
   aggressive first. *)
let simpler_events ev =
  let nths n = if n = 0 then [] else [ 0; n / 2; n - 1 ] in
  match ev with
  | Schedule.Drop r -> List.map (fun nth -> Schedule.Drop { r with nth }) (nths r.nth)
  | Schedule.Duplicate r ->
    List.map (fun nth -> Schedule.Duplicate { r with nth }) (nths r.nth)
  | Schedule.Delay r ->
    let shorter =
      if r.seconds > 0.05 then
        [ Schedule.Delay { r with seconds = Float.max 0.05 (r.seconds /. 2.) } ]
      else []
    in
    List.map (fun nth -> Schedule.Delay { r with nth }) (nths r.nth) @ shorter
  | Schedule.Blackhole r ->
    List.map
      (fun from_nth -> Schedule.Blackhole { r with from_nth })
      (nths r.from_nth)
  | Schedule.Kill _ -> []
  | Schedule.Skew r -> if r.factor = 1.0 then [] else [ Schedule.Skew { factor = 1.0 } ]

let shrink_numbers ?bug (sched : Schedule.t) =
  let still_fails events = fails ?bug { sched with Schedule.events } <> None in
  let replace events i ev = List.mapi (fun j e -> if j = i then ev else e) events in
  let rec fix events =
    let rec try_one i =
      if i >= List.length events then None
      else
        let candidates = simpler_events (List.nth events i) in
        match
          List.find_opt (fun c -> still_fails (replace events i c)) candidates
        with
        | Some c -> Some (replace events i c)
        | None -> try_one (i + 1)
    in
    match try_one 0 with Some events -> fix events | None -> events
  in
  { sched with Schedule.events = fix sched.Schedule.events }

let shrink ?bug sched =
  match fails ?bug sched with
  | None -> invalid_arg "Campaign.shrink: the schedule does not fail"
  | Some _ ->
    let shrunk = shrink_numbers ?bug (shrink_events ?bug sched) in
    (match fails ?bug shrunk with
    | Some failure -> (shrunk, failure)
    | None ->
      (* Cannot happen: every shrink step re-checks failure. *)
      assert false)

let run ?bug ?(on_result = fun _ _ _ -> ()) ~seeds ~seed ~targets () =
  if targets = [] then invalid_arg "Campaign.run: no targets";
  let nt = List.length targets in
  let violations = ref [] in
  for i = 0 to seeds - 1 do
    let s = seed + i in
    let pipeline, engine = List.nth targets (i mod nt) in
    let sched = Harness.generate ~seed:s pipeline engine in
    let outcome = Harness.run ?bug sched in
    on_result s sched outcome;
    match outcome with
    | Harness.Pass -> ()
    | Harness.Fail _ ->
      let shrunk, failure = shrink ?bug sched in
      violations := { seed = s; schedule = sched; shrunk; failure } :: !violations
  done;
  { runs = seeds; violations = List.rev !violations }
