(** Fault campaigns: fan seeds across targets, shrink what fails.

    A campaign generates one {!Schedule} per seed (round-robin over the
    requested pipeline × engine targets), runs each through
    {!Harness.run}, and — for every invariant violation — shrinks the
    schedule to a minimal reproducer: first delta-debugging the event
    list (chunk-halving removal to a fixpoint), then shrinking each
    surviving event's numeric fields toward their smallest values.  The
    shrunk schedule still fails the same way and, serialized as
    [spe-schedule/1], replays the violation exactly via
    [spe chaos --replay]. *)

type violation = {
  seed : int;  (** The campaign seed that produced the schedule. *)
  schedule : Schedule.t;  (** The original failing schedule. *)
  shrunk : Schedule.t;  (** The minimal reproducer. *)
  failure : Harness.failure;  (** What the shrunk schedule still violates. *)
}

type summary = {
  runs : int;  (** Schedules executed (excluding shrink replays). *)
  violations : violation list;  (** In seed order; [[]] on a green campaign. *)
}

val shrink : ?bug:(Schedule.t -> bool) -> Schedule.t -> Schedule.t * Harness.failure
(** Shrink a failing schedule ([bug] as in {!Harness.run}).  Returns
    the minimal schedule together with the failure it still exhibits.
    Raises [Invalid_argument] if the input schedule does not fail. *)

val run :
  ?bug:(Schedule.t -> bool) ->
  ?on_result:(int -> Schedule.t -> Harness.outcome -> unit) ->
  seeds:int ->
  seed:int ->
  targets:(Schedule.pipeline * Schedule.engine) list ->
  unit ->
  summary
(** Run [seeds] schedules drawn from [seed, seed + seeds) over the
    round-robined [targets], shrinking every failure.  [on_result] is
    called after each run (before any shrinking) for progress
    reporting.  Raises [Invalid_argument] when [targets] is empty. *)
