(** One chaos run: execute a sharded pipeline under a fault
    {!Schedule} and judge it against the invariant oracles.

    {!run} drives the schedule's plan stage by stage through the
    {!Spe_net.Endpoint} worker pools — compiling the schedule's
    per-frame events into transport fault policies, arming the
    worker-kill hooks, scaling the round timeout by the schedule's
    skew, and tracing every shard session on a deterministic virtual
    clock ({!Spe_obs.Trace.ticking}).  The verdict is {!Pass} only if
    all four oracles hold:

    - {b result}: a completed run's merged plan result is bit-identical
      to the central [Driver] oracle on the same workload.
    - {b termination}: the run either completes or fails with a typed
      [Shard_failed] within the wall budget — and only schedules with a
      fatal event ({!Schedule.fatal}) are entitled to fail at all.
    - {b accounting}: per shard session, the trace counters equal the
      [Net_wire] log totals, and the endpoint's transport bytes respect
      the framing closed form — equality on fault-free sessions, [>=]
      when duplicates or retransmissions added bytes.
    - {b attribution}: a fatal schedule's typed failure names the
      actually-faulted session — the killed worker's shard (with
      [Worker_killed] as the root cause), or the blackholed session
      with the starved link's sender among the [Round_timeout]'s
      missing parties. *)

type failure = {
  oracle : string;  (** ["result"], ["termination"], ["accounting"] or
                        ["attribution"]. *)
  detail : string;  (** Human-readable account of the violation. *)
}

type outcome = Pass | Fail of failure

val wall_budget : float
(** Seconds a run (or a daemon-fault campaign) may take before the
    termination oracle calls it a hang. *)

val workload_inputs :
  Schedule.workload -> Spe_graph.Digraph.t * Spe_actionlog.Log.t array
(** Regenerate a schedule's inputs from its workload parameters —
    deterministic, so every harness (and every party daemon under
    {!Daemon_fault}) derives the identical graph and provider logs. *)

val default_workload : Schedule.pipeline -> Schedule.workload
(** The small fixed workloads the campaigns run on. *)

val generate : seed:int -> Schedule.pipeline -> Schedule.engine -> Schedule.t
(** Draw a schedule from the seed: a handful of recoverable drops
    (capped at two per directed link so the Nack machinery can always
    recover), short delays (always below the skewed round timeout),
    duplicates, sometimes a timeout skew, and — for a fraction of
    seeds — one fatal kill or blackhole.  When the fatal event is a
    blackhole, drops and delays are confined to the blackholed session
    so the failure attribution is unambiguous.  Deterministic in
    [seed]. *)

val run : ?bug:(Schedule.t -> bool) -> Schedule.t -> outcome
(** Execute the schedule and judge it.  [bug] is the mutation seam used
    by the self-tests: when it returns [true] the result oracle is
    reported as violated on an otherwise completed run, standing in for
    a fault-handling bug the campaign must catch and shrink.  Raises
    [Failure] if the schedule references a session or party outside the
    plan it describes (a hand-edited replay file). *)
