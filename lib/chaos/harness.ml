module State = Spe_rng.State
module Generate = Spe_graph.Generate
module Cascade = Spe_actionlog.Cascade
module Partition = Spe_actionlog.Partition
module Session = Spe_mpc.Session
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module Driver_distributed = Spe_core.Driver_distributed
module Plan = Spe_core.Plan
module Shard = Spe_core.Shard
module Endpoint = Spe_net.Endpoint
module Frame = Spe_net.Frame
module Net_wire = Spe_net.Net_wire
module Trace = Spe_obs.Trace
module Metrics = Spe_obs.Metrics

type failure = { oracle : string; detail : string }
type outcome = Pass | Fail of failure

(* The un-skewed endpoint round timeout.  Recoverable delays are capped
   well below [base_timeout *. min skew] so a delayed frame can never
   push a round past its deadline on its own; a blackhole starves a
   link outright and fails in about [(max_retries + 1) * timeout].
   Deliberately tight — a campaign amortizes hundreds of runs, and a
   spurious timeout on a loaded machine only triggers the Nack
   machinery (which the accounting oracle already tolerates: it skips
   the closed-form equality whenever retransmissions happened). *)
let base_timeout = 0.25
let wall_budget = 30.

let workload_inputs (w : Schedule.workload) =
  let s = State.create ~seed:w.Schedule.wseed () in
  let g = Generate.erdos_renyi_gnm s ~n:w.Schedule.users ~m:w.Schedule.edges in
  let planted = Cascade.uniform_probabilities ~p:0.3 g in
  let log =
    Cascade.generate s planted
      { Cascade.num_actions = w.Schedule.actions; seeds_per_action = 2; max_delay = 3 }
  in
  (g, Partition.exclusive s log ~m:w.Schedule.providers)

(* The plan under test, with the central-oracle comparison folded into
   the result thunk: building the plan never runs the central pipeline
   (generate only needs the session layout), judging a completed run
   does. *)
let oracle_plan (sched : Schedule.t) : bool Plan.t =
  let w = sched.Schedule.workload in
  let g, logs = workload_inputs w in
  let pseed = w.Schedule.wseed + 1 in
  match sched.Schedule.pipeline with
  | Schedule.Links ->
    let config = Protocol4.default_config ~h:2 in
    let plan =
      Shard.links_exclusive (State.create ~seed:pseed ()) ~graph:g ~logs
        ~shards:sched.Schedule.shards config
    in
    Plan.map
      (fun (r : Protocol4.result) ->
        let central =
          Driver.link_strengths_exclusive (State.create ~seed:pseed ()) ~graph:g ~logs
            config
        in
        r.Protocol4.strengths = central.Driver.strengths
        && r.Protocol4.pair_estimates = central.Driver.detail.Protocol4.pair_estimates
        && r.Protocol4.pairs = central.Driver.detail.Protocol4.pairs)
      plan
  | Schedule.Scores ->
    let config = { Protocol6.default_config with Protocol6.key_bits = 128 } in
    let tau = 6 and modulus = 1 lsl 20 in
    let plan =
      Shard.user_scores_exclusive (State.create ~seed:pseed ()) ~graph:g ~logs ~tau
        ~modulus ~shards:sched.Schedule.shards config
    in
    Plan.map
      (fun (r : Driver_distributed.scores) ->
        let central =
          Driver.user_scores_exclusive (State.create ~seed:pseed ()) ~graph:g ~logs ~tau
            ~modulus config
        in
        r.Driver_distributed.scores = central.Driver.scores
        && r.Driver_distributed.graphs = central.Driver.graphs)
      plan

let all_sessions (plan : _ Plan.t) =
  Array.concat (List.map (fun (st : Plan.stage) -> st.Plan.sessions) plan.Plan.stages)

(* ---------- generation ---------- *)

let default_workload = function
  | Schedule.Links ->
    { Schedule.wseed = 97; users = 18; edges = 50; actions = 8; providers = 3 }
  | Schedule.Scores ->
    { Schedule.wseed = 98; users = 14; edges = 40; actions = 8; providers = 2 }

let generate ~seed pipeline engine =
  let base =
    {
      Schedule.seed;
      pipeline;
      engine;
      shards = 3;
      workers = 2;
      workload = default_workload pipeline;
      events = [];
    }
  in
  let layout =
    Array.map (fun s -> Array.length s.Session.parties) (all_sessions (oracle_plan base))
  in
  let ns = Array.length layout in
  let st = State.create ~seed () in
  let events = ref [] in
  let push e = events := e :: !events in
  if State.next_float st < 0.3 then
    push (Schedule.Skew { factor = 0.75 +. (State.next_float st *. 0.75) });
  (* Draw the fatal event first: when it is a blackhole, every drop and
     delay is confined to the blackholed session, so no sibling shard
     can reach a retransmission wait that a pool teardown would convert
     into a competing Round_timeout (which would muddy attribution). *)
  let confine =
    if State.next_float st < 0.15 then
      if State.next_bool st then (
        push (Schedule.Kill { session = State.next_int st ns });
        None)
      else begin
        let session = State.next_int st ns in
        let m = layout.(session) in
        let src = State.next_int st m in
        let dst = (src + 1 + State.next_int st (m - 1)) mod m in
        push (Schedule.Blackhole { session; src; dst; from_nth = State.next_int st 3 });
        Some session
      end
    else None
  in
  let pick_link () =
    let session =
      match confine with Some s -> s | None -> State.next_int st ns
    in
    let m = layout.(session) in
    let src = State.next_int st m in
    let dst = (src + 1 + State.next_int st (m - 1)) mod m in
    (session, src, dst)
  in
  (* At most two drops per directed link: the endpoints retry up to
     three times, so two losses always recover. *)
  let drop_count = Hashtbl.create 8 in
  for _ = 1 to State.next_int st 4 do
    let ((session, src, dst) as key) = pick_link () in
    let c = Option.value ~default:0 (Hashtbl.find_opt drop_count key) in
    if c < 2 then begin
      Hashtbl.replace drop_count key (c + 1);
      push (Schedule.Drop { session; src; dst; nth = State.next_int st 6 })
    end
  done;
  for _ = 1 to State.next_int st 3 do
    let session, src, dst = pick_link () in
    push
      (Schedule.Delay
         {
           session;
           src;
           dst;
           nth = State.next_int st 6;
           seconds = 0.05 +. (State.next_float st *. 0.1);
         })
  done;
  for _ = 1 to State.next_int st 3 do
    let session, src, dst = pick_link () in
    push (Schedule.Duplicate { session; src; dst; nth = State.next_int st 6 })
  done;
  { base with Schedule.events = List.rev !events }

(* ---------- the oracles ---------- *)

let eor_len =
  Frame.framed_length (Frame.End_of_round { round = 1; sender = 0; total = 0; to_dst = 0 })

let fin_len = Frame.framed_length (Frame.Fin { sender = 0 })

(* Pool groups dial no Hellos, so the closed form has no Hello term
   (same shape as the accounting checks in test_net). *)
let expected_transport_bytes ~m ~rounds ~data_framed =
  data_framed + (m * (rounds + 1) * (m - 1) * eor_len) + (m * (m - 1) * fin_len)

let has_duplicate (sched : Schedule.t) session =
  List.exists
    (function Schedule.Duplicate d -> d.session = session | _ -> false)
    sched.Schedule.events

let check_accounting sched ~sid ~protocol ~engine gi trace m (res : Endpoint.result) =
  let report = Metrics.of_trace ~schedule:sid ~protocol ~engine ~parties:m trace in
  let logs = Array.map (fun (o : Endpoint.outcome) -> o.Endpoint.sent) res.Endpoint.outcomes in
  let totals = Net_wire.totals logs in
  let rounds =
    Array.fold_left (fun acc (o : Endpoint.outcome) -> max acc o.Endpoint.rounds) 0
      res.Endpoint.outcomes
  in
  let acct oracle detail = Some { oracle; detail } in
  if
    not
      (Metrics.equal_accounting report ~messages:totals.Net_wire.messages
         ~payload_bytes:totals.Net_wire.payload_bytes)
  then
    acct "accounting"
      (Printf.sprintf
         "session %d: trace NM/MS %d/%d disagree with the wire logs %d/%d" gi
         report.Metrics.messages report.Metrics.payload_bytes totals.Net_wire.messages
         totals.Net_wire.payload_bytes)
  else if report.Metrics.framed_bytes <> Some totals.Net_wire.framed_bytes then
    acct "accounting"
      (Printf.sprintf "session %d: traced framed bytes disagree with the wire logs" gi)
  else if report.Metrics.transport_bytes <> Some res.Endpoint.transport_bytes then
    acct "accounting"
      (Printf.sprintf
         "session %d: traced transport bytes disagree with the endpoint counter" gi)
  else begin
    let expected =
      expected_transport_bytes ~m ~rounds ~data_framed:totals.Net_wire.framed_bytes
    in
    let tb = res.Endpoint.transport_bytes in
    if tb < expected then
      acct "accounting"
        (Printf.sprintf "session %d: transport bytes %d below the framing closed form %d"
           gi tb expected)
    else if
      report.Metrics.retransmits = 0
      && report.Metrics.nacks = 0
      && (not (has_duplicate sched gi))
      && tb <> expected
    then
      acct "accounting"
        (Printf.sprintf
           "session %d: no retransmissions or duplicates, yet transport bytes %d differ \
            from the closed form %d"
           gi tb expected)
    else None
  end

(* A replay file may have been edited by hand: refuse schedules whose
   events point outside the plan they describe. *)
let check_references (sched : Schedule.t) sessions =
  let ns = Array.length sessions in
  let party session p = p >= 0 && p < Array.length sessions.(session).Session.parties in
  let link session src dst =
    if not (session >= 0 && session < ns && party session src && party session dst) then
      failwith
        (Printf.sprintf
           "schedule event targets session %d link %d->%d, outside this plan" session src
           dst)
  in
  List.iter
    (fun ev ->
      match ev with
      | Schedule.Drop e -> link e.session e.src e.dst
      | Schedule.Delay e -> link e.session e.src e.dst
      | Schedule.Duplicate e -> link e.session e.src e.dst
      | Schedule.Blackhole e -> link e.session e.src e.dst
      | Schedule.Kill e ->
        if not (e.session >= 0 && e.session < ns) then
          failwith
            (Printf.sprintf "schedule kill targets session %d, outside this plan"
               e.session)
      | Schedule.Skew _ -> ())
    sched.Schedule.events

let run ?(bug = fun _ -> false) (sched : Schedule.t) =
  let plan = oracle_plan sched in
  let sessions = all_sessions plan in
  check_references sched sessions;
  let sid = Schedule.id sched in
  let skew = Schedule.skew sched in
  let config =
    {
      Endpoint.round_timeout = base_timeout *. skew;
      max_retries = 3;
      linger = 2. *. base_timeout *. skew;
    }
  in
  let protocol = Schedule.pipeline_name sched.Schedule.pipeline in
  let engine = Schedule.engine_name sched.Schedule.engine in
  let collected = ref [] in
  let current_base = ref 0 in
  let t0 = Unix.gettimeofday () in
  let drive () =
    List.iter
      (fun (st : Plan.stage) ->
        let ns = Array.length st.Plan.sessions in
        let base = !current_base in
        let faults =
          Array.init ns (fun i -> Schedule.fault_for sched ~session:(base + i))
        in
        let kills = Array.init ns (fun i -> Schedule.kills_session sched (base + i)) in
        let traces =
          Array.init ns (fun _ -> Trace.create ~clock:(Trace.ticking ()) ())
        in
        let rs =
          match sched.Schedule.engine with
          | Schedule.Memory ->
            Endpoint.run_sessions_memory ~config ~workers:sched.Schedule.workers ~faults
              ~kills ~traces st.Plan.sessions
          | Schedule.Socket ->
            Endpoint.run_sessions_socket ~config ~workers:sched.Schedule.workers ~faults
              ~kills ~traces st.Plan.sessions
        in
        Array.iteri
          (fun i ((), res) ->
            let m = Array.length st.Plan.sessions.(i).Session.parties in
            collected := (base + i, traces.(i), m, res) :: !collected)
          rs;
        current_base := base + ns)
      plan.Plan.stages
  in
  match drive () with
  | exception e -> (
    let elapsed = Unix.gettimeofday () -. t0 in
    match (Schedule.fatal sched, e) with
    | None, _ ->
      Fail
        {
          oracle = "termination";
          detail =
            "recoverable faults must recover, yet the run failed: "
            ^ Printexc.to_string e;
        }
    | Some _, _ when elapsed > wall_budget ->
      Fail
        {
          oracle = "termination";
          detail = Printf.sprintf "typed failure, but only after %.1f s" elapsed;
        }
    | Some fatal_ev, Endpoint.Shard_failed { shard; exn; _ } -> (
      let global = !current_base + shard in
      match (fatal_ev, exn) with
      | Schedule.Kill { session }, Endpoint.Worker_killed when global = session -> Pass
      | Schedule.Kill { session }, _ ->
        Fail
          {
            oracle = "attribution";
            detail =
              Printf.sprintf
                "the schedule kills session %d, but the pool blamed session %d (%s)"
                session global (Printexc.to_string exn);
          }
      | ( Schedule.Blackhole { session; src; _ },
          Endpoint.Round_timeout { missing; _ } )
        when global = session
             && List.mem sessions.(session).Session.parties.(src) missing -> Pass
      | Schedule.Blackhole { session; src; dst; _ }, _ ->
        Fail
          {
            oracle = "attribution";
            detail =
              Printf.sprintf
                "the schedule blackholes session %d link %d->%d, but the pool blamed \
                 session %d (%s)"
                session src dst global (Printexc.to_string exn);
          }
      | (Schedule.Drop _ | Schedule.Delay _ | Schedule.Duplicate _ | Schedule.Skew _), _
        ->
        (* fatal sched returns only Kill/Blackhole *)
        assert false)
    | Some _, _ ->
      Fail
        {
          oracle = "termination";
          detail = "the failure escaped the pool untyped: " ^ Printexc.to_string e;
        })
  | () ->
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed > wall_budget then
      Fail
        {
          oracle = "termination";
          detail = Printf.sprintf "completed, but only after %.1f s" elapsed;
        }
    else begin
      let acct =
        List.fold_left
          (fun acc (gi, trace, m, res) ->
            match acc with
            | Some _ -> acc
            | None -> check_accounting sched ~sid ~protocol ~engine gi trace m res)
          None (List.rev !collected)
      in
      match acct with
      | Some f -> Fail f
      | None ->
        if bug sched then
          Fail
            {
              oracle = "result";
              detail = "merged result differs from the central oracle (planted bug)";
            }
        else if not (plan.Plan.result ()) then
          Fail
            {
              oracle = "result";
              detail = "merged result differs from the central oracle";
            }
        else Pass
    end
