(** A pull-based metrics scrape endpoint.

    [Spe_serve] daemons started with [--metrics-addr] expose their
    cumulative [spe-metrics/2] report and live scheduler gauges here;
    anything that can open a TCP (or Unix-domain) stream can read them.
    Each connection is one exchange: the responder writes whatever
    [render] returns {e at that moment} and closes.  Plain readers
    (netcat, {!fetch}, `spe scrape`) get the raw document; a client
    whose first bytes look like an HTTP [GET]/[HEAD] request line gets
    it wrapped in a minimal [HTTP/1.0 200] response, so `curl` works
    too.  See OBSERVABILITY.md, "The scrape endpoint". *)

type t

val start : addr:Unix.sockaddr -> render:(unit -> string) -> t
(** Bind, listen and serve on a background thread.  A Unix-domain
    [addr]'s stale socket file is unlinked first; TCP listeners set
    [SO_REUSEADDR].  Raises the underlying [Unix.Unix_error] when the
    address cannot be bound. *)

val bound_addr : t -> Unix.sockaddr
(** The actual bound address — resolves port 0 to the kernel-assigned
    port. *)

val stop : t -> unit
(** Close the listener (unlinking a Unix-domain path) and join the
    serving thread.  Idempotent. *)

val fetch : addr:Unix.sockaddr -> string
(** Client side: connect, read to EOF, return the document.  Raises the
    underlying [Unix.Unix_error] when the endpoint is unreachable. *)
