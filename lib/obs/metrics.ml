type phase_row = {
  phase : string;
  rounds : int;
  messages : int;
  payload_bytes : int;
  wall_s : float;
}

type compute_row = { party : string; calls : int; total_s : float; max_s : float }

type hist_bucket = { le_bytes : int; count : int }

type shard_row = {
  shard : int;
  rounds : int;
  messages : int;
  payload_bytes : int;
  framed_bytes : int option;
  wall_s : float;
}

type report = {
  protocol : string;
  engine : string;
  schedule : string option;
  parties : int;
  rounds : int;
  messages : int;
  payload_bytes : int;
  framed_bytes : int option;
  transport_bytes : int option;
  retransmits : int;
  nacks : int;
  timeouts : int;
  faults_dropped : int;
  faults_delayed : int;
  wall_s : float;
  phases : phase_row list;
  compute : compute_row list;
  payload_hist : hist_bucket list;
  shards : shard_row list;
}

(* Smallest power of two >= n (n >= 1): the histogram bucket bound. *)
let bucket_of n =
  let rec go b = if b >= n then b else go (b * 2) in
  go 1

let of_trace ?schedule ~protocol ~engine ~parties trace =
  let events = Trace.events trace in
  (* Counter totals, and whether each byte counter appeared at all
     (zero-delta counts are never recorded, so presence means the
     engine genuinely measures that quantity). *)
  let messages = ref 0
  and payload = ref 0
  and framed = ref 0
  and saw_framed = ref false
  and transport = ref 0
  and saw_transport = ref false
  and retransmits = ref 0
  and nacks = ref 0
  and timeouts = ref 0
  and dropped = ref 0
  and delayed = ref 0 in
  (* Distinct message-bearing rounds -> NR; per-phase message/payload
     sums; payload-size histogram. *)
  let msg_rounds : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let phase_msgs : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let phase_cell label =
    match Hashtbl.find_opt phase_msgs label with
    | Some cell -> cell
    | None ->
      let cell = (ref 0, ref 0) in
      Hashtbl.add phase_msgs label cell;
      cell
  in
  let hist : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  (* Span digests: session wall, per-round envelopes (min start / max
     stop across parties), phase spans, per-party compute. *)
  let session_wall = ref None in
  let round_env : (int, float ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  let phase_spans : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
  let compute : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let see t =
    if t < !t_min then t_min := t;
    if t > !t_max then t_max := t
  in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Count { counter; round; at; delta; party = _ } ->
        see at;
        let phase_for r = Option.bind r (Trace.phase_of_round trace) in
        (match counter with
        | Trace.Messages ->
          messages := !messages + delta;
          (match round with
          | Some r -> Hashtbl.replace msg_rounds r ()
          | None -> ());
          (match phase_for round with
          | Some label ->
            let m, _ = phase_cell label in
            m := !m + delta
          | None -> ())
        | Trace.Payload_bytes ->
          payload := !payload + delta;
          (match phase_for round with
          | Some label ->
            let _, b = phase_cell label in
            b := !b + delta
          | None -> ());
          let bucket = bucket_of (max 1 delta) in
          (match Hashtbl.find_opt hist bucket with
          | Some c -> incr c
          | None -> Hashtbl.add hist bucket (ref 1))
        | Trace.Framed_bytes ->
          saw_framed := true;
          framed := !framed + delta
        | Trace.Transport_bytes ->
          saw_transport := true;
          transport := !transport + delta
        | Trace.Retransmits -> retransmits := !retransmits + delta
        | Trace.Nacks -> nacks := !nacks + delta
        | Trace.Timeouts -> timeouts := !timeouts + delta
        | Trace.Faults_dropped -> dropped := !dropped + delta
        | Trace.Faults_delayed -> delayed := !delayed + delta)
      | Trace.Span { kind; label; party; index; start; stop } -> (
        see start;
        see stop;
        match kind with
        | Trace.Session ->
          (* Keep the widest session span (outermost wins). *)
          let w = stop -. start in
          (match !session_wall with
          | Some w' when w' >= w -> ()
          | _ -> session_wall := Some w)
        | Trace.Phase ->
          let cell =
            match Hashtbl.find_opt phase_spans label with
            | Some c -> c
            | None ->
              let c = ref 0. in
              Hashtbl.add phase_spans label c;
              c
          in
          cell := !cell +. (stop -. start)
        | Trace.Round -> (
          match index with
          | None -> ()
          | Some r -> (
            match Hashtbl.find_opt round_env r with
            | Some (lo, hi) ->
              if start < !lo then lo := start;
              if stop > !hi then hi := stop
            | None -> Hashtbl.add round_env r (ref start, ref stop)))
        | Trace.Compute -> (
          let p = Option.value party ~default:"?" in
          let d = stop -. start in
          match Hashtbl.find_opt compute p with
          | Some (calls, total, mx) ->
            incr calls;
            total := !total +. d;
            if d > !mx then mx := d
          | None -> Hashtbl.add compute p (ref 1, ref d, ref d)))
      | Trace.Note { at; _ } -> see at)
    events;
  (* Phase rows, in phase-map order, merging repeated labels.  Rounds
     are attributed through the map; wall time prefers summed per-round
     envelopes and falls back to recorded phase spans. *)
  let phase_labels =
    List.fold_left
      (fun acc (label, _) -> if List.mem label acc then acc else acc @ [ label ])
      [] (Trace.phases trace)
  in
  let phase_rows =
    List.map
      (fun label ->
        let msgs, bytes =
          match Hashtbl.find_opt phase_msgs label with
          | Some (m, b) -> (!m, !b)
          | None -> (0, 0)
        in
        let nrounds = ref 0 and wall = ref 0. and timed = ref false in
        Hashtbl.iter
          (fun r () ->
            if Trace.phase_of_round trace r = Some label then begin
              incr nrounds;
              match Hashtbl.find_opt round_env r with
              | Some (lo, hi) ->
                timed := true;
                wall := !wall +. (!hi -. !lo)
              | None -> ()
            end)
          msg_rounds;
        let wall_s =
          if !timed then !wall
          else match Hashtbl.find_opt phase_spans label with Some c -> !c | None -> 0.
        in
        { phase = label; rounds = !nrounds; messages = msgs; payload_bytes = bytes; wall_s })
      phase_labels
  in
  let compute_rows =
    Hashtbl.fold
      (fun party (calls, total, mx) acc ->
        { party; calls = !calls; total_s = !total; max_s = !mx } :: acc)
      compute []
    |> List.sort (fun a b -> compare a.party b.party)
  in
  let hist_rows =
    Hashtbl.fold (fun le_bytes c acc -> { le_bytes; count = !c } :: acc) hist []
    |> List.sort (fun a b -> compare a.le_bytes b.le_bytes)
  in
  let wall_s =
    match !session_wall with
    | Some w -> w
    | None -> if !t_max >= !t_min then !t_max -. !t_min else 0.
  in
  {
    protocol;
    engine;
    schedule;
    parties;
    rounds = Hashtbl.length msg_rounds;
    messages = !messages;
    payload_bytes = !payload;
    framed_bytes = (if !saw_framed then Some !framed else None);
    transport_bytes = (if !saw_transport then Some !transport else None);
    retransmits = !retransmits;
    nacks = !nacks;
    timeouts = !timeouts;
    faults_dropped = !dropped;
    faults_delayed = !delayed;
    wall_s;
    phases = phase_rows;
    compute = compute_rows;
    payload_hist = hist_rows;
    shards = [];
  }

let merge reports =
  match reports with
  | [] -> invalid_arg "Metrics.merge: need at least one report"
  | first :: _ ->
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
    let sum_f f = List.fold_left (fun acc r -> acc +. f r) 0. reports in
    (* An optional byte counter survives the merge iff some input
       measured it; unmeasured inputs contribute zero. *)
    let sum_opt f =
      List.fold_left
        (fun acc r -> match f r with None -> acc | Some b -> Some (Option.value acc ~default:0 + b))
        None reports
    in
    (* Phase rows merged by label, in first-appearance order across the
       inputs — shards share a phase map, so this recovers it. *)
    let phase_order = ref [] in
    let phase_acc : (string, phase_row ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun r ->
        List.iter
          (fun (p : phase_row) ->
            match Hashtbl.find_opt phase_acc p.phase with
            | Some cell ->
              cell :=
                {
                  !cell with
                  rounds = !cell.rounds + p.rounds;
                  messages = !cell.messages + p.messages;
                  payload_bytes = !cell.payload_bytes + p.payload_bytes;
                  wall_s = !cell.wall_s +. p.wall_s;
                }
            | None ->
              Hashtbl.add phase_acc p.phase (ref p);
              phase_order := p.phase :: !phase_order)
          r.phases)
      reports;
    let phases =
      List.rev_map (fun label -> !(Hashtbl.find phase_acc label)) !phase_order
    in
    let compute_acc : (string, compute_row ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun r ->
        List.iter
          (fun (c : compute_row) ->
            match Hashtbl.find_opt compute_acc c.party with
            | Some cell ->
              cell :=
                {
                  !cell with
                  calls = !cell.calls + c.calls;
                  total_s = !cell.total_s +. c.total_s;
                  max_s = Float.max !cell.max_s c.max_s;
                }
            | None -> Hashtbl.add compute_acc c.party (ref c))
          r.compute)
      reports;
    let compute =
      Hashtbl.fold (fun _ cell acc -> !cell :: acc) compute_acc []
      |> List.sort (fun a b -> compare a.party b.party)
    in
    let hist_acc : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun r ->
        List.iter
          (fun (b : hist_bucket) ->
            match Hashtbl.find_opt hist_acc b.le_bytes with
            | Some c -> c := !c + b.count
            | None -> Hashtbl.add hist_acc b.le_bytes (ref b.count))
          r.payload_hist)
      reports;
    let payload_hist =
      Hashtbl.fold (fun le_bytes c acc -> { le_bytes; count = !c } :: acc) hist_acc []
      |> List.sort (fun a b -> compare a.le_bytes b.le_bytes)
    in
    let shards =
      List.mapi
        (fun shard r ->
          {
            shard;
            rounds = r.rounds;
            messages = r.messages;
            payload_bytes = r.payload_bytes;
            framed_bytes = r.framed_bytes;
            wall_s = r.wall_s;
          })
        reports
    in
    {
      protocol = first.protocol;
      engine = first.engine;
      schedule =
        (* Shards of one chaos run share a schedule; the first one
           recorded wins. *)
        List.fold_left
          (fun acc r -> match acc with Some _ -> acc | None -> r.schedule)
          None reports;
      parties = List.fold_left (fun acc r -> max acc r.parties) 0 reports;
      rounds = sum (fun r -> r.rounds);
      messages = sum (fun r -> r.messages);
      payload_bytes = sum (fun r -> r.payload_bytes);
      framed_bytes = sum_opt (fun r -> r.framed_bytes);
      transport_bytes = sum_opt (fun r -> r.transport_bytes);
      retransmits = sum (fun r -> r.retransmits);
      nacks = sum (fun r -> r.nacks);
      timeouts = sum (fun r -> r.timeouts);
      faults_dropped = sum (fun r -> r.faults_dropped);
      faults_delayed = sum (fun r -> r.faults_delayed);
      wall_s = sum_f (fun r -> r.wall_s);
      phases;
      compute;
      payload_hist;
      shards;
    }

let equal_accounting r ~messages ~payload_bytes =
  r.messages = messages && r.payload_bytes = payload_bytes
