(* A tiny pull-based scrape responder: one listener thread, one
   render-and-close exchange per connection.

   The daemon hands us [render]; every connection gets whatever it
   returns at that moment.  Speaks both plain TCP (connect, read the
   document, EOF) and just enough HTTP/1.0 for curl: if the client's
   first bytes look like a request line we consume the header block and
   wrap the document in a 200 response, otherwise the document is
   written raw immediately.  Responses are one-shot — no keep-alive. *)

type t = {
  listener : Unix.file_descr;
  stopped : bool ref;
  lock : Mutex.t;
  thread : Thread.t;
}

let rec really_write fd buf off len =
  if len > 0 then begin
    let n = try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    really_write fd buf (off + n) (len - n)
  end

let write_string fd s = really_write fd (Bytes.of_string s) 0 (String.length s)

(* Wait briefly for request bytes; a plain-TCP scraper sends nothing,
   so an idle descriptor means "just give me the document". *)
let looks_like_http fd =
  match Unix.select [ fd ] [] [] 0.05 with
  | [], _, _ -> false
  | _ ->
    let buf = Bytes.create 1024 in
    let n = try Unix.read fd buf 0 (Bytes.length buf) with Unix.Unix_error _ -> 0 in
    n >= 3
    &&
    let line = Bytes.sub_string buf 0 n in
    String.length line >= 4 && (String.sub line 0 4 = "GET " || String.sub line 0 4 = "HEAD")

let serve_one render fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let http = looks_like_http fd in
      let doc = render () in
      if http then
        write_string fd
          (Printf.sprintf
             "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\nContent-Length: \
              %d\r\nConnection: close\r\n\r\n"
             (String.length doc));
      write_string fd doc;
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()))

let start ~addr ~render =
  let domain = match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true);
  (try Unix.bind listener addr
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 16;
  let lock = Mutex.create () in
  let stopped = ref false in
  let is_stopped () =
    Mutex.lock lock;
    let s = !stopped in
    Mutex.unlock lock;
    s
  in
  let thread =
    Thread.create
      (fun () ->
        (* Closing an fd does not wake a thread blocked in accept(2),
           so poll with select and re-check the stop flag between
           waits. *)
        let rec await_readable () =
          if is_stopped () then false
          else
            match Unix.select [ listener ] [] [] 0.25 with
            | [], _, _ -> await_readable ()
            | _ -> true
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> await_readable ()
            | exception Unix.Unix_error _ -> false
        in
        let rec loop () =
          if await_readable () then
            match Unix.accept listener with
            | fd, _ ->
              (try serve_one render fd with _ -> ());
              loop ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | exception Unix.Unix_error _ -> if not (is_stopped ()) then loop ()
            | exception _ -> ()
        in
        loop ())
      ()
  in
  { listener; stopped; lock; thread }

let bound_addr t = Unix.getsockname t.listener

let stop t =
  Mutex.lock t.lock;
  let already = !(t.stopped) in
  t.stopped := true;
  Mutex.unlock t.lock;
  if not already then begin
    (* The accept loop notices the flag at its next select tick. *)
    (match Unix.getsockname t.listener with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    Thread.join t.thread
  end

(* Client side, shared by tests and `spe scrape`: plain-TCP fetch. *)
let fetch ~addr =
  let domain = match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf)
