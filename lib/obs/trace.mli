(** The trace sink: typed spans, counters and notes for one protocol
    run.

    Every engine in the stack — the in-process
    [Spe_mpc.Runtime]/[Spe_mpc.Session], the [Spe_net] endpoints and
    transports, and the central [Spe_core.Driver] pipelines — accepts
    an optional trace value and, when given one, records what it does:
    {e spans} (timed intervals — the whole session, a pipeline phase, a
    protocol round, a party's local compute step), {e counters}
    (monotone totals — messages, payload/framed/transport bytes,
    retransmissions, timeouts, injected faults) and {e notes}
    (point-in-time remarks, e.g. a fault decision).  {!Metrics}
    aggregates a finished trace into a {!Metrics.report}; {!Obs_io}
    renders either as text or JSON.

    A trace is thread-safe (the [Spe_net] endpoints record from one
    thread per party) and zero-dependency; timestamps come from a
    caller-replaceable clock and are stored relative to the trace's
    creation instant, so a trace is meaningful on its own.  A
    {!disabled} trace drops all events but still carries the
    {e phase map} — the round-to-phase labelling that error paths (see
    [Spe_net.Endpoint.Round_timeout]) read even when nobody asked for
    events. *)

type span_kind =
  | Session  (** One whole protocol/pipeline execution. *)
  | Phase  (** One stage of a composed pipeline (e.g. [p4-mask]). *)
  | Round  (** One communication round: local step + barrier wait. *)
  | Compute  (** One party's local program step within a round. *)

type counter =
  | Messages  (** Protocol messages first transmitted — the NM statistic. *)
  | Payload_bytes  (** Codec payload bytes — MS / 8, what the simulated wire charges. *)
  | Framed_bytes  (** Data-frame bytes incl. framing, first transmissions only. *)
  | Transport_bytes  (** Every byte a transport pushed: control frames and retransmissions included. *)
  | Retransmits  (** Data/control frames replayed in answer to a Nack. *)
  | Nacks  (** Nack frames sent after an incomplete round. *)
  | Timeouts  (** Round deadlines that expired before the barrier completed. *)
  | Faults_dropped  (** Frames the fault policy decided to lose. *)
  | Faults_delayed  (** Frames the fault policy decided to hold back. *)

type event =
  | Span of {
      kind : span_kind;
      label : string;
      party : string option;  (** Recording party, when per-party. *)
      index : int option;  (** Round number for {!Round}/{!Compute} spans. *)
      start : float;  (** Seconds since trace creation. *)
      stop : float;  (** Seconds since trace creation; [>= start]. *)
    }
  | Count of {
      counter : counter;
      party : string option;
      round : int option;  (** Round the increment belongs to, when known. *)
      at : float;
      delta : int;
    }
  | Note of { label : string; party : string option; round : int option; at : float }

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh recording trace.  [clock] defaults to [Unix.gettimeofday];
    tests inject a deterministic clock such as {!ticking}. *)

val ticking : ?step:float -> unit -> unit -> float
(** A deterministic virtual clock: each call returns [step] (default
    0.5) more than the last, starting at 0.  [create
    ~clock:(ticking ())] therefore yields a trace whose timestamps
    depend only on the event {e order}, never on the wall clock — the
    seam the chaos harness and the trace tests use to make recorded
    timings reproducible.  Each call to [ticking] makes an independent
    clock. *)

val disabled : unit -> t
(** A trace that records no events (so instrumentation stays near-free)
    but still accepts and serves a phase map. *)

val enabled : t -> bool
(** [true] iff events are being recorded — instrumentation guards any
    per-message work it would otherwise waste on a {!disabled} trace. *)

val span : t -> ?party:string -> ?index:int -> span_kind -> string -> (unit -> 'a) -> 'a
(** [span t kind label f] runs [f] and records the completed span
    around it.  If [f] raises, the span is recorded up to the raise and
    the exception is re-raised — timeout paths stay visible. *)

val now : t -> float
(** The trace's current timestamp: seconds since creation on the
    trace's own clock.  The seam for {!record_span}: an event-driven
    runner reads [now] when an interval opens and again when it closes,
    since no closure brackets the interval.  On a [ticking] clock each
    call advances the clock one step. *)

val record_span :
  t -> ?party:string -> ?index:int -> span_kind -> string -> start:float -> stop:float -> unit
(** Record a span whose endpoints the caller timed itself (with {!now}).
    This is how resumable state machines trace rounds and sessions that
    span many scheduler wake-ups — {!span} cannot wrap work that is not
    a single closure.  No-op on a disabled trace. *)

val count : t -> ?party:string -> ?round:int -> counter -> int -> unit
(** Add [delta] to a counter.  Negative deltas raise
    [Invalid_argument]. *)

val note : t -> ?party:string -> ?round:int -> string -> unit
(** Record a point event (e.g. ["fault.drop 0->2"]). *)

val set_phases : t -> (string * int) list -> unit
(** Install the phase map: ordered [(label, rounds)] segments, engine
    rounds [1 .. sum] mapping onto them in order.  Segments with zero
    rounds are kept (they label phases that happened to be free).
    Raises [Invalid_argument] on a negative segment. *)

val phases : t -> (string * int) list
(** The installed phase map ([[]] when none). *)

val phase_of_round : t -> int -> string option
(** The phase label owning a (1-based) engine round.  Rounds past the
    map's total — the engine's quiescent finishing round — belong to
    the last phase; [None] when no map is installed or [round < 1]. *)

val events : t -> event list
(** Everything recorded so far, in recording order.  Span events are
    ordered by their [stop] time (a span is recorded when it ends). *)
