type span_kind = Session | Phase | Round | Compute

type counter =
  | Messages
  | Payload_bytes
  | Framed_bytes
  | Transport_bytes
  | Retransmits
  | Nacks
  | Timeouts
  | Faults_dropped
  | Faults_delayed

type event =
  | Span of {
      kind : span_kind;
      label : string;
      party : string option;
      index : int option;
      start : float;
      stop : float;
    }
  | Count of {
      counter : counter;
      party : string option;
      round : int option;
      at : float;
      delta : int;
    }
  | Note of { label : string; party : string option; round : int option; at : float }

type t = {
  clock : unit -> float;
  origin : float;
  recording : bool;
  lock : Mutex.t;
  mutable events : event list; (* reversed *)
  mutable phases : (string * int) list;
}

let make ~recording ~clock =
  { clock; origin = clock (); recording; lock = Mutex.create (); events = []; phases = [] }

let create ?(clock = Unix.gettimeofday) () = make ~recording:true ~clock

let ticking ?(step = 0.5) () =
  let t = ref (-.step) in
  fun () ->
    t := !t +. step;
    !t

let disabled () = make ~recording:false ~clock:Unix.gettimeofday

let enabled t = t.recording

let now t = t.clock () -. t.origin

let record t ev =
  Mutex.lock t.lock;
  t.events <- ev :: t.events;
  Mutex.unlock t.lock

let span t ?party ?index kind label f =
  if not t.recording then f ()
  else begin
    let start = now t in
    let finish () = record t (Span { kind; label; party; index; start; stop = now t }) in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let record_span t ?party ?index kind label ~start ~stop =
  if t.recording then record t (Span { kind; label; party; index; start; stop })

let count t ?party ?round counter delta =
  if delta < 0 then invalid_arg "Trace.count: negative delta";
  if t.recording && delta > 0 then
    record t (Count { counter; party; round; at = now t; delta })

let note t ?party ?round label =
  if t.recording then record t (Note { label; party; round; at = now t })

let set_phases t phases =
  List.iter
    (fun (_, rounds) -> if rounds < 0 then invalid_arg "Trace.set_phases: negative rounds")
    phases;
  Mutex.lock t.lock;
  t.phases <- phases;
  Mutex.unlock t.lock

let phases t = t.phases

(* Walk the segments, discounting each segment's rounds as we pass it;
   a round past the total belongs to the last labelled phase (the
   engine's quiescent finishing round). *)
let phase_of_round t round =
  if round < 1 then None
  else
    let rec go r last = function
      | [] -> last
      | (label, rounds) :: rest ->
        if r <= rounds then Some label else go (r - rounds) (Some label) rest
    in
    go round None t.phases

let events t =
  Mutex.lock t.lock;
  let evs = List.rev t.events in
  Mutex.unlock t.lock;
  evs
