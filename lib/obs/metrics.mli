(** Aggregating a finished {!Trace} into the paper's cost statistics.

    The paper evaluates its protocols by the number of communication
    rounds (NR), the number of messages (NM) and the message size in
    bits (MS) — see Tables 1–2 of Tassa & Bonchi.  A {!report} carries
    exactly those totals (bytes rather than bits: [payload_bytes] is
    MS / 8), plus what only an instrumented run can know: wall-clock
    time, per-phase breakdowns, per-party compute summaries, transport
    overhead, retransmissions and injected faults.

    One report is produced per (protocol, engine) execution by
    {!of_trace}; {!Obs_io} renders it as text or versioned JSON. *)

type phase_row = {
  phase : string;  (** Phase label from the session's phase map. *)
  rounds : int;  (** Message-bearing engine rounds owned by this phase. *)
  messages : int;  (** NM restricted to this phase. *)
  payload_bytes : int;  (** MS / 8 restricted to this phase. *)
  wall_s : float;  (** Observed wall-clock: per-round envelopes summed, or
                       the phase span when rounds were not timed. *)
}

type compute_row = {
  party : string;
  calls : int;  (** Local program steps this party executed. *)
  total_s : float;  (** Total time inside those steps. *)
  max_s : float;  (** Longest single step. *)
}

type hist_bucket = {
  le_bytes : int;  (** Bucket upper bound: the next power of two. *)
  count : int;  (** Payload-size observations falling in this bucket. *)
}

type shard_row = {
  shard : int;  (** Shard index within the merged execution. *)
  rounds : int;  (** NR charged to this shard's sessions. *)
  messages : int;  (** NM restricted to this shard. *)
  payload_bytes : int;  (** MS / 8 restricted to this shard. *)
  framed_bytes : int option;  (** As {!report.framed_bytes}, per shard. *)
  wall_s : float;  (** This shard's own session wall time. *)
}

type report = {
  protocol : string;
  engine : string;  (** [central], [sim], [memory] or [socket]. *)
  schedule : string option;
      (** The fault-schedule id ([Spe_chaos.Schedule.id]) when the run
          executed under an injected chaos schedule; [None] for normal
          runs.  Ties a metrics document back to the exact reproducible
          fault script that produced it. *)
  parties : int;
  rounds : int;  (** NR: distinct engine rounds that carried messages. *)
  messages : int;  (** NM: messages first transmitted. *)
  payload_bytes : int;  (** MS / 8: codec payload bytes. *)
  framed_bytes : int option;
      (** Data-frame bytes incl. framing; [None] when the engine does not
          frame (central / simulated runs). *)
  transport_bytes : int option;
      (** All bytes pushed through a transport, control frames and
          retransmissions included; [None] off the real transports. *)
  retransmits : int;
  nacks : int;
  timeouts : int;
  faults_dropped : int;
  faults_delayed : int;
  wall_s : float;  (** Session span when recorded, else the event spread. *)
  phases : phase_row list;  (** In phase-map order; [[]] without a map. *)
  compute : compute_row list;  (** Sorted by party label. *)
  payload_hist : hist_bucket list;  (** Sorted by [le_bytes]. *)
  shards : shard_row list;
      (** Per-shard breakdown of a sharded execution, in shard order;
          [[]] for unsharded runs (and always from {!of_trace} — only
          {!merge} populates it). *)
}

val of_trace :
  ?schedule:string -> protocol:string -> engine:string -> parties:int -> Trace.t -> report
(** Aggregate everything the trace recorded.  Counters missing from the
    trace aggregate to zero ([None] for the optional byte totals);
    rounds are attributed to phases via {!Trace.phase_of_round}.
    [shards] is always [[]]; [schedule] (default [None]) stamps the
    report with a chaos-schedule id. *)

val merge : report list -> report
(** Merge per-shard reports of one sharded execution into a single
    report: counters sum (so NM / MS match what the unsharded
    accounting would owe when the plan preserves payload bytes),
    optional byte totals survive iff some input measured them, phase
    rows merge by label in first-appearance order, compute rows merge
    by party ([max_s] takes the max), histogram buckets merge by bound,
    and [wall_s] is the {e cumulative} endpoint wall time (shards run
    concurrently, so this exceeds the observed wall clock).  [shards]
    gets one {!shard_row} per input, in order.  [protocol]/[engine] are
    taken from the first report; [parties] is the max (shards share the
    party set); [schedule] is the first [Some] (shards of one chaos run
    share a schedule).  Raises [Invalid_argument] on an empty list. *)

val equal_accounting : report -> messages:int -> payload_bytes:int -> bool
(** [equal_accounting r ~messages ~payload_bytes] — do the report's NM
    and MS/8 agree with an independent accounting (the simulated wire
    or [Spe_net.Net_wire])?  Used by tests and the CLI cross-check. *)
