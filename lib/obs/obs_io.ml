module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let to_string ?(pretty = true) t =
    let buf = Buffer.create 256 in
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if pretty then Buffer.add_char buf '\n' in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_repr f)
      | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) v)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf

  exception Parse of int * string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
            advance ();
            Buffer.add_char buf '"';
            go ()
          | Some '\\' ->
            advance ();
            Buffer.add_char buf '\\';
            go ()
          | Some '/' ->
            advance ();
            Buffer.add_char buf '/';
            go ()
          | Some 'b' ->
            advance ();
            Buffer.add_char buf '\b';
            go ()
          | Some 'f' ->
            advance ();
            Buffer.add_char buf '\012';
            go ()
          | Some 'n' ->
            advance ();
            Buffer.add_char buf '\n';
            go ()
          | Some 'r' ->
            advance ();
            Buffer.add_char buf '\r';
            go ()
          | Some 't' ->
            advance ();
            Buffer.add_char buf '\t';
            go ()
          | Some 'u' ->
            advance ();
            let cp = parse_hex4 () in
            (* UTF-8 encode the BMP codepoint (surrogate pairs are not
               needed for anything this library emits). *)
            if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end;
            go ()
          | _ -> fail "bad escape")
        | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      if peek () = Some '-' then advance ();
      let rec digits () =
        match peek () with
        | Some '0' .. '9' ->
          advance ();
          digits ()
        | _ -> ()
      in
      digits ();
      (match peek () with
      | Some '.' ->
        is_float := true;
        advance ();
        digits ()
      | _ -> ());
      (match peek () with
      | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
      | _ -> ());
      let text = String.sub s start (!pos - start) in
      if text = "" || text = "-" then fail "malformed number";
      if !is_float then Float (float_of_string text)
      else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          let rec more () =
            match peek () with
            | Some ',' ->
              advance ();
              items := parse_value () :: !items;
              skip_ws ();
              more ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          let rec more () =
            match peek () with
            | Some ',' ->
              advance ();
              fields := field () :: !fields;
              skip_ws ();
              more ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Obj (List.rev !fields)
        end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> v
    | exception Parse (at, msg) -> failwith (Printf.sprintf "Obs_io.Json: %s at offset %d" msg at)

  let member key = function
    | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> failwith (Printf.sprintf "Obs_io.Json: missing field %S" key))
    | _ -> failwith (Printf.sprintf "Obs_io.Json: field %S looked up in a non-object" key)
end

let schema = "spe-metrics/2"

let schema_v1 = "spe-metrics/1"

let bench_schema = "spe-bench/1"

(* Typed accessors for the readers: strict about shape, permissive
   about Int-vs-Float for float-valued fields. *)
let as_int key j =
  match Json.member key j with
  | Json.Int i -> i
  | _ -> failwith (Printf.sprintf "Obs_io: field %S must be an integer" key)

let as_float key j =
  match Json.member key j with
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> failwith (Printf.sprintf "Obs_io: field %S must be a number" key)

let as_string key j =
  match Json.member key j with
  | Json.String s -> s
  | _ -> failwith (Printf.sprintf "Obs_io: field %S must be a string" key)

let as_int_opt key j =
  match Json.member key j with
  | Json.Null -> None
  | Json.Int i -> Some i
  | _ -> failwith (Printf.sprintf "Obs_io: field %S must be an integer or null" key)

let as_list key j =
  match Json.member key j with
  | Json.List items -> items
  | _ -> failwith (Printf.sprintf "Obs_io: field %S must be a list" key)

let opt_int = function None -> Json.Null | Some i -> Json.Int i

(* [schedule] is optional in the document, not nullable: absent for
   normal runs, present for chaos runs.  Absence keeps every
   pre-existing spe-metrics/2 document valid. *)
let as_string_opt_member key j =
  match j with
  | Json.Obj fields -> (
    match List.assoc_opt key fields with
    | None | Some Json.Null -> None
    | Some (Json.String s) -> Some s
    | Some _ -> failwith (Printf.sprintf "Obs_io: field %S must be a string" key))
  | _ -> failwith (Printf.sprintf "Obs_io: field %S access on a non-object" key)

let report_to_json (r : Metrics.report) =
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("protocol", Json.String r.protocol);
       ("engine", Json.String r.engine);
     ]
    @ (match r.schedule with None -> [] | Some s -> [ ("schedule", Json.String s) ])
    @ [
      ("parties", Json.Int r.parties);
      ("rounds", Json.Int r.rounds);
      ("messages", Json.Int r.messages);
      ("payload_bytes", Json.Int r.payload_bytes);
      ("framed_bytes", opt_int r.framed_bytes);
      ("transport_bytes", opt_int r.transport_bytes);
      ("retransmits", Json.Int r.retransmits);
      ("nacks", Json.Int r.nacks);
      ("timeouts", Json.Int r.timeouts);
      ( "faults",
        Json.Obj
          [ ("dropped", Json.Int r.faults_dropped); ("delayed", Json.Int r.faults_delayed) ] );
      ("wall_s", Json.Float r.wall_s);
      ( "phases",
        Json.List
          (List.map
             (fun (p : Metrics.phase_row) ->
               Json.Obj
                 [
                   ("phase", Json.String p.phase);
                   ("rounds", Json.Int p.rounds);
                   ("messages", Json.Int p.messages);
                   ("payload_bytes", Json.Int p.payload_bytes);
                   ("wall_s", Json.Float p.wall_s);
                 ])
             r.phases) );
      ( "compute",
        Json.List
          (List.map
             (fun (c : Metrics.compute_row) ->
               Json.Obj
                 [
                   ("party", Json.String c.party);
                   ("calls", Json.Int c.calls);
                   ("total_s", Json.Float c.total_s);
                   ("max_s", Json.Float c.max_s);
                 ])
             r.compute) );
      ( "payload_hist",
        Json.List
          (List.map
             (fun (b : Metrics.hist_bucket) ->
               Json.Obj [ ("le_bytes", Json.Int b.le_bytes); ("count", Json.Int b.count) ])
             r.payload_hist) );
      ( "shards",
        Json.List
          (List.map
             (fun (s : Metrics.shard_row) ->
               Json.Obj
                 [
                   ("shard", Json.Int s.shard);
                   ("rounds", Json.Int s.rounds);
                   ("messages", Json.Int s.messages);
                   ("payload_bytes", Json.Int s.payload_bytes);
                   ("framed_bytes", opt_int s.framed_bytes);
                   ("wall_s", Json.Float s.wall_s);
                 ])
             r.shards) );
    ])

let report_of_json j : Metrics.report =
  let tag = as_string "schema" j in
  if tag <> schema && tag <> schema_v1 then
    failwith
      (Printf.sprintf "Obs_io: unsupported metrics schema %S (want %S or %S)" tag schema
         schema_v1);
  let faults = Json.member "faults" j in
  {
    protocol = as_string "protocol" j;
    engine = as_string "engine" j;
    schedule = as_string_opt_member "schedule" j;
    parties = as_int "parties" j;
    rounds = as_int "rounds" j;
    messages = as_int "messages" j;
    payload_bytes = as_int "payload_bytes" j;
    framed_bytes = as_int_opt "framed_bytes" j;
    transport_bytes = as_int_opt "transport_bytes" j;
    retransmits = as_int "retransmits" j;
    nacks = as_int "nacks" j;
    timeouts = as_int "timeouts" j;
    faults_dropped = as_int "dropped" faults;
    faults_delayed = as_int "delayed" faults;
    wall_s = as_float "wall_s" j;
    phases =
      List.map
        (fun p ->
          {
            Metrics.phase = as_string "phase" p;
            rounds = as_int "rounds" p;
            messages = as_int "messages" p;
            payload_bytes = as_int "payload_bytes" p;
            wall_s = as_float "wall_s" p;
          })
        (as_list "phases" j);
    compute =
      List.map
        (fun c ->
          {
            Metrics.party = as_string "party" c;
            calls = as_int "calls" c;
            total_s = as_float "total_s" c;
            max_s = as_float "max_s" c;
          })
        (as_list "compute" j);
    payload_hist =
      List.map
        (fun b -> { Metrics.le_bytes = as_int "le_bytes" b; count = as_int "count" b })
        (as_list "payload_hist" j);
    shards =
      (* spe-metrics/1 predates sharded execution: no shard table. *)
      (if tag = schema_v1 then []
       else
         List.map
           (fun s ->
             {
               Metrics.shard = as_int "shard" s;
               rounds = as_int "rounds" s;
               messages = as_int "messages" s;
               payload_bytes = as_int "payload_bytes" s;
               framed_bytes = as_int_opt "framed_bytes" s;
               wall_s = as_float "wall_s" s;
             })
           (as_list "shards" j));
  }

let report_to_string r = Json.to_string (report_to_json r) ^ "\n"

let report_of_string s = report_of_json (Json.of_string s)

let report_to_text (r : Metrics.report) =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "protocol %-18s engine %-8s parties %d%s\n" r.protocol r.engine r.parties
    (match r.schedule with Some s -> Printf.sprintf "  schedule %s" s | None -> "");
  p "  rounds (NR)      %d\n" r.rounds;
  p "  messages (NM)    %d\n" r.messages;
  p "  payload bytes    %d  (MS = %d bits)\n" r.payload_bytes (8 * r.payload_bytes);
  (match r.framed_bytes with Some b -> p "  framed bytes     %d\n" b | None -> ());
  (match r.transport_bytes with Some b -> p "  transport bytes  %d\n" b | None -> ());
  p "  retransmits %d  nacks %d  timeouts %d  faults dropped/delayed %d/%d\n" r.retransmits
    r.nacks r.timeouts r.faults_dropped r.faults_delayed;
  p "  wall %.6f s\n" r.wall_s;
  if r.phases <> [] then begin
    p "  %-16s %7s %9s %13s %10s\n" "phase" "rounds" "messages" "payload_bytes" "wall_s";
    List.iter
      (fun (row : Metrics.phase_row) ->
        p "  %-16s %7d %9d %13d %10.6f\n" row.phase row.rounds row.messages row.payload_bytes
          row.wall_s)
      r.phases
  end;
  if r.compute <> [] then begin
    p "  %-16s %7s %10s %10s\n" "compute" "calls" "total_s" "max_s";
    List.iter
      (fun (row : Metrics.compute_row) ->
        p "  %-16s %7d %10.6f %10.6f\n" row.party row.calls row.total_s row.max_s)
      r.compute
  end;
  if r.payload_hist <> [] then begin
    Buffer.add_string buf "  payload sizes:";
    List.iter
      (fun (b : Metrics.hist_bucket) -> p "  <=%dB:%d" b.le_bytes b.count)
      r.payload_hist;
    Buffer.add_char buf '\n'
  end;
  if r.shards <> [] then begin
    p "  %-16s %7s %9s %13s %10s\n" "shard" "rounds" "messages" "payload_bytes" "wall_s";
    List.iter
      (fun (row : Metrics.shard_row) ->
        p "  %-16d %7d %9d %13d %10.6f\n" row.shard row.rounds row.messages row.payload_bytes
          row.wall_s)
      r.shards
  end;
  Buffer.contents buf

let kind_name = function
  | Trace.Session -> "session"
  | Trace.Phase -> "phase"
  | Trace.Round -> "round"
  | Trace.Compute -> "compute"

let counter_name = function
  | Trace.Messages -> "messages"
  | Trace.Payload_bytes -> "payload_bytes"
  | Trace.Framed_bytes -> "framed_bytes"
  | Trace.Transport_bytes -> "transport_bytes"
  | Trace.Retransmits -> "retransmits"
  | Trace.Nacks -> "nacks"
  | Trace.Timeouts -> "timeouts"
  | Trace.Faults_dropped -> "faults.dropped"
  | Trace.Faults_delayed -> "faults.delayed"

let trace_to_text trace =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let party = function Some s -> " party=" ^ s | None -> "" in
  let idx label = function Some i -> Printf.sprintf " %s=%d" label i | None -> "" in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Span { kind; label; party = pt; index; start; stop } ->
        p "[%10.6f] span  %-8s %s%s%s dur=%.6fs\n" stop (kind_name kind) label (party pt)
          (idx "round" index) (stop -. start)
      | Trace.Count { counter; party = pt; round; at; delta } ->
        p "[%10.6f] count %-15s +%d%s%s\n" at (counter_name counter) delta (party pt)
          (idx "round" round)
      | Trace.Note { label; party = pt; round; at } ->
        p "[%10.6f] note  %s%s%s\n" at label (party pt) (idx "round" round))
    (Trace.events trace);
  Buffer.contents buf

let bench_to_string ?(extra = []) ~generated_by rows =
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.String bench_schema);
          ("generated_by", Json.String generated_by);
          ("rows", Json.List (List.map report_to_json rows));
        ]
       @ extra))
  ^ "\n"

let bench_of_string s =
  let j = Json.of_string s in
  let tag = as_string "schema" j in
  if tag <> bench_schema then
    failwith (Printf.sprintf "Obs_io: unsupported bench schema %S (want %S)" tag bench_schema);
  List.map report_of_json (as_list "rows" j)
