(** Rendering traces and metric reports: human text and versioned JSON.

    The JSON side is deliberately self-contained — a minimal
    reader/writer pair ({!Json}) instead of a yojson dependency — and
    every document is versioned by a [schema] field so downstream
    tooling can reject what it does not understand.  The schemas:

    - {!schema} ([spe-metrics/2]): one {!Metrics.report}, as emitted by
      [spe ... --metrics json] — [spe-metrics/1] plus the [shards]
      table of sharded executions and the optional [schedule] field
      (the chaos-schedule id, written only when the run executed under
      one; its absence keeps older documents valid).  The reader also
      accepts {!schema_v1} documents (their [shards] read back as
      [[]]).  Field-by-field documentation lives in
      [OBSERVABILITY.md].
    - {!bench_schema} ([spe-bench/1]): a bench trajectory file
      ([BENCH_protocols.json]) whose [rows] are metrics reports.

    All readers raise [Failure] with a located message on malformed
    input; {!report_of_string} is the round-trip inverse of
    {!report_to_string} (tested in [test_obs]). *)

(** A minimal JSON tree with a writer and a strict recursive-descent
    reader.  Numbers parse to [Int] when they are exact integers and to
    [Float] otherwise; the accessors used by the report reader accept
    either where a float is expected. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?pretty:bool -> t -> string
  (** Serialize.  [pretty] (default [true]) indents by two spaces;
      floats print with enough digits to round-trip exactly. *)

  val of_string : string -> t
  (** Parse a complete document.  Raises [Failure] on syntax errors or
      trailing garbage. *)

  val member : string -> t -> t
  (** Field access on an [Obj]; raises [Failure] when missing. *)
end

val schema : string
(** The metrics-report schema tag written by this library:
    ["spe-metrics/2"]. *)

val schema_v1 : string
(** The pre-sharding schema tag still accepted on read:
    ["spe-metrics/1"]. *)

val bench_schema : string
(** The bench-file schema tag: ["spe-bench/1"]. *)

val report_to_json : Metrics.report -> Json.t
(** The report as a [spe-metrics/2] object (schema field included). *)

val report_of_json : Json.t -> Metrics.report
(** Inverse of {!report_to_json}; also reads [spe-metrics/1] (whose
    [shards] come back empty).  Raises [Failure] if the schema tag or
    any required field is missing or ill-typed. *)

val report_to_string : Metrics.report -> string
(** Pretty-printed [spe-metrics/2] JSON, newline-terminated. *)

val report_of_string : string -> Metrics.report
(** Parse + {!report_of_json}. *)

val report_to_text : Metrics.report -> string
(** The human report: totals, per-phase table, per-party compute, the
    payload-size histogram and (for sharded runs) the per-shard
    table. *)

val trace_to_text : Trace.t -> string
(** A readable dump of every recorded event, one line each, in
    recording order — what [--trace FILE] writes. *)

val bench_to_string :
  ?extra:(string * Json.t) list -> generated_by:string -> Metrics.report list -> string
(** A [spe-bench/1] document: [{schema; generated_by; rows}] where each
    row is a [spe-metrics/1] report.  [extra] appends further top-level
    members (e.g. the bench's DP-utility table); {!bench_of_string}
    readers ignore members they do not know. *)

val bench_of_string : string -> Metrics.report list
(** Read a [spe-bench/1] document back.  Raises [Failure] on schema or
    row violations. *)
