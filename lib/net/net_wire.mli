(** Bridging real transport measurements back to {!Spe_mpc.Wire}.

    Each {!Endpoint} logs a {!record} per protocol message it first
    transmits (retransmissions are excluded — the simulated wire has no
    packet loss to pay for).  Merging the per-endpoint logs rebuilds a
    {!Spe_mpc.Wire.t} whose NR/NM/MS statistics are directly comparable
    with a simulated run of the same protocol: the payload bytes are
    produced by the same {!Spe_mpc.Codec} encodings the simulation
    charges, so MS must agree {e exactly}, while [framed_bytes] carries
    the transport's extra framing (see DESIGN.md, "Framing
    overhead"). *)

type record = {
  round : int;
  src : Spe_mpc.Wire.party;
  dst : Spe_mpc.Wire.party;
  payload_bytes : int;  (** Codec bytes — what the simulated wire charges. *)
  framed_bytes : int;  (** Bytes the frame occupied on the real wire. *)
}

type totals = {
  messages : int;
  payload_bytes : int;
  framed_bytes : int;  (** Data frames only; control frames are not included. *)
}

val totals : record list array -> totals
(** Sum the per-endpoint logs. *)

val merge : record list array -> Spe_mpc.Wire.t
(** Replay the logs onto a fresh simulated wire, round by round, each
    message charged its payload size in bits — the socket-run
    counterpart of the wire a {!Spe_mpc.Runtime.run} fills in.  The
    endpoint logs must come from one run (rounds are aligned by
    number). *)
