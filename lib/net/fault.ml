module State = Spe_rng.State

type action = Deliver | Drop | Delay of float | Duplicate

type t = { lock : Mutex.t; decide : src:int -> dst:int -> action }

let decide t ~src ~dst =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> t.decide ~src ~dst)

let make decide = { lock = Mutex.create (); decide }

let none = make (fun ~src:_ ~dst:_ -> Deliver)

let counted f =
  let next = ref 0 in
  make (fun ~src:_ ~dst:_ ->
      let i = !next in
      incr next;
      f i)

let drop_nth indices = counted (fun i -> if List.mem i indices then Drop else Deliver)

let delay_nth delays =
  counted (fun i ->
      match List.assoc_opt i delays with Some d -> Delay d | None -> Deliver)

let blackhole ~src ~dst =
  make (fun ~src:s ~dst:d -> if s = src && d = dst then Drop else Deliver)

let seeded st ~drop ~delay ~max_delay =
  make (fun ~src:_ ~dst:_ ->
      if State.next_float st < drop then Drop
      else if State.next_float st < delay then Delay (State.next_float st *. max_delay)
      else Deliver)
