(** The byte-level frame format of the transport subsystem.

    Everything an endpoint puts on a real wire is one frame: a payload
    carrier ([Data]) or a control frame ([Hello], [End_of_round],
    [Nack], [Fin]).  A frame travels length-prefixed: a 4-byte
    big-endian body length followed by the body.  The body starts with
    a 1-byte tag; [Data] bodies embed a {!Spe_mpc.Runtime.payload}
    encoded with {!Spe_mpc.Codec} — byte-for-byte the encoding whose
    length the simulated wire charges — preceded by a small typed
    header so the receiver can decode without out-of-band knowledge.

    The framing overhead of a run is therefore exactly
    [sum over frames of (framed_length f - payload_length f)]; the
    delta between a socket run's measured bytes and the simulated MS
    statistic.  DESIGN.md ("Framing overhead") derives the closed
    form; the test suite asserts it. *)

type t =
  | Hello of { sender : int }
      (** Connection preamble on the socket backend: identifies the
          connecting endpoint.  Never seen above the transport. *)
  | Data of {
      round : int;
      seq : int;  (** Sender-local send index within the round. *)
      src : Spe_mpc.Wire.party;
      dst : Spe_mpc.Wire.party;
      payload : Spe_mpc.Runtime.payload;
    }  (** One protocol message, as charged on the simulated wire. *)
  | End_of_round of {
      round : int;
      sender : int;
      total : int;  (** Sender's data-frame count this round, to all peers. *)
      to_dst : int;  (** ...of which addressed to this frame's recipient. *)
    }  (** Round barrier: the recipient may step once it holds one from
          every peer and [to_dst] data frames from each. *)
  | Nack of { round : int; sender : int }
      (** Please retransmit everything you sent me for [round]. *)
  | Fin of { sender : int }
      (** Sender decided the protocol is quiescent and is leaving. *)

val encode : t -> bytes
(** Frame body, without the length prefix: an exact-size buffer filled
    by {!encode_into}. *)

val encoded_length : t -> int
(** Closed-form size of {!encode}'s result, computed without encoding
    anything — sized from the payload's element counts and widths. *)

val encode_into : t -> bytes -> pos:int -> int
(** [encode_into t buf ~pos] writes the frame body at [pos] in [buf]
    and returns the position one past the last byte written (always
    [pos + encoded_length t]).  The caller guarantees capacity.  This
    is the transport hot path: encoding a frame with an integer
    payload into a reused send buffer allocates nothing (the test
    suite asserts a zero minor-allocation delta). *)

val decode : bytes -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] on a malformed or
    truncated body. *)

val length_prefix_bytes : int
(** Size of the length prefix every transport adds: 4. *)

val framed_length : t -> int
(** Bytes the frame occupies on a real wire:
    [length_prefix_bytes + encoded_length t] — no encoding happens. *)

val payload_length : t -> int
(** Bytes of pure protocol payload inside the frame — the part the
    simulated wire charges.  [payload_bits / 8] of a [Data] frame's
    payload; 0 for every control frame. *)
