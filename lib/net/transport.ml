exception Closed

type t = {
  self : int;
  peers : int;
  send : int -> bytes -> unit;
  send_many : int -> bytes list -> unit;
  recv : deadline:float -> bytes option;
  close : unit -> unit;
  sent_bytes : unit -> int;
}

(* A mutex-guarded frame queue.  [pop] polls rather than waiting on a
   condition variable: the stdlib [Condition] has no timed wait, and a
   sub-millisecond poll is far below every protocol timeout. *)
module Mailbox = struct
  type m = {
    lock : Mutex.t;
    frames : bytes Queue.t;
    mutable closed : bool;
  }

  let create () = { lock = Mutex.create (); frames = Queue.create (); closed = false }

  let with_lock mb f =
    Mutex.lock mb.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock mb.lock) f

  let push mb body =
    with_lock mb (fun () ->
        if mb.closed then raise Closed;
        Queue.push body mb.frames)

  let push_list mb bodies =
    with_lock mb (fun () ->
        if mb.closed then raise Closed;
        List.iter (fun b -> Queue.push b mb.frames) bodies)

  let poll_interval = 0.0005

  let rec pop mb ~deadline =
    let next =
      with_lock mb (fun () ->
          if mb.closed then raise Closed;
          Queue.take_opt mb.frames)
    in
    match next with
    | Some _ as r -> r
    | None ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Thread.delay poll_interval;
        pop mb ~deadline
      end

  let close mb = with_lock mb (fun () -> mb.closed <- true)
end

let check_dst ~peers dst =
  if dst < 0 || dst >= peers then invalid_arg "Transport.send: unknown peer"

(* Endpoints are identified by group index at this layer; traces use
   ["#i"] labels since the transport does not know the party names. *)
let index_label i = Printf.sprintf "#%d" i

module Memory = struct
  let create_group ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~m () =
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let close_all () = Array.iter Mailbox.close mailboxes in
    Array.init m (fun self ->
        let label = index_label self in
        (* The fault decision and the byte accounting are per frame;
           only the mailbox delivery batches.  Returns [None] when the
           frame is dropped or delayed rather than delivered. *)
        let stage dst body =
          check_dst ~peers:m dst;
          let cost = Frame.length_prefix_bytes + Bytes.length body in
          Atomic.fetch_and_add counters.(self) cost |> ignore;
          Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost;
          match Fault.decide fault ~src:self ~dst with
          | Fault.Deliver -> Some body
          | Fault.Drop ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_dropped 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.drop ->#%d" dst);
            None
          | Fault.Delay d ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_delayed 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label
                (Printf.sprintf "fault.delay %.3fs ->#%d" d dst);
            ignore
              (Thread.create
                 (fun () ->
                   Thread.delay d;
                   try Mailbox.push mailboxes.(dst) body with Closed -> ())
                 ());
            None
          | Fault.Duplicate ->
            (* The copy crosses the wire too: charge it and deliver it
               ahead of the original; the receiver's dedup keyed on
               (sender, round, seq) absorbs the repeat. *)
            Atomic.fetch_and_add counters.(self) cost |> ignore;
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.dup ->#%d" dst);
            (try Mailbox.push mailboxes.(dst) body with Closed -> ());
            Some body
        in
        let send dst body =
          match stage dst body with
          | Some body -> Mailbox.push mailboxes.(dst) body
          | None -> ()
        in
        let send_many dst bodies =
          match List.filter_map (stage dst) bodies with
          | [] -> ()
          | delivered -> Mailbox.push_list mailboxes.(dst) delivered
        in
        {
          self;
          peers = m;
          send;
          send_many;
          recv = (fun ~deadline -> Mailbox.pop mailboxes.(self) ~deadline);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })
end

module Socket = struct
  type address = Unix_domain of string | Tcp of string * int

  let sockaddr_of = function
    | Unix_domain path -> Unix.ADDR_UNIX path
    | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

  let rec really_write fd buf off len =
    if len > 0 then begin
      let n = try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
      really_write fd buf (off + n) (len - n)
    end

  (* [None] on clean EOF before the first byte; raises on a torn read. *)
  let really_read fd len =
    let buf = Bytes.create len in
    let rec go off =
      if off >= len then Some buf
      else
        match Unix.read fd buf off (len - off) with
        | 0 -> if off = 0 then None else failwith "Transport.Socket: truncated stream"
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let write_frame fd body =
    let len = Bytes.length body in
    let prefixed = Bytes.create (Frame.length_prefix_bytes + len) in
    Bytes.set_int32_be prefixed 0 (Int32.of_int len);
    Bytes.blit body 0 prefixed Frame.length_prefix_bytes len;
    really_write fd prefixed 0 (Bytes.length prefixed)

  let read_frame fd =
    match really_read fd Frame.length_prefix_bytes with
    | None -> None
    | Some prefix -> really_read fd (Int32.to_int (Bytes.get_int32_be prefix 0))

  (* A full-duplex descriptor shared by one endpoint's sender and the
     group's poller thread.  The send mutex makes teardown safe: the
     poller closes the descriptor under the same mutex, so a send can
     never race a close into a reused descriptor number. *)
  type conn = { fd : Unix.file_descr; send_mx : Mutex.t; mutable fd_open : bool }

  (* Writes to a peer that already shut its end down must surface as
     [Closed], not kill the process. *)
  let ignore_sigpipe =
    lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

  let conn_of fd = { fd; send_mx = Mutex.create (); fd_open = true }

  (* Everything past rendezvous is shared by both constructors:
     [spin_up] takes a fully-populated connection matrix — where
     conns.(i).(j) is the descriptor endpoint i uses to exchange
     frames with endpoint j — and returns the endpoint array, owning
     the teardown protocol and the group's poller thread. *)
  let spin_up ~fault ~trace ~m ~mailboxes ~counters ~conns =
    let closed = Atomic.make false in
    (* Teardown protocol: [close_all] only *shuts down* every socket —
       that wakes any read blocked in the poller and fails any write in
       a sender with EPIPE — and the poller alone closes descriptors,
       once it has seen each one dead.  Closing a descriptor another
       thread still reads would let the number be reused by the next
       group and its frames be stolen. *)
    let close_all () =
      if not (Atomic.exchange closed true) then begin
        Array.iter Mailbox.close mailboxes;
        Array.iter
          (Array.iter (function
            | None -> ()
            | Some c -> (
              try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())))
          conns
      end
    in
    (* One poller thread reads every descriptor of the group and feeds
       the owning endpoint's mailbox.  [Unix.select] costs nothing
       while the group is quiet, and a ready descriptor always yields a
       whole frame promptly because senders write frames atomically
       under the connection mutex. *)
    let reader_ends =
      Array.to_list conns
      |> List.concat_map Array.to_list
      |> List.concat_map (function None -> [] | Some c -> [ c ])
    in
    let owner_of = Hashtbl.create 16 in
    Array.iteri
      (fun i row ->
        Array.iter (function None -> () | Some c -> Hashtbl.replace owner_of c.fd i) row)
      conns;
    ignore
      (Thread.create
         (fun () ->
           (* Buffered reads: one [Unix.read] pulls whatever burst the
              sender wrote — typically a whole round's frames — and the
              tail of any split frame waits in [tails] for the next
              chunk.  Frame-per-syscall reading would cost a select
              wakeup plus two reads per frame. *)
           let chunk = Bytes.create 65536 in
           let tails = Hashtbl.create 16 in
           let live = ref (List.map (fun c -> c.fd) reader_ends) in
           let drop fd = live := List.filter (fun f -> f <> fd) !live in
           while !live <> [] do
             match Unix.select !live [] [] (-1.) with
             | ready, _, _ ->
               List.iter
                 (fun fd ->
                   let i = Hashtbl.find owner_of fd in
                   match Unix.read fd chunk 0 (Bytes.length chunk) with
                   | 0 -> drop fd
                   | nread ->
                     let prev =
                       Option.value ~default:Bytes.empty (Hashtbl.find_opt tails fd)
                     in
                     let data = Bytes.cat prev (Bytes.sub chunk 0 nread) in
                     let total = Bytes.length data in
                     let pos = ref 0 in
                     let rec consume () =
                       if total - !pos >= Frame.length_prefix_bytes then begin
                         let flen = Int32.to_int (Bytes.get_int32_be data !pos) in
                         if total - !pos >= Frame.length_prefix_bytes + flen then begin
                           let body = Bytes.sub data (!pos + Frame.length_prefix_bytes) flen in
                           (try Mailbox.push mailboxes.(i) body with Closed -> ());
                           pos := !pos + Frame.length_prefix_bytes + flen;
                           consume ()
                         end
                       end
                     in
                     consume ();
                     Hashtbl.replace tails fd (Bytes.sub data !pos (total - !pos))
                   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                   | exception Unix.Unix_error _ -> drop fd)
                 ready
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | exception Unix.Unix_error _ -> live := []
           done;
           (* Every read end is dead; reclaim the descriptors.  The
              mutex excludes any send still holding a descriptor. *)
           List.iter
             (fun c ->
               Mutex.lock c.send_mx;
               if c.fd_open then begin
                 c.fd_open <- false;
                 try Unix.close c.fd with Unix.Unix_error _ -> ()
               end;
               Mutex.unlock c.send_mx)
             reader_ends)
         ());
    Array.init m (fun self ->
        let label = index_label self in
        let conn_to dst =
          check_dst ~peers:m dst;
          if Atomic.get closed then raise Closed;
          match conns.(self).(dst) with
          | None -> invalid_arg "Transport.send: unknown peer"
          | Some c -> c
        in
        let count_frame body =
          let cost = Frame.length_prefix_bytes + Bytes.length body in
          Atomic.fetch_and_add counters.(self) cost |> ignore;
          Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost
        in
        let locked_write c buf =
          Mutex.lock c.send_mx;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock c.send_mx)
            (fun () ->
              if not c.fd_open then raise Closed;
              try really_write c.fd buf 0 (Bytes.length buf)
              with Unix.Unix_error _ -> raise Closed)
        in
        let prefixed body =
          let len = Bytes.length body in
          let buf = Bytes.create (Frame.length_prefix_bytes + len) in
          Bytes.set_int32_be buf 0 (Int32.of_int len);
          Bytes.blit body 0 buf Frame.length_prefix_bytes len;
          buf
        in
        (* Fault decisions mirror the memory backend exactly — charge
           the frame *before* deciding (a dropped frame still counts as
           transmitted, so the framing closed form survives faults),
           then lose, hold or double the actual write. *)
        let classify dst body =
          count_frame body;
          match Fault.decide fault ~src:self ~dst with
          | Fault.Deliver -> [ prefixed body ]
          | Fault.Drop ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_dropped 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.drop ->#%d" dst);
            []
          | Fault.Delay d ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_delayed 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label
                (Printf.sprintf "fault.delay %.3fs ->#%d" d dst);
            let buf = prefixed body in
            ignore
              (Thread.create
                 (fun () ->
                   Thread.delay d;
                   match conn_to dst with
                   | c -> ( try locked_write c buf with Closed -> ())
                   | exception Closed -> ())
                 ());
            []
          | Fault.Duplicate ->
            count_frame body;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.dup ->#%d" dst);
            let buf = prefixed body in
            [ buf; buf ]
        in
        let send dst body =
          let c = conn_to dst in
          match classify dst body with
          | [] -> ()
          | [ buf ] -> locked_write c buf
          | bufs -> locked_write c (Bytes.concat Bytes.empty bufs)
        in
        (* A whole round's frames to one peer in a single write: one
           syscall, one poller wakeup, one burst read at the far end. *)
        let send_many dst bodies =
          match bodies with
          | [] -> ()
          | bodies -> (
            let c = conn_to dst in
            match List.concat_map (classify dst) bodies with
            | [] -> ()
            | bufs -> locked_write c (Bytes.concat Bytes.empty bufs))
        in
        {
          self;
          peers = m;
          send;
          send_many;
          recv = (fun ~deadline -> Mailbox.pop mailboxes.(self) ~deadline);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })

  let create_group ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~addresses () =
    Lazy.force ignore_sigpipe;
    let m = Array.length addresses in
    if m < 2 then invalid_arg "Transport.Socket.create_group: need at least two endpoints";
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let conns = Array.make_matrix m m None in
    let listeners =
      Array.mapi
        (fun i addr ->
          let domain = match addr with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
          let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
          (match addr with
          | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
          Unix.bind sock (sockaddr_of addr);
          Unix.listen sock m;
          (i, sock))
        addresses
    in
    (* Dial first — the listen backlog holds the pending connections —
       then drain every listener in this same thread.  No handshake
       threads: setup is a fixed sequence of non-blocking syscalls.
       The dialer introduces itself with a Hello frame. *)
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let fd = Unix.socket (match addresses.(i) with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET) Unix.SOCK_STREAM 0 in
        Unix.connect fd (sockaddr_of addresses.(i));
        let hello = Frame.encode (Frame.Hello { sender = j }) in
        write_frame fd hello;
        let cost = Frame.length_prefix_bytes + Bytes.length hello in
        Atomic.fetch_and_add counters.(j) cost |> ignore;
        Spe_obs.Trace.count trace ~party:(index_label j) Spe_obs.Trace.Transport_bytes cost;
        conns.(j).(i) <- Some (conn_of fd)
      done
    done;
    Array.iter
      (fun (i, listener) ->
        for _ = i + 1 to m - 1 do
          let fd, _ = Unix.accept listener in
          match read_frame fd with
          | Some body -> (
            match Frame.decode body with
            | Frame.Hello { sender } -> conns.(i).(sender) <- Some (conn_of fd)
            | _ -> failwith "Transport.Socket: expected Hello")
          | None -> failwith "Transport.Socket: peer hung up during handshake"
        done;
        Unix.close listener)
      listeners;
    (* The rendezvous paths served their purpose; drop them now so a
       crashed group cannot leave stale sockets behind. *)
    Array.iter
      (function
        | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ())
      addresses;
    spin_up ~fault ~trace ~m ~mailboxes ~counters ~conns

  (* Same engine — kernel stream sockets, frames, poller, teardown —
     minus the rendezvous: every pair is joined by [Unix.socketpair],
     so there is no listener, no dial, no Hello exchange and no
     filesystem path.  This is what the shard pool uses: it creates a
     fresh group per shard session, and at that rate the addressed
     handshake (~0.7 ms per group) would dominate the very latency
     overlap sharding exists to buy. *)
  let create_group_local ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~m () =
    Lazy.force ignore_sigpipe;
    if m < 2 then
      invalid_arg "Transport.Socket.create_group_local: need at least two endpoints";
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let conns = Array.make_matrix m m None in
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        conns.(i).(j) <- Some (conn_of a);
        conns.(j).(i) <- Some (conn_of b)
      done
    done;
    spin_up ~fault ~trace ~m ~mailboxes ~counters ~conns

  (* One rendezvous directory per process, group sockets numbered
     within it — a fresh [Filename.temp_dir] per group costs directory
     churn on every shard session.  Mutex-memoised: concurrent pool
     workers create groups at the same time (and [Lazy] is not
     thread-safe). *)
  let temp_root = ref None
  let temp_lock = Mutex.create ()
  let temp_counter = Atomic.make 0

  let temp_unix_addresses ~m =
    Mutex.lock temp_lock;
    let dir =
      match !temp_root with
      | Some d -> d
      | None ->
        let d = Filename.temp_dir "spe-net" "" in
        temp_root := Some d;
        d
    in
    Mutex.unlock temp_lock;
    let g = Atomic.fetch_and_add temp_counter 1 in
    Array.init m (fun i ->
        Unix_domain (Filename.concat dir (Printf.sprintf "g%d.p%d.sock" g i)))
end
