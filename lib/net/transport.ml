exception Closed

type t = {
  self : int;
  peers : int;
  send : int -> bytes -> unit;
  send_many : int -> bytes list -> unit;
  recv : deadline:float -> bytes option;
  try_recv : unit -> bytes option;
  set_notify : (unit -> unit) -> unit;
  close : unit -> unit;
  sent_bytes : unit -> int;
}

(* A mutex-guarded frame queue with a condition-variable-style parked
   wait.  The stdlib [Condition] has no timed wait, and [recv] must
   honour a deadline, so the condvar is pipe-backed: an empty [pop]
   parks in [Unix.select] on a lazily-created wake pipe with exactly
   the remaining time as the timeout, and a [push] into an empty queue
   (or a [close]) writes one byte to wake it.  No polling, exact
   deadlines — the old 0.5 ms [Thread.delay] poll burned a core for
   the whole of a long compute phase on the far side.

   The mailbox also carries the reactor-facing readiness interface:
   [try_recv] (non-blocking pop) and a notify callback invoked after
   every delivery and on close, which is how a push from a foreign
   thread wakes a state machine parked on another thread's reactor. *)
module Mailbox = struct
  type m = {
    lock : Mutex.t;
    frames : bytes Queue.t;
    mutable closed : bool;
    mutable waiting : bool;  (* a popper is parked on the wake pipe *)
    mutable wake : (Unix.file_descr * Unix.file_descr) option;
        (* Owned by the parked popper for the duration of one park:
           created before parking, removed under the lock and closed
           right after the wait, so a pusher can never touch a stale
           descriptor and nothing leaks on close. *)
    mutable notify : (unit -> unit) option;
  }

  let create () =
    {
      lock = Mutex.create ();
      frames = Queue.create ();
      closed = false;
      waiting = false;
      wake = None;
      notify = None;
    }

  let with_lock mb f =
    Mutex.lock mb.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock mb.lock) f

  let wake_byte = Bytes.make 1 '!'

  (* Call with the lock held; the write is safe under it because the
     popper only ever reads the pipe outside the lock. *)
  let signal_locked mb =
    if mb.waiting then
      match mb.wake with
      | Some (_, w) -> ( try ignore (Unix.write w wake_byte 0 1) with Unix.Unix_error _ -> ())
      | None -> ()

  let notify_of mb = with_lock mb (fun () -> mb.notify)

  let run_notify mb = match notify_of mb with Some f -> f () | None -> ()

  let set_notify mb f = with_lock mb (fun () -> mb.notify <- Some f)

  let push mb body =
    with_lock mb (fun () ->
        if mb.closed then raise Closed;
        Queue.push body mb.frames;
        signal_locked mb);
    run_notify mb

  let push_list mb bodies =
    with_lock mb (fun () ->
        if mb.closed then raise Closed;
        List.iter (fun b -> Queue.push b mb.frames) bodies;
        signal_locked mb);
    run_notify mb

  let try_pop mb =
    with_lock mb (fun () ->
        if mb.closed then raise Closed;
        Queue.take_opt mb.frames)

  let rec pop mb ~deadline =
    let next =
      with_lock mb (fun () ->
          if mb.closed then raise Closed;
          match Queue.take_opt mb.frames with
          | Some _ as r -> `Frame r
          | None ->
            let remaining = deadline -. Unix.gettimeofday () in
            if remaining <= 0. then `Expired
            else begin
              let r, w = Unix.pipe () in
              Unix.set_nonblock w;
              mb.wake <- Some (r, w);
              mb.waiting <- true;
              `Park (r, w, remaining)
            end)
    in
    match next with
    | `Frame r -> r
    | `Expired -> None
    | `Park (r, w, remaining) ->
      (match Unix.select [ r ] [] [] remaining with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      with_lock mb (fun () ->
          mb.waiting <- false;
          mb.wake <- None);
      (* Exclusive owner now — no pusher can signal a pipe that is no
         longer registered, so closing cannot race a write. *)
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ());
      pop mb ~deadline

  let close mb =
    with_lock mb (fun () ->
        mb.closed <- true;
        signal_locked mb);
    run_notify mb
end

let check_dst ~peers dst =
  if dst < 0 || dst >= peers then invalid_arg "Transport.send: unknown peer"

(* Endpoints are identified by group index at this layer; traces use
   ["#i"] labels since the transport does not know the party names. *)
let index_label i = Printf.sprintf "#%d" i

module Memory = struct
  let create_group ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~m () =
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let close_all () = Array.iter Mailbox.close mailboxes in
    Array.init m (fun self ->
        let label = index_label self in
        (* The fault decision and the byte accounting are per frame;
           only the mailbox delivery batches.  Returns [None] when the
           frame is dropped or delayed rather than delivered. *)
        let stage dst body =
          check_dst ~peers:m dst;
          let cost = Frame.length_prefix_bytes + Bytes.length body in
          Atomic.fetch_and_add counters.(self) cost |> ignore;
          Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost;
          match Fault.decide fault ~src:self ~dst with
          | Fault.Deliver -> Some body
          | Fault.Drop ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_dropped 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.drop ->#%d" dst);
            None
          | Fault.Delay d ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_delayed 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label
                (Printf.sprintf "fault.delay %.3fs ->#%d" d dst);
            ignore
              (Thread.create
                 (fun () ->
                   Thread.delay d;
                   try Mailbox.push mailboxes.(dst) body with Closed -> ())
                 ());
            None
          | Fault.Duplicate ->
            (* The copy crosses the wire too: charge it and deliver it
               ahead of the original; the receiver's dedup keyed on
               (sender, round, seq) absorbs the repeat. *)
            Atomic.fetch_and_add counters.(self) cost |> ignore;
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.dup ->#%d" dst);
            (try Mailbox.push mailboxes.(dst) body with Closed -> ());
            Some body
        in
        let send dst body =
          match stage dst body with
          | Some body -> Mailbox.push mailboxes.(dst) body
          | None -> ()
        in
        let send_many dst bodies =
          match List.filter_map (stage dst) bodies with
          | [] -> ()
          | delivered -> Mailbox.push_list mailboxes.(dst) delivered
        in
        {
          self;
          peers = m;
          send;
          send_many;
          recv = (fun ~deadline -> Mailbox.pop mailboxes.(self) ~deadline);
          try_recv = (fun () -> Mailbox.try_pop mailboxes.(self));
          set_notify = (fun f -> Mailbox.set_notify mailboxes.(self) f);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })
end

module Socket = struct
  type address = Unix_domain of string | Tcp of string * int

  let sockaddr_of = function
    | Unix_domain path -> Unix.ADDR_UNIX path
    | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

  let rec really_write fd buf off len =
    if len > 0 then begin
      let n = try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
      really_write fd buf (off + n) (len - n)
    end

  (* [None] on clean EOF before the first byte; raises on a torn read. *)
  let really_read fd len =
    let buf = Bytes.create len in
    let rec go off =
      if off >= len then Some buf
      else
        match Unix.read fd buf off (len - off) with
        | 0 -> if off = 0 then None else failwith "Transport.Socket: truncated stream"
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let write_frame fd body =
    let len = Bytes.length body in
    let prefixed = Bytes.create (Frame.length_prefix_bytes + len) in
    Bytes.set_int32_be prefixed 0 (Int32.of_int len);
    Bytes.blit body 0 prefixed Frame.length_prefix_bytes len;
    really_write fd prefixed 0 (Bytes.length prefixed)

  let read_frame fd =
    match really_read fd Frame.length_prefix_bytes with
    | None -> None
    | Some prefix -> really_read fd (Int32.to_int (Bytes.get_int32_be prefix 0))

  (* A full-duplex descriptor shared by one endpoint's sender and the
     group's poller thread.  The send mutex makes teardown safe: the
     poller closes the descriptor under the same mutex, so a send can
     never race a close into a reused descriptor number. *)
  type conn = { fd : Unix.file_descr; send_mx : Mutex.t; mutable fd_open : bool }

  (* Writes to a peer that already shut its end down must surface as
     [Closed], not kill the process. *)
  let ignore_sigpipe =
    lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

  let conn_of fd = { fd; send_mx = Mutex.create (); fd_open = true }

  let prefixed body =
    let len = Bytes.length body in
    let buf = Bytes.create (Frame.length_prefix_bytes + len) in
    Bytes.set_int32_be buf 0 (Int32.of_int len);
    Bytes.blit body 0 buf Frame.length_prefix_bytes len;
    buf

  (* A byte window over a reusable backing buffer: valid bytes are
     [buf.(off) .. buf.(off + len - 1)].  Appends compact or grow in
     place, so both send paths batch a round's frames into one reused
     buffer (one write, no per-frame [Bytes.create]/[Bytes.concat]),
     and a reactor connection's read path reuses one buffer for the
     whole session instead of [Bytes.cat]-ing a fresh copy per chunk
     (the old poller's tail accumulation was quadratic on large
     bursts). *)
  module Slab = struct
    type s = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

    let create () = { buf = Bytes.create 4096; off = 0; len = 0 }

    let reserve s n =
      if s.off + s.len + n > Bytes.length s.buf then
        if s.len + n <= Bytes.length s.buf then begin
          (* Enough total room: slide the window back to the start. *)
          Bytes.blit s.buf s.off s.buf 0 s.len;
          s.off <- 0
        end
        else begin
          let cap = ref (max 4096 (Bytes.length s.buf)) in
          while !cap < s.len + n do
            cap := !cap * 2
          done;
          let buf = Bytes.create !cap in
          Bytes.blit s.buf s.off buf 0 s.len;
          s.buf <- buf;
          s.off <- 0
        end

    let add s src off n =
      reserve s n;
      Bytes.blit src off s.buf (s.off + s.len) n;
      s.len <- s.len + n

    (* One frame, length prefix included, appended in place. *)
    let add_framed s body =
      let len = Bytes.length body in
      reserve s (Frame.length_prefix_bytes + len);
      Bytes.set_int32_be s.buf (s.off + s.len) (Int32.of_int len);
      Bytes.blit body 0 s.buf (s.off + s.len + Frame.length_prefix_bytes) len;
      s.len <- s.len + Frame.length_prefix_bytes + len

    let consume s n =
      s.off <- s.off + n;
      s.len <- s.len - n;
      if s.len = 0 then s.off <- 0

    let clear s =
      s.off <- 0;
      s.len <- 0
  end

  (* Everything past rendezvous is shared by both blocking
     constructors: [spin_up] takes a fully-populated connection matrix
     — where conns.(i).(j) is the descriptor endpoint i uses to
     exchange frames with endpoint j — and returns the endpoint array,
     owning the teardown protocol and the group's poller thread. *)
  let spin_up ~fault ~trace ~m ~mailboxes ~counters ~conns =
    let closed = Atomic.make false in
    (* Teardown protocol: [close_all] only *shuts down* every socket —
       that wakes any read blocked in the poller and fails any write in
       a sender with EPIPE — and the poller alone closes descriptors,
       once it has seen each one dead.  Closing a descriptor another
       thread still reads would let the number be reused by the next
       group and its frames be stolen. *)
    let close_all () =
      if not (Atomic.exchange closed true) then begin
        Array.iter Mailbox.close mailboxes;
        Array.iter
          (Array.iter (function
            | None -> ()
            | Some c -> (
              try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())))
          conns
      end
    in
    (* One poller thread reads every descriptor of the group and feeds
       the owning endpoint's mailbox.  [Unix.select] costs nothing
       while the group is quiet, and a ready descriptor always yields a
       whole frame promptly because senders write frames atomically
       under the connection mutex. *)
    let reader_ends =
      Array.to_list conns
      |> List.concat_map Array.to_list
      |> List.concat_map (function None -> [] | Some c -> [ c ])
    in
    let owner_of = Hashtbl.create 16 in
    Array.iteri
      (fun i row ->
        Array.iter (function None -> () | Some c -> Hashtbl.replace owner_of c.fd i) row)
      conns;
    ignore
      (Thread.create
         (fun () ->
           (* Buffered reads: one [Unix.read] pulls whatever burst the
              sender wrote — typically a whole round's frames — and the
              tail of any split frame waits in [tails] for the next
              chunk.  Frame-per-syscall reading would cost a select
              wakeup plus two reads per frame. *)
           let chunk = Bytes.create 65536 in
           let tails = Hashtbl.create 16 in
           let live = ref (List.map (fun c -> c.fd) reader_ends) in
           let drop fd = live := List.filter (fun f -> f <> fd) !live in
           while !live <> [] do
             match Unix.select !live [] [] (-1.) with
             | ready, _, _ ->
               List.iter
                 (fun fd ->
                   let i = Hashtbl.find owner_of fd in
                   match Unix.read fd chunk 0 (Bytes.length chunk) with
                   | 0 -> drop fd
                   | nread ->
                     let prev =
                       Option.value ~default:Bytes.empty (Hashtbl.find_opt tails fd)
                     in
                     let data = Bytes.cat prev (Bytes.sub chunk 0 nread) in
                     let total = Bytes.length data in
                     let pos = ref 0 in
                     let rec consume () =
                       if total - !pos >= Frame.length_prefix_bytes then begin
                         let flen = Int32.to_int (Bytes.get_int32_be data !pos) in
                         if total - !pos >= Frame.length_prefix_bytes + flen then begin
                           let body = Bytes.sub data (!pos + Frame.length_prefix_bytes) flen in
                           (try Mailbox.push mailboxes.(i) body with Closed -> ());
                           pos := !pos + Frame.length_prefix_bytes + flen;
                           consume ()
                         end
                       end
                     in
                     consume ();
                     Hashtbl.replace tails fd (Bytes.sub data !pos (total - !pos))
                   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                   | exception Unix.Unix_error _ -> drop fd)
                 ready
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
             | exception Unix.Unix_error _ -> live := []
           done;
           (* Every read end is dead; reclaim the descriptors.  The
              mutex excludes any send still holding a descriptor. *)
           List.iter
             (fun c ->
               Mutex.lock c.send_mx;
               if c.fd_open then begin
                 c.fd_open <- false;
                 try Unix.close c.fd with Unix.Unix_error _ -> ()
               end;
               Mutex.unlock c.send_mx)
             reader_ends)
         ());
    Array.init m (fun self ->
        let label = index_label self in
        let conn_to dst =
          check_dst ~peers:m dst;
          if Atomic.get closed then raise Closed;
          match conns.(self).(dst) with
          | None -> invalid_arg "Transport.send: unknown peer"
          | Some c -> c
        in
        let count_frame body =
          let cost = Frame.length_prefix_bytes + Bytes.length body in
          Atomic.fetch_and_add counters.(self) cost |> ignore;
          Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost
        in
        let locked_write c buf =
          Mutex.lock c.send_mx;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock c.send_mx)
            (fun () ->
              if not c.fd_open then raise Closed;
              try really_write c.fd buf 0 (Bytes.length buf)
              with Unix.Unix_error _ -> raise Closed)
        in
        (* Frames bound for one peer accumulate, length-prefixed, in a
           per-endpoint scratch slab that is reused across sends: no
           per-frame [Bytes.create] or [Bytes.concat] on the steady
           path.  The endpoint's owner thread is the only writer (the
           rare Delay fault keeps a private copy for its timer
           thread). *)
        let scratch = Slab.create () in
        (* Fault decisions mirror the memory backend exactly — charge
           the frame *before* deciding (a dropped frame still counts as
           transmitted, so the framing closed form survives faults),
           then lose, hold or double the actual write. *)
        let classify dst body =
          count_frame body;
          match Fault.decide fault ~src:self ~dst with
          | Fault.Deliver -> Slab.add_framed scratch body
          | Fault.Drop ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_dropped 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.drop ->#%d" dst)
          | Fault.Delay d ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_delayed 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label
                (Printf.sprintf "fault.delay %.3fs ->#%d" d dst);
            let buf = prefixed body in
            ignore
              (Thread.create
                 (fun () ->
                   Thread.delay d;
                   match conn_to dst with
                   | c -> ( try locked_write c buf with Closed -> ())
                   | exception Closed -> ())
                 ())
          | Fault.Duplicate ->
            count_frame body;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.dup ->#%d" dst);
            Slab.add_framed scratch body;
            Slab.add_framed scratch body
        in
        (* One write per flush — a round's frames cost one syscall, one
           poller wakeup, one burst read at the far end.  The slab is
           reset even when the write dies so a later send to a live
           peer never replays stale bytes. *)
        let flush_scratch c =
          if scratch.Slab.len > 0 then
            Fun.protect
              ~finally:(fun () -> Slab.clear scratch)
              (fun () ->
                Mutex.lock c.send_mx;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock c.send_mx)
                  (fun () ->
                    if not c.fd_open then raise Closed;
                    try really_write c.fd scratch.Slab.buf scratch.Slab.off scratch.Slab.len
                    with Unix.Unix_error _ -> raise Closed))
        in
        let send dst body =
          let c = conn_to dst in
          classify dst body;
          flush_scratch c
        in
        let send_many dst bodies =
          match bodies with
          | [] -> ()
          | bodies ->
            let c = conn_to dst in
            List.iter (classify dst) bodies;
            flush_scratch c
        in
        {
          self;
          peers = m;
          send;
          send_many;
          recv = (fun ~deadline -> Mailbox.pop mailboxes.(self) ~deadline);
          try_recv = (fun () -> Mailbox.try_pop mailboxes.(self));
          set_notify = (fun f -> Mailbox.set_notify mailboxes.(self) f);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })

  (* --- Reactor-driven groups -------------------------------------------------- *)

  (* One direction-owning descriptor of a reactor group: endpoint
     [owner] reads its inbound frames from [fd] and queues its
     outbound bytes on [out] until the send-flush continuation has
     drained them. *)
  type rconn = {
    r_fd : Unix.file_descr;
    r_owner : int;
    mutable r_open : bool;
    r_in : Slab.s;
    r_out : Slab.s;
    mutable r_flushing : bool;  (* on_writable continuation installed *)
  }

  (* The per-endpoint inbox of a reactor group.  Single-threaded: the
     reactor loop is the only reader and (via the read callbacks) the
     only writer, so no lock — only the notify hook, which posts the
     owning machine's wake task. *)
  type rinbox = {
    q : bytes Queue.t;
    mutable rx_closed : bool;
    mutable rx_notify : (unit -> unit) option;
  }

  let spin_up_reactor ~reactor ~fault ~trace ~m ~counters ~conns =
    let closed = ref false in
    let inboxes =
      Array.init m (fun _ -> { q = Queue.create (); rx_closed = false; rx_notify = None })
    in
    let rconns =
      Array.map
        (Array.map (Option.map (fun (owner, fd) ->
             Unix.set_nonblock fd;
             {
               r_fd = fd;
               r_owner = owner;
               r_open = true;
               r_in = Slab.create ();
               r_out = Slab.create ();
               r_flushing = false;
             })))
        conns
    in
    let notify_inbox ib = match ib.rx_notify with Some f -> f () | None -> () in
    let kill_conn c =
      if c.r_open then begin
        c.r_open <- false;
        Reactor.forget_fd reactor c.r_fd;
        (try Unix.close c.r_fd with Unix.Unix_error _ -> ())
      end
    in
    let close_all () =
      if not !closed then begin
        closed := true;
        Array.iter (Array.iter (function None -> () | Some c -> kill_conn c)) rconns;
        Array.iter
          (fun ib ->
            ib.rx_closed <- true;
            notify_inbox ib)
          inboxes
      end
    in
    (* The buffer-reusing read path: append whatever the kernel has
       into the connection's slab, slice out every complete frame in
       place, and wake the owning machine once per burst. *)
    let on_read c =
      let ib = inboxes.(c.r_owner) in
      Slab.reserve c.r_in 65536;
      let s = c.r_in in
      match Unix.read c.r_fd s.Slab.buf (s.Slab.off + s.Slab.len) 65536 with
      | 0 -> kill_conn c
      | nread ->
        s.Slab.len <- s.Slab.len + nread;
        let delivered = ref false in
        let rec consume () =
          if s.Slab.len >= Frame.length_prefix_bytes then begin
            let flen = Int32.to_int (Bytes.get_int32_be s.Slab.buf s.Slab.off) in
            if s.Slab.len >= Frame.length_prefix_bytes + flen then begin
              let body = Bytes.sub s.Slab.buf (s.Slab.off + Frame.length_prefix_bytes) flen in
              Slab.consume s (Frame.length_prefix_bytes + flen);
              if not ib.rx_closed then begin
                Queue.push body ib.q;
                delivered := true
              end;
              consume ()
            end
          end
        in
        consume ();
        if !delivered then notify_inbox ib
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> kill_conn c
    in
    Array.iter
      (Array.iter (function
        | None -> ()
        | Some c -> Reactor.on_readable reactor c.r_fd (fun () -> on_read c)))
      rconns;
    (* The send-flush continuation: write as much pending output as
       the kernel will take; on a short write park a writability
       interest and resume there.  This is what lets m machines share
       one thread without a full socket buffer deadlocking the loop. *)
    let rec flush c =
      let s = c.r_out in
      if c.r_open && s.Slab.len > 0 then begin
        match Unix.write c.r_fd s.Slab.buf s.Slab.off s.Slab.len with
        | n ->
          Slab.consume s n;
          if s.Slab.len > 0 then park c else unpark c
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          park c
        | exception Unix.Unix_error _ ->
          (* The peer is gone; the machines will find out through the
             barrier.  Drop the pending output. *)
          s.Slab.len <- 0;
          s.Slab.off <- 0;
          kill_conn c
      end
      else if c.r_open then unpark c
    and park c =
      if not c.r_flushing then begin
        c.r_flushing <- true;
        Reactor.on_writable reactor c.r_fd (fun () -> flush c)
      end
    and unpark c =
      if c.r_flushing then begin
        c.r_flushing <- false;
        Reactor.clear_writable reactor c.r_fd
      end
    in
    Array.init m (fun self ->
        let label = index_label self in
        let conn_to dst =
          check_dst ~peers:m dst;
          if !closed then raise Closed;
          match rconns.(self).(dst) with
          | None -> invalid_arg "Transport.send: unknown peer"
          | Some c -> c
        in
        let count_frame body =
          let cost = Frame.length_prefix_bytes + Bytes.length body in
          Atomic.fetch_and_add counters.(self) cost |> ignore;
          Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost
        in
        (* Identical fault semantics to the blocking backends — charge
           before deciding — except a [Delay] holds the frame on a
           reactor timer instead of a helper thread: the injection
           point lives on the loop the machines run on.  Delivered
           frames append, length-prefixed, straight into the
           connection's pending-output slab: no intermediate copy. *)
        let classify c dst body =
          count_frame body;
          match Fault.decide fault ~src:self ~dst with
          | Fault.Deliver ->
            if not c.r_open then raise Closed;
            Slab.add_framed c.r_out body
          | Fault.Drop ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_dropped 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.drop ->#%d" dst)
          | Fault.Delay d ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_delayed 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label
                (Printf.sprintf "fault.delay %.3fs ->#%d" d dst);
            let buf = prefixed body in
            ignore
              (Reactor.at reactor
                 (Unix.gettimeofday () +. d)
                 (fun () ->
                   if not !closed then
                     match rconns.(self).(dst) with
                     | Some c when c.r_open ->
                       Slab.add c.r_out buf 0 (Bytes.length buf);
                       flush c
                     | _ -> ()))
          | Fault.Duplicate ->
            count_frame body;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.dup ->#%d" dst);
            if not c.r_open then raise Closed;
            Slab.add_framed c.r_out body;
            Slab.add_framed c.r_out body
        in
        let send_many dst bodies =
          match bodies with
          | [] -> ()
          | bodies ->
            let c = conn_to dst in
            let before = c.r_out.Slab.len in
            List.iter (classify c dst) bodies;
            if c.r_out.Slab.len > before then flush c
        in
        let send dst body = send_many dst [ body ] in
        let try_recv () =
          let ib = inboxes.(self) in
          if ib.rx_closed && Queue.is_empty ib.q then raise Closed;
          Queue.take_opt ib.q
        in
        {
          self;
          peers = m;
          send;
          send_many;
          recv =
            (fun ~deadline:_ ->
              invalid_arg "Transport: blocking recv on a reactor transport");
          try_recv;
          set_notify = (fun f -> inboxes.(self).rx_notify <- Some f);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })

  let create_group ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~addresses () =
    Lazy.force ignore_sigpipe;
    let m = Array.length addresses in
    if m < 2 then invalid_arg "Transport.Socket.create_group: need at least two endpoints";
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let conns = Array.make_matrix m m None in
    let listeners =
      Array.mapi
        (fun i addr ->
          let domain = match addr with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
          let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
          (match addr with
          | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
          Unix.bind sock (sockaddr_of addr);
          Unix.listen sock m;
          (i, sock))
        addresses
    in
    (* Dial first — the listen backlog holds the pending connections —
       then drain every listener in this same thread.  No handshake
       threads: setup is a fixed sequence of non-blocking syscalls.
       The dialer introduces itself with a Hello frame. *)
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let fd = Unix.socket (match addresses.(i) with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET) Unix.SOCK_STREAM 0 in
        Unix.connect fd (sockaddr_of addresses.(i));
        let hello = Frame.encode (Frame.Hello { sender = j }) in
        write_frame fd hello;
        let cost = Frame.length_prefix_bytes + Bytes.length hello in
        Atomic.fetch_and_add counters.(j) cost |> ignore;
        Spe_obs.Trace.count trace ~party:(index_label j) Spe_obs.Trace.Transport_bytes cost;
        conns.(j).(i) <- Some (conn_of fd)
      done
    done;
    Array.iter
      (fun (i, listener) ->
        for _ = i + 1 to m - 1 do
          let fd, _ = Unix.accept listener in
          match read_frame fd with
          | Some body -> (
            match Frame.decode body with
            | Frame.Hello { sender } -> conns.(i).(sender) <- Some (conn_of fd)
            | _ -> failwith "Transport.Socket: expected Hello")
          | None -> failwith "Transport.Socket: peer hung up during handshake"
        done;
        Unix.close listener)
      listeners;
    (* The rendezvous paths served their purpose; drop them now so a
       crashed group cannot leave stale sockets behind. *)
    Array.iter
      (function
        | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ())
      addresses;
    spin_up ~fault ~trace ~m ~mailboxes ~counters ~conns

  (* Same engine — kernel stream sockets, frames, poller, teardown —
     minus the rendezvous: every pair is joined by [Unix.socketpair],
     so there is no listener, no dial, no Hello exchange and no
     filesystem path.  This is what the shard pool uses: it creates a
     fresh group per shard session, and at that rate the addressed
     handshake (~0.7 ms per group) would dominate the very latency
     overlap sharding exists to buy. *)
  let create_group_local ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~m () =
    Lazy.force ignore_sigpipe;
    if m < 2 then
      invalid_arg "Transport.Socket.create_group_local: need at least two endpoints";
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let conns = Array.make_matrix m m None in
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        conns.(i).(j) <- Some (conn_of a);
        conns.(j).(i) <- Some (conn_of b)
      done
    done;
    spin_up ~fault ~trace ~m ~mailboxes ~counters ~conns

  (* The reactor twin of [create_group_local]: same socketpair mesh,
     same frames and fault accounting, but every descriptor belongs to
     [reactor] and the returned transports speak the non-blocking
     readiness interface ([try_recv] + notify) instead of a blocking
     [recv].  Zero threads: reads, writes, delays and teardown all
     happen on the loop. *)
  let reactor_group_local ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ())
      ~reactor ~m () =
    Lazy.force ignore_sigpipe;
    if m < 2 then
      invalid_arg "Transport.Socket.reactor_group_local: need at least two endpoints";
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let conns = Array.make_matrix m m None in
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        conns.(i).(j) <- Some (i, a);
        conns.(j).(i) <- Some (j, b)
      done
    done;
    spin_up_reactor ~reactor ~fault ~trace ~m ~counters ~conns

  (* The reactor twin of [create_group]: the addressed rendezvous and
     its Hello accounting are identical (and still blocking — setup is
     a fixed syscall sequence before the loop starts), then the
     descriptors are handed to the reactor. *)
  let reactor_group ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~reactor
      ~addresses () =
    Lazy.force ignore_sigpipe;
    let m = Array.length addresses in
    if m < 2 then invalid_arg "Transport.Socket.reactor_group: need at least two endpoints";
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let conns = Array.make_matrix m m None in
    let listeners =
      Array.mapi
        (fun i addr ->
          let domain = match addr with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
          let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
          (match addr with
          | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
          Unix.bind sock (sockaddr_of addr);
          Unix.listen sock m;
          (i, sock))
        addresses
    in
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let fd = Unix.socket (match addresses.(i) with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET) Unix.SOCK_STREAM 0 in
        Unix.connect fd (sockaddr_of addresses.(i));
        let hello = Frame.encode (Frame.Hello { sender = j }) in
        write_frame fd hello;
        let cost = Frame.length_prefix_bytes + Bytes.length hello in
        Atomic.fetch_and_add counters.(j) cost |> ignore;
        Spe_obs.Trace.count trace ~party:(index_label j) Spe_obs.Trace.Transport_bytes cost;
        conns.(j).(i) <- Some (j, fd)
      done
    done;
    Array.iter
      (fun (i, listener) ->
        for _ = i + 1 to m - 1 do
          let fd, _ = Unix.accept listener in
          match read_frame fd with
          | Some body -> (
            match Frame.decode body with
            | Frame.Hello { sender } -> conns.(i).(sender) <- Some (i, fd)
            | _ -> failwith "Transport.Socket: expected Hello")
          | None -> failwith "Transport.Socket: peer hung up during handshake"
        done;
        Unix.close listener)
      listeners;
    Array.iter
      (function
        | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ())
      addresses;
    spin_up_reactor ~reactor ~fault ~trace ~m ~counters ~conns

  (* One rendezvous directory per process, group sockets numbered
     within it — a fresh [Filename.temp_dir] per group costs directory
     churn on every shard session.  Mutex-memoised: concurrent pool
     workers create groups at the same time (and [Lazy] is not
     thread-safe). *)
  let temp_root = ref None
  let temp_lock = Mutex.create ()
  let temp_counter = Atomic.make 0

  let temp_unix_addresses ~m =
    Mutex.lock temp_lock;
    let dir =
      match !temp_root with
      | Some d -> d
      | None ->
        let d = Filename.temp_dir "spe-net" "" in
        temp_root := Some d;
        d
    in
    Mutex.unlock temp_lock;
    let g = Atomic.fetch_and_add temp_counter 1 in
    Array.init m (fun i ->
        Unix_domain (Filename.concat dir (Printf.sprintf "g%d.p%d.sock" g i)))
end
