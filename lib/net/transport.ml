exception Closed

type t = {
  self : int;
  peers : int;
  send : int -> bytes -> unit;
  recv : deadline:float -> bytes option;
  close : unit -> unit;
  sent_bytes : unit -> int;
}

(* A mutex-guarded frame queue.  [pop] polls rather than waiting on a
   condition variable: the stdlib [Condition] has no timed wait, and a
   sub-millisecond poll is far below every protocol timeout. *)
module Mailbox = struct
  type m = {
    lock : Mutex.t;
    frames : bytes Queue.t;
    mutable closed : bool;
  }

  let create () = { lock = Mutex.create (); frames = Queue.create (); closed = false }

  let with_lock mb f =
    Mutex.lock mb.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock mb.lock) f

  let push mb body =
    with_lock mb (fun () ->
        if mb.closed then raise Closed;
        Queue.push body mb.frames)

  let poll_interval = 0.0005

  let rec pop mb ~deadline =
    let next =
      with_lock mb (fun () ->
          if mb.closed then raise Closed;
          Queue.take_opt mb.frames)
    in
    match next with
    | Some _ as r -> r
    | None ->
      if Unix.gettimeofday () >= deadline then None
      else begin
        Thread.delay poll_interval;
        pop mb ~deadline
      end

  let close mb = with_lock mb (fun () -> mb.closed <- true)
end

let check_dst ~peers dst =
  if dst < 0 || dst >= peers then invalid_arg "Transport.send: unknown peer"

(* Endpoints are identified by group index at this layer; traces use
   ["#i"] labels since the transport does not know the party names. *)
let index_label i = Printf.sprintf "#%d" i

module Memory = struct
  let create_group ?(fault = Fault.none) ?(trace = Spe_obs.Trace.disabled ()) ~m () =
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    let close_all () = Array.iter Mailbox.close mailboxes in
    Array.init m (fun self ->
        let label = index_label self in
        let send dst body =
          check_dst ~peers:m dst;
          let cost = Frame.length_prefix_bytes + Bytes.length body in
          Atomic.fetch_and_add counters.(self) cost |> ignore;
          Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost;
          match Fault.decide fault ~src:self ~dst with
          | Fault.Deliver -> Mailbox.push mailboxes.(dst) body
          | Fault.Drop ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_dropped 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label (Printf.sprintf "fault.drop ->#%d" dst)
          | Fault.Delay d ->
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Faults_delayed 1;
            if Spe_obs.Trace.enabled trace then
              Spe_obs.Trace.note trace ~party:label
                (Printf.sprintf "fault.delay %.3fs ->#%d" d dst);
            ignore
              (Thread.create
                 (fun () ->
                   Thread.delay d;
                   try Mailbox.push mailboxes.(dst) body with Closed -> ())
                 ())
        in
        {
          self;
          peers = m;
          send;
          recv = (fun ~deadline -> Mailbox.pop mailboxes.(self) ~deadline);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })
end

module Socket = struct
  type address = Unix_domain of string | Tcp of string * int

  let sockaddr_of = function
    | Unix_domain path -> Unix.ADDR_UNIX path
    | Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

  let rec really_write fd buf off len =
    if len > 0 then begin
      let n = try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
      really_write fd buf (off + n) (len - n)
    end

  (* [None] on clean EOF before the first byte; raises on a torn read. *)
  let really_read fd len =
    let buf = Bytes.create len in
    let rec go off =
      if off >= len then Some buf
      else
        match Unix.read fd buf off (len - off) with
        | 0 -> if off = 0 then None else failwith "Transport.Socket: truncated stream"
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let write_frame fd body =
    let len = Bytes.length body in
    let prefixed = Bytes.create (Frame.length_prefix_bytes + len) in
    Bytes.set_int32_be prefixed 0 (Int32.of_int len);
    Bytes.blit body 0 prefixed Frame.length_prefix_bytes len;
    really_write fd prefixed 0 (Bytes.length prefixed)

  let read_frame fd =
    match really_read fd Frame.length_prefix_bytes with
    | None -> None
    | Some prefix -> really_read fd (Int32.to_int (Bytes.get_int32_be prefix 0))

  let create_group ?(trace = Spe_obs.Trace.disabled ()) ~addresses () =
    let m = Array.length addresses in
    if m < 2 then invalid_arg "Transport.Socket.create_group: need at least two endpoints";
    let mailboxes = Array.init m (fun _ -> Mailbox.create ()) in
    let counters = Array.init m (fun _ -> Atomic.make 0) in
    (* fds.(i).(j): the descriptor endpoint i uses to exchange frames
       with endpoint j.  Each connection contributes one descriptor to
       each of its two ends. *)
    let fds = Array.make_matrix m m None in
    let fds_lock = Mutex.create () in
    let set_fd i j fd =
      Mutex.lock fds_lock;
      fds.(i).(j) <- Some fd;
      Mutex.unlock fds_lock
    in
    let listeners =
      Array.mapi
        (fun i addr ->
          let domain = match addr with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
          let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
          (match addr with
          | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
          | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
          Unix.bind sock (sockaddr_of addr);
          Unix.listen sock m;
          (i, sock))
        addresses
    in
    (* Endpoint i accepts one connection from every higher index; the
       dialer introduces itself with a Hello frame. *)
    let acceptors =
      Array.map
        (fun (i, listener) ->
          Thread.create
            (fun () ->
              for _ = i + 1 to m - 1 do
                let fd, _ = Unix.accept listener in
                match read_frame fd with
                | Some body -> (
                  match Frame.decode body with
                  | Frame.Hello { sender } -> set_fd i sender fd
                  | _ -> failwith "Transport.Socket: expected Hello")
                | None -> failwith "Transport.Socket: peer hung up during handshake"
              done;
              Unix.close listener)
            ())
        listeners
    in
    for j = 1 to m - 1 do
      for i = 0 to j - 1 do
        let fd = Unix.socket (match addresses.(i) with Unix_domain _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET) Unix.SOCK_STREAM 0 in
        Unix.connect fd (sockaddr_of addresses.(i));
        let hello = Frame.encode (Frame.Hello { sender = j }) in
        write_frame fd hello;
        let cost = Frame.length_prefix_bytes + Bytes.length hello in
        Atomic.fetch_and_add counters.(j) cost |> ignore;
        Spe_obs.Trace.count trace ~party:(index_label j) Spe_obs.Trace.Transport_bytes cost;
        set_fd j i fd
      done
    done;
    Array.iter Thread.join acceptors;
    let closed = Atomic.make false in
    let close_all () =
      if not (Atomic.exchange closed true) then begin
        Array.iter Mailbox.close mailboxes;
        Array.iter
          (fun row ->
            Array.iter (function Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ())
              row)
          fds;
        Array.iter
          (function
            | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
            | Tcp _ -> ())
          addresses
      end
    in
    (* One reader thread per descriptor feeds the owning endpoint's
       mailbox; it stops quietly on EOF or once the group is closed. *)
    Array.iteri
      (fun i row ->
        Array.iter
          (function
            | None -> ()
            | Some fd ->
              ignore
                (Thread.create
                   (fun () ->
                     try
                       let rec loop () =
                         match read_frame fd with
                         | Some body ->
                           Mailbox.push mailboxes.(i) body;
                           loop ()
                         | None -> ()
                       in
                       loop ()
                     with Closed | Failure _ | Unix.Unix_error _ -> ())
                   ()))
          row)
      fds;
    Array.init m (fun self ->
        let label = index_label self in
        let send dst body =
          check_dst ~peers:m dst;
          if Atomic.get closed then raise Closed;
          match fds.(self).(dst) with
          | None -> invalid_arg "Transport.send: unknown peer"
          | Some fd ->
            let cost = Frame.length_prefix_bytes + Bytes.length body in
            Atomic.fetch_and_add counters.(self) cost |> ignore;
            Spe_obs.Trace.count trace ~party:label Spe_obs.Trace.Transport_bytes cost;
            (try write_frame fd body
             with Unix.Unix_error _ -> raise Closed)
        in
        {
          self;
          peers = m;
          send;
          recv = (fun ~deadline -> Mailbox.pop mailboxes.(self) ~deadline);
          close = close_all;
          sent_bytes = (fun () -> Atomic.get counters.(self));
        })

  let temp_unix_addresses ~m =
    let dir = Filename.temp_dir "spe-net" "" in
    Array.init m (fun i -> Unix_domain (Filename.concat dir (Printf.sprintf "p%d.sock" i)))
end
