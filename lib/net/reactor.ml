(* One poll loop per process.  See reactor.mli for the contract; the
   implementation notes here are about the three data structures and
   the wake protocol.

   - Ready queue: one mutex-guarded FIFO shared by on-loop and
     off-loop posters.  The loop drains it in snapshots: tasks posted
     while a snapshot runs wait for the next iteration, which is what
     makes interleaving between machines fair and deterministic.
   - Timers: a binary min-heap on (deadline, registration seq), so
     equal deadlines fire in registration order.  Cancellation marks
     the node dead and lets the pop skip it — O(1) cancel, no sifting.
   - Descriptors: two fd-keyed tables (read/write interest).  select
     is fine at this repo's fan-in (a shard group is m·(m-1)
     descriptors, m ≤ a handful of parties), and it is the only
     portable readiness syscall in the OCaml stdlib.

   The self-pipe carries cross-thread wake-ups: [post] from a foreign
   thread writes one byte iff the loop is parked in select.  The byte
   is drained before dispatching, so a burst of posts costs one
   syscall. *)

type timer = { t_deadline : float; t_seq : int; t_task : unit -> unit; mutable t_dead : bool }

module Heap = struct
  type t = { mutable a : timer array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let before x y =
    x.t_deadline < y.t_deadline || (x.t_deadline = y.t_deadline && x.t_seq < y.t_seq)

  let push h x =
    if h.len = Array.length h.a then begin
      let cap = max 16 (2 * h.len) in
      let a' = Array.make cap x in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- x;
    h.len <- h.len + 1;
    (* Sift up. *)
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.a.(0) <- h.a.(h.len);
        (* Sift down. *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && before h.a.(l) h.a.(!s) then s := l;
          if r < h.len && before h.a.(r) h.a.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            let tmp = h.a.(!s) in
            h.a.(!s) <- h.a.(!i);
            h.a.(!i) <- tmp;
            i := !s
          end
        done
      end;
      Some top
    end
end

type t = {
  lock : Mutex.t;  (* guards [ready], [parked] and [destroyed] *)
  ready : (unit -> unit) Queue.t;
  mutable parked : bool;  (* loop is (about to be) blocked in select *)
  mutable destroyed : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  timers : Heap.t;
  mutable timer_seq : int;
  mutable live_timers : int;
  readers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  writers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  (* Gauges. *)
  iterations : int Atomic.t;
  fires : int Atomic.t;
}

let create () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    lock = Mutex.create ();
    ready = Queue.create ();
    parked = false;
    destroyed = false;
    wake_r;
    wake_w;
    timers = Heap.create ();
    timer_seq = 0;
    live_timers = 0;
    readers = Hashtbl.create 16;
    writers = Hashtbl.create 16;
    iterations = Atomic.make 0;
    fires = Atomic.make 0;
  }

let wake_byte = Bytes.make 1 '!'

let post t task =
  Mutex.lock t.lock;
  let need_wake = t.parked && not t.destroyed in
  if not t.destroyed then begin
    Queue.push task t.ready;
    t.parked <- false
  end;
  Mutex.unlock t.lock;
  if need_wake then
    (* A full pipe already holds a pending wake-up; EAGAIN is fine. *)
    try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

let destroy t =
  Mutex.lock t.lock;
  let live = not t.destroyed in
  t.destroyed <- true;
  Queue.clear t.ready;
  Mutex.unlock t.lock;
  if live then begin
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end

let at t deadline task =
  let tm = { t_deadline = deadline; t_seq = t.timer_seq; t_task = task; t_dead = false } in
  t.timer_seq <- t.timer_seq + 1;
  Heap.push t.timers tm;
  t.live_timers <- t.live_timers + 1;
  tm

let cancel t tm =
  if not tm.t_dead then begin
    tm.t_dead <- true;
    t.live_timers <- t.live_timers - 1
  end

let on_readable t fd k = Hashtbl.replace t.readers fd k
let on_writable t fd k = Hashtbl.replace t.writers fd k
let clear_readable t fd = Hashtbl.remove t.readers fd
let clear_writable t fd = Hashtbl.remove t.writers fd

let forget_fd t fd =
  clear_readable t fd;
  clear_writable t fd

let iterations t = Atomic.get t.iterations
let timer_fires t = Atomic.get t.fires

let ready_depth t =
  Mutex.lock t.lock;
  let n = Queue.length t.ready in
  Mutex.unlock t.lock;
  n

let pending_timers t = t.live_timers
let watched_fds t = Hashtbl.length t.readers + Hashtbl.length t.writers

(* Pop every timer due at [now], skipping cancelled nodes.  The heap
   order is (deadline, seq), so the returned list is already the fire
   order. *)
let due_timers t now =
  let rec go acc =
    match Heap.peek t.timers with
    | Some tm when tm.t_dead ->
      ignore (Heap.pop t.timers);
      go acc
    | Some tm when tm.t_deadline <= now ->
      ignore (Heap.pop t.timers);
      t.live_timers <- t.live_timers - 1;
      go (tm :: acc)
    | _ -> List.rev acc
  in
  go []

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

(* One snapshot of the ready queue: tasks enqueued after the snapshot
   is taken wait for the next iteration. *)
let take_snapshot t =
  Mutex.lock t.lock;
  let n = Queue.length t.ready in
  let batch = List.init n (fun _ -> Queue.pop t.ready) in
  Mutex.unlock t.lock;
  batch

let run t ~until =
  while not (until ()) do
    Atomic.incr t.iterations;
    (* 1. Due timers, in (deadline, seq) order. *)
    let due = due_timers t (Unix.gettimeofday ()) in
    List.iter
      (fun tm ->
        if not tm.t_dead then begin
          Atomic.incr t.fires;
          tm.t_task ()
        end)
      due;
    if not (until ()) then begin
      (* 2. One ready snapshot. *)
      let batch = take_snapshot t in
      List.iter (fun task -> task ()) batch;
      if not (until ()) then begin
        (* 3. Park in select until a descriptor, a timer deadline or a
           cross-thread post needs us.  With work already queued the
           timeout is zero — the select doubles as the fd poll. *)
        Mutex.lock t.lock;
        let queued = not (Queue.is_empty t.ready) in
        t.parked <- not queued;
        Mutex.unlock t.lock;
        let timeout =
          if queued then 0.
          else begin
            (* Drop leading cancelled timers so they don't shorten the
               park for nothing. *)
            let rec head () =
              match Heap.peek t.timers with
              | Some tm when tm.t_dead ->
                ignore (Heap.pop t.timers);
                head ()
              | x -> x
            in
            match head () with
            | Some tm -> max 0. (tm.t_deadline -. Unix.gettimeofday ())
            | None -> -1.
          end
        in
        let rfds = t.wake_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.readers [] in
        let wfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.writers [] in
        let readable, writable =
          match Unix.select rfds wfds [] timeout with
          | r, w, _ -> (r, w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
          | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            (* A callback closed a descriptor without clearing its
               interest; sweep the stale registrations and retry on
               the next iteration. *)
            let stale tbl =
              Hashtbl.fold
                (fun fd _ acc ->
                  match Unix.fstat fd with
                  | _ -> acc
                  | exception Unix.Unix_error (Unix.EBADF, _, _) -> fd :: acc)
                tbl []
            in
            List.iter (Hashtbl.remove t.readers) (stale t.readers);
            List.iter (Hashtbl.remove t.writers) (stale t.writers);
            ([], [])
        in
        Mutex.lock t.lock;
        t.parked <- false;
        Mutex.unlock t.lock;
        List.iter
          (fun fd ->
            if fd = t.wake_r then drain_wake_pipe t
            else
              (* A previous callback this iteration may have dropped
                 the interest. *)
              match Hashtbl.find_opt t.readers fd with
              | Some k -> k ()
              | None -> ())
          readable;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.writers fd with Some k -> k () | None -> ())
          writable
      end
    end
  done
