(** Hosting {!Spe_mpc.Runtime.program}s over a real transport.

    {!Spe_mpc.Runtime.run} routes party closures through an in-process
    hash table; this module gives each party its own thread and moves
    the same programs over byte streams.  The round discipline is kept
    by an [End_of_round] barrier: after stepping, a party tells every
    peer how many data frames it sent that round (in total, and to that
    peer specifically), and a party steps round [r + 1] only once it
    holds the barrier frame and the promised data from all peers.
    A round in which no party sent anything is globally visible through
    the barrier counts, so every endpoint terminates on the same round
    — exactly the engine's quiescence rule, and like the engine the
    quiescent round is not charged.

    Loss is handled by receiver-driven retransmission: a party whose
    round fails to complete within [round_timeout] Nacks the incomplete
    peers, who replay their cached frames for that round; after
    [max_retries] fruitless timeouts the party raises {!Round_timeout}
    instead of hanging, and the whole group is torn down. *)

type config = {
  round_timeout : float;
      (** Seconds to wait for a round barrier before Nacking. *)
  max_retries : int;  (** Nack rounds before giving up. *)
  linger : float;
      (** Seconds a quiescent endpoint stays around to serve
          retransmissions of its final barrier (it leaves early once
          every peer has confirmed termination). *)
}

val default_config : config
(** 2 s round timeout, 3 retries, 5 s linger (the linger exceeds a
    round timeout so a quiescent endpoint outlives a lossy peer's first
    Nack). *)

exception Round_timeout of {
  party : Spe_mpc.Wire.party;
  round : int;
  missing : Spe_mpc.Wire.party list;  (** Peers that never completed the round. *)
}

type outcome = {
  rounds : int;  (** Non-quiescent rounds executed — the NR statistic. *)
  sent : Net_wire.record list;
      (** This endpoint's first-transmission log, in send order. *)
}

type result = {
  outcomes : outcome array;  (** One per endpoint, in party order. *)
  transport_bytes : int;
      (** Total framed bytes actually transmitted by the group —
          payloads, framing, barriers, handshakes, retransmissions. *)
}

val run_group :
  ?config:config ->
  transports:Transport.t array ->
  parties:Spe_mpc.Wire.party array ->
  programs:Spe_mpc.Runtime.program array ->
  max_rounds:int ->
  unit ->
  result
(** Drive one program per party, each on its own thread over its
    transport, until global quiescence.  Mirrors the engine's contract:
    raises [Failure "Endpoint.run: protocol did not terminate"] past
    [max_rounds], [Invalid_argument] on a forged source or a message to
    an unknown party, {!Round_timeout} when a peer stays silent.  Any
    failure closes the whole group, so the remaining threads unwind
    promptly instead of waiting out their timeouts. *)

val run_memory :
  ?config:config ->
  ?fault:Fault.t ->
  parties:Spe_mpc.Wire.party array ->
  programs:Spe_mpc.Runtime.program array ->
  max_rounds:int ->
  unit ->
  result
(** {!run_group} over a fresh {!Transport.Memory} group. *)

val run_socket :
  ?config:config ->
  ?addresses:Transport.Socket.address array ->
  parties:Spe_mpc.Wire.party array ->
  programs:Spe_mpc.Runtime.program array ->
  max_rounds:int ->
  unit ->
  result
(** {!run_group} over a fresh {!Transport.Socket} group (fresh
    Unix-domain sockets in a temporary directory unless [addresses]
    says otherwise). *)

val run_session_memory :
  ?config:config ->
  ?fault:Fault.t ->
  'r Spe_mpc.Session.t ->
  'r * result
(** Host a composed {!Spe_mpc.Session} on memory-channel endpoints and
    read its result.  Like {!Spe_mpc.Session.run}, raises [Failure] if
    the executed round count differs from the session's declared
    {!Spe_mpc.Session.rounds}. *)

val run_session_socket :
  ?config:config ->
  ?addresses:Transport.Socket.address array ->
  'r Spe_mpc.Session.t ->
  'r * result
(** {!run_session_memory} over fresh Unix-domain sockets. *)
