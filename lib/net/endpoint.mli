(** Hosting {!Spe_mpc.Runtime.program}s over a real transport.

    {!Spe_mpc.Runtime.run} routes party closures through an in-process
    hash table; this module gives each party its own thread and moves
    the same programs over byte streams.  The round discipline is kept
    by an [End_of_round] barrier: after stepping, a party tells every
    peer how many data frames it sent that round (in total, and to that
    peer specifically), and a party steps round [r + 1] only once it
    holds the barrier frame and the promised data from all peers.
    A round in which no party sent anything is globally visible through
    the barrier counts, so every endpoint terminates on the same round
    — exactly the engine's quiescence rule, and like the engine the
    quiescent round is not charged.

    Loss is handled by receiver-driven retransmission: a party whose
    round fails to complete within [round_timeout] Nacks the incomplete
    peers, who replay their cached frames for that round; after
    [max_retries] fruitless timeouts the party raises {!Round_timeout}
    instead of hanging, and the whole group is torn down. *)

type config = {
  round_timeout : float;
      (** Seconds to wait for a round barrier before Nacking. *)
  max_retries : int;  (** Nack rounds before giving up. *)
  linger : float;
      (** Seconds a quiescent endpoint stays around to serve
          retransmissions of its final barrier (it leaves early once
          every peer has confirmed termination). *)
}

val default_config : config
(** 2 s round timeout, 3 retries, 5 s linger (the linger exceeds a
    round timeout so a quiescent endpoint outlives a lossy peer's first
    Nack). *)

exception Round_timeout of {
  party : Spe_mpc.Wire.party;
  round : int;
  phase : string option;
      (** The pipeline phase owning [round], read from the trace's
          phase map — so a stuck socket run reports ["p4-mask"] rather
          than a bare round number.  [None] when no phase map was
          installed (e.g. {!run_group} on raw programs). *)
  missing : Spe_mpc.Wire.party list;  (** Peers that never completed the round. *)
}
(** A registered [Printexc] printer renders the full context:
    ["Endpoint.Round_timeout: P1 timed out in round 3 (phase p4-mask)
    waiting on Host"]. *)

type outcome = {
  rounds : int;  (** Non-quiescent rounds executed — the NR statistic. *)
  sent : Net_wire.record list;
      (** This endpoint's first-transmission log, in send order. *)
}

type result = {
  outcomes : outcome array;  (** One per endpoint, in party order. *)
  transport_bytes : int;
      (** Total framed bytes actually transmitted by the group —
          payloads, framing, barriers, handshakes, retransmissions. *)
}

val run_party :
  ?config:config ->
  ?trace:Spe_obs.Trace.t ->
  transport:Transport.t ->
  session:'r Spe_mpc.Session.t ->
  index:int ->
  unit ->
  outcome
(** Drive exactly one seat of a session on the calling thread, over a
    caller-supplied transport whose group indices match the session's
    party order — the building block for deployments where the other
    seats live in other processes ([Spe_serve] daemons over a
    session-multiplexed connection mesh, {!Mux}).  Installs the
    session's phase map on [trace], enforces the declared round count
    ([Failure] on mismatch), and raises exactly what {!run_group}'s
    per-party loop raises ({!Round_timeout}, [Transport.Closed], ...).
    The session's result thunk is {e not} called: only the seat that
    owns the result state can read it. *)

val run_party_async :
  ?config:config ->
  ?trace:Spe_obs.Trace.t ->
  reactor:Reactor.t ->
  transport:Transport.t ->
  session:'r Spe_mpc.Session.t ->
  index:int ->
  on_done:((outcome, exn) Stdlib.result -> unit) ->
  unit ->
  unit
(** The event-driven twin of {!run_party}: the seat runs as a
    resumable state machine on [reactor] — parked between events,
    woken by the transport's delivery hook, its round deadlines kept
    by reactor timers — so a host (an [spe serve] daemon) runs every
    seat of every concurrent session on one loop thread instead of one
    thread each.  Must be called from the reactor thread; [on_done]
    fires exactly once, on the reactor thread, with the outcome or
    with exactly the exception {!run_party} would have raised.  The
    transport's [try_recv]/[set_notify] interface is the only one
    used, so both blocking-capable transports ({!Mux} sessions) and
    reactor-owned ones work. *)

val run_group :
  ?config:config ->
  ?trace:Spe_obs.Trace.t ->
  transports:Transport.t array ->
  parties:Spe_mpc.Wire.party array ->
  programs:Spe_mpc.Runtime.program array ->
  max_rounds:int ->
  unit ->
  result
(** Drive one program per party, each on its own thread over its
    transport, until global quiescence.  Mirrors the engine's contract:
    raises [Failure "Endpoint.run: protocol did not terminate"] past
    [max_rounds], [Invalid_argument] on a forged source or a message to
    an unknown party, {!Round_timeout} when a peer stays silent.  Any
    failure closes the whole group, so the remaining threads unwind
    promptly instead of waiting out their timeouts.

    When [trace] is recording, every endpoint thread records into it:
    a [Round] span per charged round (local step in a nested [Compute]
    span), [Messages]/[Payload_bytes]/[Framed_bytes] counts per data
    frame first transmitted — byte-for-byte what lands in
    {!Net_wire.record}s — plus [Retransmits], [Nacks] and [Timeouts]
    as the loss recovery machinery fires. *)

val run_memory :
  ?config:config ->
  ?fault:Fault.t ->
  ?trace:Spe_obs.Trace.t ->
  parties:Spe_mpc.Wire.party array ->
  programs:Spe_mpc.Runtime.program array ->
  max_rounds:int ->
  unit ->
  result
(** {!run_group} over a fresh {!Transport.Memory} group; [trace] is
    shared with the transports, so fault decisions and transport bytes
    land in the same event stream. *)

val run_socket :
  ?config:config ->
  ?addresses:Transport.Socket.address array ->
  ?fault:Fault.t ->
  ?trace:Spe_obs.Trace.t ->
  parties:Spe_mpc.Wire.party array ->
  programs:Spe_mpc.Runtime.program array ->
  max_rounds:int ->
  unit ->
  result
(** The {!run_group} contract over a fresh {!Transport.Socket} group
    (fresh Unix-domain sockets in a temporary directory unless
    [addresses] says otherwise); [fault] and [trace] are shared with
    the transports, so the socket engine takes the same per-frame
    fault policies the memory engine does.

    Since the reactor rewrite this engine spawns no threads: the
    parties run as state machines on a private {!Reactor} driven by
    the calling thread, over reactor-owned connections
    ({!Transport.Socket.reactor_group}).  Results, accounting and the
    failure contract are unchanged — the cross-engine suites pin the
    socket engine bit-identical to the blocking memory engine, which
    stays as the differential oracle. *)

val run_session_memory :
  ?config:config ->
  ?fault:Fault.t ->
  ?trace:Spe_obs.Trace.t ->
  'r Spe_mpc.Session.t ->
  'r * result
(** Host a composed {!Spe_mpc.Session} on memory-channel endpoints and
    read its result.  Like {!Spe_mpc.Session.run}, raises [Failure] if
    the executed round count differs from the session's declared
    {!Spe_mpc.Session.rounds}.

    The session's {!Spe_mpc.Session.phases} map is installed on
    [trace] (even a non-recording one — {!Round_timeout} reads it for
    its [phase] field) and the whole run is wrapped in a [Session]
    span. *)

val run_session_socket :
  ?config:config ->
  ?addresses:Transport.Socket.address array ->
  ?fault:Fault.t ->
  ?trace:Spe_obs.Trace.t ->
  'r Spe_mpc.Session.t ->
  'r * result
(** {!run_session_memory} over fresh Unix-domain sockets. *)

exception Shard_failed of {
  shard : int;  (** Index of the failed session in the pool's array. *)
  phase : string option;
      (** The phase a {!Round_timeout} named, when that was the cause. *)
  exn : exn;  (** The underlying failure. *)
}
(** Raised by the worker pool when one of its sessions fails; the pool
    closes every sibling connection group before re-raising, and the
    surfaced shard is the {e root cause} (a shard that died of
    [Transport.Closed] because the pool tore it down is only reported
    when nothing better is known).  A registered [Printexc] printer
    renders ["Endpoint.Shard_failed: shard 2 (phase p4-mask) failed:
    ..."]. *)

exception Worker_killed
(** The injected worker-death fault: a pool worker whose session's
    [kills] flag is set raises this immediately after its connection
    group is registered, surfacing as {!Shard_failed} with this
    exception inside.  In root-cause selection a killed worker outranks
    any {!Round_timeout}: the sibling that starved while the pool tore
    down is the echo, not the cause.  Only the chaos harness sets kill
    flags; production pools never see this exception. *)

val run_sessions_memory :
  ?config:config ->
  ?workers:int ->
  ?faults:Fault.t option array ->
  ?kills:bool array ->
  ?traces:Spe_obs.Trace.t array ->
  'r Spe_mpc.Session.t array ->
  ('r * result) array
(** Drive an array of mutually independent sessions — one {!Plan}
    stage's shards — on a pool of at most [workers] threads (default:
    one per session), each claimed session running on its own fresh
    {!Transport.Memory} group with the full {!run_session_memory}
    contract (phase map installed, [Session] span, declared-rounds
    check).  Results are in session order.  [faults], [kills] and
    [traces], when given, must have one entry per session
    ([Invalid_argument] otherwise); a session whose kill flag is set
    raises {!Worker_killed} instead of running (the chaos harness's
    worker-death fault).  On any failure the pool cancels the
    remaining work, closes all open sibling groups, and raises
    {!Shard_failed} naming the root-cause shard — it never hangs on a
    stalled shard. *)

val run_sessions_socket :
  ?config:config ->
  ?workers:int ->
  ?faults:Fault.t option array ->
  ?kills:bool array ->
  ?traces:Spe_obs.Trace.t array ->
  'r Spe_mpc.Session.t array ->
  ('r * result) array
(** The {!run_sessions_memory} contract over fresh socketpair groups,
    with the same per-session [faults] and [kills] hooks — but since
    the reactor rewrite the pool spawns no threads at all: [workers]
    bounds how many shard sessions are {e in flight} on the one
    reactor the calling thread drives, so k shards cost k sets of
    state machines, not k×parties blocked threads.  Claim order,
    sibling cancellation on failure and root-cause attribution
    ({!Worker_killed} outranks timeouts, [Transport.Closed] is the
    echo) are identical to the thread pool's. *)
