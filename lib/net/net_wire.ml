module Wire = Spe_mpc.Wire

type record = {
  round : int;
  src : Wire.party;
  dst : Wire.party;
  payload_bytes : int;
  framed_bytes : int;
}

type totals = { messages : int; payload_bytes : int; framed_bytes : int }

let totals logs =
  Array.fold_left
    (List.fold_left (fun acc (r : record) ->
         {
           messages = acc.messages + 1;
           payload_bytes = acc.payload_bytes + r.payload_bytes;
           framed_bytes = acc.framed_bytes + r.framed_bytes;
         }))
    { messages = 0; payload_bytes = 0; framed_bytes = 0 }
    logs

let merge logs =
  let wire = Wire.create () in
  let last_round =
    Array.fold_left
      (List.fold_left (fun acc r -> max acc r.round))
      0 logs
  in
  for round = 1 to last_round do
    Wire.round wire (fun () ->
        Array.iter
          (List.iter (fun r ->
               if r.round = round then
                 Wire.send wire ~src:r.src ~dst:r.dst ~bits:(8 * r.payload_bytes)))
          logs)
  done;
  wire
