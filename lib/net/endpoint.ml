module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session

type config = { round_timeout : float; max_retries : int; linger : float }

let default_config = { round_timeout = 2.0; max_retries = 3; linger = 5.0 }

exception
  Round_timeout of {
    party : Wire.party;
    round : int;
    phase : string option;
    missing : Wire.party list;
  }

let () =
  Printexc.register_printer (function
    | Round_timeout { party; round; phase; missing } ->
      Some
        (Format.asprintf "Endpoint.Round_timeout: %a timed out in round %d%s waiting on %a"
           Wire.pp_party party round
           (match phase with Some p -> Printf.sprintf " (phase %s)" p | None -> "")
           (Format.pp_print_list
              ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
              Wire.pp_party)
           missing)
    | _ -> None)

type outcome = { rounds : int; sent : Net_wire.record list }

type result = { outcomes : outcome array; transport_bytes : int }

(* One endpoint: step the program, broadcast the round barrier, collect
   the peers' barriers (Nacking silence), repeat until global
   quiescence.  All state is thread-local; the transport is the only
   shared object. *)
let run_endpoint config trace (transport : Transport.t) parties program max_rounds k =
  let m = Array.length parties in
  let party = parties.(k) in
  let me = Runtime.party_label party in
  let tracing = Spe_obs.Trace.enabled trace in
  let index_of p =
    let rec go i = if i >= m then None else if parties.(i) = p then Some i else go (i + 1) in
    go 0
  in
  let eors = Hashtbl.create 16 (* (round, sender) -> (total, to_me) *) in
  let data_count = Hashtbl.create 16 (* (round, sender) -> frames received *) in
  let pending = Hashtbl.create 16 (* round -> (sender, seq, message) list, reversed *) in
  let seen = Hashtbl.create 64 (* (sender, round, seq) — retransmission dedup *) in
  let cache = Hashtbl.create 16 (* round -> (dst, body) list — for Nack replays *) in
  let fins = Array.make m false in
  fins.(k) <- true;
  let records = ref [] in
  let resend round dst =
    let bodies =
      List.filter_map (fun (d, body) -> if d = dst then Some body else None)
        (List.rev (Option.value ~default:[] (Hashtbl.find_opt cache round)))
    in
    if bodies <> [] then begin
      transport.Transport.send_many dst bodies;
      Spe_obs.Trace.count trace ~party:me ~round Spe_obs.Trace.Retransmits
        (List.length bodies)
    end
  in
  let handle body =
    match Frame.decode body with
    | Frame.Hello _ -> ()
    | Frame.Data { round; seq; src; dst = _; payload } -> (
      match index_of src with
      | None -> () (* not a group member: ignore *)
      | Some si ->
        let key = (si, round, seq) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          Hashtbl.replace data_count (round, si)
            (1 + Option.value ~default:0 (Hashtbl.find_opt data_count (round, si)));
          Hashtbl.replace pending round
            ((si, seq, { Runtime.src; dst = party; payload })
            :: Option.value ~default:[] (Hashtbl.find_opt pending round))
        end)
    | Frame.End_of_round { round; sender; total; to_dst } ->
      Hashtbl.replace eors (round, sender) (total, to_dst)
    | Frame.Nack { round; sender } -> resend round sender
    | Frame.Fin { sender } -> if sender >= 0 && sender < m then fins.(sender) <- true
  in
  (* A round's outbound frames are staged per destination and flushed
     with one [send_many] per peer — one transport operation carries
     the data frames and the barrier together.  The cache keeps every
     staged body for Nack replays. *)
  let outbox = Array.make m [] in
  let stage_frame ~round dst frame =
    let body = Frame.encode frame in
    Hashtbl.replace cache round
      ((dst, body) :: Option.value ~default:[] (Hashtbl.find_opt cache round));
    outbox.(dst) <- body :: outbox.(dst)
  in
  let flush_outbox () =
    for j = 0 to m - 1 do
      match outbox.(j) with
      | [] -> ()
      | bodies ->
        outbox.(j) <- [];
        transport.Transport.send_many j (List.rev bodies)
    done
  in
  let rec loop r inbox =
    if r > max_rounds then failwith "Endpoint.run: protocol did not terminate";
    (* The whole charged round — local step, barrier broadcast, barrier
       collection — runs inside one [Round] span so per-phase wall
       times can be summed from round envelopes. *)
    let round_work () =
      let sends =
        if tracing then
          Spe_obs.Trace.span trace ~party:me ~index:r Spe_obs.Trace.Compute "step" (fun () ->
              program ~round:r ~inbox)
        else program ~round:r ~inbox
      in
      List.iteri
        (fun seq (msg : Runtime.message) ->
          if msg.Runtime.src <> party then invalid_arg "Endpoint.run: forged source";
          match index_of msg.Runtime.dst with
          | None -> invalid_arg "Endpoint.run: message to unknown party"
          | Some di ->
            if di = k then invalid_arg "Endpoint.run: self-send";
            let frame =
              Frame.Data
                { round = r; seq; src = msg.Runtime.src; dst = msg.Runtime.dst;
                  payload = msg.Runtime.payload }
            in
            stage_frame ~round:r di frame;
            let payload_bytes = Runtime.payload_bits msg.Runtime.payload / 8 in
            let framed_bytes = Frame.framed_length frame in
            if tracing then begin
              Spe_obs.Trace.count trace ~party:me ~round:r Spe_obs.Trace.Messages 1;
              Spe_obs.Trace.count trace ~party:me ~round:r Spe_obs.Trace.Payload_bytes
                payload_bytes;
              Spe_obs.Trace.count trace ~party:me ~round:r Spe_obs.Trace.Framed_bytes
                framed_bytes
            end;
            records :=
              {
                Net_wire.round = r;
                src = msg.Runtime.src;
                dst = msg.Runtime.dst;
                payload_bytes;
                framed_bytes;
              }
              :: !records)
        sends;
      let own_total = List.length sends in
      for j = 0 to m - 1 do
        if j <> k then begin
          let to_dst =
            List.length
              (List.filter
                 (fun (msg : Runtime.message) -> index_of msg.Runtime.dst = Some j)
                 sends)
          in
          stage_frame ~round:r j
            (Frame.End_of_round { round = r; sender = k; total = own_total; to_dst })
        end
      done;
      flush_outbox ();
      (* Collect the barrier: every peer's End_of_round plus the data
         frames it promised us. *)
      let complete j =
        match Hashtbl.find_opt eors (r, j) with
        | None -> false
        | Some (_, to_me) ->
          Option.value ~default:0 (Hashtbl.find_opt data_count (r, j)) >= to_me
      in
      let all_complete () =
        let rec go j = j >= m || ((j = k || complete j) && go (j + 1)) in
        go 0
      in
      let retries = ref 0 in
      let starvation () =
        let missing =
          List.filter_map
            (fun j -> if j <> k && not (complete j) then Some parties.(j) else None)
            (List.init m Fun.id)
        in
        Round_timeout
          { party; round = r; phase = Spe_obs.Trace.phase_of_round trace r; missing }
      in
      (* [Closed] with [!retries > 0]: the group was torn down while
         this round had already expired a full deadline with peers
         missing — a sibling won the race to raise first.  Report the
         starvation this party had diagnosed rather than the echo; a
         party progressing normally (no retries yet) still propagates
         [Closed], which keeps the pool's root-cause attribution
         intact. *)
      (try
         while not (all_complete ()) do
           let deadline = Unix.gettimeofday () +. config.round_timeout in
           let rec drain () =
             if not (all_complete ()) then
               match transport.Transport.recv ~deadline with
               | Some body ->
                 handle body;
                 drain ()
               | None -> ()
           in
           drain ();
           if not (all_complete ()) then begin
             Spe_obs.Trace.count trace ~party:me ~round:r Spe_obs.Trace.Timeouts 1;
             if !retries >= config.max_retries then raise (starvation ());
             incr retries;
             for j = 0 to m - 1 do
               if j <> k && not (complete j) then begin
                 transport.Transport.send j
                   (Frame.encode (Frame.Nack { round = r; sender = k }));
                 Spe_obs.Trace.count trace ~party:me ~round:r Spe_obs.Trace.Nacks 1
               end
             done
           end
         done
       with Transport.Closed when !retries > 0 -> raise (starvation ()));
      List.fold_left
        (fun acc j -> if j = k then acc else acc + fst (Hashtbl.find eors (r, j)))
        own_total
        (List.init m Fun.id)
    in
    let grand_total =
      if tracing then
        Spe_obs.Trace.span trace ~party:me ~index:r Spe_obs.Trace.Round "round" round_work
      else round_work ()
    in
    if grand_total = 0 then begin
      (* Global quiescence, visible to everyone at this same round.
         Confirm, then stay to replay the final barrier for any peer
         that lost frames, leaving early once all have confirmed. *)
      for j = 0 to m - 1 do
        if j <> k then transport.Transport.send j (Frame.encode (Frame.Fin { sender = k }))
      done;
      let deadline = Unix.gettimeofday () +. config.linger in
      let rec lingering () =
        if (not (Array.for_all Fun.id fins)) && Unix.gettimeofday () < deadline then
          match transport.Transport.recv ~deadline with
          | Some body ->
            handle body;
            lingering ()
          | None -> ()
      in
      lingering ();
      r - 1
    end
    else begin
      let inbox' =
        Option.value ~default:[] (Hashtbl.find_opt pending r)
        |> List.sort (fun (s1, q1, _) (s2, q2, _) -> compare (s1, q1) (s2, q2))
        |> List.map (fun (_, _, msg) -> msg)
      in
      loop (r + 1) inbox'
    end
  in
  let rounds = loop 1 [] in
  { rounds; sent = List.rev !records }

(* One party of a session over a caller-supplied transport — the
   [Spe_serve] daemons drive exactly one seat of each session, with the
   other seats living in other processes.  The phase map is installed
   even on a disabled trace so a [Round_timeout] can name its phase. *)
let run_party ?(config = default_config) ?(trace = Spe_obs.Trace.disabled ()) ~transport
    ~(session : _ Session.t) ~index () =
  let m = Array.length session.Session.parties in
  if index < 0 || index >= m then invalid_arg "Endpoint.run_party: index out of range";
  Spe_obs.Trace.set_phases trace session.Session.phases;
  let outcome =
    run_endpoint config trace transport session.Session.parties
      session.Session.programs.(index)
      (session.Session.rounds + 1) index
  in
  if outcome.rounds <> session.Session.rounds then
    failwith
      (Printf.sprintf "Endpoint.run_party: declared %d rounds but executed %d"
         session.Session.rounds outcome.rounds);
  outcome

let run_group ?(config = default_config) ?(trace = Spe_obs.Trace.disabled ()) ~transports
    ~parties ~programs ~max_rounds () =
  let m = Array.length parties in
  if Array.length transports <> m || Array.length programs <> m then
    invalid_arg "Endpoint.run_group: one transport and one program per party";
  let outcomes = Array.make m None in
  let errors = Array.make m None in
  let close_all () =
    Array.iter (fun (t : Transport.t) -> try t.Transport.close () with _ -> ()) transports
  in
  let run_party k =
    match run_endpoint config trace transports.(k) parties programs.(k) max_rounds k with
    | outcome -> outcomes.(k) <- Some outcome
    | exception e ->
      errors.(k) <- Some e;
      (* Tear the group down so the peers unwind promptly. *)
      close_all ()
  in
  (* Party 0 runs on the calling thread — one fewer thread per group,
     which matters when a pool drives many shard groups at once. *)
  let threads = Array.init (m - 1) (fun i -> Thread.create run_party (i + 1)) in
  run_party 0;
  Array.iter Thread.join threads;
  let transport_bytes =
    Array.fold_left (fun acc (t : Transport.t) -> acc + t.Transport.sent_bytes ()) 0 transports
  in
  close_all ();
  (* Surface the root cause, not the Closed cascade it triggered.  Two
     parties can time out in the same run — the starved one, and a
     peer that then starved waiting for it one round later — so among
     timeouts the earliest round is the diagnosis, not the echo. *)
  let better a b =
    match (a, b) with
    | ( Round_timeout { round = ra; _ },
        Round_timeout { round = rb; _ } ) ->
      ra < rb
    | _ -> false
  in
  let root, any =
    Array.fold_left
      (fun (root, any) e ->
        match e with
        | None -> (root, any)
        | Some Transport.Closed -> (root, if any = None then e else any)
        | Some err ->
          let root =
            match root with
            | None -> e
            | Some r -> if better err r then e else root
          in
          (root, if any = None then e else any))
      (None, None) errors
  in
  (match (root, any) with
  | Some e, _ -> raise e
  | None, Some e -> raise e
  | None, None -> ());
  { outcomes = Array.map Option.get outcomes; transport_bytes }

let run_memory ?config ?fault ?trace ~parties ~programs ~max_rounds () =
  let transports = Transport.Memory.create_group ?fault ?trace ~m:(Array.length parties) () in
  run_group ?config ?trace ~transports ~parties ~programs ~max_rounds ()

(* --- The event-driven endpoint machine ---------------------------------------- *)

(* [Machine] is the reactor-resident twin of [run_endpoint]: the same
   protocol — step, stage data + barriers, flush, collect (Nacking
   silence), repeat to quiescence, then Fin + linger — re-expressed as
   an explicit resumable state machine so one loop thread can carry
   every party of every shard session at once.  Control never blocks:
   the machine parks between events, woken by its transport's notify
   hook (new frames), by a reactor timer (round deadline, linger
   deadline), or by a self-post (next round, for fair interleaving
   with its siblings).

   Frame handling, byte/message accounting, retry/starvation typing
   and the [Closed]-with-retries conversion are kept line-for-line
   equivalent to the blocking engine — the blocking memory engine
   stays behind as the differential oracle, and the cross-engine
   bit-identity suites hold the two implementations to the same
   answers. *)
module Machine = struct
  type state =
    | Idle
        (** Between rounds: the next [begin_round] task is queued but
            has not stepped the program yet.  Wakes are ignored — the
            barrier for round [r] may only be inspected after round
            [r]'s own step has staged and flushed, otherwise a machine
            whose peers raced ahead would skip its own step entirely. *)
    | Collecting  (** Barrier wait for the current round. *)
    | Lingering  (** Quiescent: serving Fin/Nack stragglers until all confirm. *)
    | Finished

  type t = {
    reactor : Reactor.t;
    config : config;
    trace : Spe_obs.Trace.t;
    transport : Transport.t;
    parties : Wire.party array;
    program : round:int -> inbox:Runtime.message list -> Runtime.message list;
    max_rounds : int;
    k : int;
    m : int;
    party : Wire.party;
    me : string;
    tracing : bool;
    (* Protocol state — identical tables to the blocking engine. *)
    eors : (int * int, int * int) Hashtbl.t;
    data_count : (int * int, int) Hashtbl.t;
    pending : (int, (int * int * Runtime.message) list) Hashtbl.t;
    seen : (int * int * int, unit) Hashtbl.t;
    cache : (int, (int * bytes) list) Hashtbl.t;
    fins : bool array;
    mutable records : Net_wire.record list;
    outbox : bytes list array;
    (* Execution state. *)
    mutable round : int;
    mutable own_total : int;
    mutable retries : int;
    mutable state : state;
    mutable timer : Reactor.timer option;
    mutable round_start : float;
    wake_posted : bool Atomic.t;  (* coalesces notify -> post storms *)
    on_done : (outcome, exn) Stdlib.result -> unit;
  }

  let index_of t p =
    let rec go i = if i >= t.m then None else if t.parties.(i) = p then Some i else go (i + 1) in
    go 0

  let disarm t =
    match t.timer with
    | Some tm ->
      Reactor.cancel t.reactor tm;
      t.timer <- None
    | None -> ()

  let arm t deadline k =
    disarm t;
    t.timer <- Some (Reactor.at t.reactor deadline k)

  let finish t res =
    if t.state <> Finished then begin
      t.state <- Finished;
      disarm t;
      t.on_done res
    end

  let resend t round dst =
    let bodies =
      List.filter_map
        (fun (d, body) -> if d = dst then Some body else None)
        (List.rev (Option.value ~default:[] (Hashtbl.find_opt t.cache round)))
    in
    if bodies <> [] then begin
      t.transport.Transport.send_many dst bodies;
      Spe_obs.Trace.count t.trace ~party:t.me ~round Spe_obs.Trace.Retransmits
        (List.length bodies)
    end

  let handle t body =
    match Frame.decode body with
    | Frame.Hello _ -> ()
    | Frame.Data { round; seq; src; dst = _; payload } -> (
      match index_of t src with
      | None -> () (* not a group member: ignore *)
      | Some si ->
        let key = (si, round, seq) in
        if not (Hashtbl.mem t.seen key) then begin
          Hashtbl.replace t.seen key ();
          Hashtbl.replace t.data_count (round, si)
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.data_count (round, si)));
          Hashtbl.replace t.pending round
            ((si, seq, { Runtime.src; dst = t.party; payload })
            :: Option.value ~default:[] (Hashtbl.find_opt t.pending round))
        end)
    | Frame.End_of_round { round; sender; total; to_dst } ->
      Hashtbl.replace t.eors (round, sender) (total, to_dst)
    | Frame.Nack { round; sender } -> resend t round sender
    | Frame.Fin { sender } -> if sender >= 0 && sender < t.m then t.fins.(sender) <- true

  let stage_frame t ~round dst frame =
    let body = Frame.encode frame in
    Hashtbl.replace t.cache round
      ((dst, body) :: Option.value ~default:[] (Hashtbl.find_opt t.cache round));
    t.outbox.(dst) <- body :: t.outbox.(dst)

  let flush_outbox t =
    for j = 0 to t.m - 1 do
      match t.outbox.(j) with
      | [] -> ()
      | bodies ->
        t.outbox.(j) <- [];
        t.transport.Transport.send_many j (List.rev bodies)
    done

  let complete t j =
    match Hashtbl.find_opt t.eors (t.round, j) with
    | None -> false
    | Some (_, to_me) ->
      Option.value ~default:0 (Hashtbl.find_opt t.data_count (t.round, j)) >= to_me

  let all_complete t =
    let rec go j = j >= t.m || ((j = t.k || complete t j) && go (j + 1)) in
    go 0

  let starvation t =
    let missing =
      List.filter_map
        (fun j -> if j <> t.k && not (complete t j) then Some t.parties.(j) else None)
        (List.init t.m Fun.id)
    in
    Round_timeout
      {
        party = t.party;
        round = t.round;
        phase = Spe_obs.Trace.phase_of_round t.trace t.round;
        missing;
      }

  (* Pull every frame already delivered.  [Closed] from the transport
     converts exactly as in the blocking engine: with a retry already
     on the books for this round it becomes the starvation this party
     had diagnosed; a party progressing normally propagates the
     [Closed] echo. *)
  let drain t =
    let rec go () =
      match t.transport.Transport.try_recv () with
      | Some body ->
        handle t body;
        go ()
      | None -> ()
    in
    go ()

  let all_fins t = Array.for_all Fun.id t.fins

  let complete_run t =
    (* [t.round] is the quiescent finishing round, not a counted one. *)
    finish t (Ok { rounds = t.round - 1; sent = List.rev t.records })

  let rec begin_round t inbox =
    let r = t.round in
    if r > t.max_rounds then finish t (Error (Failure "Endpoint.run: protocol did not terminate"))
    else begin
      if t.tracing then t.round_start <- Spe_obs.Trace.now t.trace;
      match
        let sends =
          if t.tracing then
            Spe_obs.Trace.span t.trace ~party:t.me ~index:r Spe_obs.Trace.Compute "step"
              (fun () -> t.program ~round:r ~inbox)
          else t.program ~round:r ~inbox
        in
        List.iteri
          (fun seq (msg : Runtime.message) ->
            if msg.Runtime.src <> t.party then invalid_arg "Endpoint.run: forged source";
            match index_of t msg.Runtime.dst with
            | None -> invalid_arg "Endpoint.run: message to unknown party"
            | Some di ->
              if di = t.k then invalid_arg "Endpoint.run: self-send";
              let frame =
                Frame.Data
                  { round = r; seq; src = msg.Runtime.src; dst = msg.Runtime.dst;
                    payload = msg.Runtime.payload }
              in
              stage_frame t ~round:r di frame;
              let payload_bytes = Runtime.payload_bits msg.Runtime.payload / 8 in
              let framed_bytes = Frame.framed_length frame in
              if t.tracing then begin
                Spe_obs.Trace.count t.trace ~party:t.me ~round:r Spe_obs.Trace.Messages 1;
                Spe_obs.Trace.count t.trace ~party:t.me ~round:r Spe_obs.Trace.Payload_bytes
                  payload_bytes;
                Spe_obs.Trace.count t.trace ~party:t.me ~round:r Spe_obs.Trace.Framed_bytes
                  framed_bytes
              end;
              t.records <-
                {
                  Net_wire.round = r;
                  src = msg.Runtime.src;
                  dst = msg.Runtime.dst;
                  payload_bytes;
                  framed_bytes;
                }
                :: t.records)
          sends;
        t.own_total <- List.length sends;
        for j = 0 to t.m - 1 do
          if j <> t.k then begin
            let to_dst =
              List.length
                (List.filter
                   (fun (msg : Runtime.message) -> index_of t msg.Runtime.dst = Some j)
                   sends)
            in
            stage_frame t ~round:r j
              (Frame.End_of_round { round = r; sender = t.k; total = t.own_total; to_dst })
          end
        done;
        flush_outbox t
      with
      | () ->
        t.state <- Collecting;
        t.retries <- 0;
        arm t
          (Unix.gettimeofday () +. t.config.round_timeout)
          (fun () -> round_deadline t);
        check_barrier t
      | exception e -> finish t (Error e)
    end

  and check_barrier t =
    if t.state = Collecting then begin
      match drain t with
      | () -> if all_complete t then finish_round t
      | exception Transport.Closed ->
        finish t (Error (if t.retries > 0 then starvation t else Transport.Closed))
      | exception e -> finish t (Error e)
    end

  and round_deadline t =
    if t.state = Collecting then begin
      (* Late frames may already be queued — look before Nacking. *)
      match drain t with
      | exception Transport.Closed ->
        finish t (Error (if t.retries > 0 then starvation t else Transport.Closed))
      | exception e -> finish t (Error e)
      | () ->
        if all_complete t then finish_round t
        else begin
          Spe_obs.Trace.count t.trace ~party:t.me ~round:t.round Spe_obs.Trace.Timeouts 1;
          if t.retries >= t.config.max_retries then finish t (Error (starvation t))
          else begin
            t.retries <- t.retries + 1;
            match
              for j = 0 to t.m - 1 do
                if j <> t.k && not (complete t j) then begin
                  t.transport.Transport.send j
                    (Frame.encode (Frame.Nack { round = t.round; sender = t.k }));
                  Spe_obs.Trace.count t.trace ~party:t.me ~round:t.round Spe_obs.Trace.Nacks 1
                end
              done
            with
            | () ->
              arm t
                (Unix.gettimeofday () +. t.config.round_timeout)
                (fun () -> round_deadline t)
            | exception Transport.Closed -> finish t (Error (starvation t))
            | exception e -> finish t (Error e)
          end
        end
    end

  and finish_round t =
    disarm t;
    let r = t.round in
    if t.tracing then
      Spe_obs.Trace.record_span t.trace ~party:t.me ~index:r Spe_obs.Trace.Round "round"
        ~start:t.round_start ~stop:(Spe_obs.Trace.now t.trace);
    let grand_total =
      List.fold_left
        (fun acc j -> if j = t.k then acc else acc + fst (Hashtbl.find t.eors (r, j)))
        t.own_total
        (List.init t.m Fun.id)
    in
    if grand_total = 0 then begin
      (* Global quiescence, visible to everyone at this same round.
         Confirm, then stay to replay the final barrier for any peer
         that lost frames, leaving early once all have confirmed. *)
      match
        for j = 0 to t.m - 1 do
          if j <> t.k then
            t.transport.Transport.send j (Frame.encode (Frame.Fin { sender = t.k }))
        done
      with
      | exception e -> finish t (Error e)
      | () ->
        t.state <- Lingering;
        arm t (Unix.gettimeofday () +. t.config.linger) (fun () -> complete_run t);
        check_linger t
    end
    else begin
      let inbox' =
        Option.value ~default:[] (Hashtbl.find_opt t.pending r)
        |> List.sort (fun (s1, q1, _) (s2, q2, _) -> compare (s1, q1) (s2, q2))
        |> List.map (fun (_, _, msg) -> msg)
      in
      t.round <- r + 1;
      t.state <- Idle;
      (* Re-enter through the ready queue, not by direct recursion:
         this is the fairness point where sibling machines get the
         loop between rounds. *)
      Reactor.post t.reactor (fun () -> if t.state <> Finished then begin_round t inbox')
    end

  and check_linger t =
    if t.state = Lingering then begin
      match drain t with
      | () -> if all_fins t then complete_run t
      | exception Transport.Closed -> finish t (Error Transport.Closed)
      | exception e -> finish t (Error e)
    end

  let wake t =
    match t.state with
    | Idle -> ()  (* the queued begin_round will drain *)
    | Collecting -> check_barrier t
    | Lingering -> check_linger t
    | Finished -> ()

  let create ~reactor ~config ~trace ~transport ~parties ~program ~max_rounds ~k ~on_done =
    let m = Array.length parties in
    let t =
      {
        reactor;
        config;
        trace;
        transport;
        parties;
        program;
        max_rounds;
        k;
        m;
        party = parties.(k);
        me = Runtime.party_label parties.(k);
        tracing = Spe_obs.Trace.enabled trace;
        eors = Hashtbl.create 16;
        data_count = Hashtbl.create 16;
        pending = Hashtbl.create 16;
        seen = Hashtbl.create 64;
        cache = Hashtbl.create 16;
        fins = Array.make m false;
        records = [];
        outbox = Array.make m [];
        round = 1;
        own_total = 0;
        retries = 0;
        state = Idle;
        timer = None;
        round_start = 0.;
        wake_posted = Atomic.make false;
        on_done;
      }
    in
    t.fins.(k) <- true;
    t

  let start t =
    (* The notify hook may fire from any thread (socket readers, a
       daemon's connection threads); it coalesces into at most one
       queued wake task at a time. *)
    t.transport.Transport.set_notify (fun () ->
        if not (Atomic.exchange t.wake_posted true) then
          Reactor.post t.reactor (fun () ->
              Atomic.set t.wake_posted false;
              wake t));
    Reactor.post t.reactor (fun () -> if t.state <> Finished then begin_round t [])
end

(* Run a whole group as machines on [reactor]; [on_done] fires exactly
   once with the same result/root-cause contract as the blocking
   [run_group]. *)
let run_group_async ~reactor ~config ~trace ~transports ~parties ~programs ~max_rounds
    ~on_done =
  let m = Array.length parties in
  if Array.length transports <> m || Array.length programs <> m then
    invalid_arg "Endpoint.run_group: one transport and one program per party";
  let outcomes = Array.make m None in
  let errors = Array.make m None in
  let remaining = ref m in
  let close_all () =
    Array.iter (fun (t : Transport.t) -> try t.Transport.close () with _ -> ()) transports
  in
  let conclude () =
    let transport_bytes =
      Array.fold_left (fun acc (t : Transport.t) -> acc + t.Transport.sent_bytes ()) 0 transports
    in
    close_all ();
    (* Root-cause fold: identical to the blocking engine. *)
    let better a b =
      match (a, b) with
      | Round_timeout { round = ra; _ }, Round_timeout { round = rb; _ } -> ra < rb
      | _ -> false
    in
    let root, any =
      Array.fold_left
        (fun (root, any) e ->
          match e with
          | None -> (root, any)
          | Some Transport.Closed -> (root, if any = None then e else any)
          | Some err ->
            let root =
              match root with
              | None -> e
              | Some r -> if better err r then e else root
            in
            (root, if any = None then e else any))
        (None, None) errors
    in
    match (root, any) with
    | Some e, _ -> on_done (Error e)
    | None, Some e -> on_done (Error e)
    | None, None ->
      on_done (Ok { outcomes = Array.map Option.get outcomes; transport_bytes })
  in
  let finish_one k res =
    (match res with
    | Ok o -> outcomes.(k) <- Some o
    | Error e ->
      errors.(k) <- Some e;
      (* Tear the group down so the sibling machines unwind promptly. *)
      close_all ());
    decr remaining;
    if !remaining = 0 then conclude ()
  in
  let machines =
    Array.init m (fun k ->
        Machine.create ~reactor ~config ~trace ~transport:transports.(k) ~parties
          ~program:programs.(k) ~max_rounds ~k ~on_done:(finish_one k))
  in
  Array.iter Machine.start machines

(* Drive one group to completion on a private reactor owned by the
   calling thread. *)
let run_group_reactor ~config ~trace ~reactor ~transports ~parties ~programs ~max_rounds () =
  let result = ref None in
  run_group_async ~reactor ~config ~trace ~transports ~parties ~programs ~max_rounds
    ~on_done:(fun r -> result := Some r);
  Fun.protect
    ~finally:(fun () -> Reactor.destroy reactor)
    (fun () -> Reactor.run reactor ~until:(fun () -> !result <> None));
  match Option.get !result with Ok r -> r | Error e -> raise e

let run_socket ?(config = default_config) ?addresses ?fault
    ?(trace = Spe_obs.Trace.disabled ()) ~parties ~programs ~max_rounds () =
  let addresses =
    match addresses with
    | Some a -> a
    | None -> Transport.Socket.temp_unix_addresses ~m:(Array.length parties)
  in
  let reactor = Reactor.create () in
  let transports = Transport.Socket.reactor_group ?fault ~trace ~reactor ~addresses () in
  run_group_reactor ~config ~trace ~reactor ~transports ~parties ~programs ~max_rounds ()

(* One seat of a session as a reactor task chain — the event-driven
   twin of [run_party], for hosts (the serve daemons) that already own
   a reactor and must not block it. *)
let run_party_async ?(config = default_config) ?(trace = Spe_obs.Trace.disabled ()) ~reactor
    ~transport ~(session : _ Session.t) ~index ~on_done () =
  let m = Array.length session.Session.parties in
  if index < 0 || index >= m then invalid_arg "Endpoint.run_party: index out of range";
  Spe_obs.Trace.set_phases trace session.Session.phases;
  let machine =
    Machine.create ~reactor ~config ~trace ~transport ~parties:session.Session.parties
      ~program:session.Session.programs.(index)
      ~max_rounds:(session.Session.rounds + 1)
      ~k:index
      ~on_done:(fun res ->
        match res with
        | Error _ as e -> on_done e
        | Ok outcome ->
          if outcome.rounds <> session.Session.rounds then
            on_done
              (Error
                 (Failure
                    (Printf.sprintf "Endpoint.run_party: declared %d rounds but executed %d"
                       session.Session.rounds outcome.rounds)))
          else on_done (Ok outcome))
  in
  Machine.start machine

(* A session declares its exact round count; enforce it like
   Session.run does, so a mis-declared session cannot silently
   desynchronise a composed pipeline on a transport engine either. *)
let check_session_rounds (session : _ Session.t) result =
  let executed = Array.fold_left (fun acc o -> max acc o.rounds) 0 result.outcomes in
  if executed <> session.Session.rounds then
    failwith
      (Printf.sprintf "Endpoint.run_session: declared %d rounds but executed %d"
         session.Session.rounds executed)

let run_session_memory ?config ?fault ?(trace = Spe_obs.Trace.disabled ()) session =
  Spe_obs.Trace.set_phases trace session.Session.phases;
  let result =
    Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
        run_memory ?config ?fault ~trace ~parties:session.Session.parties
          ~programs:session.Session.programs ~max_rounds:(session.Session.rounds + 1) ())
  in
  check_session_rounds session result;
  (session.Session.result (), result)

let run_session_socket ?config ?addresses ?fault ?(trace = Spe_obs.Trace.disabled ()) session =
  Spe_obs.Trace.set_phases trace session.Session.phases;
  let result =
    Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
        run_socket ?config ?addresses ?fault ~trace ~parties:session.Session.parties
          ~programs:session.Session.programs ~max_rounds:(session.Session.rounds + 1) ())
  in
  check_session_rounds session result;
  (session.Session.result (), result)

(* --- The shard worker pool ---------------------------------------------------- *)

exception Shard_failed of { shard : int; phase : string option; exn : exn }
exception Worker_killed

let () =
  Printexc.register_printer (function
    | Shard_failed { shard; phase; exn } ->
      Some
        (Printf.sprintf "Endpoint.Shard_failed: shard %d%s failed: %s" shard
           (match phase with Some p -> Printf.sprintf " (phase %s)" p | None -> "")
           (Printexc.to_string exn))
    | Worker_killed -> Some "Endpoint.Worker_killed"
    | _ -> None)

(* Up to [workers] threads claim shard sessions in index order; each
   claimed shard gets its own fresh connection group (so the existing
   per-group barrier/Nack/timeout machinery applies unchanged), and on
   any shard failure every open sibling group is closed so its threads
   unwind promptly instead of waiting out their timeouts. *)
let run_pool ~workers ~config ~kills ~traces ~make_transports (sessions : _ Session.t array) =
  let ns = Array.length sessions in
  let results = Array.make ns None in
  let errors = Array.make ns None in
  let mutex = Mutex.create () in
  let next = ref 0 in
  let stopped = ref false in
  let open_groups : (int, Transport.t array) Hashtbl.t = Hashtbl.create 8 in
  let close_group ts =
    Array.iter (fun (t : Transport.t) -> try t.Transport.close () with _ -> ()) ts
  in
  let cancel_all () =
    Mutex.lock mutex;
    stopped := true;
    let groups = Hashtbl.fold (fun _ ts acc -> ts :: acc) open_groups [] in
    Mutex.unlock mutex;
    List.iter close_group groups
  in
  let claim () =
    Mutex.lock mutex;
    let r =
      if !stopped || !next >= ns then None
      else begin
        let s = !next in
        incr next;
        Some s
      end
    in
    Mutex.unlock mutex;
    r
  in
  let run_one s =
    let session = sessions.(s) in
    let trace = traces.(s) in
    Spe_obs.Trace.set_phases trace session.Session.phases;
    let transports = make_transports s ~m:(Array.length session.Session.parties) ~trace in
    Mutex.lock mutex;
    Hashtbl.replace open_groups s transports;
    let bail = !stopped in
    Mutex.unlock mutex;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock mutex;
        Hashtbl.remove open_groups s;
        Mutex.unlock mutex;
        close_group transports)
      (fun () ->
        if not bail then begin
          (* The kill hook fires after the group is registered, so the
             teardown path it exercises is the real one: the dead
             worker's siblings are cancelled and the pool attributes
             the failure to this shard. *)
          if kills.(s) then raise Worker_killed;
          let result =
            Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
                run_group ~config ~trace ~transports ~parties:session.Session.parties
                  ~programs:session.Session.programs
                  ~max_rounds:(session.Session.rounds + 1) ())
          in
          check_session_rounds session result;
          results.(s) <- Some (session.Session.result (), result)
        end)
  in
  let worker () =
    let rec go () =
      match claim () with
      | None -> ()
      | Some s ->
        (try run_one s
         with e ->
           let phase = match e with Round_timeout { phase; _ } -> phase | _ -> None in
           errors.(s) <- Some (Shard_failed { shard = s; phase; exn = e });
           cancel_all ());
        go ()
    in
    go ()
  in
  let nworkers = max 1 (min workers (max 1 ns)) in
  let threads = Array.init nworkers (fun _ -> Thread.create worker ()) in
  Array.iter Thread.join threads;
  (* Surface the root cause, not the Closed cascade the teardown
     triggered in the sibling groups.  A killed worker outranks any
     timeout: the kill is the cause, a sibling that starved while the
     pool tore down is the echo. *)
  let root, any =
    Array.fold_left
      (fun (root, any) e ->
        match e with
        | None -> (root, any)
        | Some (Shard_failed { exn = Transport.Closed; _ }) ->
          (root, if any = None then e else any)
        | Some _ ->
          let root =
            match (root, e) with
            | None, _ -> e
            | Some (Shard_failed { exn = Worker_killed; _ }), _ -> root
            | Some _, Some (Shard_failed { exn = Worker_killed; _ }) -> e
            | _ -> root
          in
          (root, if any = None then e else any))
      (None, None) errors
  in
  (match (root, any) with
  | Some e, _ -> raise e
  | None, Some e -> raise e
  | None, None -> ());
  Array.map Option.get results

let pool_defaults ?workers ?traces ns =
  let workers = match workers with Some j -> j | None -> ns in
  let traces =
    match traces with
    | Some t -> t
    | None -> Array.init ns (fun _ -> Spe_obs.Trace.disabled ())
  in
  if Array.length traces <> ns then
    invalid_arg "Endpoint.run_sessions: one trace per session";
  (workers, traces)

let pool_faults ~who ?faults ?kills ns =
  let faults = match faults with Some f -> f | None -> Array.make ns None in
  if Array.length faults <> ns then
    invalid_arg (Printf.sprintf "Endpoint.%s: one fault spec per session" who);
  let kills = match kills with Some k -> k | None -> Array.make ns false in
  if Array.length kills <> ns then
    invalid_arg (Printf.sprintf "Endpoint.%s: one kill flag per session" who);
  (faults, kills)

let run_sessions_memory ?(config = default_config) ?workers ?faults ?kills ?traces sessions =
  let ns = Array.length sessions in
  let workers, traces = pool_defaults ?workers ?traces ns in
  let faults, kills = pool_faults ~who:"run_sessions_memory" ?faults ?kills ns in
  run_pool ~workers ~config ~kills ~traces
    ~make_transports:(fun s ~m ~trace ->
      Transport.Memory.create_group ?fault:faults.(s) ~trace ~m ())
    sessions

(* The event-driven shard pool: same claim order, kill hook, sibling
   cancellation and root-cause attribution as [run_pool], but every
   concurrent shard session is a set of machines on one reactor —
   [workers] bounds the shard sessions in flight, not a thread count,
   and the process runs the whole pool on the calling thread. *)
let run_pool_reactor ~workers ~config ~kills ~traces ~make_transports
    (sessions : _ Session.t array) =
  let ns = Array.length sessions in
  let results = Array.make ns None in
  let errors = Array.make ns None in
  let reactor = Reactor.create () in
  let next = ref 0 in
  let stopped = ref false in
  let outstanding = ref 0 in
  let open_groups : (int, Transport.t array) Hashtbl.t = Hashtbl.create 8 in
  let close_group ts =
    Array.iter (fun (t : Transport.t) -> try t.Transport.close () with _ -> ()) ts
  in
  let cancel_all () =
    stopped := true;
    let groups = Hashtbl.fold (fun _ ts acc -> ts :: acc) open_groups [] in
    List.iter close_group groups
  in
  let nworkers = max 1 (min workers (max 1 ns)) in
  let fail_shard s e =
    let phase = match e with Round_timeout { phase; _ } -> phase | _ -> None in
    errors.(s) <- Some (Shard_failed { shard = s; phase; exn = e });
    cancel_all ()
  in
  let rec launch () =
    if (not !stopped) && !next < ns && !outstanding < nworkers then begin
      let s = !next in
      incr next;
      start_one s;
      launch ()
    end
  and start_one s =
    let session = sessions.(s) in
    let trace = traces.(s) in
    Spe_obs.Trace.set_phases trace session.Session.phases;
    match make_transports ~reactor s ~m:(Array.length session.Session.parties) ~trace with
    | exception e -> fail_shard s e
    | transports ->
      Hashtbl.replace open_groups s transports;
      if !stopped then begin
        Hashtbl.remove open_groups s;
        close_group transports
      end
      else if kills.(s) then begin
        (* The kill hook fires after the group is registered, so the
           teardown path it exercises is the real one: the dead
           shard's siblings are cancelled and the pool attributes the
           failure to this shard. *)
        Hashtbl.remove open_groups s;
        close_group transports;
        fail_shard s Worker_killed
      end
      else begin
        let tracing = Spe_obs.Trace.enabled trace in
        let session_start = if tracing then Spe_obs.Trace.now trace else 0. in
        incr outstanding;
        run_group_async ~reactor ~config ~trace ~transports
          ~parties:session.Session.parties ~programs:session.Session.programs
          ~max_rounds:(session.Session.rounds + 1)
          ~on_done:(fun res ->
            decr outstanding;
            Hashtbl.remove open_groups s;
            close_group transports;
            (match res with
            | Ok result -> (
              match
                if tracing then
                  Spe_obs.Trace.record_span trace Spe_obs.Trace.Session "session"
                    ~start:session_start ~stop:(Spe_obs.Trace.now trace);
                check_session_rounds session result;
                (session.Session.result (), result)
              with
              | r -> results.(s) <- Some r
              | exception e -> fail_shard s e)
            | Error e -> fail_shard s e);
            launch ())
      end
  in
  launch ();
  Fun.protect
    ~finally:(fun () -> Reactor.destroy reactor)
    (fun () ->
      Reactor.run reactor ~until:(fun () -> !outstanding = 0 && (!stopped || !next >= ns)));
  (* Root-cause fold: identical to the thread pool's. *)
  let root, any =
    Array.fold_left
      (fun (root, any) e ->
        match e with
        | None -> (root, any)
        | Some (Shard_failed { exn = Transport.Closed; _ }) ->
          (root, if any = None then e else any)
        | Some _ ->
          let root =
            match (root, e) with
            | None, _ -> e
            | Some (Shard_failed { exn = Worker_killed; _ }), _ -> root
            | Some _, Some (Shard_failed { exn = Worker_killed; _ }) -> e
            | _ -> root
          in
          (root, if any = None then e else any))
      (None, None) errors
  in
  (match (root, any) with
  | Some e, _ -> raise e
  | None, Some e -> raise e
  | None, None -> ());
  Array.map Option.get results

let run_sessions_socket ?(config = default_config) ?workers ?faults ?kills ?traces sessions =
  let ns = Array.length sessions in
  let workers, traces = pool_defaults ?workers ?traces ns in
  let faults, kills = pool_faults ~who:"run_sessions_socket" ?faults ?kills ns in
  (* Socketpair groups: a fresh connection group per shard session is
     the pool's contract, and at that rate the addressed rendezvous
     would cost more than the latency overlap sharding buys back. *)
  run_pool_reactor ~workers ~config ~kills ~traces
    ~make_transports:(fun ~reactor s ~m ~trace ->
      Transport.Socket.reactor_group_local ?fault:faults.(s) ~trace ~reactor ~m ())
    sessions
