(** The transport interface: what an {!Endpoint} needs from the world.

    A transport value is one endpoint's view of a fully-connected group
    of [peers] endpoints indexed [0 .. peers - 1]: it can push a frame
    body to any peer and pull the next inbound frame body, with a
    deadline.  Two backends implement it — {!Memory} (deterministic
    in-process channels with optional fault injection) and {!Socket}
    (real Unix-domain or TCP stream sockets, one length-prefixed frame
    stream per connection).

    Both backends account [sent_bytes] identically — every frame costs
    [Frame.length_prefix_bytes + body length], which on the socket
    backend is literally the bytes written — so byte measurements are
    comparable across backends. *)

exception Closed
(** Raised by {!send} and {!recv} once the transport is closed — the
    group is tearing down (a peer failed or the run ended). *)

type t = {
  self : int;  (** This endpoint's index in the group. *)
  peers : int;  (** Group size [m]; valid destinations are [0 .. m-1]. *)
  send : int -> bytes -> unit;
      (** [send dst body] transmits a frame body to peer [dst].
          Raises [Closed] after {!close}; raises [Invalid_argument] on
          a bad destination. *)
  send_many : int -> bytes list -> unit;
      (** [send_many dst bodies] transmits the frame bodies in order to
          peer [dst], equivalent to [List.iter (send dst) bodies] —
          same per-frame byte accounting, same per-frame fault
          decisions on both backends — but batched into one transport
          operation (one locked write on {!Socket}, one mailbox lock on
          {!Memory}).  [send_many dst []] is a no-op. *)
  recv : deadline:float -> bytes option;
      (** Next inbound frame body, from any peer; [None] once
          [Unix.gettimeofday () >= deadline] with nothing pending.
          The wait is a parked condition-variable-style wait (no
          polling): a push on the far side wakes it immediately.
          Raises [Closed] after {!close}.  On a reactor transport
          (where blocking the loop thread would deadlock the group)
          this raises [Invalid_argument] — use {!try_recv}. *)
  try_recv : unit -> bytes option;
      (** The non-blocking readiness interface: the next inbound frame
          body if one is already queued, [None] otherwise.  Raises
          [Closed] once the transport is closed.  This is what the
          event-driven endpoint machines use — paired with
          {!set_notify} so they only look when there is something to
          see. *)
  set_notify : (unit -> unit) -> unit;
      (** Install the delivery hook (replacing any previous one): it
          fires after every frame delivery into this endpoint's queue
          and once on close.  It may fire from a foreign thread (a
          socket reader, a daemon connection thread); the endpoint
          machines install a hook that posts a wake task to their
          reactor, which is thread-safe. *)
  close : unit -> unit;  (** Idempotent. *)
  sent_bytes : unit -> int;
      (** Framed bytes this endpoint has transmitted so far, length
          prefixes included (retransmissions count; faults do not
          refund). *)
}

module Memory : sig
  val create_group : ?fault:Fault.t -> ?trace:Spe_obs.Trace.t -> m:int -> unit -> t array
  (** A fully-connected group of [m] in-memory endpoints.  Frames pass
      through [fault] (default {!Fault.none}); delayed frames are
      delivered by a helper thread after their hold time.  Closing any
      member closes the whole group.

      When [trace] is recording, every send increments the
      [Transport_bytes] counter by its full framed cost and every fault
      decision records a [Faults_dropped]/[Faults_delayed] count plus a
      note — endpoints are labelled ["#i"] by group index, the only
      identity this layer has.  A {!Fault.Duplicate} decision charges
      and delivers the frame twice; drops and delays charge the frame
      once *before* the decision, so the framing closed form holds on
      faulted paths too. *)
end

module Socket : sig
  type address =
    | Unix_domain of string  (** Socket file path (created, not unlinked). *)
    | Tcp of string * int  (** Host, port — loopback in tests. *)

  val create_group :
    ?fault:Fault.t -> ?trace:Spe_obs.Trace.t -> addresses:address array -> unit -> t array
  (** A fully-connected group over real stream sockets: endpoint [i]
      listens on [addresses.(i)], every pair is connected once (the
      higher index dials the lower and introduces itself with a
      {!Frame.Hello}), and one poller thread multiplexes every
      connection of the group into the receiver queues.  The endpoints
      live in one process but share no state other than the sockets —
      each sees only bytes.  Closing any member shuts every socket
      down; the poller reclaims the descriptors once it has drained
      them, so no send can race a close into a reused descriptor.

      When [trace] is recording, every byte written — handshake frames
      at dial time included — lands on the [Transport_bytes] counter,
      labelled ["#i"] by group index.

      [fault] (default {!Fault.none}) applies the same per-frame policy
      the memory backend applies, with identical accounting: the frame
      is charged before the decision, a [Drop] skips the write, a
      [Delay] performs the write from a helper thread after the hold
      time (swallowed if the group closed meanwhile), and a [Duplicate]
      writes and charges the frame twice.  Handshake frames are never
      subject to faults. *)

  val create_group_local :
    ?fault:Fault.t -> ?trace:Spe_obs.Trace.t -> m:int -> unit -> t array
  (** Like {!create_group} but every pair is joined by a kernel
      [socketpair] instead of a dialled connection: same stream
      sockets, frames, poller and teardown, but no listener, no Hello
      exchange and no rendezvous path — so [sent_bytes] starts at zero
      rather than at the handshake cost.  The shard pool uses this:
      one fresh group per shard session makes the addressed handshake
      a per-shard tax that a socketpair group avoids. *)

  val reactor_group_local :
    ?fault:Fault.t -> ?trace:Spe_obs.Trace.t -> reactor:Reactor.t -> m:int -> unit -> t array
  (** The event-driven twin of {!create_group_local}: the same
      socketpair mesh, frames and fault/byte accounting, but every
      descriptor is owned by [reactor] — reads happen in a
      buffer-reusing readiness callback, writes are buffered and
      drained by a send-flush continuation when the socket is
      writable, and a {!Fault.Delay} holds its frame on a reactor
      timer instead of a helper thread.  The returned transports
      support only the non-blocking interface: [recv] raises
      [Invalid_argument]; drive them with [try_recv]/[set_notify] from
      the reactor thread.  All operations (including [close]) must run
      on the reactor thread. *)

  val reactor_group :
    ?fault:Fault.t ->
    ?trace:Spe_obs.Trace.t ->
    reactor:Reactor.t ->
    addresses:address array ->
    unit ->
    t array
  (** The event-driven twin of {!create_group}: identical addressed
      rendezvous and Hello byte accounting (setup itself is still a
      fixed blocking syscall sequence, before the loop starts), then
      the connections are handed to [reactor] exactly as in
      {!reactor_group_local}. *)

  val temp_unix_addresses : m:int -> address array
  (** Fresh Unix-domain socket paths in a private temporary directory,
      for tests and the CLI. *)

  (** {2 Raw stream-socket helpers}

      The length-prefixed frame discipline of this backend, exposed for
      layers that run their own connections — the [Spe_serve] daemon
      mesh speaks exactly these frames, so its byte accounting composes
      with the group transports'. *)

  val sockaddr_of : address -> Unix.sockaddr
  (** The [Unix] address for {!address}.  Raises [Failure] on a TCP
      host that is not a literal IP address. *)

  val write_frame : Unix.file_descr -> bytes -> unit
  (** Write one frame body with its length prefix, atomically with
      respect to other [write_frame] calls on the same descriptor only
      if the caller serialises them. *)

  val read_frame : Unix.file_descr -> bytes option
  (** Read one length-prefixed frame body; [None] on clean EOF before
      the first byte, [Failure] on a torn stream. *)
end
