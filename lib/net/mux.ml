(* Session-multiplexed transports over a persistent connection mesh.

   One [Mux.t] lives in each Spe_serve daemon.  The daemon's connection
   layer registers one writer per peer daemon and feeds every inbound
   session-tagged frame to [deliver]; [open_session] then hands an
   ordinary [Transport.t] for one seat of one session to
   [Endpoint.run_party], so the whole barrier/Nack/timeout machinery
   runs unchanged over connections that outlive any single session.

   Concurrency: the registry lock only guards the tables — it is never
   held across a socket write or a mailbox pop, so readers, writers and
   endpoint threads cannot deadlock through the mux. *)

module Mailbox = struct
  (* A private copy of the transport mailbox discipline — parked
     condition-variable-style wait plus the try_recv/notify readiness
     interface (see Transport.Mailbox) — with one difference: a closed
     mux mailbox drains its remaining frames before raising [Closed],
     because a session seat may still complete from frames that
     arrived before its peer's connection died. *)
  type t = {
    lock : Mutex.t;
    frames : bytes Queue.t;
    mutable closed : bool;
    mutable waiting : bool;
    mutable wake : (Unix.file_descr * Unix.file_descr) option;
    mutable notify : (unit -> unit) option;
  }

  let create () =
    {
      lock = Mutex.create ();
      frames = Queue.create ();
      closed = false;
      waiting = false;
      wake = None;
      notify = None;
    }

  let with_lock mb f =
    Mutex.lock mb.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock mb.lock) f

  let wake_byte = Bytes.make 1 '!'

  let signal_locked mb =
    if mb.waiting then
      match mb.wake with
      | Some (_, w) -> ( try ignore (Unix.write w wake_byte 0 1) with Unix.Unix_error _ -> ())
      | None -> ()

  let run_notify mb =
    match with_lock mb (fun () -> mb.notify) with Some f -> f () | None -> ()

  let set_notify mb f = with_lock mb (fun () -> mb.notify <- Some f)

  let push mb body =
    with_lock mb (fun () ->
        if not mb.closed then begin
          Queue.push body mb.frames;
          signal_locked mb
        end);
    run_notify mb

  let try_pop mb =
    with_lock mb (fun () ->
        if mb.closed && Queue.is_empty mb.frames then raise Transport.Closed;
        Queue.take_opt mb.frames)

  let rec pop mb ~deadline =
    let next =
      with_lock mb (fun () ->
          if mb.closed && Queue.is_empty mb.frames then raise Transport.Closed;
          match Queue.take_opt mb.frames with
          | Some _ as r -> `Frame r
          | None ->
            let remaining = deadline -. Unix.gettimeofday () in
            if remaining <= 0. then `Expired
            else begin
              (* One pipe per park, owned by this popper: created here,
                 deregistered under the lock and closed right after the
                 wait, so a pusher can never signal a stale descriptor
                 and a long-lived daemon's mailboxes leak nothing. *)
              let r, w = Unix.pipe () in
              Unix.set_nonblock w;
              mb.wake <- Some (r, w);
              mb.waiting <- true;
              `Park (r, w, remaining)
            end)
    in
    match next with
    | `Frame r -> r
    | `Expired -> None
    | `Park (r, w, remaining) ->
      (match Unix.select [ r ] [] [] remaining with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      with_lock mb (fun () ->
          mb.waiting <- false;
          mb.wake <- None);
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try Unix.close w with Unix.Unix_error _ -> ());
      pop mb ~deadline

  let close mb =
    with_lock mb (fun () ->
        mb.closed <- true;
        signal_locked mb);
    run_notify mb
end

type entry = {
  mailbox : Mailbox.t;
  mutable session_peers : int array;
      (** Daemon ids by group index; [[||]] while the entry only buffers
          early frames for a session not yet opened here. *)
}

type t = {
  self : int;  (** This daemon's id. *)
  lock : Mutex.t;
  sessions : (int, entry) Hashtbl.t;  (* sid -> live or pending entry *)
  finished : (int, unit) Hashtbl.t;  (* closed/aborted sids: drop late frames *)
  writers : (int, sid:int -> bytes -> unit) Hashtbl.t;  (* peer daemon id -> writer *)
}

let create ~self =
  {
    self;
    lock = Mutex.create ();
    sessions = Hashtbl.create 64;
    finished = Hashtbl.create 64;
    writers = Hashtbl.create 8;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_writer t ~peer writer =
  with_lock t (fun () -> Hashtbl.replace t.writers peer writer)

(* The peer's connection died: any session seated with it can never
   complete, so close those mailboxes — the endpoint threads see
   [Transport.Closed] promptly instead of waiting out their round
   timeouts — and drop the writer so later sends fail fast too. *)
let fail_peer t ~peer =
  let victims =
    with_lock t (fun () ->
        Hashtbl.remove t.writers peer;
        Hashtbl.fold
          (fun sid entry acc ->
            if Array.exists (fun p -> p = peer) entry.session_peers then
              (sid, entry) :: acc
            else acc)
          t.sessions [])
  in
  List.iter (fun (_, entry) -> Mailbox.close entry.mailbox) victims

let peer_alive t ~peer = with_lock t (fun () -> Hashtbl.mem t.writers peer)

let deliver t ~sid body =
  let entry =
    with_lock t (fun () ->
        if Hashtbl.mem t.finished sid then None
        else
          match Hashtbl.find_opt t.sessions sid with
          | Some e -> Some e
          | None ->
            (* The peer opened the session first; buffer until our seat
               arrives and adopts the mailbox. *)
            let e = { mailbox = Mailbox.create (); session_peers = [||] } in
            Hashtbl.replace t.sessions sid e;
            Some e)
  in
  match entry with None -> () | Some e -> Mailbox.push e.mailbox body

(* Abort a session this daemon may never have opened (job cancelled by
   the coordinator): close any buffered mailbox and make both a later
   [open_session] and late retransmits dead on arrival. *)
let abort t ~sid =
  let entry =
    with_lock t (fun () ->
        Hashtbl.replace t.finished sid ();
        let e = Hashtbl.find_opt t.sessions sid in
        Hashtbl.remove t.sessions sid;
        e)
  in
  match entry with None -> () | Some e -> Mailbox.close e.mailbox

let open_session t ~sid ~peers =
  let m = Array.length peers in
  let self_index =
    let rec go j =
      if j >= m then invalid_arg "Mux.open_session: self not seated in session"
      else if peers.(j) = t.self then j
      else go (j + 1)
    in
    go 0
  in
  let entry =
    with_lock t (fun () ->
        if Hashtbl.mem t.finished sid then raise Transport.Closed;
        match Hashtbl.find_opt t.sessions sid with
        | Some e ->
          if Array.length e.session_peers > 0 then
            invalid_arg (Printf.sprintf "Mux.open_session: session %d already open" sid);
          e.session_peers <- peers;
          e
        | None ->
          let e = { mailbox = Mailbox.create (); session_peers = peers } in
          Hashtbl.replace t.sessions sid e;
          e)
  in
  let sent = Atomic.make 0 in
  let closed = Atomic.make false in
  let writer_to j =
    if j < 0 || j >= m then invalid_arg "Transport.send: unknown peer";
    if j = self_index then invalid_arg "Transport.send: self-send";
    match with_lock t (fun () -> Hashtbl.find_opt t.writers peers.(j)) with
    | Some w -> w
    | None -> raise Transport.Closed
  in
  let count body =
    Atomic.fetch_and_add sent (Frame.length_prefix_bytes + Bytes.length body) |> ignore
  in
  let send j body =
    if Atomic.get closed then raise Transport.Closed;
    let w = writer_to j in
    count body;
    w ~sid body
  in
  let send_many j bodies =
    match bodies with
    | [] -> ()
    | bodies ->
      if Atomic.get closed then raise Transport.Closed;
      let w = writer_to j in
      List.iter
        (fun body ->
          count body;
          w ~sid body)
        bodies
  in
  let close () =
    if not (Atomic.exchange closed true) then begin
      with_lock t (fun () ->
          Hashtbl.replace t.finished sid ();
          Hashtbl.remove t.sessions sid);
      Mailbox.close entry.mailbox
    end
  in
  ( {
      Transport.self = self_index;
      peers = m;
      send;
      send_many;
      recv = (fun ~deadline -> Mailbox.pop entry.mailbox ~deadline);
      try_recv = (fun () -> Mailbox.try_pop entry.mailbox);
      set_notify = (fun f -> Mailbox.set_notify entry.mailbox f);
      close;
      sent_bytes = (fun () -> Atomic.get sent);
    },
    self_index )

(* Tests and gauges. *)
let open_sessions t = with_lock t (fun () -> Hashtbl.length t.sessions)

(* The finished set only ever grows; a long-lived daemon trims it once
   a job's sids can no longer see late traffic. *)
let forget t ~sid = with_lock t (fun () -> Hashtbl.remove t.finished sid)
