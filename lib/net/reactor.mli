(** A single-threaded event loop: registered descriptors, a timer
    wheel and a FIFO ready queue, all driven by one [Unix.select].

    This is the execution core the event-driven endpoints run on.  One
    reactor multiplexes every shard session of a pool run — k shards
    cost k resumable state machines on one loop, not k×parties blocked
    threads — and one reactor per [spe serve] daemon runs every job's
    seats.  It compiles identically on OCaml 4.14 and 5.2: no effects,
    just explicit continuations enqueued as tasks.

    {b Threading.}  Exactly one thread may call {!run}; every callback
    (task, timer, descriptor) fires on that thread, so state touched
    only from callbacks needs no locks.  {!post} alone is thread-safe:
    other threads (socket reader threads, a daemon's connection
    readers) hand work to the loop with it, and a self-pipe wakes the
    loop if it is parked in [select].

    {b Determinism.}  Scheduling order is a function of the event
    sequence alone: the ready queue is strictly FIFO, due timers fire
    in (deadline, registration order), and each loop iteration runs
    due timers, then one snapshot of the ready queue, then descriptor
    callbacks.  The qcheck suite pins this. *)

type t

type timer
(** A cancellable handle returned by {!at}. *)

val create : unit -> t

val post : t -> (unit -> unit) -> unit
(** Enqueue a task on the ready queue.  Thread-safe; tasks run in
    enqueue order on the loop thread. *)

val at : t -> float -> (unit -> unit) -> timer
(** [at t deadline k] runs [k] once the wall clock
    ([Unix.gettimeofday]) reaches [deadline].  Timers sharing a
    deadline fire in registration order.  Loop-thread only. *)

val cancel : t -> timer -> unit
(** Cancel a pending timer; cancelling a fired or already-cancelled
    timer is a no-op.  Loop-thread only. *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Install the read-readiness callback for a descriptor (replacing
    any previous one).  The callback stays installed until
    {!clear_readable} — level-triggered, so it must consume the
    readable data.  Loop-thread only. *)

val on_writable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Same, for write readiness.  Typically installed only while a
    send-flush continuation has buffered output and cleared once the
    buffer drains, since a connected socket is writable almost
    always. *)

val clear_readable : t -> Unix.file_descr -> unit
val clear_writable : t -> Unix.file_descr -> unit

val forget_fd : t -> Unix.file_descr -> unit
(** Drop both interests — required before closing a descriptor the
    reactor watches. *)

val run : t -> until:(unit -> bool) -> unit
(** Drive the loop until [until ()] holds (checked between dispatch
    steps).  With nothing ready, no timer pending and no descriptor
    registered, the loop parks on its self-pipe — only an external
    {!post} can then make progress.  Callback exceptions propagate out
    of [run]; the endpoint machines never let one escape. *)

val destroy : t -> unit
(** Release the reactor's self-pipe.  Call once the loop has returned
    for good; idempotent.  A late {!post} from a straggling thread is
    harmless (the wake write is swallowed) but its task will never
    run. *)

(** {2 Gauges}

    Live introspection for the [spe scrape] endpoint and the stress
    tests; all loop-thread-safe to read from anywhere. *)

val iterations : t -> int
(** Cumulative loop iterations. *)

val timer_fires : t -> int
(** Cumulative timers fired (cancelled timers never count). *)

val ready_depth : t -> int
(** Tasks currently queued. *)

val pending_timers : t -> int
(** Timers armed and not yet fired or cancelled. *)

val watched_fds : t -> int
(** Descriptors with a read or write interest installed. *)
