(** Session-multiplexed transports over a persistent connection mesh.

    The [Spe_serve] daemons keep exactly one connection per peer daemon
    and run many concurrent pipeline sessions over it, each frame
    tagged with its session id.  A [Mux.t] is the routing table that
    turns that mesh back into ordinary per-session {!Transport.t}
    values: the connection layer registers a {e writer} per peer and
    feeds every inbound [(sid, body)] pair to {!deliver};
    {!open_session} hands one seat of one session to
    {!Endpoint.run_party}, which then runs the standard barrier / Nack
    / timeout machinery unchanged — the rendezvous and Hello exchange
    happened once, when the mesh came up, not per session.

    Frames for a session the local seat has not opened yet are
    buffered; frames for a session already closed or aborted are
    dropped (late retransmits after quiescence).  When a peer's
    connection dies, {!fail_peer} closes every open session seated with
    it, so the endpoint threads fail promptly with [Transport.Closed]
    instead of waiting out their round timeouts — the daemon turns that
    into a typed job failure. *)

type t

val create : self:int -> t
(** A mux for the daemon with id [self] (0 = host, [k+1] = provider
    [k], matching the frame codec's party order). *)

val set_writer : t -> peer:int -> (sid:int -> bytes -> unit) -> unit
(** Register (or replace, on reconnect) the frame writer for [peer].
    The writer must serialise its own writes; it is called without the
    mux lock held. *)

val fail_peer : t -> peer:int -> unit
(** The peer's connection died: drop its writer and close the mailbox
    of every open session seated with it. *)

val peer_alive : t -> peer:int -> bool
(** Whether a writer is currently registered for [peer]. *)

val deliver : t -> sid:int -> bytes -> unit
(** Route one inbound frame body to its session's mailbox, buffering
    for sessions not yet opened here and dropping frames for finished
    sessions. *)

val abort : t -> sid:int -> unit
(** Cancel a session: close its (possibly only buffered) mailbox and
    mark it finished, so a later {!open_session} raises
    [Transport.Closed] immediately and late frames are dropped. *)

val open_session : t -> sid:int -> peers:int array -> Transport.t * int
(** [open_session t ~sid ~peers] opens the local seat of session [sid],
    where [peers.(j)] is the daemon id seated at group index [j]; the
    returned index is the local seat ([peers.(j) = self]).  Sends route
    through the per-peer writers ([Transport.Closed] if the peer's
    writer is gone), receives pop the session mailbox, and closing the
    transport retires the sid into the finished set.  Raises
    [Transport.Closed] if the sid was already aborted,
    [Invalid_argument] if [self] is not seated or the sid is already
    open.  [sent_bytes] counts the inner frame bodies plus the standard
    length prefix — the same unit as the group transports — not the
    mesh's session-tag overhead. *)

val open_sessions : t -> int
(** Number of live (open or buffering) session entries — a daemon
    gauge. *)

val forget : t -> sid:int -> unit
(** Trim a sid from the finished set once late traffic is impossible
    (the daemon reaps it after the job's reply is sent). *)
