(** Fault injection for the in-memory transport.

    A policy is consulted once per transmitted frame (retransmissions
    included) and decides its fate.  Delaying a frame past later
    traffic is how reordering is exercised; dropping one forces the
    endpoint's Nack/retransmit path; dropping a whole link forces the
    hard timeout.  Policies carry their own state behind a mutex, so a
    single policy value can be shared by every sender in a group. *)

type action =
  | Deliver  (** Pass the frame through immediately. *)
  | Drop  (** Lose the frame; the sender is not told. *)
  | Delay of float  (** Deliver after this many seconds. *)
  | Duplicate
      (** Deliver the frame twice (both copies are charged to the
          wire); the receiver's dedup must make the copy harmless. *)

type t

val decide : t -> src:int -> dst:int -> action
(** Transport hook: classify the next frame on the [src -> dst] link. *)

val make : (src:int -> dst:int -> action) -> t
(** Wrap a bare decision function as a policy.  The function is called
    under the policy's own mutex, so it may keep private mutable state
    (per-link counters, a generator) without further locking — this is
    how [Spe_chaos] compiles a schedule into a policy. *)

val none : t
(** Deliver everything. *)

val drop_nth : int list -> t
(** Drop the frames whose 0-based global transmission index is listed;
    deliver everything else.  Deterministic by construction. *)

val delay_nth : (int * float) list -> t
(** Delay the listed global transmission indices by the paired number
    of seconds (reordering them past later frames). *)

val blackhole : src:int -> dst:int -> t
(** Drop every frame on one directed link; deliver all others.  The
    receiver's bounded retries must then surface a clean timeout. *)

val seeded : Spe_rng.State.t -> drop:float -> delay:float -> max_delay:float -> t
(** Independent per-frame coin flips: with probability [drop] the frame
    is lost, else with probability [delay] it is held for a uniform
    time in [(0, max_delay)].  Deterministic given the seed and the
    transmission order. *)
