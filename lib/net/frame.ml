module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Codec = Spe_mpc.Codec

type t =
  | Hello of { sender : int }
  | Data of {
      round : int;
      seq : int;
      src : Wire.party;
      dst : Wire.party;
      payload : Runtime.payload;
    }
  | End_of_round of { round : int; sender : int; total : int; to_dst : int }
  | Nack of { round : int; sender : int }
  | Fin of { sender : int }

let length_prefix_bytes = 4

(* Tags. *)
let tag_hello = 0
let tag_data = 1
let tag_eor = 2
let tag_nack = 3
let tag_fin = 4

(* Payload kinds inside a Data body. *)
let kind_ints = 0
let kind_floats = 1
let kind_bits = 2
let kind_nats = 3
let kind_tuples = 4
let kind_batch = 5

(* Parties in two bytes: Host = 0, Provider k = k + 1. *)
let party_code = function
  | Wire.Host -> 0
  | Wire.Provider k ->
    if k < 0 || k > 0xFFFE then invalid_arg "Frame.encode: provider index out of range";
    k + 1

let party_of_code = function
  | 0 -> Wire.Host
  | c -> Wire.Provider (c - 1)

(* Position-threading byte writers over a caller-supplied buffer: each
   takes the write position and returns the next one.  No writer state
   record, no closures — encoding a frame with an integer payload into
   a reused buffer allocates nothing at all (the test suite pins this
   with a [Gc.minor_words] delta). *)
let put_u8 buf pos v =
  Bytes.set buf pos (Char.chr (v land 0xFF));
  pos + 1

let put_u16 buf pos v =
  if v < 0 || v > 0xFFFF then invalid_arg "Frame.encode: u16 out of range";
  let pos = put_u8 buf pos (v lsr 8) in
  put_u8 buf pos v

let put_u32 buf pos v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Frame.encode: u32 out of range";
  let pos = put_u8 buf pos (v lsr 24) in
  let pos = put_u8 buf pos (v lsr 16) in
  let pos = put_u8 buf pos (v lsr 8) in
  put_u8 buf pos v

let put_u63 buf pos v =
  if v < 0 then invalid_arg "Frame.encode: u63 out of range";
  let pos = put_u32 buf pos (v lsr 32) in
  put_u32 buf pos (v land 0xFFFF_FFFF)

type reader = { body : bytes; mutable pos : int }

let get_u8 r =
  if r.pos >= Bytes.length r.body then invalid_arg "Frame.decode: truncated frame";
  let v = Char.code (Bytes.get r.body r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  (hi lsl 8) lor get_u8 r

let get_u32 r =
  let hi = get_u16 r in
  (hi lsl 16) lor get_u16 r

let get_u63 r =
  let hi = get_u32 r in
  (hi lsl 32) lor get_u32 r

let get_bytes r n =
  if n < 0 || r.pos + n > Bytes.length r.body then
    invalid_arg "Frame.decode: truncated frame";
  let b = Bytes.sub r.body r.pos n in
  r.pos <- r.pos + n;
  b

(* Closed-form encoded sizes, mirrored one-for-one by the writers
   below; PERFORMANCE.md ("Framing") states them and the test suite
   pins writer = length. *)
let rec payload_encoded_length = function
  | Runtime.Ints { modulus; values } ->
    1 + 8 + 4 + (Codec.residue_bytes ~modulus * Array.length values)
  | Runtime.Floats values -> 1 + 4 + (8 * Array.length values)
  | Runtime.Bits flags -> 1 + 4 + ((Array.length flags + 7) / 8)
  | Runtime.Nats { width_bits; values } ->
    1 + 8 + 4 + ((width_bits + 7) / 8 * Array.length values)
  | Runtime.Tuples { moduli; rows } ->
    let row_bytes =
      Array.fold_left (fun acc modulus -> acc + Codec.residue_bytes ~modulus) 0 moduli
    in
    1 + 2 + (8 * Array.length moduli) + 4 + (row_bytes * Array.length rows)
  | Runtime.Batch payloads ->
    List.fold_left (fun acc p -> acc + payload_encoded_length p) (1 + 2) payloads

let encoded_length = function
  | Hello _ -> 1 + 2
  | Data { payload; _ } -> 1 + 4 + 4 + 2 + 2 + payload_encoded_length payload
  | End_of_round _ -> 1 + 4 + 2 + 4 + 4
  | Nack _ -> 1 + 4 + 2
  | Fin _ -> 1 + 2

let rec put_payload buf pos = function
  | Runtime.Ints { modulus; values } ->
    let pos = put_u8 buf pos kind_ints in
    let pos = put_u63 buf pos modulus in
    let pos = put_u32 buf pos (Array.length values) in
    Codec.encode_residues_into ~modulus values buf ~pos
  | Runtime.Floats values ->
    let pos = put_u8 buf pos kind_floats in
    let pos = put_u32 buf pos (Array.length values) in
    Codec.encode_floats_into values buf ~pos
  | Runtime.Bits flags ->
    let pos = put_u8 buf pos kind_bits in
    let pos = put_u32 buf pos (Array.length flags) in
    Codec.encode_bitset_into flags buf ~pos
  | Runtime.Nats { width_bits; values } ->
    let pos = put_u8 buf pos kind_nats in
    let pos = put_u63 buf pos width_bits in
    let pos = put_u32 buf pos (Array.length values) in
    Codec.encode_nats_into ~width_bits values buf ~pos
  | Runtime.Tuples { moduli; rows } ->
    let pos = put_u8 buf pos kind_tuples in
    let pos = put_u16 buf pos (Array.length moduli) in
    let pos = ref pos in
    for j = 0 to Array.length moduli - 1 do
      pos := put_u63 buf !pos moduli.(j)
    done;
    pos := put_u32 buf !pos (Array.length rows);
    for i = 0 to Array.length rows - 1 do
      let row = rows.(i) in
      if Array.length row <> Array.length moduli then
        invalid_arg "Frame.encode: tuple row arity mismatch";
      for j = 0 to Array.length row - 1 do
        pos := Codec.encode_residue_into ~modulus:moduli.(j) row.(j) buf ~pos:!pos
      done
    done;
    !pos
  | Runtime.Batch payloads ->
    let pos = put_u8 buf pos kind_batch in
    let pos = put_u16 buf pos (List.length payloads) in
    List.fold_left (fun pos p -> put_payload buf pos p) pos payloads

let rec get_payload r =
  match get_u8 r with
  | k when k = kind_ints ->
    let modulus = get_u63 r in
    if modulus <= 1 then invalid_arg "Frame.decode: bad modulus";
    let count = get_u32 r in
    let body = get_bytes r (Codec.residue_bytes ~modulus * count) in
    Runtime.Ints { modulus; values = Codec.decode_residues ~modulus ~count body }
  | k when k = kind_floats ->
    let count = get_u32 r in
    Runtime.Floats (Codec.decode_floats ~count (get_bytes r (8 * count)))
  | k when k = kind_bits ->
    let count = get_u32 r in
    Runtime.Bits (Codec.decode_bitset ~count (get_bytes r ((count + 7) / 8)))
  | k when k = kind_nats ->
    let width_bits = get_u63 r in
    if width_bits < 1 then invalid_arg "Frame.decode: bad nat width";
    let count = get_u32 r in
    let body = get_bytes r ((width_bits + 7) / 8 * count) in
    Runtime.Nats { width_bits; values = Codec.decode_nats ~width_bits ~count body }
  | k when k = kind_tuples ->
    let arity = get_u16 r in
    let moduli = Array.init arity (fun _ -> get_u63 r) in
    Array.iter (fun m -> if m <= 1 then invalid_arg "Frame.decode: bad modulus") moduli;
    let count = get_u32 r in
    let rows =
      Array.init count (fun _ ->
          Array.map
            (fun modulus ->
              let body = get_bytes r (Codec.residue_bytes ~modulus) in
              (Codec.decode_residues ~modulus ~count:1 body).(0))
            moduli)
    in
    Runtime.Tuples { moduli; rows }
  | k when k = kind_batch ->
    let count = get_u16 r in
    Runtime.Batch (List.init count (fun _ -> get_payload r))
  | k -> invalid_arg (Printf.sprintf "Frame.decode: unknown payload kind %d" k)

let encode_into t buf ~pos =
  match t with
  | Hello { sender } ->
    let pos = put_u8 buf pos tag_hello in
    put_u16 buf pos sender
  | Data { round; seq; src; dst; payload } ->
    let pos = put_u8 buf pos tag_data in
    let pos = put_u32 buf pos round in
    let pos = put_u32 buf pos seq in
    let pos = put_u16 buf pos (party_code src) in
    let pos = put_u16 buf pos (party_code dst) in
    put_payload buf pos payload
  | End_of_round { round; sender; total; to_dst } ->
    let pos = put_u8 buf pos tag_eor in
    let pos = put_u32 buf pos round in
    let pos = put_u16 buf pos sender in
    let pos = put_u32 buf pos total in
    put_u32 buf pos to_dst
  | Nack { round; sender } ->
    let pos = put_u8 buf pos tag_nack in
    let pos = put_u32 buf pos round in
    put_u16 buf pos sender
  | Fin { sender } ->
    let pos = put_u8 buf pos tag_fin in
    put_u16 buf pos sender

let encode t =
  let buf = Bytes.create (encoded_length t) in
  let stop = encode_into t buf ~pos:0 in
  assert (stop = Bytes.length buf);
  buf

let decode body =
  let r = { body; pos = 0 } in
  let t =
    match get_u8 r with
    | k when k = tag_hello -> Hello { sender = get_u16 r }
    | k when k = tag_data ->
      let round = get_u32 r in
      let seq = get_u32 r in
      let src = party_of_code (get_u16 r) in
      let dst = party_of_code (get_u16 r) in
      Data { round; seq; src; dst; payload = get_payload r }
    | k when k = tag_eor ->
      let round = get_u32 r in
      let sender = get_u16 r in
      let total = get_u32 r in
      End_of_round { round; sender; total; to_dst = get_u32 r }
    | k when k = tag_nack ->
      let round = get_u32 r in
      Nack { round; sender = get_u16 r }
    | k when k = tag_fin -> Fin { sender = get_u16 r }
    | k -> invalid_arg (Printf.sprintf "Frame.decode: unknown tag %d" k)
  in
  if r.pos <> Bytes.length body then invalid_arg "Frame.decode: trailing bytes";
  t

let framed_length t = length_prefix_bytes + encoded_length t

let payload_length = function
  | Data { payload; _ } -> Runtime.payload_bits payload / 8
  | Hello _ | End_of_round _ | Nack _ | Fin _ -> 0
