module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Codec = Spe_mpc.Codec

type t =
  | Hello of { sender : int }
  | Data of {
      round : int;
      seq : int;
      src : Wire.party;
      dst : Wire.party;
      payload : Runtime.payload;
    }
  | End_of_round of { round : int; sender : int; total : int; to_dst : int }
  | Nack of { round : int; sender : int }
  | Fin of { sender : int }

let length_prefix_bytes = 4

(* Tags. *)
let tag_hello = 0
let tag_data = 1
let tag_eor = 2
let tag_nack = 3
let tag_fin = 4

(* Payload kinds inside a Data body. *)
let kind_ints = 0
let kind_floats = 1
let kind_bits = 2
let kind_nats = 3
let kind_tuples = 4
let kind_batch = 5

(* Parties in two bytes: Host = 0, Provider k = k + 1. *)
let party_code = function
  | Wire.Host -> 0
  | Wire.Provider k ->
    if k < 0 || k > 0xFFFE then invalid_arg "Frame.encode: provider index out of range";
    k + 1

let party_of_code = function
  | 0 -> Wire.Host
  | c -> Wire.Provider (c - 1)

(* Little append-only byte writer. *)
let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Frame.encode: u16 out of range";
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Frame.encode: u32 out of range";
  put_u8 buf (v lsr 24);
  put_u8 buf (v lsr 16);
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u63 buf v =
  if v < 0 then invalid_arg "Frame.encode: u63 out of range";
  put_u32 buf (v lsr 32);
  put_u32 buf (v land 0xFFFF_FFFF)

type reader = { body : bytes; mutable pos : int }

let get_u8 r =
  if r.pos >= Bytes.length r.body then invalid_arg "Frame.decode: truncated frame";
  let v = Char.code (Bytes.get r.body r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  (hi lsl 8) lor get_u8 r

let get_u32 r =
  let hi = get_u16 r in
  (hi lsl 16) lor get_u16 r

let get_u63 r =
  let hi = get_u32 r in
  (hi lsl 32) lor get_u32 r

let get_bytes r n =
  if n < 0 || r.pos + n > Bytes.length r.body then
    invalid_arg "Frame.decode: truncated frame";
  let b = Bytes.sub r.body r.pos n in
  r.pos <- r.pos + n;
  b

let rec put_payload buf = function
  | Runtime.Ints { modulus; values } ->
    put_u8 buf kind_ints;
    put_u63 buf modulus;
    put_u32 buf (Array.length values);
    Buffer.add_bytes buf (Codec.encode_residues ~modulus values)
  | Runtime.Floats values ->
    put_u8 buf kind_floats;
    put_u32 buf (Array.length values);
    Buffer.add_bytes buf (Codec.encode_floats values)
  | Runtime.Bits flags ->
    put_u8 buf kind_bits;
    put_u32 buf (Array.length flags);
    Buffer.add_bytes buf (Codec.encode_bitset flags)
  | Runtime.Nats { width_bits; values } ->
    put_u8 buf kind_nats;
    put_u63 buf width_bits;
    put_u32 buf (Array.length values);
    Buffer.add_bytes buf (Codec.encode_nats ~width_bits values)
  | Runtime.Tuples { moduli; rows } ->
    put_u8 buf kind_tuples;
    put_u16 buf (Array.length moduli);
    Array.iter (fun modulus -> put_u63 buf modulus) moduli;
    put_u32 buf (Array.length rows);
    Array.iter
      (fun row ->
        if Array.length row <> Array.length moduli then
          invalid_arg "Frame.encode: tuple row arity mismatch";
        Array.iteri
          (fun j v ->
            Buffer.add_bytes buf (Codec.encode_residues ~modulus:moduli.(j) [| v |]))
          row)
      rows
  | Runtime.Batch payloads ->
    put_u8 buf kind_batch;
    put_u16 buf (List.length payloads);
    List.iter (fun p -> put_payload buf p) payloads

let rec get_payload r =
  match get_u8 r with
  | k when k = kind_ints ->
    let modulus = get_u63 r in
    if modulus <= 1 then invalid_arg "Frame.decode: bad modulus";
    let count = get_u32 r in
    let body = get_bytes r (Codec.residue_bytes ~modulus * count) in
    Runtime.Ints { modulus; values = Codec.decode_residues ~modulus ~count body }
  | k when k = kind_floats ->
    let count = get_u32 r in
    Runtime.Floats (Codec.decode_floats ~count (get_bytes r (8 * count)))
  | k when k = kind_bits ->
    let count = get_u32 r in
    Runtime.Bits (Codec.decode_bitset ~count (get_bytes r ((count + 7) / 8)))
  | k when k = kind_nats ->
    let width_bits = get_u63 r in
    if width_bits < 1 then invalid_arg "Frame.decode: bad nat width";
    let count = get_u32 r in
    let body = get_bytes r ((width_bits + 7) / 8 * count) in
    Runtime.Nats { width_bits; values = Codec.decode_nats ~width_bits ~count body }
  | k when k = kind_tuples ->
    let arity = get_u16 r in
    let moduli = Array.init arity (fun _ -> get_u63 r) in
    Array.iter (fun m -> if m <= 1 then invalid_arg "Frame.decode: bad modulus") moduli;
    let count = get_u32 r in
    let rows =
      Array.init count (fun _ ->
          Array.map
            (fun modulus ->
              let body = get_bytes r (Codec.residue_bytes ~modulus) in
              (Codec.decode_residues ~modulus ~count:1 body).(0))
            moduli)
    in
    Runtime.Tuples { moduli; rows }
  | k when k = kind_batch ->
    let count = get_u16 r in
    Runtime.Batch (List.init count (fun _ -> get_payload r))
  | k -> invalid_arg (Printf.sprintf "Frame.decode: unknown payload kind %d" k)

let encode t =
  let buf = Buffer.create 32 in
  (match t with
  | Hello { sender } ->
    put_u8 buf tag_hello;
    put_u16 buf sender
  | Data { round; seq; src; dst; payload } ->
    put_u8 buf tag_data;
    put_u32 buf round;
    put_u32 buf seq;
    put_u16 buf (party_code src);
    put_u16 buf (party_code dst);
    put_payload buf payload
  | End_of_round { round; sender; total; to_dst } ->
    put_u8 buf tag_eor;
    put_u32 buf round;
    put_u16 buf sender;
    put_u32 buf total;
    put_u32 buf to_dst
  | Nack { round; sender } ->
    put_u8 buf tag_nack;
    put_u32 buf round;
    put_u16 buf sender
  | Fin { sender } ->
    put_u8 buf tag_fin;
    put_u16 buf sender);
  Buffer.to_bytes buf

let decode body =
  let r = { body; pos = 0 } in
  let t =
    match get_u8 r with
    | k when k = tag_hello -> Hello { sender = get_u16 r }
    | k when k = tag_data ->
      let round = get_u32 r in
      let seq = get_u32 r in
      let src = party_of_code (get_u16 r) in
      let dst = party_of_code (get_u16 r) in
      Data { round; seq; src; dst; payload = get_payload r }
    | k when k = tag_eor ->
      let round = get_u32 r in
      let sender = get_u16 r in
      let total = get_u32 r in
      End_of_round { round; sender; total; to_dst = get_u32 r }
    | k when k = tag_nack ->
      let round = get_u32 r in
      Nack { round; sender = get_u16 r }
    | k when k = tag_fin -> Fin { sender = get_u16 r }
    | k -> invalid_arg (Printf.sprintf "Frame.decode: unknown tag %d" k)
  in
  if r.pos <> Bytes.length body then invalid_arg "Frame.decode: trailing bytes";
  t

let framed_length t = length_prefix_bytes + Bytes.length (encode t)

let payload_length = function
  | Data { payload; _ } -> Runtime.payload_bits payload / 8
  | Hello _ | End_of_round _ | Nack _ | Fin _ -> 0
