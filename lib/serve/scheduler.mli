(** The daemon's session/job scheduler: a bounded FIFO feeding a fixed
    worker pool, with typed admission control.

    At most [max_active] jobs run concurrently (the daemon starts that
    many worker threads, each looping {!take} / {!finish}); up to
    [max_queue] more wait in FIFO order; past that, {!submit} refuses
    with {!admission.Busy} — which the daemon turns into the protocol's
    typed [Busy] reply, the backpressure signal clients act on.  The
    module is deliberately free of I/O so admission behaviour is
    unit-testable without a daemon. *)

type 'a t

type admission = Accepted | Busy of { queued : int; max_queue : int }

val create : ?max_queue:int -> max_active:int -> unit -> 'a t
(** [max_queue] defaults to 64.  [Invalid_argument] if either bound is
    below 1. *)

val submit : 'a t -> 'a -> admission
(** Enqueue, or refuse when the queue is full or the scheduler has
    stopped (both count toward the [rejected] statistic). *)

val take : 'a t -> 'a option
(** Block until a job is available ([Some], claiming an active slot the
    caller must release with {!finish}) or the scheduler stops
    ([None]). *)

val take_opt : 'a t -> 'a option
(** Non-blocking claim: a job only when one is queued {e and} an
    active slot is free; [None] otherwise (including when stopped).
    The reactor host's pump loop calls this until it returns [None],
    so [max_active] bounds the jobs in flight without a worker pool to
    embody the bound.  A [Some] claims an active slot exactly like
    {!take}. *)

val finish : 'a t -> unit
(** Release the active slot claimed by the matching {!take} or
    {!take_opt}. *)

val stop : 'a t -> 'a list
(** Stop admitting, wake every blocked {!take} with [None], and return
    the still-queued jobs so each can be refused with a typed reply. *)

val drain : 'a t -> deadline:float -> bool
(** Wait until every active job has finished; [false] on deadline. *)

val depth : 'a t -> int
(** Jobs currently queued (the [queue_depth] gauge). *)

val active : 'a t -> int
(** Jobs currently running (the [active_jobs] gauge). *)

val max_active : 'a t -> int
val max_queue : 'a t -> int

type stats = { submitted : int; rejected : int; completed : int }

val stats : 'a t -> stats
(** Monotone counters: admitted, refused, finished. *)
