(** One long-lived party daemon — the process behind [spe serve].

    A daemon is one seat of the deployment (H is daemon 0, P_k is
    daemon k), listening on its roster address.  The connection mesh is
    established once — daemon d dials every lower id and accepts the
    higher ones, one {!Serve_proto.t.Hello} exchange per connection —
    and all later traffic (job control and session-tagged inner
    protocol frames) multiplexes over it, so the per-session rendezvous
    tax of addressed socket groups is paid once per deployment.

    Clients connect to H and submit {!Serve_proto.spec}s.  H owns
    admission (a bounded {!Scheduler} past which submissions get the
    typed [Busy] reply); each admitted job is broadcast to the provider
    daemons, every daemon deterministically rebuilds the identical plan
    from [(spec, workload)], runs its own seats over the mux, and H
    answers the client with the merged result — or a typed
    {!Serve_proto.reply.Failed} naming what went wrong.  A peer daemon
    dying mid-round surfaces as [Peer_down]/[Round_timeout] at every
    client, never a hang, and the daemon keeps accepting jobs. *)

type config = {
  party : int;  (** Daemon id: 0 = H, k = P_k. *)
  roster : Addr.t array;  (** Address by daemon id, H first. *)
  listen : Addr.t option;  (** Bind override; default [roster.(party)]. *)
  max_sessions : int;  (** Concurrent jobs (worker threads at H). *)
  max_queue : int;  (** Bounded admission queue at H. *)
  metrics_addr : Addr.t option;  (** Scrape endpoint; also enables tracing. *)
  round_timeout : float;
  linger : float;
  dial_timeout : float;  (** How long to keep retrying the mesh dial. *)
}

val default_config : party:int -> roster:Addr.t array -> config
(** max_sessions 4, max_queue 64, compute-friendly 300 s round timeout
    (connection deaths are detected by reader EOF, not timeout). *)

type t

val start : config -> Job.workload -> t
(** Bind, start accepting, dial the mesh (retrying up to
    [dial_timeout]), and start the worker pool.  Raises [Failure] with
    a clean message if a peer cannot be reached or loaded a different
    workload. *)

val stop : t -> unit
(** Begin graceful shutdown: refuse the queued jobs with typed replies,
    drain the running ones, then close every connection.  Idempotent;
    returns immediately — {!wait} observes completion. *)

val wait : t -> unit
(** Block until the daemon has fully shut down (someone sent the wire
    [Shutdown], or {!stop} was called). *)

val run : config -> Job.workload -> unit
(** [start] then [wait] — the CLI's serve loop. *)

val spawn : config -> Job.workload -> int
(** Fork a child process running {!run}; returns the pid.  The child
    [Unix._exit]s (no parent at_exit hooks).  Used by the chaos
    harness and the bench to get real OS-level party isolation. *)

val gauges : t -> (string * int) list
(** The scrape gauges, readable in-process for tests/bench. *)

val report : t -> Spe_obs.Metrics.report option
(** Cumulative merged spe-metrics/2 report across every session this
    daemon ran ([None] until tracing produced one; tracing is enabled
    by [metrics_addr]). *)
