(* The spe-serve/2 control protocol: what flows on a daemon-mesh or
   client connection, around and between the inner Spe_net.Frame
   streams.

   Every connection opens with a [Hello] in each direction (the dialer
   speaks first); after that, session traffic travels as
   [Session_frame]s — an unmodified inner endpoint frame body tagged
   with its session id — multiplexed with the job-control frames.  The
   codec follows the Frame discipline exactly: length-prefixed bodies
   on the wire (Transport.Socket.write_frame / read_frame), explicit
   big-endian byte writers, a strict reader that rejects unknown tags
   and trailing bytes.  Tags live at 64+ so a serve frame can never be
   confused with an inner protocol frame. *)

module Frame = Spe_net.Frame

let version = 3
let protocol = "spe-serve/3"

type role = Party of int | Client

type pipeline = Links | Scores | Stream | Rank

let pipeline_name = function
  | Links -> "links"
  | Scores -> "scores"
  | Stream -> "stream"
  | Rank -> "rank"

type spec = {
  pipeline : pipeline;
  seed : int;
  shards : int;
  h : int;  (** Memory-window width (links, stream). *)
  c_factor : float;  (** Obfuscation blow-up (links, stream). *)
  modulus_bits : int;  (** Share modulus S = 2^bits (all pipelines). *)
  tau : int;  (** Propagation threshold (scores). *)
  key_bits : int;  (** Protocol 6 key size (scores). *)
  pack_slots : int;  (** Protocol 6 plaintext packing slots (scores). *)
  epoch_ticks : int;  (** Arrival ticks per release epoch (stream). *)
  window : int;  (** Temporal window in record-time units, 0 = none (stream). *)
  epochs : int;  (** Number of epochs to release (stream). *)
  rate : float;  (** Mean arrivals per tick (stream). *)
  burstiness : float;  (** Markov-modulated gap scaling in [0, 1) (stream). *)
  jitter : int;  (** Bounded arrival reordering in ticks (stream). *)
  damping : float;  (** Power-iteration damping in [0, 1) (rank). *)
  iterations : int;  (** Power-iteration count (rank). *)
  fbits : int;  (** Fixed-point fractional bits (rank). *)
  rank_degree : bool;  (** Degree-centrality mode instead of PageRank (rank). *)
}

let default_spec =
  {
    pipeline = Links;
    seed = 0;
    shards = 1;
    h = 1;
    c_factor = 1.;
    modulus_bits = 40;
    tau = 1;
    key_bits = 16;
    pack_slots = 1;
    epoch_ticks = 0;
    window = 0;
    epochs = 0;
    rate = 0.;
    burstiness = 0.;
    jitter = 0;
    damping = 0.85;
    iterations = 25;
    fbits = 20;
    rank_degree = false;
  }

type failure_kind = Rejected | Busy_queue | Peer_down | Round_timeout | Shard_failed | Other

let failure_kind_name = function
  | Rejected -> "rejected"
  | Busy_queue -> "busy"
  | Peer_down -> "peer-down"
  | Round_timeout -> "round-timeout"
  | Shard_failed -> "shard-failed"
  | Other -> "error"

type reply =
  | Strengths of ((int * int) * float) list
  | Scores of float array
  | Stream_summary of {
      digests : int array;
      recomputed : int array;
      strengths : ((int * int) * float) list;
    }
  | Rank_summary of { ranks_fx : int array; fbits : int }
  | Failed of { kind : failure_kind; detail : string }

type t =
  | Hello of { role : role; version : int; workload : int }
  | Session_frame of { sid : int; body : bytes }
  | Job_submit of { job : int; spec : spec }
  | Job_result of { job : int; reply : reply }
  | Busy of { job : int; queued : int; max_queue : int }
  | Job_cancel of { job : int }
  | Shutdown

(* Tags: disjoint from the inner Frame tags (0-4) by a wide margin. *)
let tag_hello = 64
let tag_session_frame = 65
let tag_job_submit = 66
let tag_job_result = 67
let tag_busy = 68
let tag_shutdown = 69
let tag_job_cancel = 70

(* Byte writers, after Frame's. *)
let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let put_u16 buf v =
  if v < 0 || v > 0xFFFF then invalid_arg "Serve_proto.encode: u16 out of range";
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Serve_proto.encode: u32 out of range";
  put_u8 buf (v lsr 24);
  put_u8 buf (v lsr 16);
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u63 buf v =
  if v < 0 then invalid_arg "Serve_proto.encode: u63 out of range";
  put_u32 buf (v lsr 32);
  put_u32 buf (v land 0xFFFF_FFFF)

(* Floats travel as their IEEE-754 bits, so results survive the wire
   bit-identically — the whole point of the oracle comparisons. *)
let put_f64 buf v =
  let bits = Int64.bits_of_float v in
  for shift = 7 downto 0 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * shift)))
  done

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

type reader = { body : bytes; mutable pos : int }

let get_u8 r =
  if r.pos >= Bytes.length r.body then invalid_arg "Serve_proto.decode: truncated frame";
  let v = Char.code (Bytes.get r.body r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let hi = get_u8 r in
  (hi lsl 8) lor get_u8 r

let get_u32 r =
  let hi = get_u16 r in
  (hi lsl 16) lor get_u16 r

let get_u63 r =
  let hi = get_u32 r in
  (hi lsl 32) lor get_u32 r

let get_f64 r =
  let bits = ref 0L in
  for _ = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (get_u8 r))
  done;
  Int64.float_of_bits !bits

let get_bytes r n =
  if n < 0 || r.pos + n > Bytes.length r.body then
    invalid_arg "Serve_proto.decode: truncated frame";
  let b = Bytes.sub r.body r.pos n in
  r.pos <- r.pos + n;
  b

let get_string r =
  let n = get_u32 r in
  Bytes.to_string (get_bytes r n)

let put_spec buf spec =
  put_u8 buf (match spec.pipeline with Links -> 0 | Scores -> 1 | Stream -> 2 | Rank -> 3);
  put_u63 buf spec.seed;
  put_u16 buf spec.shards;
  put_u16 buf spec.h;
  put_f64 buf spec.c_factor;
  put_u16 buf spec.modulus_bits;
  put_u16 buf spec.tau;
  put_u16 buf spec.key_bits;
  put_u16 buf spec.pack_slots;
  put_u32 buf spec.epoch_ticks;
  put_u32 buf spec.window;
  put_u16 buf spec.epochs;
  put_f64 buf spec.rate;
  put_f64 buf spec.burstiness;
  put_u16 buf spec.jitter;
  put_f64 buf spec.damping;
  put_u16 buf spec.iterations;
  put_u16 buf spec.fbits;
  put_u8 buf (if spec.rank_degree then 1 else 0)

let get_spec r =
  let pipeline =
    match get_u8 r with
    | 0 -> Links
    | 1 -> Scores
    | 2 -> Stream
    | 3 -> Rank
    | k -> invalid_arg (Printf.sprintf "Serve_proto.decode: unknown pipeline %d" k)
  in
  let seed = get_u63 r in
  let shards = get_u16 r in
  let h = get_u16 r in
  let c_factor = get_f64 r in
  let modulus_bits = get_u16 r in
  let tau = get_u16 r in
  let key_bits = get_u16 r in
  let pack_slots = get_u16 r in
  let epoch_ticks = get_u32 r in
  let window = get_u32 r in
  let epochs = get_u16 r in
  let rate = get_f64 r in
  let burstiness = get_f64 r in
  let jitter = get_u16 r in
  let damping = get_f64 r in
  let iterations = get_u16 r in
  let fbits = get_u16 r in
  let rank_degree =
    match get_u8 r with
    | 0 -> false
    | 1 -> true
    | k -> invalid_arg (Printf.sprintf "Serve_proto.decode: bad rank_degree %d" k)
  in
  {
    pipeline;
    seed;
    shards;
    h;
    c_factor;
    modulus_bits;
    tau;
    key_bits;
    pack_slots;
    epoch_ticks;
    window;
    epochs;
    rate;
    burstiness;
    jitter;
    damping;
    iterations;
    fbits;
    rank_degree;
  }

let kind_code = function
  | Rejected -> 0
  | Busy_queue -> 1
  | Peer_down -> 2
  | Round_timeout -> 3
  | Shard_failed -> 4
  | Other -> 5

let kind_of_code = function
  | 0 -> Rejected
  | 1 -> Busy_queue
  | 2 -> Peer_down
  | 3 -> Round_timeout
  | 4 -> Shard_failed
  | 5 -> Other
  | k -> invalid_arg (Printf.sprintf "Serve_proto.decode: unknown failure kind %d" k)

let put_reply buf = function
  | Strengths strengths ->
    put_u8 buf 0;
    put_u32 buf (List.length strengths);
    List.iter
      (fun ((u, v), p) ->
        put_u32 buf u;
        put_u32 buf v;
        put_f64 buf p)
      strengths
  | Scores scores ->
    put_u8 buf 1;
    put_u32 buf (Array.length scores);
    Array.iter (put_f64 buf) scores
  | Failed { kind; detail } ->
    put_u8 buf 2;
    put_u8 buf (kind_code kind);
    put_string buf detail
  | Stream_summary { digests; recomputed; strengths } ->
    put_u8 buf 3;
    if Array.length digests <> Array.length recomputed then
      invalid_arg "Serve_proto.encode: one recomputed count per epoch digest";
    put_u16 buf (Array.length digests);
    Array.iter (put_u63 buf) digests;
    Array.iter (put_u32 buf) recomputed;
    put_u32 buf (List.length strengths);
    List.iter
      (fun ((u, v), p) ->
        put_u32 buf u;
        put_u32 buf v;
        put_f64 buf p)
      strengths
  | Rank_summary { ranks_fx; fbits } ->
    put_u8 buf 4;
    put_u16 buf fbits;
    put_u32 buf (Array.length ranks_fx);
    Array.iter (put_u63 buf) ranks_fx

let get_reply r =
  match get_u8 r with
  | 0 ->
    let n = get_u32 r in
    Strengths
      (List.init n (fun _ ->
           let u = get_u32 r in
           let v = get_u32 r in
           let p = get_f64 r in
           ((u, v), p)))
  | 1 ->
    let n = get_u32 r in
    Scores (Array.init n (fun _ -> get_f64 r))
  | 2 ->
    let kind = kind_of_code (get_u8 r) in
    let detail = get_string r in
    Failed { kind; detail }
  | 3 ->
    let epochs = get_u16 r in
    let digests = Array.init epochs (fun _ -> get_u63 r) in
    let recomputed = Array.init epochs (fun _ -> get_u32 r) in
    let n = get_u32 r in
    let strengths =
      List.init n (fun _ ->
          let u = get_u32 r in
          let v = get_u32 r in
          let p = get_f64 r in
          ((u, v), p))
    in
    Stream_summary { digests; recomputed; strengths }
  | 4 ->
    let fbits = get_u16 r in
    let n = get_u32 r in
    Rank_summary { ranks_fx = Array.init n (fun _ -> get_u63 r); fbits }
  | k -> invalid_arg (Printf.sprintf "Serve_proto.decode: unknown reply kind %d" k)

let encode t =
  let buf = Buffer.create 32 in
  (match t with
  | Hello { role; version; workload } ->
    put_u8 buf tag_hello;
    put_u8 buf version;
    (match role with
    | Party id ->
      put_u8 buf 0;
      put_u16 buf id
    | Client ->
      put_u8 buf 1;
      put_u16 buf 0);
    put_u63 buf workload
  | Session_frame { sid; body } ->
    put_u8 buf tag_session_frame;
    put_u63 buf sid;
    put_u32 buf (Bytes.length body);
    Buffer.add_bytes buf body
  | Job_submit { job; spec } ->
    put_u8 buf tag_job_submit;
    put_u63 buf job;
    put_spec buf spec
  | Job_result { job; reply } ->
    put_u8 buf tag_job_result;
    put_u63 buf job;
    put_reply buf reply
  | Busy { job; queued; max_queue } ->
    put_u8 buf tag_busy;
    put_u63 buf job;
    put_u32 buf queued;
    put_u32 buf max_queue
  | Job_cancel { job } ->
    put_u8 buf tag_job_cancel;
    put_u63 buf job
  | Shutdown -> put_u8 buf tag_shutdown);
  Buffer.to_bytes buf

let decode body =
  let r = { body; pos = 0 } in
  let t =
    match get_u8 r with
    | k when k = tag_hello ->
      let version = get_u8 r in
      let role =
        match get_u8 r with
        | 0 -> Party (get_u16 r)
        | 1 ->
          let _ = get_u16 r in
          Client
        | k -> invalid_arg (Printf.sprintf "Serve_proto.decode: unknown role %d" k)
      in
      let workload = get_u63 r in
      Hello { role; version; workload }
    | k when k = tag_session_frame ->
      let sid = get_u63 r in
      let n = get_u32 r in
      Session_frame { sid; body = get_bytes r n }
    | k when k = tag_job_submit ->
      let job = get_u63 r in
      Job_submit { job; spec = get_spec r }
    | k when k = tag_job_result ->
      let job = get_u63 r in
      Job_result { job; reply = get_reply r }
    | k when k = tag_busy ->
      let job = get_u63 r in
      let queued = get_u32 r in
      let max_queue = get_u32 r in
      Busy { job; queued; max_queue }
    | k when k = tag_job_cancel -> Job_cancel { job = get_u63 r }
    | k when k = tag_shutdown -> Shutdown
    | k -> invalid_arg (Printf.sprintf "Serve_proto.decode: unknown tag %d" k)
  in
  if r.pos <> Bytes.length body then invalid_arg "Serve_proto.decode: trailing bytes";
  t

(* Connection I/O: serve frames ride the same length-prefixed stream
   discipline as the inner protocol frames. *)
let write fd t = Spe_net.Transport.Socket.write_frame fd (encode t)

let read fd = Option.map decode (Spe_net.Transport.Socket.read_frame fd)
