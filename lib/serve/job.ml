(* Turning a wire {!Serve_proto.spec} into per-daemon work.

   The deployment invariant everything here rests on: every daemon
   rebuilds the {e identical} plan from [(spec, workload)], because the
   sharded pipelines draw all joint randomness at plan-build time in a
   deterministic order (Spe_core.Shard, "permute-then-shard").  Each
   daemon then executes only its own party's seats over the mux, and
   the merged result is read at H exactly as the in-process pool reads
   it — the closure state behind [Plan.result] is written by the host's
   own programs. *)

module Session = Spe_mpc.Session
module Wire = Spe_mpc.Wire
module Plan = Spe_core.Plan

type workload = { graph : Spe_graph.Digraph.t; logs : Spe_actionlog.Log.t array }

(* A deterministic content digest for the Hello handshake: daemons over
   different inputs could never agree on a plan, so refuse them at
   connection time.  FNV-1a over the canonical record streams — not
   Hashtbl.hash, whose node-count cutoff would ignore most of the
   data. *)
let digest { graph; logs } =
  let fnv_prime = 0x100000001b3 in
  (* The canonical 64-bit offset basis truncated to OCaml's 63-bit int. *)
  let h = ref 0x3bf29ce484222325 in
  let mix v =
    h := (!h lxor (v land 0xFFFF)) * fnv_prime land max_int;
    h := (!h lxor (v lsr 16)) * fnv_prime land max_int
  in
  let module G = Spe_graph.Digraph in
  mix (G.n graph);
  for u = 0 to G.n graph - 1 do
    Array.iter
      (fun v ->
        mix u;
        mix v)
      (G.out_neighbors graph u)
  done;
  let module Log = Spe_actionlog.Log in
  Array.iter
    (fun log ->
      mix (Log.num_users log);
      mix (Log.num_actions log);
      List.iter
        (fun (r : Log.record) ->
          mix r.Log.user;
          mix r.Log.action;
          mix r.Log.time)
        (Log.records log))
    logs;
  mix (Array.length logs);
  !h

type planned =
  | Links_plan of Spe_core.Protocol4.result Plan.t
  | Scores_plan of Spe_core.Driver_distributed.scores Plan.t
  | Stream_plan of { delta : Spe_core.Delta.t; stages : Plan.stage list }
  | Rank_plan of { fbits : int; plan : Spe_rank.Protocol_rank.result Plan.t }

let validate (spec : Serve_proto.spec) workload =
  let m = Array.length workload.logs in
  if m < 2 then Error "need at least two providers"
  else if spec.Serve_proto.shards < 1 then Error "shards must be at least 1"
  else if spec.Serve_proto.modulus_bits < 2 || spec.Serve_proto.modulus_bits > 61 then
    Error "modulus-bits out of range"
  else
    match spec.Serve_proto.pipeline with
    | Serve_proto.Links ->
      if spec.Serve_proto.h < 1 then Error "window h must be at least 1"
      else if spec.Serve_proto.c_factor < 1.0 then Error "c-factor must be >= 1"
      else Ok ()
    | Serve_proto.Scores ->
      if spec.Serve_proto.tau < 1 then Error "tau must be at least 1"
      else if spec.Serve_proto.key_bits < 16 then Error "key-bits too small"
      else if spec.Serve_proto.pack_slots < 1 then Error "pack-slots must be at least 1"
      else Ok ()
    | Serve_proto.Stream ->
      if spec.Serve_proto.h < 1 then Error "window h must be at least 1"
      else if spec.Serve_proto.c_factor < 1.0 then Error "c-factor must be >= 1"
      else if spec.Serve_proto.epoch_ticks < 1 then Error "epoch-ticks must be at least 1"
      else if spec.Serve_proto.epochs < 1 then Error "epochs must be at least 1"
      else if spec.Serve_proto.window < 0 then Error "window must be >= 0"
      else if spec.Serve_proto.rate <= 0. then Error "rate must be positive"
      else if spec.Serve_proto.burstiness < 0. || spec.Serve_proto.burstiness >= 1. then
        Error "burstiness must be in [0, 1)"
      else if spec.Serve_proto.jitter < 0 then Error "jitter must be >= 0"
      else Ok ()
    | Serve_proto.Rank -> (
      match
        Spe_rank.Oracle.validate
          {
            Spe_rank.Oracle.mode =
              (if spec.Serve_proto.rank_degree then Spe_rank.Oracle.Degree
               else Spe_rank.Oracle.Pagerank);
            damping = spec.Serve_proto.damping;
            iterations = spec.Serve_proto.iterations;
            fbits = spec.Serve_proto.fbits;
          }
      with
      | () ->
        if spec.Serve_proto.fbits >= spec.Serve_proto.modulus_bits then
          Error "fbits must lie below modulus-bits"
        else Ok ()
      | exception Invalid_argument msg -> Error msg)

let rank_config (spec : Serve_proto.spec) =
  {
    Spe_rank.Protocol_rank.oracle =
      {
        Spe_rank.Oracle.mode =
          (if spec.Serve_proto.rank_degree then Spe_rank.Oracle.Degree
           else Spe_rank.Oracle.Pagerank);
        damping = spec.Serve_proto.damping;
        iterations = spec.Serve_proto.iterations;
        fbits = spec.Serve_proto.fbits;
      };
    modulus = 1 lsl spec.Serve_proto.modulus_bits;
  }

let links_config (spec : Serve_proto.spec) =
  {
    Spe_core.Protocol4.c_factor = spec.Serve_proto.c_factor;
    modulus = 1 lsl spec.Serve_proto.modulus_bits;
    h = spec.Serve_proto.h;
    estimator = Spe_core.Protocol4.Eq1;
  }

(* Build all the epochs of a stream job ahead of time: replay the seeded
   sources provider by provider into windowed accumulators over the
   instance's published pair order, snapshot each epoch's inputs, and
   concatenate the per-epoch Delta stages into one plan.  Every daemon
   replays the identical ingestion (the sources are pure functions of
   the spec seed and the shared workload), so the plan agreement
   invariant carries over unchanged — epoch inputs are eager snapshots,
   which is exactly what [Delta.epoch_stages] permits for building
   ahead of execution. *)
let build_stream (spec : Serve_proto.spec) workload s =
  let module State = Spe_rng.State in
  let module Log = Spe_actionlog.Log in
  let module Source = Spe_actionlog.Source in
  let module Stream = Spe_influence.Stream in
  let module Counters = Spe_influence.Counters in
  let module Protocol4 = Spe_core.Protocol4 in
  let module Delta = Spe_core.Delta in
  let config = links_config spec in
  let m = Array.length workload.logs in
  let num_actions =
    Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 workload.logs
  in
  let delta =
    Delta.create s ~graph:workload.graph ~m ~num_actions
      ~group_seed:(spec.Serve_proto.seed lxor 0x5bd1e995)
      config
  in
  let pairs = Delta.pairs delta in
  let window = if spec.Serve_proto.window = 0 then None else Some spec.Serve_proto.window in
  let sources =
    Array.mapi
      (fun k l ->
        Source.create
          (State.create ~seed:(spec.Serve_proto.seed + 101 + k) ())
          l ~rate:spec.Serve_proto.rate ~burstiness:spec.Serve_proto.burstiness
          ~jitter:spec.Serve_proto.jitter ())
      workload.logs
  in
  let streams =
    Array.map
      (fun _ ->
        Stream.create ?window
          ~num_users:(Spe_graph.Digraph.n workload.graph)
          ~num_actions ~h:config.Protocol4.h ~pairs ())
      workload.logs
  in
  let union_sorted lists = List.sort_uniq compare (List.concat lists) in
  let stages = ref [] in
  for e = 0 to spec.Serve_proto.epochs - 1 do
    let horizon = (e + 1) * spec.Serve_proto.epoch_ticks in
    Array.iteri
      (fun k src ->
        List.iter
          (fun (r : Log.record) ->
            let acc = streams.(k) in
            Stream.advance acc ~now:(max (Stream.now acc) r.Log.time);
            Stream.add acc r)
          (Source.take_until src ~arrival:horizon))
      sources;
    let dirty_users =
      union_sorted (Array.to_list (Array.map Stream.dirty_users streams))
    in
    let dirty_pairs =
      union_sorted (Array.to_list (Array.map Stream.dirty_pairs streams))
    in
    let inputs =
      Array.map
        (fun acc ->
          let c = Stream.snapshot acc in
          { Protocol4.a = c.Counters.a; c = c.Counters.c })
        streams
    in
    Array.iter Stream.clear_dirty streams;
    stages :=
      Delta.epoch_stages delta ~mode:Delta.Delta
        { Delta.epoch = e; dirty_users; dirty_pairs; inputs }
      :: !stages
  done;
  Stream_plan { delta; stages = List.concat (List.rev !stages) }

let build (spec : Serve_proto.spec) workload =
  let s = Spe_rng.State.create ~seed:spec.Serve_proto.seed () in
  match spec.Serve_proto.pipeline with
  | Serve_proto.Links ->
    Links_plan
      (Spe_core.Shard.links_exclusive s ~graph:workload.graph ~logs:workload.logs
         ~shards:spec.Serve_proto.shards (links_config spec))
  | Serve_proto.Scores ->
    let config =
      {
        Spe_core.Protocol6.default_config with
        Spe_core.Protocol6.key_bits = spec.Serve_proto.key_bits;
        pack_slots = spec.Serve_proto.pack_slots;
      }
    in
    Scores_plan
      (Spe_core.Shard.user_scores_exclusive s ~graph:workload.graph ~logs:workload.logs
         ~tau:spec.Serve_proto.tau
         ~modulus:(1 lsl spec.Serve_proto.modulus_bits)
         ~shards:spec.Serve_proto.shards config)
  | Serve_proto.Stream -> build_stream spec workload s
  | Serve_proto.Rank ->
    Rank_plan
      {
        fbits = spec.Serve_proto.fbits;
        plan =
          Spe_rank.Protocol_rank.plan s ~graph:workload.graph ~logs:workload.logs
            ~shards:spec.Serve_proto.shards (rank_config spec);
      }

let stages = function
  | Links_plan plan -> plan.Plan.stages
  | Scores_plan plan -> plan.Plan.stages
  | Stream_plan { stages; _ } -> stages
  | Rank_plan { plan; _ } -> plan.Plan.stages

(* Only the host calls this, and only after every stage quiesced. *)
let reply_of = function
  | Links_plan plan ->
    Serve_proto.Strengths (plan.Plan.result ()).Spe_core.Protocol4.strengths
  | Scores_plan plan ->
    Serve_proto.Scores (plan.Plan.result ()).Spe_core.Driver_distributed.scores
  | Stream_plan { delta; _ } ->
    let module Delta = Spe_core.Delta in
    let releases = Delta.releases delta in
    Serve_proto.Stream_summary
      {
        digests = Array.of_list (List.map (fun r -> r.Delta.digest) releases);
        recomputed = Array.of_list (List.map (fun r -> r.Delta.recomputed) releases);
        strengths =
          (match List.rev releases with
          | [] -> []
          | last :: _ -> last.Delta.strengths);
      }
  | Rank_plan { fbits; plan } ->
    Serve_proto.Rank_summary
      { ranks_fx = (plan.Plan.result ()).Spe_rank.Protocol_rank.ranks_fx; fbits }

(* Daemon ids mirror the frame codec's party order. *)
let daemon_of_party = function Wire.Host -> 0 | Wire.Provider k -> k + 1

(* Session ids: the coordinator's global job number, shifted past the
   widest per-job session index.  Every daemon enumerates a plan's
   sessions in the same (stage, index) order, so the ids agree without
   any negotiation. *)
let sid_stride = 65536

let sid ~job ~gidx =
  if gidx >= sid_stride then invalid_arg "Job.sid: plan has too many sessions";
  (job * sid_stride) + gidx

type seat = {
  sid : int;
  session : unit Session.t;
  peers : int array;  (** Daemon id by group index. *)
  index : int;  (** This daemon's group index. *)
}

(* The per-stage seats of one daemon, plus every sid of the job (for
   cancellation, including sessions this daemon is not seated in). *)
let seats ~job ~party planned =
  let gidx = ref 0 in
  let all_sids = ref [] in
  let per_stage =
    List.map
      (fun (stage : Plan.stage) ->
        Array.to_list stage.Plan.sessions
        |> List.filter_map (fun (session : unit Session.t) ->
               let id = sid ~job ~gidx:!gidx in
               incr gidx;
               all_sids := id :: !all_sids;
               let peers = Array.map daemon_of_party session.Session.parties in
               let index = ref (-1) in
               Array.iteri (fun j p -> if p = party then index := j) peers;
               if !index < 0 then None
               else Some { sid = id; session; peers; index = !index }))
      (stages planned)
  in
  (per_stage, List.rev !all_sids)
