(** The submission side of spe-serve/2 — what [spe links --connect]
    and [spe scores --connect] run.

    A client talks to the host daemon only; H coordinates the provider
    daemons over the mesh.  Jobs are pipelined — submit any number,
    then collect replies, which arrive in completion order keyed by the
    client-chosen job id.  Every terminal state is typed: a result, a
    [Failed] with a {!Serve_proto.failure_kind}, or {!outcome.Busy}
    from admission control. *)

exception Connection_lost of string
(** The daemon is unreachable, spoke something other than spe-serve/2,
    or died mid-conversation.  The payload is a clean human message —
    the CLI prints it and exits nonzero, never a raw [Unix_error]. *)

type t

val connect : ?retry_for:float -> Addr.t -> t
(** Connect to the {e host} daemon and exchange hellos.  [retry_for]
    (default 0) keeps retrying refused connections for that many
    seconds — for scripts racing daemon start-up. *)

val submit : t -> Serve_proto.spec -> int
(** Submit one job; returns the client-side job id its reply will
    carry.  Thread-safe. *)

type outcome =
  | Result of Serve_proto.reply
  | Busy of { queued : int; max_queue : int }

val next_reply : t -> deadline:float -> (int * outcome) option
(** Block for the next reply, up to the absolute [deadline] ([None] on
    timeout). *)

val run_jobs : t -> Serve_proto.spec list -> deadline:float -> outcome list
(** Submit every spec up front (pipelined) and collect all replies;
    outcomes are indexed by submission order. *)

val close : t -> unit

val scrape : Addr.t -> string
(** Fetch the whole metrics document from a daemon's [--metrics-addr]. *)

val shutdown_daemon : ?timeout:float -> Addr.t -> bool
(** Ask one daemon to shut down; [true] once it confirms by closing the
    connection (EOF), [false] on timeout (default 30 s). *)

val shutdown_roster : ?timeout:float -> Addr.t array -> int list
(** Shut the whole deployment down, H first (so no new jobs race the
    providers' teardown).  Returns the party ids that failed to confirm
    in time (empty = clean). *)
