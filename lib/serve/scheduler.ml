(* The daemon's job scheduler: a bounded FIFO feeding a fixed worker
   pool, with typed admission control.

   [max_active] workers each loop [take]/[finish]; jobs past the active
   set wait in the queue; a submission finding the queue full is
   refused with `Busy — the caller turns that into the protocol's
   typed [Busy] reply, the backpressure signal a client can act on.
   All state is one mutex away; [take] polls like the transport
   mailboxes do (the stdlib Condition has no timed wait, and the poll
   interval is far below any job's runtime). *)

type 'a t = {
  lock : Mutex.t;
  queue : 'a Queue.t;
  max_active : int;
  max_queue : int;
  mutable active : int;
  mutable stopped : bool;
  (* Monotone counters for the scrape gauges. *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
}

type admission = Accepted | Busy of { queued : int; max_queue : int }

let create ?(max_queue = 64) ~max_active () =
  if max_active < 1 then invalid_arg "Scheduler.create: max_active must be at least 1";
  if max_queue < 1 then invalid_arg "Scheduler.create: max_queue must be at least 1";
  {
    lock = Mutex.create ();
    queue = Queue.create ();
    max_active;
    max_queue;
    active = 0;
    stopped = false;
    submitted = 0;
    rejected = 0;
    completed = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t job =
  with_lock t (fun () ->
      if t.stopped then begin
        t.rejected <- t.rejected + 1;
        Busy { queued = Queue.length t.queue; max_queue = t.max_queue }
      end
      else if Queue.length t.queue >= t.max_queue then begin
        t.rejected <- t.rejected + 1;
        Busy { queued = Queue.length t.queue; max_queue = t.max_queue }
      end
      else begin
        t.submitted <- t.submitted + 1;
        Queue.push job t.queue;
        Accepted
      end)

let poll_interval = 0.002

(* Blocks until a job is available or the scheduler stops; the worker
   owns an active slot from a [Some] return until it calls [finish]. *)
let rec take t =
  let r =
    with_lock t (fun () ->
        if t.stopped then `Stop
        else
          match Queue.take_opt t.queue with
          | Some job ->
            t.active <- t.active + 1;
            `Job job
          | None -> `Wait)
  in
  match r with
  | `Stop -> None
  | `Job job -> Some job
  | `Wait ->
    Thread.delay poll_interval;
    take t

(* Non-blocking claim for the reactor host: a job only when one is
   queued AND an active slot is free — the reactor's pump loop calls
   this until it returns [None], so [max_active] bounds the jobs in
   flight without a fixed worker pool to embody the bound. *)
let take_opt t =
  with_lock t (fun () ->
      if t.stopped || t.active >= t.max_active then None
      else
        match Queue.take_opt t.queue with
        | Some job ->
          t.active <- t.active + 1;
          Some job
        | None -> None)

let finish t =
  with_lock t (fun () ->
      t.active <- t.active - 1;
      t.completed <- t.completed + 1)

(* Stop admitting and wake the workers; the still-queued jobs are
   returned so the daemon can refuse each with a typed reply. *)
let stop t =
  with_lock t (fun () ->
      t.stopped <- true;
      let drained = List.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      drained)

(* Wait until every active job has called [finish] (used on shutdown
   drain); returns false on deadline. *)
let rec drain t ~deadline =
  if with_lock t (fun () -> t.active = 0) then true
  else if Unix.gettimeofday () >= deadline then false
  else begin
    Thread.delay poll_interval;
    drain t ~deadline
  end

let depth t = with_lock t (fun () -> Queue.length t.queue)
let active t = with_lock t (fun () -> t.active)
let max_active t = t.max_active
let max_queue t = t.max_queue

type stats = { submitted : int; rejected : int; completed : int }

let stats t =
  with_lock t (fun () ->
      { submitted = t.submitted; rejected = t.rejected; completed = t.completed })
