(** The versioned [spe-serve/1] control protocol.

    Everything a daemon-mesh or client connection carries: the opening
    {!t.Hello} handshake, session-tagged inner endpoint frames
    ({!t.Session_frame} — the body is an unmodified
    {!Spe_net.Frame} encoding, multiplexed by session id), and the job
    control frames (submit / result / busy / cancel / shutdown).
    Frames are length-prefixed on the wire with the same discipline as
    the inner protocol ({!Spe_net.Transport.Socket.write_frame}); the
    decoder is strict — unknown tags, unknown enum codes and trailing
    bytes all raise [Invalid_argument].  Tags live at 64+ so a serve
    frame can never be confused with an inner frame. *)

val version : int
(** 1 — carried in every {!t.Hello}; a daemon refuses mismatched peers. *)

val protocol : string
(** ["spe-serve/1"]. *)

type role =
  | Party of int  (** A daemon introducing itself: 0 = H, [k] = P[k]. *)
  | Client  (** A job-submitting client (CLI, tests, bench). *)

type pipeline = Links | Scores

val pipeline_name : pipeline -> string

type spec = {
  pipeline : pipeline;
  seed : int;  (** The job's PRNG seed — with the daemons' shared
                   workload this pins the whole plan. *)
  shards : int;
  h : int;  (** Memory-window width (links). *)
  c_factor : float;  (** Obfuscation blow-up (links); travels as IEEE bits. *)
  modulus_bits : int;  (** Share modulus S = 2^bits. *)
  tau : int;  (** Propagation threshold (scores). *)
  key_bits : int;  (** Protocol 6 key size (scores). *)
}
(** Everything a job needs beyond the daemons' preloaded workload.
    Every daemon rebuilds the identical plan from [(spec, workload)] —
    all joint randomness is drawn at plan-build time in a deterministic
    order — and executes only its own party's seats. *)

type failure_kind =
  | Rejected  (** Refused before running (shutdown drain, bad spec). *)
  | Busy_queue  (** Admission control: the bounded queue was full. *)
  | Peer_down  (** A peer daemon's connection died mid-session. *)
  | Round_timeout  (** A session starved past its Nack budget. *)
  | Shard_failed  (** A shard session failed for another typed reason. *)
  | Other

val failure_kind_name : failure_kind -> string

type reply =
  | Strengths of ((int * int) * float) list  (** Links result, real arcs. *)
  | Scores of float array  (** Scores result, by user. *)
  | Failed of { kind : failure_kind; detail : string }

type t =
  | Hello of {
      role : role;
      version : int;
      workload : int;
          (** Digest of the sender's loaded workload (0 for clients);
              daemons refuse peers whose digest differs — a mesh over
              different inputs could never agree on a plan. *)
    }
  | Session_frame of { sid : int; body : bytes }
  | Job_submit of { job : int; spec : spec }
      (** Client -> H: [job] is the client's own correlation id.
          H -> P: [job] is the coordinator's global job number, which
          also prefixes every session id of the job. *)
  | Job_result of { job : int; reply : reply }
  | Busy of { job : int; queued : int; max_queue : int }
      (** The typed admission-control rejection. *)
  | Job_cancel of { job : int }
      (** H -> P: abort the (global) job's sessions. *)
  | Shutdown

val encode : t -> bytes
val decode : bytes -> t

val write : Unix.file_descr -> t -> unit
(** One length-prefixed frame; the caller serialises writes per
    descriptor. *)

val read : Unix.file_descr -> t option
(** [None] on clean EOF; [Failure] on a torn stream;
    [Invalid_argument] on a malformed frame. *)
