(** The versioned [spe-serve/3] control protocol.

    Everything a daemon-mesh or client connection carries: the opening
    {!t.Hello} handshake, session-tagged inner endpoint frames
    ({!t.Session_frame} — the body is an unmodified
    {!Spe_net.Frame} encoding, multiplexed by session id), and the job
    control frames (submit / result / busy / cancel / shutdown).
    Frames are length-prefixed on the wire with the same discipline as
    the inner protocol ({!Spe_net.Transport.Socket.write_frame}); the
    decoder is strict — unknown tags, unknown enum codes and trailing
    bytes all raise [Invalid_argument].  Tags live at 64+ so a serve
    frame can never be confused with an inner frame. *)

val version : int
(** 3 — carried in every {!t.Hello}; a daemon refuses mismatched peers.
    Bumped from 1 when the spec grew the packing and streaming fields,
    and from 2 when it grew the rank pipeline (its spec fields, the
    [Rank] code and the [Rank_summary] reply): the field list is
    fixed-layout, so old and new binaries must refuse each other
    cleanly rather than misparse. *)

val protocol : string
(** ["spe-serve/3"]. *)

type role =
  | Party of int  (** A daemon introducing itself: 0 = H, [k] = P[k]. *)
  | Client  (** A job-submitting client (CLI, tests, bench). *)

type pipeline = Links | Scores | Stream | Rank

val pipeline_name : pipeline -> string

type spec = {
  pipeline : pipeline;
  seed : int;  (** The job's PRNG seed — with the daemons' shared
                   workload this pins the whole plan. *)
  shards : int;
  h : int;  (** Memory-window width (links, stream). *)
  c_factor : float;  (** Obfuscation blow-up (links, stream); travels as IEEE bits. *)
  modulus_bits : int;  (** Share modulus S = 2^bits. *)
  tau : int;  (** Propagation threshold (scores). *)
  key_bits : int;  (** Protocol 6 key size (scores). *)
  pack_slots : int;  (** Protocol 6 plaintext packing slots (scores). *)
  epoch_ticks : int;  (** Arrival ticks per release epoch (stream). *)
  window : int;  (** Sliding window in record-time units, 0 = none (stream). *)
  epochs : int;  (** Release epochs to run (stream). *)
  rate : float;  (** Mean arrivals per tick (stream). *)
  burstiness : float;  (** Markov gap modulation in [0, 1) (stream). *)
  jitter : int;  (** Bounded arrival reordering in ticks (stream). *)
  damping : float;  (** Power-iteration damping in [[0, 1)] (rank). *)
  iterations : int;  (** Power-iteration count (rank). *)
  fbits : int;  (** Fixed-point fractional bits (rank). *)
  rank_degree : bool;  (** Degree-centrality mode instead of PageRank (rank). *)
}
(** Everything a job needs beyond the daemons' preloaded workload.
    Every daemon rebuilds the identical plan from [(spec, workload)] —
    all joint randomness is drawn at plan-build time in a deterministic
    order (for [Stream] jobs this includes replaying the whole seeded
    event source) — and executes only its own party's seats. *)

val default_spec : spec
(** A valid-shape base record ([Links], seed 0, every optional knob at
    its neutral value: [pack_slots = 1], stream fields zeroed) — spec
    literals are built with record update on this, so adding a field
    does not touch every call site. *)

type failure_kind =
  | Rejected  (** Refused before running (shutdown drain, bad spec). *)
  | Busy_queue  (** Admission control: the bounded queue was full. *)
  | Peer_down  (** A peer daemon's connection died mid-session. *)
  | Round_timeout  (** A session starved past its Nack budget. *)
  | Shard_failed  (** A shard session failed for another typed reason. *)
  | Other

val failure_kind_name : failure_kind -> string

type reply =
  | Strengths of ((int * int) * float) list  (** Links result, real arcs. *)
  | Scores of float array  (** Scores result, by user. *)
  | Stream_summary of {
      digests : int array;  (** Per-epoch release digests, epoch order. *)
      recomputed : int array;  (** Counter groups re-shared per epoch. *)
      strengths : ((int * int) * float) list;  (** Final-epoch arcs. *)
    }  (** Stream result: the whole release sequence, compressed. *)
  | Rank_summary of {
      ranks_fx : int array;  (** The fixed-point rank vector, by user. *)
      fbits : int;  (** Its fractional bits, so clients can rescale. *)
    }  (** Rank result, bit-exact on the wire by construction. *)
  | Failed of { kind : failure_kind; detail : string }

type t =
  | Hello of {
      role : role;
      version : int;
      workload : int;
          (** Digest of the sender's loaded workload (0 for clients);
              daemons refuse peers whose digest differs — a mesh over
              different inputs could never agree on a plan. *)
    }
  | Session_frame of { sid : int; body : bytes }
  | Job_submit of { job : int; spec : spec }
      (** Client -> H: [job] is the client's own correlation id.
          H -> P: [job] is the coordinator's global job number, which
          also prefixes every session id of the job. *)
  | Job_result of { job : int; reply : reply }
  | Busy of { job : int; queued : int; max_queue : int }
      (** The typed admission-control rejection. *)
  | Job_cancel of { job : int }
      (** H -> P: abort the (global) job's sessions. *)
  | Shutdown

val encode : t -> bytes
val decode : bytes -> t

val write : Unix.file_descr -> t -> unit
(** One length-prefixed frame; the caller serialises writes per
    descriptor. *)

val read : Unix.file_descr -> t option
(** [None] on clean EOF; [Failure] on a torn stream;
    [Invalid_argument] on a malformed frame. *)
