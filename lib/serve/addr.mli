(** The one address / roster syntax every [Spe_serve] flag shares.

    Addresses are [unix:PATH] (Unix-domain stream socket) or
    [HOST:PORT] (TCP; [HOST] must be a literal IP address or
    [localhost], which resolves to 127.0.0.1 — there is deliberately no
    DNS here).  The same parser backs [--listen], [--connect],
    [--metrics-addr] and the pipeline [--address] flags, so every
    malformed address fails as a clean usage error rather than a raw
    [Unix.Unix_error] from deep inside the transport. *)

type t = Spe_net.Transport.Socket.address

val parse : string -> (t, string) result
(** Parse one address; the error is a complete human-readable
    sentence naming the offending input. *)

val parse_exn : string -> t
(** [parse], raising [Failure] with the same message. *)

val to_string : t -> string
(** Inverse of {!parse}. *)

val sockaddr : t -> Unix.sockaddr
(** Lower to the [Unix] address ({!Spe_net.Transport.Socket.sockaddr_of}). *)

val party_of_string : string -> (int, string) result
(** ["H"] is daemon id 0; ["P1"], ["P2"], ... are ids 1, 2, ... —
    provider [k] (0-based) lives at id [k + 1], matching the frame
    codec's party order. *)

val party_name : int -> string
(** Inverse of {!party_of_string}: ["H"], ["P1"], ... *)

val roster_of_string : string -> (t array, string) result
(** Parse a full-deployment roster
    ["H=ADDR,P1=ADDR,...,Pm=ADDR"] into the address-by-daemon-id
    array.  Entries may appear in any order but must cover H and
    [P1..Pm] exactly once each. *)

val roster_to_string : t array -> string
(** Inverse of {!roster_of_string}. *)
