(* One address syntax for every Spe_serve flag: [unix:PATH] for
   Unix-domain sockets, [HOST:PORT] (a literal IP or [localhost]) for
   TCP.  The parser is shared by --listen, --connect, --metrics-addr
   and the pipeline --address flags, so a typo fails the same clean way
   everywhere instead of surfacing a raw [Unix.Unix_error]. *)

type t = Spe_net.Transport.Socket.address

let parse s =
  let invalid msg = Error (Printf.sprintf "%S: %s" s msg) in
  if s = "" then invalid "empty address"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then invalid "empty unix socket path"
    else Ok (Spe_net.Transport.Socket.Unix_domain path)
  end
  else
    match String.rindex_opt s ':' with
    | None -> invalid "expected unix:PATH or HOST:PORT"
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | None -> invalid "port is not a number"
      | Some p when p < 0 || p > 0xFFFF -> invalid "port out of range"
      | Some p ->
        let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
        (* Resolve now so a bad host is a parse error, not a connect-time
           Unix_error deep inside the transport. *)
        (match Unix.inet_addr_of_string host with
        | _ -> Ok (Spe_net.Transport.Socket.Tcp (host, p))
        | exception Failure _ -> invalid "host is not a literal IP address (or localhost)"))

let parse_exn s = match parse s with Ok a -> a | Error msg -> failwith msg

let to_string = function
  | Spe_net.Transport.Socket.Unix_domain path -> "unix:" ^ path
  | Spe_net.Transport.Socket.Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr = Spe_net.Transport.Socket.sockaddr_of

(* Party naming shared by --party and roster entries: H, or P<k> with
   k counted from 1 (P1 = provider 0).  Daemon ids put the host at 0
   and provider k at k + 1, matching the frame codec's party order. *)
let party_of_string s =
  if s = "H" || s = "h" then Ok 0
  else if String.length s >= 2 && (s.[0] = 'P' || s.[0] = 'p') then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some k when k >= 1 -> Ok k
    | _ -> Error (Printf.sprintf "%S: providers are P1, P2, ..." s)
  else Error (Printf.sprintf "%S: expected H or P<i>" s)

let party_name id = if id = 0 then "H" else Printf.sprintf "P%d" id

(* A roster maps every daemon id to its address:
   "H=unix:/tmp/h.sock,P1=127.0.0.1:7001,P2=127.0.0.1:7002".
   Entries may come in any order but must cover H and P1..Pm exactly. *)
let roster_of_string spec =
  let entries = String.split_on_char ',' spec in
  let parse_entry e =
    match String.index_opt e '=' with
    | None -> Error (Printf.sprintf "%S: expected PARTY=ADDR" e)
    | Some i -> (
      let who = String.sub e 0 i in
      let addr = String.sub e (i + 1) (String.length e - i - 1) in
      match party_of_string who with
      | Error msg -> Error msg
      | Ok id -> ( match parse addr with Error msg -> Error msg | Ok a -> Ok (id, a)))
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match parse_entry (String.trim e) with
      | Error msg -> Error msg
      | Ok pair -> collect (pair :: acc) rest)
  in
  match collect [] entries with
  | Error msg -> Error msg
  | Ok pairs ->
    let n = List.length pairs in
    if n < 2 then Error "roster needs at least H and P1"
    else begin
      let roster = Array.make n None in
      let rec place = function
        | [] -> Ok ()
        | (id, addr) :: rest ->
          if id >= n then
            Error
              (Printf.sprintf "roster names %s but only %d entries are given"
                 (party_name id) n)
          else if roster.(id) <> None then
            Error (Printf.sprintf "duplicate roster entry for %s" (party_name id))
          else begin
            roster.(id) <- Some addr;
            place rest
          end
      in
      match place pairs with
      | Error msg -> Error msg
      | Ok () -> (
        match
          Array.to_list roster
          |> List.mapi (fun id a -> (id, a))
          |> List.find_opt (fun (_, a) -> a = None)
        with
        | Some (id, _) -> Error (Printf.sprintf "roster is missing %s" (party_name id))
        | None -> Ok (Array.map Option.get roster))
    end

let roster_to_string roster =
  Array.to_list roster
  |> List.mapi (fun id addr -> Printf.sprintf "%s=%s" (party_name id) (to_string addr))
  |> String.concat ","
