(* The submission side of spe-serve/2: what `spe links --connect` and
   `spe scores --connect` run.

   A client talks to the host daemon only — H coordinates the provider
   daemons over the mesh.  Jobs are pipelined: submit any number, then
   collect replies (which arrive in completion order, keyed by the
   client-chosen job id).  Every terminal state is typed: a result, a
   [Failed] with a failure kind, or [Busy] from admission control. *)

exception Connection_lost of string

(* Dial any daemon as a client: hello exchange, returning the socket
   and which party answered. *)
let rec dial ?(retry_for = 0.) (addr : Addr.t) =
  let deadline = Unix.gettimeofday () +. retry_for in
  let sockaddr = Addr.sockaddr addr in
  let domain =
    match sockaddr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd sockaddr;
    Serve_proto.write fd
      (Serve_proto.Hello
         { role = Serve_proto.Client; version = Serve_proto.version; workload = 0 });
    Serve_proto.read fd
  with
  | Some (Serve_proto.Hello { role = Serve_proto.Party p; version; _ })
    when version = Serve_proto.version ->
    (fd, p)
  | Some _ | None ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise
      (Connection_lost
         (Printf.sprintf "%s did not answer the spe-serve/2 hello" (Addr.to_string addr)))
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if Unix.gettimeofday () < deadline then begin
      Thread.delay 0.1;
      dial ~retry_for:(deadline -. Unix.gettimeofday ()) addr
    end
    else
      raise
        (Connection_lost
           (Printf.sprintf "cannot connect to %s: %s" (Addr.to_string addr)
              (Unix.error_message err)))

type t = {
  fd : Unix.file_descr;
  wmx : Mutex.t;
  mutable next_job : int;
  mutable closed : bool;
}

let connect ?retry_for (addr : Addr.t) =
  let fd, party = dial ?retry_for addr in
  if party <> 0 then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise
      (Connection_lost
         (Printf.sprintf "%s is %s, not the host daemon — point --connect at H"
            (Addr.to_string addr) (Addr.party_name party)))
  end;
  { fd; wmx = Mutex.create (); next_job = 0; closed = false }

let submit t spec =
  if t.closed then raise (Connection_lost "connection already closed");
  Mutex.lock t.wmx;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.wmx)
    (fun () ->
      let job = t.next_job in
      t.next_job <- job + 1;
      (try Serve_proto.write t.fd (Serve_proto.Job_submit { job; spec })
       with Unix.Unix_error (err, _, _) ->
         raise (Connection_lost (Unix.error_message err)));
      job)

type outcome =
  | Result of Serve_proto.reply
  | Busy of { queued : int; max_queue : int }

(* Block for the next reply frame, up to [deadline].  [None] = timed
   out; [Connection_lost] = the daemon went away (EOF or error). *)
let next_reply t ~deadline =
  let rec loop () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then None
    else
      match Unix.select [ t.fd ] [] [] remaining with
      | [], _, _ -> None
      | _ -> (
        match
          try Serve_proto.read t.fd
          with Unix.Unix_error (err, _, _) ->
            raise (Connection_lost (Unix.error_message err))
        with
        | None -> raise (Connection_lost "the host daemon closed the connection")
        | Some (Serve_proto.Job_result { job; reply }) -> Some (job, Result reply)
        | Some (Serve_proto.Busy { job; queued; max_queue }) ->
          Some (job, Busy { queued; max_queue })
        | Some _ -> loop ())
  in
  loop ()

(* Submit every spec up front (pipelined), then collect all replies.
   Returns outcomes indexed by submission order. *)
let run_jobs t specs ~deadline =
  let jobs = List.map (fun spec -> submit t spec) specs in
  let n = List.length jobs in
  let base = match jobs with [] -> 0 | j :: _ -> j in
  let out = Array.make (max n 1) None in
  let remaining = ref n in
  while !remaining > 0 do
    match next_reply t ~deadline with
    | None ->
      raise
        (Connection_lost
           (Printf.sprintf "timed out with %d of %d job replies outstanding" !remaining n))
    | Some (job, outcome) ->
      let i = job - base in
      if i >= 0 && i < n && out.(i) = None then begin
        out.(i) <- Some outcome;
        decr remaining
      end
  done;
  List.filteri (fun i _ -> i < n) (Array.to_list out) |> List.map Option.get

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Read the whole scrape document from a daemon's --metrics-addr. *)
let scrape (addr : Addr.t) = Spe_obs.Scrape.fetch ~addr:(Addr.sockaddr addr)

(* Ask one daemon to shut down and wait (up to [timeout]) for it to
   finish draining — the daemon closes our connection when done, so EOF
   is the completion signal. *)
let shutdown_daemon ?(timeout = 30.) (addr : Addr.t) =
  let fd, _party = dial addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Serve_proto.write fd Serve_proto.Shutdown
       with Unix.Unix_error (err, _, _) ->
         raise (Connection_lost (Unix.error_message err)));
      let deadline = Unix.gettimeofday () +. timeout in
      let rec await_eof () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then false
        else
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> false
          | _ -> (
            match (try Serve_proto.read fd with _ -> None) with
            | None -> true
            | Some _ -> await_eof ())
      in
      await_eof ())

(* Graceful deployment shutdown: H first — no new jobs can then be
   racing the providers' teardown — then each provider in roster
   order.  Returns the parties that failed to confirm within the
   per-daemon timeout. *)
let shutdown_roster ?timeout (roster : Addr.t array) =
  let stragglers = ref [] in
  Array.iteri
    (fun party addr ->
      match shutdown_daemon ?timeout addr with
      | true -> ()
      | false -> stragglers := party :: !stragglers
      | exception Connection_lost _ ->
        (* Already gone — that is what we wanted. *)
        ())
    roster;
  List.rev !stragglers
