(* One long-lived party daemon: `spe serve` runs this.

   A daemon is one seat of the deployment — H (id 0) or P_k (id k) —
   listening on its roster address.  The connection mesh is established
   once: daemon d dials every peer with a lower id and accepts the
   higher ones, each connection opening with exactly one Hello exchange
   (spe-serve/2) that checks the protocol version and the workload
   digest.  All later traffic — job control and the session-tagged
   inner protocol frames — multiplexes over those same connections, so
   the per-session rendezvous/Hello tax of addressed socket groups is
   paid once per deployment, not once per shard session.

   Job flow (coordinator model): clients connect to H and submit specs.
   H owns admission — a bounded scheduler queue feeding [max_sessions]
   workers; a full queue is refused with the typed [Busy] reply.  When
   a worker starts a job it assigns the global job number, broadcasts
   [Job_submit] to the provider daemons, and every daemon independently
   rebuilds the identical plan from [(spec, workload)] and runs its own
   party's seats over the mux ([Endpoint.run_party]).  H reads the
   merged result from its plan closures and answers the client; on any
   failure it broadcasts [Job_cancel], aborts the job's sessions, and
   answers with a typed [Failed] reply instead — a dead peer daemon
   surfaces as [Peer_down] at every client, never a hang, and the
   daemon keeps serving (new jobs fail fast and typed until the peer
   returns). *)

module Endpoint = Spe_net.Endpoint
module Transport = Spe_net.Transport
module Mux = Spe_net.Mux
module Reactor = Spe_net.Reactor
module Trace = Spe_obs.Trace
module Metrics = Spe_obs.Metrics

type config = {
  party : int;  (** Daemon id: 0 = H, k = P_k. *)
  roster : Addr.t array;  (** Address by daemon id, H first. *)
  listen : Addr.t option;  (** Bind override; default [roster.(party)]. *)
  max_sessions : int;  (** Concurrent jobs (worker threads at H). *)
  max_queue : int;  (** Bounded admission queue at H. *)
  metrics_addr : Addr.t option;  (** Scrape endpoint; also enables tracing. *)
  round_timeout : float;
  linger : float;
  dial_timeout : float;  (** How long to keep retrying the mesh dial. *)
}

let default_config ~party ~roster =
  {
    party;
    roster;
    listen = None;
    (* Jobs are reactor task chains, not worker threads, so the
       concurrency cap is bookkeeping rather than a thread budget —
       high enough that a pipelined burst (the 500-job stress smoke)
       queues on admission, not on artificial session scarcity. *)
    max_sessions = 16;
    max_queue = 1024;
    metrics_addr = None;
    (* Compute-friendly like the CLI pipelines: local connections are
       reliable, and a busy party decrypting bundles looks exactly like
       a dead one.  Dead *connections* are detected by reader EOF, not
       by this timeout. *)
    round_timeout = 300.;
    linger = 310.;
    dial_timeout = 30.;
  }

type conn = { fd : Unix.file_descr; mx : Mutex.t; mutable alive : bool }

let conn_of fd = { fd; mx = Mutex.create (); alive = true }

(* Serialised frame write; a dead peer raises [Transport.Closed] so a
   mux send inside an endpoint round surfaces as the usual teardown. *)
let send conn frame =
  Mutex.lock conn.mx;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.mx)
    (fun () ->
      if not conn.alive then raise Transport.Closed;
      try Serve_proto.write conn.fd frame
      with Unix.Unix_error _ | Sys_error _ ->
        conn.alive <- false;
        raise Transport.Closed)

let close_conn conn =
  Mutex.lock conn.mx;
  let was = conn.alive in
  conn.alive <- false;
  Mutex.unlock conn.mx;
  if was then begin
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

type host_job = { client : conn; client_job : int; spec : Serve_proto.spec }

type t = {
  config : config;
  workload : Job.workload;
  wdigest : int;
  mux : Mux.t;
  reactor : Reactor.t;
      (** The daemon's one event loop: every job — host and provider
          side — runs on it as a task chain, every session seat as an
          endpoint machine.  Connection readers stay as threads (they
          block on peer sockets) and hand everything to the loop with
          [Reactor.post]. *)
  lock : Mutex.t;
  peers : conn option array;  (** By daemon id; [None] = not connected. *)
  clients : (int, conn) Hashtbl.t;
  mutable next_client : int;
  scheduler : host_job Scheduler.t;  (** Meaningful at H only. *)
  next_job : int Atomic.t;  (** Global job numbers (H assigns). *)
  jobs : (int, int list) Hashtbl.t;  (** Running job -> its sids (cancel). *)
  listener : Unix.file_descr;
  mutable scrape : Spe_obs.Scrape.t option;
  mutable stopping : bool;
  mutable stopped : bool;
  loop : Thread.t option ref;  (** The thread driving [reactor]. *)
  acceptor : Thread.t option ref;
  (* Gauges. *)
  hellos_sent : int Atomic.t;
  hellos_received : int Atomic.t;
  clients_accepted : int Atomic.t;
  active_jobs : int Atomic.t;  (** Provider-side job threads in flight. *)
  jobs_completed : int Atomic.t;
  jobs_failed : int Atomic.t;
  sessions_run : int Atomic.t;
  (* Stream-job gauges: advanced as epoch-tagged stages quiesce. *)
  epochs_released : int Atomic.t;
  epoch_sessions_run : int Atomic.t;
      (** Per-group recomputation sessions across all released epochs —
          the quantity the delta path keeps small. *)
  last_epoch : int Atomic.t;  (** Highest released epoch, -1 before any. *)
  (* Rank-job gauges: completed rank jobs and the power iterations they ran. *)
  rank_jobs_completed : int Atomic.t;
  rank_iterations_run : int Atomic.t;
  (* Cumulative spe-metrics/2 state (when metrics_addr is set). *)
  reports_lock : Mutex.t;
  mutable reports : Metrics.report list;
  (* Deferred sid cleanup: (reap-after, sids) in completion order. *)
  reap_lock : Mutex.t;
  reap : (float * int list) Queue.t;
}

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let m_of t = Array.length t.config.roster - 1

let listen_addr config =
  match config.listen with Some a -> a | None -> config.roster.(config.party)

(* --- metrics ------------------------------------------------------------ *)

let record_report t report =
  with_lock t.reports_lock (fun () -> t.reports <- report :: t.reports)

let tracing t = t.config.metrics_addr <> None

let render_scrape t () =
  let module Json = Spe_obs.Obs_io.Json in
  let sched = Scheduler.stats t.scheduler in
  let gauges =
    [
      ("queue_depth", Scheduler.depth t.scheduler);
      ("active_jobs", Scheduler.active t.scheduler + Atomic.get t.active_jobs);
      ("active_sessions", Mux.open_sessions t.mux);
      ("max_sessions", t.config.max_sessions);
      ("max_queue", t.config.max_queue);
      ("jobs_submitted", sched.Scheduler.submitted);
      ("jobs_completed", Atomic.get t.jobs_completed);
      ("jobs_failed", Atomic.get t.jobs_failed);
      ("busy_rejected", sched.Scheduler.rejected);
      ("hellos_sent", Atomic.get t.hellos_sent);
      ("hellos_received", Atomic.get t.hellos_received);
      ("clients_accepted", Atomic.get t.clients_accepted);
      ("sessions_run", Atomic.get t.sessions_run);
      (* Stream gauges: per-epoch release progress of stream jobs. *)
      ("epochs_released", Atomic.get t.epochs_released);
      ("epoch_sessions_run", Atomic.get t.epoch_sessions_run);
      ("last_epoch", Atomic.get t.last_epoch);
      (* Rank gauges: second-family job progress. *)
      ("rank_jobs_completed", Atomic.get t.rank_jobs_completed);
      ("rank_iterations_run", Atomic.get t.rank_iterations_run);
      (* Reactor gauges: the loop's live vital signs. *)
      ("reactor_iterations", Reactor.iterations t.reactor);
      ("reactor_timer_fires", Reactor.timer_fires t.reactor);
      ("reactor_ready_depth", Reactor.ready_depth t.reactor);
      ("reactor_pending_timers", Reactor.pending_timers t.reactor);
    ]
  in
  let report =
    match with_lock t.reports_lock (fun () -> t.reports) with
    | [] -> Json.Null
    | reports ->
      Json.of_string (Spe_obs.Obs_io.report_to_string (Metrics.merge (List.rev reports)))
  in
  Json.to_string
    (Json.Obj
       [
         ("version", Json.String "spe-serve-metrics/1");
         ("protocol", Json.String Serve_proto.protocol);
         ("party", Json.String (Addr.party_name t.config.party));
         ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) gauges));
         ("report", report);
       ])
  ^ "\n"

(* --- session execution --------------------------------------------------- *)

let endpoint_config t =
  {
    Endpoint.default_config with
    Endpoint.round_timeout = t.config.round_timeout;
    linger = t.config.linger;
  }

let pipeline_label = function
  | Serve_proto.Links -> "links"
  | Serve_proto.Scores -> "scores"
  | Serve_proto.Stream -> "stream"
  | Serve_proto.Rank -> "rank"

(* One seat of one session as an endpoint machine on the daemon's
   reactor.  [on_done] fires on the loop thread, exactly once. *)
let run_seat_async t ~protocol (seat : Job.seat) ~on_done =
  match Mux.open_session t.mux ~sid:seat.Job.sid ~peers:seat.Job.peers with
  | exception e -> on_done (Error e)
  | transport, index ->
    assert (index = seat.Job.index);
    let trace = if tracing t then Trace.create () else Trace.disabled () in
    let start = if tracing t then Trace.now trace else 0. in
    Endpoint.run_party_async ~config:(endpoint_config t) ~trace ~reactor:t.reactor
      ~transport ~session:seat.Job.session ~index
      ~on_done:(fun res ->
        (try transport.Transport.close () with _ -> ());
        match res with
        | Error _ as e -> on_done e
        | Ok _outcome ->
          Atomic.incr t.sessions_run;
          if tracing t then begin
            Trace.record_span trace Trace.Session "session" ~start ~stop:(Trace.now trace);
            record_report t
              (Metrics.of_trace ~protocol ~engine:"serve"
                 ~parties:(Array.length seat.Job.session.Spe_mpc.Session.parties)
                 trace)
          end;
          on_done (Ok ()))
      ()

(* Run one stage's seats concurrently (the in-stage sessions are
   mutually independent, like the worker pool's), abort the whole job's
   sessions on the first failure so sibling seats — here and in every
   other daemon — unwind promptly, and surface the root cause.
   [on_done] receives [None] on success, [Some root_cause] otherwise. *)
let run_stage_async t ~protocol ~all_sids seats ~on_done =
  match seats with
  | [] -> on_done None
  | seats ->
    let n = List.length seats in
    let errors = Array.make n None in
    let remaining = ref n in
    let abort_all () = List.iter (fun sid -> Mux.abort t.mux ~sid) all_sids in
    let seat_done i res =
      (match res with
      | Ok () -> ()
      | Error e ->
        errors.(i) <- Some e;
        abort_all ());
      decr remaining;
      if !remaining = 0 then begin
        (* Prefer a root cause over the Closed echo the abort caused. *)
        let root, any =
          Array.fold_left
            (fun (root, any) e ->
              match e with
              | None -> (root, any)
              | Some Transport.Closed -> (root, if any = None then e else any)
              | Some _ ->
                ((if root = None then e else root), if any = None then e else any))
            (None, None) errors
        in
        on_done (match (root, any) with Some _, _ -> root | None, _ -> any)
      end
    in
    List.iteri (fun i seat -> run_seat_async t ~protocol seat ~on_done:(seat_done i)) seats

(* This daemon's seats of one job, stage after stage.  Registers the
   job for [Job_cancel], defers the sids to the reaper on the way out
   (late retransmits can trail a session by up to the linger), and
   reports [None] or the root-cause failure to [on_done]. *)
(* Epoch gauge bookkeeping: the plan's stages carry their epoch
   ([Plan.stage.epoch]), so as each epoch-tagged stage quiesces we can
   advance the stream gauges — a "release"-labelled stage marks the
   epoch as released, and the sessions of the recompute stages count
   toward [epoch_sessions_run]. *)
let note_stage_done t (stage : Spe_core.Plan.stage) =
  match stage.Spe_core.Plan.epoch with
  | None -> ()
  | Some epoch ->
    if stage.Spe_core.Plan.label = "release" then begin
      Atomic.incr t.epochs_released;
      let rec raise_to e =
        let cur = Atomic.get t.last_epoch in
        if e > cur && not (Atomic.compare_and_set t.last_epoch cur e) then raise_to e
      in
      raise_to epoch
    end
    else
      ignore
        (Atomic.fetch_and_add t.epoch_sessions_run
           (Array.length stage.Spe_core.Plan.sessions))

let run_job_async t ~job ~spec planned ~on_done =
  let protocol = pipeline_label spec.Serve_proto.pipeline in
  let per_stage, all_sids = Job.seats ~job ~party:t.config.party planned in
  with_lock t.lock (fun () -> Hashtbl.replace t.jobs job all_sids);
  let conclude res =
    with_lock t.lock (fun () -> Hashtbl.remove t.jobs job);
    with_lock t.reap_lock (fun () ->
        Queue.push (Unix.gettimeofday () +. (2. *. t.config.linger), all_sids) t.reap);
    on_done res
  in
  let rec stages = function
    | [] ->
      (if spec.Serve_proto.pipeline = Serve_proto.Rank then begin
         Atomic.incr t.rank_jobs_completed;
         ignore
           (Atomic.fetch_and_add t.rank_iterations_run
              (if spec.Serve_proto.rank_degree then 1 else spec.Serve_proto.iterations))
       end);
      conclude None
    | (plan_stage, seats) :: rest ->
      run_stage_async t ~protocol ~all_sids seats ~on_done:(function
        | None ->
          note_stage_done t plan_stage;
          stages rest
        | Some _ as failure -> conclude failure)
  in
  stages (List.combine (Job.stages planned) per_stage)

let reap_finished t =
  let now = Unix.gettimeofday () in
  let expired =
    with_lock t.reap_lock (fun () ->
        let acc = ref [] in
        let rec go () =
          match Queue.peek_opt t.reap with
          | Some (when_, sids) when when_ <= now ->
            ignore (Queue.pop t.reap);
            acc := sids :: !acc;
            go ()
          | _ -> ()
        in
        go ();
        !acc)
  in
  List.iter (List.iter (fun sid -> Mux.forget t.mux ~sid)) expired

let failure_of_exn = function
  | Endpoint.Round_timeout _ as e ->
    (Serve_proto.Round_timeout, Printexc.to_string e)
  | Transport.Closed -> (Serve_proto.Peer_down, "a peer daemon's connection died")
  | Endpoint.Shard_failed _ as e -> (Serve_proto.Shard_failed, Printexc.to_string e)
  | e -> (Serve_proto.Shard_failed, Printexc.to_string e)

(* --- host side ----------------------------------------------------------- *)

let broadcast t frame =
  let conns =
    with_lock t.lock (fun () ->
        Array.to_list t.peers |> List.filter_map Fun.id)
  in
  List.iter (fun c -> try send c frame with Transport.Closed -> ()) conns

let mesh_complete t =
  let missing = ref [] in
  with_lock t.lock (fun () ->
      for p = 0 to m_of t do
        if p <> t.config.party then
          match t.peers.(p) with
          | Some c when c.alive -> ()
          | _ -> missing := p :: !missing
      done);
  List.rev !missing

(* Wait for the mesh without holding the loop: re-check on a short
   reactor timer until complete or the deadline passes. *)
let await_mesh_async t ~deadline k =
  let rec check () =
    match mesh_complete t with
    | [] -> k (Ok ())
    | missing ->
      if Unix.gettimeofday () >= deadline then
        k
          (Error
             (Printf.sprintf "peer daemon%s %s not connected"
                (if List.length missing > 1 then "s" else "")
                (String.concat ", " (List.map Addr.party_name missing))))
      else ignore (Reactor.at t.reactor (Unix.gettimeofday () +. 0.02) check)
  in
  check ()

let reply_to client ~job reply =
  try send client (Serve_proto.Job_result { job; reply }) with Transport.Closed -> ()

(* The host's job pump: claim queued jobs while active slots are free
   and launch each as a task chain on the loop.  Runs on the loop
   thread; re-entered from every job conclusion and from a post after
   every accepted submission — the reactor replaces the fixed pool of
   [max_sessions] worker threads with this one loop. *)
let rec pump t =
  match Scheduler.take_opt t.scheduler with
  | None -> ()
  | Some job ->
    start_host_job t job;
    pump t

and start_host_job t { client; client_job; spec } =
  reap_finished t;
  let conclude () =
    Scheduler.finish t.scheduler;
    pump t
  in
  let fail kind detail =
    Atomic.incr t.jobs_failed;
    reply_to client ~job:client_job (Serve_proto.Failed { kind; detail });
    conclude ()
  in
  match Job.validate spec t.workload with
  | Error detail -> fail Serve_proto.Rejected detail
  | Ok () ->
    await_mesh_async t
      ~deadline:(Unix.gettimeofday () +. Float.min 10. t.config.round_timeout)
      (function
        | Error detail -> fail Serve_proto.Peer_down detail
        | Ok () -> (
          let g = Atomic.fetch_and_add t.next_job 1 in
          match
            broadcast t (Serve_proto.Job_submit { job = g; spec });
            Job.build spec t.workload
          with
          | exception e ->
            broadcast t (Serve_proto.Job_cancel { job = g });
            let kind, detail = failure_of_exn e in
            fail kind detail
          | planned ->
            run_job_async t ~job:g ~spec planned ~on_done:(function
              | None -> (
                match Job.reply_of planned with
                | reply ->
                  Atomic.incr t.jobs_completed;
                  reply_to client ~job:client_job reply;
                  conclude ()
                | exception e ->
                  broadcast t (Serve_proto.Job_cancel { job = g });
                  let kind, detail = failure_of_exn e in
                  fail kind detail)
              | Some e ->
                (* Tear the job down everywhere, then answer typed. *)
                broadcast t (Serve_proto.Job_cancel { job = g });
                let _, all_sids = Job.seats ~job:g ~party:t.config.party planned in
                List.iter (fun sid -> Mux.abort t.mux ~sid) all_sids;
                let kind, detail = failure_of_exn e in
                fail kind detail)))

(* --- provider side ------------------------------------------------------- *)

let start_provider_job t ~job spec =
  Atomic.incr t.active_jobs;
  let conclude () = Atomic.decr t.active_jobs in
  reap_finished t;
  match Job.validate spec t.workload with
  | Error _ ->
    Atomic.incr t.jobs_failed;
    conclude ()
  | Ok () -> (
    match Job.build spec t.workload with
    | exception _ ->
      Atomic.incr t.jobs_failed;
      conclude ()
    | planned ->
      run_job_async t ~job ~spec planned ~on_done:(fun res ->
          (match res with
          | None -> Atomic.incr t.jobs_completed
          | Some _ ->
            (* The coordinator owns the client-facing diagnosis; here
               the job's sessions just need to be dead. *)
            Atomic.incr t.jobs_failed;
            let _, all_sids = Job.seats ~job ~party:t.config.party planned in
            List.iter (fun sid -> Mux.abort t.mux ~sid) all_sids);
          conclude ()))

let cancel_job t ~job =
  let sids = with_lock t.lock (fun () -> Hashtbl.find_opt t.jobs job) in
  match sids with
  | Some sids -> List.iter (fun sid -> Mux.abort t.mux ~sid) sids
  | None ->
    (* The job may not have started here yet; poison its whole sid
       range so a later open fails immediately. *)
    for gidx = 0 to 255 do
      Mux.abort t.mux ~sid:(Job.sid ~job ~gidx)
    done

(* --- shutdown ------------------------------------------------------------ *)

let close_everything t =
  (match t.scrape with Some s -> (try Spe_obs.Scrape.stop s with _ -> ()) | None -> ());
  (match listen_addr t.config with
  | Spe_net.Transport.Socket.Unix_domain path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  let clients = with_lock t.lock (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.clients []) in
  List.iter close_conn clients;
  let peers = with_lock t.lock (fun () -> Array.to_list t.peers |> List.filter_map Fun.id) in
  List.iter close_conn peers

let initiate_shutdown t =
  let first = with_lock t.lock (fun () ->
      if t.stopping then false
      else begin
        t.stopping <- true;
        true
      end)
  in
  if first then
    ignore
      (Thread.create
         (fun () ->
           (* Refuse the queued jobs with a typed reply, drain the
              running ones, then tear the connections down. *)
           let queued = Scheduler.stop t.scheduler in
           List.iter
             (fun { client; client_job; _ } ->
               Atomic.incr t.jobs_failed;
               reply_to client ~job:client_job
                 (Serve_proto.Failed
                    { kind = Serve_proto.Rejected; detail = "daemon shutting down" }))
             queued;
           let deadline = Unix.gettimeofday () +. 60. in
           ignore (Scheduler.drain t.scheduler ~deadline);
           let rec wait_provider () =
             if Atomic.get t.active_jobs > 0 && Unix.gettimeofday () < deadline then begin
               Thread.delay 0.01;
               wait_provider ()
             end
           in
           wait_provider ();
           close_everything t;
           with_lock t.lock (fun () -> t.stopped <- true);
           (* The loop may be parked with nothing left to do; a no-op
              post wakes it to observe [stopped] and exit. *)
           Reactor.post t.reactor ignore)
         ())

(* --- connection plumbing -------------------------------------------------- *)

let attach_peer t ~peer conn =
  let old =
    with_lock t.lock (fun () ->
        let old = t.peers.(peer) in
        t.peers.(peer) <- Some conn;
        old)
  in
  (match old with Some c -> close_conn c | None -> ());
  Mux.set_writer t.mux ~peer (fun ~sid body ->
      send conn (Serve_proto.Session_frame { sid; body }))

let peer_reader t ~peer conn () =
  let rec loop () =
    match (try Serve_proto.read conn.fd with _ -> None) with
    | None ->
      close_conn conn;
      (* Only fail the mux if this connection is still the current one
         (a reconnect may have replaced it already). *)
      let current = with_lock t.lock (fun () -> t.peers.(peer) == Some conn) in
      if current then begin
        with_lock t.lock (fun () -> t.peers.(peer) <- None);
        Mux.fail_peer t.mux ~peer
      end
    | Some frame ->
      (match frame with
      | Serve_proto.Session_frame { sid; body } -> Mux.deliver t.mux ~sid body
      | Serve_proto.Job_submit { job; spec } ->
        if t.config.party <> 0 then
          Reactor.post t.reactor (fun () -> start_provider_job t ~job spec)
      | Serve_proto.Job_cancel { job } -> cancel_job t ~job
      | Serve_proto.Shutdown -> initiate_shutdown t
      | Serve_proto.Hello _ | Serve_proto.Job_result _ | Serve_proto.Busy _ -> ());
      loop ()
  in
  loop ()

let client_reader t ~id conn () =
  let rec loop () =
    match (try Serve_proto.read conn.fd with _ -> None) with
    | None ->
      close_conn conn;
      with_lock t.lock (fun () -> Hashtbl.remove t.clients id)
    | Some frame ->
      (match frame with
      | Serve_proto.Job_submit { job; spec } ->
        if t.config.party <> 0 then
          reply_to conn ~job
            (Serve_proto.Failed
               {
                 kind = Serve_proto.Rejected;
                 detail = "only the host daemon accepts jobs";
               })
        else begin
          match Scheduler.submit t.scheduler { client = conn; client_job = job; spec } with
          | Scheduler.Accepted -> Reactor.post t.reactor (fun () -> pump t)
          | Scheduler.Busy { queued; max_queue } -> (
            try send conn (Serve_proto.Busy { job; queued; max_queue })
            with Transport.Closed -> ())
        end
      | Serve_proto.Shutdown -> initiate_shutdown t
      | Serve_proto.Session_frame _ | Serve_proto.Hello _ | Serve_proto.Job_result _
      | Serve_proto.Busy _ | Serve_proto.Job_cancel _ -> ());
      loop ()
  in
  loop ()

let my_hello t = Serve_proto.Hello
    { role = Serve_proto.Party t.config.party; version = Serve_proto.version;
      workload = t.wdigest }

let accept_loop t () =
  (* Closing an fd does not wake a thread blocked in accept(2), so poll
     with select and re-check the stopping flag between waits. *)
  let rec await_readable () =
    if with_lock t.lock (fun () -> t.stopping) then None
    else
      match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> await_readable ()
      | _ -> Some ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> await_readable ()
      | exception Unix.Unix_error _ -> None
  in
  let rec loop () =
    match await_readable () with
    | None -> ()
    | Some () ->
    match Unix.accept t.listener with
    | fd, _ ->
      (let conn = conn_of fd in
       match (try Serve_proto.read fd with _ -> None) with
       | Some (Serve_proto.Hello { role; version; workload }) ->
         if version <> Serve_proto.version then close_conn conn
         else (
           match role with
           | Serve_proto.Party peer ->
             if peer < 0 || peer > m_of t || peer = t.config.party
                || workload <> t.wdigest
             then close_conn conn
             else begin
               Atomic.incr t.hellos_received;
               (try
                  send conn (my_hello t);
                  Atomic.incr t.hellos_sent;
                  attach_peer t ~peer conn;
                  ignore (Thread.create (peer_reader t ~peer conn) ())
                with Transport.Closed -> close_conn conn)
             end
           | Serve_proto.Client ->
             Atomic.incr t.clients_accepted;
             (try
                send conn (my_hello t);
                let id = with_lock t.lock (fun () ->
                    let id = t.next_client in
                    t.next_client <- id + 1;
                    Hashtbl.replace t.clients id conn;
                    id)
                in
                ignore (Thread.create (client_reader t ~id conn) ())
              with Transport.Closed -> close_conn conn))
       | _ -> close_conn conn);
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ ->
      if not (with_lock t.lock (fun () -> t.stopping)) then loop ()
    | exception _ -> ()
  in
  loop ()

let dial_peer t ~peer =
  let addr = Addr.sockaddr t.config.roster.(peer) in
  let deadline = Unix.gettimeofday () +. t.config.dial_timeout in
  let rec attempt () =
    let domain =
      match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd addr;
      let conn = conn_of fd in
      send conn (my_hello t);
      Atomic.incr t.hellos_sent;
      match Serve_proto.read fd with
      | Some (Serve_proto.Hello { role = Serve_proto.Party p; version; workload })
        when p = peer && version = Serve_proto.version ->
        if workload <> t.wdigest then `Mismatch
        else begin
          Atomic.incr t.hellos_received;
          attach_peer t ~peer conn;
          ignore (Thread.create (peer_reader t ~peer conn) ());
          `Done
        end
      | _ -> `Retry
    with
    | `Done -> Ok ()
    | `Mismatch ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "workload mismatch with %s (%s): daemons must load identical \
                         --graph/--log inputs"
           (Addr.party_name peer)
           (Addr.to_string t.config.roster.(peer)))
    | `Retry | (exception Unix.Unix_error _) | (exception Failure _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () >= deadline then
        Error
          (Printf.sprintf "cannot reach %s at %s" (Addr.party_name peer)
             (Addr.to_string t.config.roster.(peer)))
      else if with_lock t.lock (fun () -> t.stopping) then Error "shutting down"
      else begin
        Thread.delay 0.1;
        attempt ()
      end
  in
  attempt ()

(* --- lifecycle ------------------------------------------------------------ *)

let start config workload =
  if Array.length config.roster < 3 then
    invalid_arg "Daemon.start: roster needs H and at least two providers";
  if config.party < 0 || config.party > Array.length config.roster - 1 then
    invalid_arg "Daemon.start: party outside the roster";
  if Array.length workload.Job.logs <> Array.length config.roster - 1 then
    invalid_arg "Daemon.start: one provider log per roster provider";
  Lazy.force
    (lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore));
  let addr = listen_addr config in
  (match addr with
  | Spe_net.Transport.Socket.Unix_domain path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let sockaddr = Addr.sockaddr addr in
  let domain =
    match sockaddr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Spe_net.Transport.Socket.Tcp _ -> Unix.setsockopt listener Unix.SO_REUSEADDR true
  | _ -> ());
  (try
     Unix.bind listener sockaddr;
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      config;
      workload;
      wdigest = Job.digest workload;
      mux = Mux.create ~self:config.party;
      reactor = Reactor.create ();
      lock = Mutex.create ();
      peers = Array.make (Array.length config.roster) None;
      clients = Hashtbl.create 8;
      next_client = 0;
      scheduler = Scheduler.create ~max_queue:config.max_queue ~max_active:config.max_sessions ();
      next_job = Atomic.make 1;
      jobs = Hashtbl.create 16;
      listener;
      scrape = None;
      stopping = false;
      stopped = false;
      loop = ref None;
      acceptor = ref None;
      hellos_sent = Atomic.make 0;
      hellos_received = Atomic.make 0;
      clients_accepted = Atomic.make 0;
      active_jobs = Atomic.make 0;
      jobs_completed = Atomic.make 0;
      jobs_failed = Atomic.make 0;
      sessions_run = Atomic.make 0;
      epochs_released = Atomic.make 0;
      epoch_sessions_run = Atomic.make 0;
      last_epoch = Atomic.make (-1);
      rank_jobs_completed = Atomic.make 0;
      rank_iterations_run = Atomic.make 0;
      reports_lock = Mutex.create ();
      reports = [];
      reap_lock = Mutex.create ();
      reap = Queue.create ();
    }
  in
  t.acceptor := Some (Thread.create (accept_loop t) ());
  (* The loop thread: every daemon needs one — the host pumps jobs on
     it, providers run their seats on it.  A task that escapes with an
     exception must not kill the daemon (the blocking host caught
     per-job exceptions the same way), so re-enter the loop until
     shutdown. *)
  t.loop :=
    Some
      (Thread.create
         (fun () ->
           let until () = with_lock t.lock (fun () -> t.stopped) in
           let rec go () =
             match Reactor.run t.reactor ~until with
             | () -> ()
             | exception _ -> if not (until ()) then go ()
           in
           go ();
           Reactor.destroy t.reactor)
         ());
  (* Establish the mesh: dial every lower id (they dialed us if higher).
     Dial failures are fatal at start — a daemon that can never reach
     its peers should say so, not limp. *)
  let rec dial p =
    if p < config.party then (
      match dial_peer t ~peer:p with
      | Ok () -> dial (p + 1)
      | Error msg ->
        initiate_shutdown t;
        failwith msg)
  in
  dial 0;
  (match config.metrics_addr with
  | None -> ()
  | Some maddr -> t.scrape <- Some (Spe_obs.Scrape.start ~addr:(Addr.sockaddr maddr)
                                      ~render:(render_scrape t)));
  t

let stop t = initiate_shutdown t

let rec wait t =
  if with_lock t.lock (fun () -> t.stopped) then begin
    (match !(t.acceptor) with Some th -> (try Thread.join th with _ -> ()) | None -> ());
    match !(t.loop) with Some th -> (try Thread.join th with _ -> ()) | None -> ()
  end
  else begin
    Thread.delay 0.02;
    wait t
  end

let run config workload =
  let t = start config workload in
  wait t

(* Fork a child process running one daemon — what the chaos harness and
   the burst bench use to get real OS-level party isolation.  The child
   never returns: [Unix._exit] skips every at_exit hook the parent
   registered (alcotest, temp-file cleanup), which must not fire in
   both processes. *)
let spawn config workload =
  match Unix.fork () with
  | 0 ->
    let code =
      try
        run config workload;
        0
      with e ->
        prerr_endline
          (Printf.sprintf "spe-serve[%s]: %s" (Addr.party_name config.party)
             (Printexc.to_string e));
        1
    in
    Unix._exit code
  | pid -> pid

(* Test/gauge access. *)
let gauges t =
  let sched = Scheduler.stats t.scheduler in
  [
    ("queue_depth", Scheduler.depth t.scheduler);
    ("active_jobs", Scheduler.active t.scheduler + Atomic.get t.active_jobs);
    ("active_sessions", Mux.open_sessions t.mux);
    ("jobs_submitted", sched.Scheduler.submitted);
    ("jobs_completed", Atomic.get t.jobs_completed);
    ("jobs_failed", Atomic.get t.jobs_failed);
    ("busy_rejected", sched.Scheduler.rejected);
    ("hellos_sent", Atomic.get t.hellos_sent);
    ("hellos_received", Atomic.get t.hellos_received);
    ("clients_accepted", Atomic.get t.clients_accepted);
    ("sessions_run", Atomic.get t.sessions_run);
    ("epochs_released", Atomic.get t.epochs_released);
    ("epoch_sessions_run", Atomic.get t.epoch_sessions_run);
    ("last_epoch", Atomic.get t.last_epoch);
    ("rank_jobs_completed", Atomic.get t.rank_jobs_completed);
    ("rank_iterations_run", Atomic.get t.rank_iterations_run);
    ("reactor_iterations", Reactor.iterations t.reactor);
    ("reactor_timer_fires", Reactor.timer_fires t.reactor);
    ("reactor_ready_depth", Reactor.ready_depth t.reactor);
    ("reactor_pending_timers", Reactor.pending_timers t.reactor);
  ]

let report t =
  match with_lock t.reports_lock (fun () -> t.reports) with
  | [] -> None
  | reports -> Some (Metrics.merge (List.rev reports))
