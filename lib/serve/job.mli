(** Turning a wire {!Serve_proto.spec} into per-daemon work.

    Every daemon rebuilds the {e identical} plan from [(spec,
    workload)] — the sharded pipelines draw all joint randomness at
    plan-build time in a deterministic order — and executes only its
    own party's {!seat}s over the connection mesh.  The merged result
    is read at H exactly as the in-process pool reads it. *)

type workload = { graph : Spe_graph.Digraph.t; logs : Spe_actionlog.Log.t array }

val digest : workload -> int
(** Deterministic content digest (FNV-1a over the canonical graph and
    log record streams) carried in the mesh {!Serve_proto.t.Hello}:
    daemons loaded with different workloads could never agree on a
    plan, so they refuse each other at connection time. *)

type planned =
  | Links_plan of Spe_core.Protocol4.result Spe_core.Plan.t
  | Scores_plan of Spe_core.Driver_distributed.scores Spe_core.Plan.t
  | Stream_plan of { delta : Spe_core.Delta.t; stages : Spe_core.Plan.stage list }
      (** All epochs of a stream job, built ahead of execution: every
          daemon replays the identical seeded ingestion (sources are
          pure functions of the spec seed and shared workload), feeds
          windowed accumulators, and concatenates the per-epoch
          [Spe_core.Delta] stages — epoch inputs are eager snapshots,
          so building ahead is sound.  The reply is read from the
          instance's accumulated releases. *)
  | Rank_plan of {
      fbits : int;
      plan : Spe_rank.Protocol_rank.result Spe_core.Plan.t;
    }  (** The rank pipeline, with its fixed-point precision carried
          along so the {!Serve_proto.reply.Rank_summary} can tell
          clients how to rescale. *)

val validate : Serve_proto.spec -> workload -> (unit, string) result
(** Cheap spec sanity before any plan is built; the error is the typed
    rejection detail. *)

val build : Serve_proto.spec -> workload -> planned
(** Build the full plan — identical in every daemon. *)

val stages : planned -> Spe_core.Plan.stage list

val reply_of : planned -> Serve_proto.reply
(** Read the merged result (host only, after every stage quiesced). *)

val daemon_of_party : Spe_mpc.Wire.party -> int
(** Host is daemon 0, provider [k] is daemon [k + 1] — the frame
    codec's party order. *)

val sid_stride : int
(** Session-id space per job; [sid = job * stride + session index]. *)

val sid : job:int -> gidx:int -> int

type seat = {
  sid : int;
  session : unit Spe_mpc.Session.t;
  peers : int array;  (** Daemon id by group index. *)
  index : int;  (** This daemon's group index. *)
}

val seats : job:int -> party:int -> planned -> seat list list * int list
(** [seats ~job ~party planned] enumerates the plan's sessions in
    (stage, index) order — the order every daemon agrees on — and
    returns this daemon's seats grouped by stage, plus every sid of the
    job (for cancellation, including sessions this daemon is not seated
    in). *)
