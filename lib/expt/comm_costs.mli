(** The Table 1 / Table 2 experiments as typed functions: run a
    protocol on a workload, read the wire, rebuild the analytic model
    from the measured parameters, and report both.

    The bench prints these rows; the test suite asserts [ok] across the
    sweeps, so the headline "analytic = measured" claim of
    EXPERIMENTS.md is enforced by [dune runtest], not just eyeballed. *)

type row = {
  n : int;
  edges : int;
  q : int;  (** Published pair count. *)
  m : int;  (** Providers. *)
  actions : int;  (** Total actions (Table 2 only; 0 otherwise). *)
  measured : Spe_mpc.Wire.stats;
  model : Spe_cost.Model.t;
  ok : bool;  (** Model totals match the wire. *)
}

val table1_row : seed:int -> n:int -> edges:int -> m:int -> row
(** One Protocol 4 run (h = 3, S = 2^40, c = 2, Eq. 1) against its
    Table 1 model. *)

val table1_sweep : unit -> row list
(** The EXPERIMENTS.md sweep: (100, 400) x m in {3, 5, 10} plus
    (1000, 4000, 5). *)

val table2_row :
  ?pack_slots:int ->
  seed:int ->
  n:int ->
  edges:int ->
  m:int ->
  actions:int ->
  key_bits:int ->
  unit ->
  row
(** One Protocol 6 run against its Table 2 model; [z] and the key size
    are read back from the wire so the model uses the measured
    constants.  [?pack_slots] (default 1, i.e. unpacked) forwards to
    {!Spe_core.Protocol6.config} and switches the model to the
    [chunks_per_action] closed form. *)

val table2_sweep : unit -> row list
(** The EXPERIMENTS.md sweep: (60, 150, 10 actions, RSA-256) at
    m in {3, 5}, plus a fully packed m = 3 row exercising the
    [chunks_per_action] generalisation. *)
