module Wire = Spe_mpc.Wire
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Protocol4 = Spe_core.Protocol4
module Protocol6 = Spe_core.Protocol6
module Driver = Spe_core.Driver
module Model = Spe_cost.Model

type row = {
  n : int;
  edges : int;
  q : int;
  m : int;
  actions : int;
  measured : Wire.stats;
  model : Model.t;
  ok : bool;
}

let table1_row ~seed ~n ~edges ~m =
  let w = Workloads.erdos_renyi ~seed ~n ~edges ~actions:30 () in
  let logs = Workloads.split_exclusive w ~m in
  let config = Protocol4.default_config ~h:3 in
  let r = Driver.link_strengths_exclusive w.Workloads.rng ~graph:w.Workloads.graph ~logs config in
  let q = Array.length r.Driver.detail.Protocol4.pairs in
  let model =
    Model.table1 ~n ~q ~m
      ~modulus_bits:(Wire.bits_for_int_mod config.Protocol4.modulus)
      ~node_bits:(Wire.bits_for_int_mod (max 2 n))
      ~counters:(n + q)
  in
  {
    n;
    edges = Digraph.edge_count w.Workloads.graph;
    q;
    m;
    actions = 0;
    measured = r.Driver.wire;
    model;
    ok = Model.matches_wire model r.Driver.wire;
  }

let table1_sweep () =
  List.map
    (fun (n, edges, m) -> table1_row ~seed:(1000 + n + m) ~n ~edges ~m)
    [ (100, 400, 3); (100, 400, 5); (100, 400, 10); (1000, 4000, 5) ]

let table2_row ?(pack_slots = 1) ~seed ~n ~edges ~m ~actions ~key_bits () =
  let w = Workloads.erdos_renyi ~seed ~n ~edges ~actions () in
  let logs = Workloads.split_exclusive w ~m in
  let wire = Wire.create () in
  let config = { Protocol6.default_config with Protocol6.key_bits; pack_slots } in
  let r = Protocol6.run w.Workloads.rng ~wire ~graph:w.Workloads.graph ~logs config in
  let measured = Wire.stats wire in
  let q = Array.length r.Protocol6.pairs in
  let actions_per_provider = Array.map (fun l -> List.length (Log.actions_present l)) logs in
  let total_actions = Array.fold_left ( + ) 0 actions_per_provider in
  (* Rebuild the packing factor exactly as Protocol6.run derives it, so
     the model's chunk count is the analytic one, not a read-back. *)
  let period =
    1 + Array.fold_left (fun acc l -> max acc (Log.max_time l)) 0 logs
  in
  let delta_bits = Wire.bits_for_int_mod (max 2 (period + 1)) in
  let per = Protocol6.slots_per_plaintext config ~delta_bits in
  let chunks_per_action = (q + per - 1) / per in
  (* Read the drawn key and ciphertext sizes back from the wire so the
     model is built from the measured constants. *)
  let key_msg = List.find (fun msg -> msg.Wire.round = 2) (Wire.messages wire) in
  let forward = List.find (fun msg -> msg.Wire.round = 4) (Wire.messages wire) in
  let z = forward.Wire.bits / (chunks_per_action * total_actions) in
  let model =
    Model.table2 ~chunks_per_action ~q ~m
      ~node_bits:(Wire.bits_for_int_mod (max 2 n))
      ~key_bits:key_msg.Wire.bits ~ciphertext_bits:z ~actions_per_provider ()
  in
  {
    n;
    edges = Digraph.edge_count w.Workloads.graph;
    q;
    m;
    actions = total_actions;
    measured;
    model;
    ok = Model.matches_wire model measured;
  }

let table2_sweep () =
  List.map
    (fun m -> table2_row ~seed:(2000 + 60 + m) ~n:60 ~edges:150 ~m ~actions:10 ~key_bits:256 ())
    [ 3; 5 ]
  (* Fully packed variant: the chunks_per_action generalisation of the
     Table 2 closed form must match the wire too. *)
  @ [ table2_row ~pack_slots:Spe_mpc.Pack.max_packed_bits ~seed:2063 ~n:60 ~edges:150 ~m:3
        ~actions:10 ~key_bits:256 () ]
