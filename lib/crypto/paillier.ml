module Nat = Spe_bignum.Nat
module Bigint = Spe_bignum.Bigint
module Montgomery = Spe_bignum.Montgomery
module Fixed_base = Spe_bignum.Fixed_base

(* CRT decryption constants: exponentiate mod p^2 and q^2 instead of
   n^2, then recombine.  hp/hq fold the per-prime L-inverse (the mu of
   the half-size subproblem) into the combine step. *)
type crt = {
  p : Nat.t;
  q : Nat.t;
  p_squared : Nat.t;
  q_squared : Nat.t;
  hp : Nat.t; (* ((p - 1) * q)^-1 mod p *)
  hq : Nat.t; (* ((q - 1) * p)^-1 mod q *)
  qinv : Nat.t; (* q^-1 mod p, Garner's constant *)
}

type public = { n : Nat.t; n_squared : Nat.t }

type secret = {
  n : Nat.t;
  n_squared : Nat.t;
  lambda : Nat.t;
  mu : Nat.t;
  crt : crt option;
}

type keypair = { public : public; secret : secret }

exception Key_too_small = Rsa.Key_too_small

(* A b-bit modulus n has n >= 2^(b-1): plaintexts of at most b - 1
   bits are strictly below n and round-trip without wrapping. *)
let check_plain_bits ~key_bits = function
  | None -> ()
  | Some plain_bits ->
    if plain_bits < 1 then invalid_arg "Paillier.generate: plain_bits must be positive";
    if plain_bits > key_bits - 1 then raise (Key_too_small { key_bits; plain_bits })

(* L(x) = (x - 1) / n, defined on x = 1 mod n. *)
let ell ~n x = Nat.div (Nat.pred x) n

let generate ?plain_bits st ~bits =
  if bits < 16 then invalid_arg "Paillier.generate: modulus must be at least 16 bits";
  check_plain_bits ~key_bits:bits plain_bits;
  let half = bits / 2 in
  let rec keys () =
    let p = Prime.random_prime st ~bits:half in
    let rec draw_q () =
      let q = Prime.random_prime st ~bits:(bits - half) in
      if Nat.equal p q then draw_q () else q
    in
    let q = draw_q () in
    let n = Nat.mul p q in
    let lambda = Nat.mul (Nat.pred p) (Nat.pred q) in
    if not (Nat.is_one (Nat.gcd n lambda)) then keys ()
    else begin
      let n_squared = Nat.mul n n in
      (* g = n + 1: mu = (L(g^lambda mod n^2))^-1 mod n = lambda^-1 mod n. *)
      match Bigint.mod_inv (Bigint.of_nat lambda) (Bigint.of_nat n) with
      | None -> keys ()
      | Some mu ->
        let mu = Bigint.to_nat mu in
        let inv_mod a m =
          match Bigint.mod_inv (Bigint.of_nat (Nat.rem a m)) (Bigint.of_nat m) with
          | Some x -> Some (Bigint.to_nat x)
          | None -> None
        in
        (* With g = n + 1, c^(p-1) = 1 + m*(p-1)*n mod p^2, so
           L_p(c^(p-1)) = m*(p-1)*q mod p; hp inverts that factor. *)
        let crt =
          match
            ( inv_mod (Nat.mul (Nat.pred p) q) p,
              inv_mod (Nat.mul (Nat.pred q) p) q,
              inv_mod q p )
          with
          | Some hp, Some hq, Some qinv ->
            Some
              {
                p;
                q;
                p_squared = Nat.mul p p;
                q_squared = Nat.mul q q;
                hp;
                hq;
                qinv;
              }
          | _ -> None (* gcd(p, q) = 1 makes every inverse exist *)
        in
        { public = { n; n_squared }; secret = { n; n_squared; lambda; mu; crt } }
    end
  in
  keys ()

(* g^m = (1 + n)^m = 1 + m*n  (mod n^2). *)
let g_pow_m (pk : public) m =
  if Nat.compare m pk.n >= 0 then invalid_arg "Paillier.encrypt: plaintext exceeds modulus";
  Nat.rem (Nat.succ (Nat.mul m pk.n)) pk.n_squared

(* r uniform in [1, n) with gcd(r, n) = 1 (all but negligibly many). *)
let draw_unit st (pk : public) =
  let rec draw () =
    let r = Nat.random_below st pk.n in
    if Nat.is_zero r || not (Nat.is_one (Nat.gcd r pk.n)) then draw () else r
  in
  draw ()

let encryptor ?(fixed_base = true) st (pk : public) =
  let ctx = Montgomery.create pk.n_squared in
  if not fixed_base then fun m ->
    let g_m = g_pow_m pk m in
    let r = draw_unit st pk in
    Nat.rem (Nat.mul g_m (Montgomery.pow ctx ~base:r ~exp:pk.n)) pk.n_squared
  else begin
    (* Per-key fixed base: h = r0^n is an n-th residue, so h^s =
       (r0^s)^n is valid fresh randomness for uniform s — the window
       table turns every later r^n into ~|n|/w multiplications with no
       squarings. *)
    let r0 = draw_unit st pk in
    let h = Montgomery.pow ctx ~base:r0 ~exp:pk.n in
    let table = Fixed_base.create ctx ~base:h ~max_exp_bits:(Nat.bit_length pk.n) in
    fun m ->
      let g_m = g_pow_m pk m in
      let rec draw_s () =
        let s = Nat.random_below st pk.n in
        if Nat.is_zero s then draw_s () else s
      in
      Nat.rem (Nat.mul g_m (Fixed_base.pow table (draw_s ()))) pk.n_squared
  end

let encrypt st (pk : public) m = encryptor ~fixed_base:false st pk m

(* Garner recombination: m = mq + q * (qinv * (mp - mq) mod p). *)
let crt_combine ~(crt : crt) ~mp ~mq =
  let diff =
    if Nat.compare mp mq >= 0 then Nat.sub mp mq
    else Nat.sub crt.p (Nat.rem (Nat.sub mq mp) crt.p)
  in
  let h = Nat.rem (Nat.mul crt.qinv diff) crt.p in
  Nat.add mq (Nat.mul h crt.q)

let decryptor ?(crt = true) (sk : secret) =
  match if crt then sk.crt else None with
  | None ->
    (* n^2 is odd: Montgomery applies. *)
    let ctx = Montgomery.create sk.n_squared in
    fun c ->
      let x = Montgomery.pow ctx ~base:c ~exp:sk.lambda in
      Nat.rem (Nat.mul (ell ~n:sk.n x) sk.mu) sk.n
  | Some crt ->
    (* Half-size split: exponent p - 1 instead of lambda (a quarter of
       the bits) over p^2 instead of n^2 (a quarter of the CIOS work),
       and symmetrically for q.  See PERFORMANCE.md for the count. *)
    let ctx_p = Montgomery.create crt.p_squared in
    let ctx_q = Montgomery.create crt.q_squared in
    fun c ->
      let xp = Montgomery.pow ctx_p ~base:(Nat.rem c crt.p_squared) ~exp:(Nat.pred crt.p) in
      let xq = Montgomery.pow ctx_q ~base:(Nat.rem c crt.q_squared) ~exp:(Nat.pred crt.q) in
      let mp = Nat.rem (Nat.mul (ell ~n:crt.p xp) crt.hp) crt.p in
      let mq = Nat.rem (Nat.mul (ell ~n:crt.q xq) crt.hq) crt.q in
      crt_combine ~crt ~mp ~mq

let decrypt (sk : secret) c = decryptor sk c

let add (pk : public) c1 c2 = Nat.rem (Nat.mul c1 c2) pk.n_squared

let mul_plain (pk : public) c k =
  Montgomery.pow (Montgomery.create pk.n_squared) ~base:c ~exp:k

let ciphertext_bits (pk : public) = Nat.bit_length pk.n_squared
