(** Textbook RSA over {!Spe_bignum}.

    Protocol 6 has the host [H] publish a public key; providers encrypt
    their per-action time-difference vectors under it and only [H] can
    decrypt (Steps 3-11).  The paper quotes a recommended ciphertext
    size of z = 1024 bits for RSA, which is the constant that drives
    Table 2's message sizes.

    This is deterministic ("textbook") RSA — no OAEP padding.  In the
    protocol each plaintext is already blinded inside a batched message
    and the semi-honest threat model only requires that parties without
    the private key learn nothing they could not compute; for a
    hardened deployment, swap in {!Paillier} (probabilistic) via the
    shared {!Cipher} interface.

    Decryption uses the Chinese-remainder split when the key carries
    its prime factorisation (every key from {!generate} does): two
    half-size Montgomery exponentiations mod [p] and [q], recombined
    with Garner's formula — roughly 4x cheaper than one full-size
    exponentiation.  PERFORMANCE.md derives the operation counts. *)

type crt = {
  p : Spe_bignum.Nat.t;
  q : Spe_bignum.Nat.t;
  dp : Spe_bignum.Nat.t;  (** [d mod (p - 1)]. *)
  dq : Spe_bignum.Nat.t;  (** [d mod (q - 1)]. *)
  qinv : Spe_bignum.Nat.t;  (** [q^-1 mod p], Garner's constant. *)
}
(** The precomputed CRT decryption constants. *)

type public = { n : Spe_bignum.Nat.t; e : Spe_bignum.Nat.t }
(** Modulus and public exponent. *)

type secret = { n : Spe_bignum.Nat.t; d : Spe_bignum.Nat.t; crt : crt option }
(** Modulus and private exponent, plus the CRT constants when the
    factorisation is known ([None] falls back to a single full-size
    exponentiation). *)

type keypair = { public : public; secret : secret }

exception Key_too_small of { key_bits : int; plain_bits : int }
(** Raised by {!generate} when the requested modulus cannot hold the
    configured plaintext width without wrapping (see [?plain_bits]). *)

val generate : ?e:int -> ?plain_bits:int -> Spe_rng.State.t -> bits:int -> keypair
(** [generate st ~bits] draws two [bits/2]-bit primes and returns a
    keypair with a [bits]-sized modulus.  Default exponent 65537; the
    primes are re-drawn until coprimality with [e] holds.  [bits] must
    be at least 16.

    [?plain_bits] declares the widest plaintext the caller intends to
    encrypt (e.g. a packed counter batch); since an RSA plaintext must
    be below [n], the call raises {!Key_too_small} unless
    [plain_bits <= bits - 1] — a typed error at key-generation time
    instead of silently wrapping ciphertexts later. *)

val encrypt : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [encrypt pk m] is [m^e mod n].  Raises [Invalid_argument] if
    [m >= n]. *)

val encryptor : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [encryptor pk] is {!encrypt}[ pk] with the Montgomery context
    hoisted out of the per-call path: building a context costs a full
    Knuth-D division (for [R^2 mod n]), so callers encrypting many
    values under one key should apply [encryptor] once and reuse the
    returned closure. *)

val decrypt : secret -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [decrypt sk c] is [c^d mod n], via the CRT split when [sk.crt] is
    present. *)

val decryptor : ?crt:bool -> secret -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [decryptor sk] is {!decrypt}[ sk] with the Montgomery contexts
    hoisted out of the per-call path.  [~crt:false] forces the
    single full-size exponentiation even when the CRT constants are
    available — the switch behind the bench's CRT ablation. *)

val ciphertext_bits : public -> int
(** Size in bits of a ciphertext under this key — the paper's [z]. *)

val public_key_bits : public -> int
(** Serialized public-key size in bits (|n| + |e|) — the paper's
    [|kappa|]. *)
