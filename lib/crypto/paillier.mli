(** The Paillier cryptosystem: probabilistic, additively homomorphic
    public-key encryption.

    The paper's Protocol 6 only needs plain public-key encryption (RSA
    suffices), but its related-work section points at homomorphic
    schemes as the tool for field-style secure division; Paillier is
    included both as the probabilistic alternative to textbook RSA and
    as the substrate for the homomorphic-aggregation extension
    exercised in the examples: providers can sum encrypted counters
    under the host's key without decrypting.

    Keys use the standard simplification [g = n + 1], so encryption is
    [c = (1 + m*n) * r^n mod n^2] and decryption uses
    [L(x) = (x - 1) / n] with [L(c^lambda mod n^2) * mu mod n].

    Two hot-path accelerations, both measured in the bench and derived
    in PERFORMANCE.md:
    - {!decryptor} splits decryption over [p^2] and [q^2] (CRT): two
      exponentiations with quarter-length exponents on half-width
      operands, recombined with Garner's formula.
    - {!encryptor} replaces the per-call [r^n] (a fresh-base
      exponentiation) with [h^s] for a per-key n-th residue
      [h = r0^n], evaluated through a {!Spe_bignum.Fixed_base} window
      table — no squarings on the per-encryption path. *)

type crt = {
  p : Spe_bignum.Nat.t;
  q : Spe_bignum.Nat.t;
  p_squared : Spe_bignum.Nat.t;
  q_squared : Spe_bignum.Nat.t;
  hp : Spe_bignum.Nat.t;  (** [((p - 1) * q)^-1 mod p]. *)
  hq : Spe_bignum.Nat.t;  (** [((q - 1) * p)^-1 mod q]. *)
  qinv : Spe_bignum.Nat.t;  (** [q^-1 mod p], Garner's constant. *)
}
(** The precomputed CRT decryption constants. *)

type public = { n : Spe_bignum.Nat.t; n_squared : Spe_bignum.Nat.t }

type secret = {
  n : Spe_bignum.Nat.t;
  n_squared : Spe_bignum.Nat.t;
  lambda : Spe_bignum.Nat.t;
  mu : Spe_bignum.Nat.t;
  crt : crt option;
      (** CRT constants when the factorisation is known ([None] falls
          back to the single full-size exponentiation). *)
}

type keypair = { public : public; secret : secret }

exception Key_too_small of { key_bits : int; plain_bits : int }
(** Raised by {!generate} when the requested modulus cannot hold the
    configured plaintext width without wrapping.  The {e same}
    exception as {!Rsa.Key_too_small} (a rebinding), so callers going
    through the {!Cipher} facade can match one constructor for either
    scheme. *)

val generate : ?plain_bits:int -> Spe_rng.State.t -> bits:int -> keypair
(** [generate st ~bits] builds a keypair with a [bits]-sized modulus
    from two primes of [bits/2] bits each, redrawn until
    [gcd(n, (p-1)(q-1)) = 1] (guaranteed for same-size primes).

    [?plain_bits] declares the widest plaintext the caller intends to
    encrypt (e.g. a packed counter batch); since a Paillier plaintext
    must be below [n], the call raises {!Key_too_small} unless
    [plain_bits <= bits - 1] — a typed error at key-generation time
    instead of silently wrapping ciphertexts later. *)

val encrypt : Spe_rng.State.t -> public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** Probabilistic encryption: fresh randomness per call.  Raises
    [Invalid_argument] if the plaintext is [>= n]. *)

val encryptor :
  ?fixed_base:bool -> Spe_rng.State.t -> public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [encryptor st pk] is a closure encrypting many plaintexts under
    one key, with the Montgomery context hoisted out of the per-call
    path and (by default) the per-key fixed-base window table for the
    randomness: the closure draws [r0] once, sets [h = r0^n mod n^2],
    and each call uses fresh randomness [h^s = (r0^s)^n] for a
    uniformly drawn [s] — a standard n-th-residue re-randomisation
    that preserves the ciphertext distribution.  [~fixed_base:false]
    keeps the textbook per-call [r^n] (the bench's ablation switch).

    Note the closure draws from [st] at {e construction} time when
    [fixed_base] is on ([r0] plus the table build), so the two modes
    consume the RNG stream differently. *)

val decrypt : secret -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [decrypt sk c] recovers the plaintext, via the CRT split when
    [sk.crt] is present. *)

val decryptor : ?crt:bool -> secret -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** [decryptor sk] is {!decrypt}[ sk] with the Montgomery contexts
    hoisted out of the per-call path.  [~crt:false] forces the
    full-size [c^lambda mod n^2] even when the CRT constants are
    available — the switch behind the bench's CRT ablation. *)

val add : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** Homomorphic addition: [decrypt (add pk c1 c2) = m1 + m2 mod n]. *)

val mul_plain : public -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t -> Spe_bignum.Nat.t
(** Homomorphic plaintext multiplication:
    [decrypt (mul_plain pk c k) = k * m mod n]. *)

val ciphertext_bits : public -> int
(** Ciphertexts live modulo [n^2]: twice the modulus size. *)
