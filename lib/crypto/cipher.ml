module Nat = Spe_bignum.Nat

type public = {
  encrypt_int : int -> Nat.t;
  ciphertext_bits : int;
  key_bits : int;
}

type t = { public : public; decrypt_int : Nat.t -> int }

let check_plain m = if m < 0 then invalid_arg "Cipher.encrypt_int: negative plaintext"

let rsa ?plain_bits ?(accel = true) st ~bits =
  let kp = Rsa.generate ?plain_bits st ~bits in
  let encrypt, decrypt =
    if accel then (Rsa.encryptor kp.Rsa.public, Rsa.decryptor kp.Rsa.secret)
    else
      (* The pre-acceleration hot path: a fresh Montgomery context and
         a full-size exponentiation per call (the bench's baseline). *)
      ( (fun m -> Rsa.encrypt kp.Rsa.public m),
        fun c -> Rsa.decryptor ~crt:false kp.Rsa.secret c )
  in
  let encrypt_int m =
    check_plain m;
    encrypt (Nat.of_int m)
  in
  let decrypt_int c = Nat.to_int_exn (decrypt c) in
  {
    public =
      {
        encrypt_int;
        ciphertext_bits = Rsa.ciphertext_bits kp.Rsa.public;
        key_bits = Rsa.public_key_bits kp.Rsa.public;
      };
    decrypt_int;
  }

let paillier ?plain_bits ?(accel = true) st ~bits =
  let kp = Paillier.generate ?plain_bits st ~bits in
  let enc_rng = Spe_rng.State.split st in
  let encrypt, decrypt =
    if accel then
      ( Paillier.encryptor ~fixed_base:true enc_rng kp.Paillier.public,
        Paillier.decryptor kp.Paillier.secret )
    else
      ( (fun m -> Paillier.encrypt enc_rng kp.Paillier.public m),
        fun c -> Paillier.decryptor ~crt:false kp.Paillier.secret c )
  in
  let encrypt_int m =
    check_plain m;
    encrypt (Nat.of_int m)
  in
  let decrypt_int c = Nat.to_int_exn (decrypt c) in
  {
    public =
      {
        encrypt_int;
        ciphertext_bits = Paillier.ciphertext_bits kp.Paillier.public;
        key_bits = Nat.bit_length kp.Paillier.public.Paillier.n;
      };
    decrypt_int;
  }
