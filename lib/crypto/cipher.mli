(** A uniform interface over the public-key schemes, as used by
    Protocol 6.

    The protocol encrypts small non-negative integers (time-difference
    labels, or batches of them packed into one plaintext).  This module
    packages a scheme as a pair of closures plus the two size constants
    that feed the Table 2 cost model: the ciphertext size [z] and the
    public-key size [|kappa|].

    The closures carry the hot-path accelerations of the underlying
    schemes — hoisted Montgomery contexts, CRT decryption, and (for
    Paillier) the fixed-base randomness table; see PERFORMANCE.md.
    They can be disabled with [~accel:false] to reproduce the
    pre-acceleration baseline in ablation benchmarks. *)

type public = {
  encrypt_int : int -> Spe_bignum.Nat.t;
      (** Encrypt a small non-negative integer. *)
  ciphertext_bits : int;  (** The paper's [z]. *)
  key_bits : int;  (** The paper's [|kappa|]. *)
}

type t = {
  public : public;
  decrypt_int : Spe_bignum.Nat.t -> int;
      (** Recover a small integer; raises [Failure] if the plaintext
          does not fit in a native [int]. *)
}

val rsa : ?plain_bits:int -> ?accel:bool -> Spe_rng.State.t -> bits:int -> t
(** Textbook RSA of the given modulus size (the paper's recommended
    deployment uses 1024).  [?plain_bits] is forwarded to
    {!Rsa.generate}: keys too small to hold the declared plaintext
    width raise {!Rsa.Key_too_small} here, at key-generation time. *)

val paillier : ?plain_bits:int -> ?accel:bool -> Spe_rng.State.t -> bits:int -> t
(** Probabilistic Paillier; ciphertexts are twice the modulus size.
    Fresh encryption randomness is drawn from a generator split off the
    one supplied here.  [?plain_bits] is forwarded to
    {!Paillier.generate} and raises {!Paillier.Key_too_small} when the
    key cannot hold it. *)
