module Nat = Spe_bignum.Nat
module Bigint = Spe_bignum.Bigint
module Montgomery = Spe_bignum.Montgomery

type crt = { p : Nat.t; q : Nat.t; dp : Nat.t; dq : Nat.t; qinv : Nat.t }
type public = { n : Nat.t; e : Nat.t }
type secret = { n : Nat.t; d : Nat.t; crt : crt option }
type keypair = { public : public; secret : secret }

exception Key_too_small of { key_bits : int; plain_bits : int }

let () =
  Printexc.register_printer (function
    | Key_too_small { key_bits; plain_bits } ->
      Some
        (Printf.sprintf
           "Rsa.Key_too_small: a %d-bit modulus cannot hold %d-bit plaintexts (needs \
            key_bits > plain_bits)"
           key_bits plain_bits)
    | _ -> None)

(* A b-bit modulus n has n >= 2^(b-1), so every plaintext of at most
   b - 1 bits is strictly below n and round-trips without wrapping. *)
let check_plain_bits ~key_bits = function
  | None -> ()
  | Some plain_bits ->
    if plain_bits < 1 then invalid_arg "Rsa.generate: plain_bits must be positive";
    if plain_bits > key_bits - 1 then raise (Key_too_small { key_bits; plain_bits })

let generate ?(e = 65537) ?plain_bits st ~bits =
  if bits < 16 then invalid_arg "Rsa.generate: modulus must be at least 16 bits";
  check_plain_bits ~key_bits:bits plain_bits;
  let e_nat = Nat.of_int e in
  let half = bits / 2 in
  let coprime_to_e p = Nat.is_one (Nat.gcd (Nat.pred p) e_nat) in
  let p = Prime.random_odd_prime_with st ~bits:half coprime_to_e in
  let rec draw_q () =
    let q = Prime.random_odd_prime_with st ~bits:(bits - half) coprime_to_e in
    if Nat.equal p q then draw_q () else q
  in
  let q = draw_q () in
  let n = Nat.mul p q in
  let phi = Nat.mul (Nat.pred p) (Nat.pred q) in
  let d =
    match Bigint.mod_inv (Bigint.of_nat e_nat) (Bigint.of_nat phi) with
    | Some d -> Bigint.to_nat d
    | None -> assert false (* primes were drawn coprime to e *)
  in
  let crt =
    match Bigint.mod_inv (Bigint.of_nat q) (Bigint.of_nat p) with
    | None -> None (* p = q is excluded, so unreachable; fall back to plain *)
    | Some qinv ->
      Some
        {
          p;
          q;
          dp = Nat.rem d (Nat.pred p);
          dq = Nat.rem d (Nat.pred q);
          qinv = Bigint.to_nat qinv;
        }
  in
  { public = { n; e = e_nat }; secret = { n; d; crt } }

(* RSA moduli are odd, so Montgomery exponentiation applies. *)
let encryptor (pk : public) =
  let ctx = Montgomery.create pk.n in
  fun m ->
    if Nat.compare m pk.n >= 0 then invalid_arg "Rsa.encrypt: plaintext exceeds modulus";
    Montgomery.pow ctx ~base:m ~exp:pk.e

let encrypt (pk : public) m = encryptor pk m

(* Garner recombination: m = mq + q * (qinv * (mp - mq) mod p). *)
let crt_combine ~(crt : crt) ~mp ~mq =
  let diff =
    if Nat.compare mp mq >= 0 then Nat.sub mp mq
    else Nat.sub crt.p (Nat.rem (Nat.sub mq mp) crt.p)
  in
  let h = Nat.rem (Nat.mul crt.qinv diff) crt.p in
  Nat.add mq (Nat.mul h crt.q)

let decryptor ?(crt = true) (sk : secret) =
  match if crt then sk.crt else None with
  | None ->
    let ctx = Montgomery.create sk.n in
    fun c -> Montgomery.pow ctx ~base:c ~exp:sk.d
  | Some crt ->
    (* Two half-size exponentiations: ~4x cheaper than one full-size
       (half the multiplications, each on half-width operands whose
       CIOS pass is quadratic in the limb count). *)
    let ctx_p = Montgomery.create crt.p in
    let ctx_q = Montgomery.create crt.q in
    fun c ->
      let mp = Montgomery.pow ctx_p ~base:(Nat.rem c crt.p) ~exp:crt.dp in
      let mq = Montgomery.pow ctx_q ~base:(Nat.rem c crt.q) ~exp:crt.dq in
      crt_combine ~crt ~mp ~mq

let decrypt (sk : secret) c = decryptor sk c

let ciphertext_bits (pk : public) = Nat.bit_length pk.n

let public_key_bits (pk : public) = Nat.bit_length pk.n + Nat.bit_length pk.e
