(** Incremental counter maintenance over a live record stream.

    Providers accumulate activity continuously; rebuilding every
    counter from scratch before each protocol run costs
    O(|A| * q) (see {!Counters.compute}).  This accumulator ingests
    records one at a time and keeps the full counter set current, so a
    provider's cost per new record is proportional to the published
    pairs touching that user — after which {!snapshot} is O(q).

    {2 Sliding window}

    With [?window:w], only records whose time lies in
    [(now - w, now]] count, where [now] is the high-water mark set by
    {!advance}: advancing the clock {e retracts} expired records from
    [a_i] and from every pair episode they completed — no history
    replay, because the per-lag counters [c^l] carry enough state to
    subtract an episode exactly as it was added.  Eq. 2's temporal
    decay needs no replay either: the weights [w_l] are applied to the
    maintained lag counters at masking time, so re-weighting a window
    is free.  A record that arrives {e after} its own expiry
    ([time <= now - w]) is skipped and counted in {!late}.  Without a
    window the accumulator behaves as before: nothing ever expires.

    The invariant the test suite pins (on random out-of-order arrival
    streams): {!snapshot} equals [Counters.compute] over the log
    filtered to the records currently in the window.

    {2 Dirty sets}

    The accumulator records which users' [a_i] and which published
    pairs' [b^h]/[c^l]/[both] counters changed since the last
    {!clear_dirty} — exactly what the epoch-delta protocols
    ([Spe_core.Delta]) need to re-share only touched counter groups.

    Records may arrive in any time order; the at-most-once-per
    (user, action) rule of the log model is enforced with the typed
    {!Duplicate_record} error (silently keeping the earlier record
    would require retracting already-counted episodes), and it
    outlives window expiry: a user cannot re-perform an action whose
    record expired. *)

exception Duplicate_record of { user : int; action : int }
(** Raised by {!add} on a second record for the same (user, action),
    in or out of the window. *)

type t

val create :
  ?window:int ->
  num_users:int ->
  num_actions:int ->
  h:int ->
  pairs:(int * int) array ->
  unit ->
  t
(** An empty accumulator over the published pair set.  [h] is the
    episode memory width of Eq. 1/2; [window] (>= 1, in record-time
    units) enables the sliding temporal window. *)

val add : t -> Spe_actionlog.Log.record -> unit
(** Ingest one record, updating every affected counter and the dirty
    sets.  Raises {!Duplicate_record} on a repeated (user, action). *)

val add_log : t -> Spe_actionlog.Log.t -> unit
(** Ingest a whole log (e.g. a day's batch). *)

val advance : t -> now:int -> unit
(** Move the window's high-water mark to [now] (monotone; raises
    [Invalid_argument] on a backwards move), expiring and retracting
    every record with [time <= now - window].  A no-op without a
    window, except for tracking [now]. *)

val records : t -> int
(** Records currently counted (in the window, when one is set). *)

val late : t -> int
(** Records skipped because they arrived after their own expiry. *)

val now : t -> int
(** The high-water mark of {!advance}. *)

val window : t -> int option

val dirty_users : t -> int list
(** Users whose [a_i] changed since the last {!clear_dirty},
    ascending. *)

val dirty_pairs : t -> int list
(** Published-pair indices whose episode counters changed since the
    last {!clear_dirty}, ascending. *)

val clear_dirty : t -> unit
(** Forget the dirty sets — call after an epoch snapshot was taken. *)

val snapshot : t -> Counters.t
(** The current counters (fresh arrays; the accumulator can keep
    ingesting).  Equal to [Counters.compute] over the same records
    restricted to the window — asserted by the test suite on random
    out-of-order streams. *)
