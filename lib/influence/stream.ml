module Log = Spe_actionlog.Log

exception Duplicate_record of { user : int; action : int }

let () =
  Printexc.register_printer (function
    | Duplicate_record { user; action } ->
      Some
        (Printf.sprintf "Spe_influence.Stream.Duplicate_record { user = %d; action = %d }"
           user action)
    | _ -> None)

type t = {
  num_actions : int;
  h : int;
  window : int option;
  pairs : (int * int) array;
  a : int array;
  b : int array;
  c : int array array;
  both : int array;
  (* For each user, the published pairs it participates in:
     (pair index, partner, partner_is_target). *)
  touching : (int * int * bool) list array;
  (* time_of.(action) maps user -> time for the records currently in
     the window. *)
  time_of : (int, int) Hashtbl.t array;
  (* seen.(action) remembers every user that ever performed the action,
     window expiry notwithstanding — the at-most-once rule of the log
     model outlives the sliding window. *)
  seen : (int, unit) Hashtbl.t array;
  (* Expiry index: time -> the (user, action) records carrying it,
     maintained only under a window. *)
  by_time : (int, (int * int) list) Hashtbl.t;
  mutable horizon : int;  (** Records with [time <= horizon] are expired. *)
  mutable now : int;  (** High-water mark of {!advance}. *)
  mutable count : int;
  mutable late : int;
  (* Dirty sets since the last [clear_dirty]. *)
  dirty_users : (int, unit) Hashtbl.t;
  dirty_pairs : (int, unit) Hashtbl.t;
}

let create ?window ~num_users ~num_actions ~h ~pairs () =
  if h < 1 then invalid_arg "Stream.create: h must be >= 1";
  if num_users < 0 || num_actions < 0 then invalid_arg "Stream.create: negative universe";
  (match window with
  | Some w when w < 1 -> invalid_arg "Stream.create: temporal window must be >= 1"
  | _ -> ());
  let touching = Array.make num_users [] in
  Array.iteri
    (fun k (i, j) ->
      if i < 0 || i >= num_users || j < 0 || j >= num_users || i = j then
        invalid_arg "Stream.create: bad pair";
      touching.(i) <- (k, j, true) :: touching.(i);
      touching.(j) <- (k, i, false) :: touching.(j))
    pairs;
  {
    num_actions;
    h;
    window;
    pairs;
    a = Array.make num_users 0;
    b = Array.make (Array.length pairs) 0;
    c = Array.make_matrix (Array.length pairs) h 0;
    both = Array.make (Array.length pairs) 0;
    touching;
    time_of = Array.init num_actions (fun _ -> Hashtbl.create 8);
    seen = Array.init num_actions (fun _ -> Hashtbl.create 8);
    by_time = Hashtbl.create 64;
    horizon = -1;
    now = 0;
    count = 0;
    late = 0;
    dirty_users = Hashtbl.create 16;
    dirty_pairs = Hashtbl.create 16;
  }

let mark_user t u = Hashtbl.replace t.dirty_users u ()
let mark_pair t k = Hashtbl.replace t.dirty_pairs k ()

let add t (r : Log.record) =
  if r.Log.user < 0 || r.Log.user >= Array.length t.a then invalid_arg "Stream.add: user out of range";
  if r.Log.action < 0 || r.Log.action >= t.num_actions then
    invalid_arg "Stream.add: action out of range";
  if r.Log.time < 0 then invalid_arg "Stream.add: negative time";
  let seen = t.seen.(r.Log.action) in
  if Hashtbl.mem seen r.Log.user then
    raise (Duplicate_record { user = r.Log.user; action = r.Log.action });
  Hashtbl.replace seen r.Log.user ();
  if t.window <> None && r.Log.time <= t.horizon then
    (* Arrived after its own expiry: the filtered-log oracle would not
       contain it either, so skip it (but it stays [seen]). *)
    t.late <- t.late + 1
  else begin
    let table = t.time_of.(r.Log.action) in
    Hashtbl.replace table r.Log.user r.Log.time;
    if t.window <> None then
      Hashtbl.replace t.by_time r.Log.time
        ((r.Log.user, r.Log.action)
        :: Option.value ~default:[] (Hashtbl.find_opt t.by_time r.Log.time));
    t.a.(r.Log.user) <- t.a.(r.Log.user) + 1;
    t.count <- t.count + 1;
    mark_user t r.Log.user;
    (* A pair's episode completes when its second endpoint arrives. *)
    List.iter
      (fun (k, partner, user_is_source) ->
        match Hashtbl.find_opt table partner with
        | None -> ()
        | Some partner_time ->
          t.both.(k) <- t.both.(k) + 1;
          mark_pair t k;
          let d =
            if user_is_source then partner_time - r.Log.time else r.Log.time - partner_time
          in
          if d >= 1 && d <= t.h then begin
            t.b.(k) <- t.b.(k) + 1;
            t.c.(k).(d - 1) <- t.c.(k).(d - 1) + 1
          end)
      t.touching.(r.Log.user)
  end

(* Retract one expiring record.  Episodes are counted once, when the
   second endpoint arrives, so they are retracted once, when the first
   endpoint leaves: the partner probe only sees partners still in the
   table, and an expiry batch removes records one at a time. *)
let expire t user action time =
  let table = t.time_of.(action) in
  (match Hashtbl.find_opt table user with
  | Some tu when tu = time ->
    List.iter
      (fun (k, partner, user_is_source) ->
        match Hashtbl.find_opt table partner with
        | None -> ()
        | Some partner_time ->
          t.both.(k) <- t.both.(k) - 1;
          mark_pair t k;
          let d = if user_is_source then partner_time - time else time - partner_time in
          if d >= 1 && d <= t.h then begin
            t.b.(k) <- t.b.(k) - 1;
            t.c.(k).(d - 1) <- t.c.(k).(d - 1) - 1
          end)
      t.touching.(user);
    Hashtbl.remove table user;
    t.a.(user) <- t.a.(user) - 1;
    t.count <- t.count - 1;
    mark_user t user
  | _ -> ())

let advance t ~now =
  if now < t.now then invalid_arg "Stream.advance: time must not go backwards";
  t.now <- now;
  match t.window with
  | None -> ()
  | Some w ->
    let new_horizon = now - w in
    for time = t.horizon + 1 to new_horizon do
      (match Hashtbl.find_opt t.by_time time with
      | None -> ()
      | Some records ->
        List.iter (fun (user, action) -> expire t user action time) records;
        Hashtbl.remove t.by_time time)
    done;
    if new_horizon > t.horizon then t.horizon <- new_horizon

let add_log t log = List.iter (add t) (Log.records log)

let records t = t.count

let late t = t.late

let now t = t.now

let window t = t.window

let sorted_keys tbl = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let dirty_users t = sorted_keys t.dirty_users

let dirty_pairs t = sorted_keys t.dirty_pairs

let clear_dirty t =
  Hashtbl.reset t.dirty_users;
  Hashtbl.reset t.dirty_pairs

let snapshot t =
  {
    Counters.a = Array.copy t.a;
    b = Array.copy t.b;
    c = Array.map Array.copy t.c;
    both = Array.copy t.both;
    h = t.h;
    pairs = t.pairs;
  }
