(* The plaintext fixed-point rank oracle.  Everything here is exact
   integer arithmetic on [scale = 2^fbits]-scaled vectors: the
   distributed Protocol_rank host runs these very functions between its
   re-sharing rounds, which is what makes "distributed == oracle" a
   bit-identity statement rather than an approximation. *)

module Digraph = Spe_graph.Digraph

type mode = Pagerank | Degree

type config = { mode : mode; damping : float; iterations : int; fbits : int }

let default_config = { mode = Pagerank; damping = 0.85; iterations = 25; fbits = 20 }

let validate config =
  if config.fbits < 4 || config.fbits > 30 then
    invalid_arg "Oracle: fbits must be in [4, 30]";
  if (not (config.damping >= 0.)) || config.damping >= 1. then
    invalid_arg "Oracle: damping must be in [0, 1)";
  if config.iterations < 0 then invalid_arg "Oracle: iterations must be >= 0"

let scale config = 1 lsl config.fbits

(* floor(d * scale) < scale because d < 1. *)
let damping_fx config = int_of_float (config.damping *. float_of_int (scale config))

let transitions_count config =
  match config.mode with Pagerank -> config.iterations | Degree -> 1

let teleport config ~n ~activity =
  let sc = scale config in
  let total = Array.fold_left ( + ) 0 activity + n in
  Array.init n (fun i ->
      if activity.(i) < 0 then invalid_arg "Oracle.teleport: negative activity";
      sc * (activity.(i) + 1) / total)

(* r'_i = d_fx * w_i / scale + (scale - d_fx) * t_i / scale.  With
   w_i, t_i <= scale both products stay under scale^2 <= 2^60. *)
let blend config ~teleport w =
  let sc = scale config in
  let d = damping_fx config in
  Array.init (Array.length w) (fun i ->
      (d * w.(i) / sc) + ((sc - d) * teleport.(i) / sc))

let walk graph r =
  let n = Array.length r in
  let w = Array.make n 0 in
  let dangling = ref 0 in
  for j = 0 to n - 1 do
    let out = Digraph.out_neighbors graph j in
    let deg = Array.length out in
    if deg = 0 then dangling := !dangling + r.(j)
    else begin
      let c = r.(j) / deg in
      Array.iter (fun i -> w.(i) <- w.(i) + c) out
    end
  done;
  let dshare = !dangling / n in
  for i = 0 to n - 1 do
    w.(i) <- w.(i) + dshare
  done;
  w

let step config graph ~teleport r = blend config ~teleport (walk graph r)

let degree_profile config graph =
  let sc = scale config in
  let n = Digraph.n graph in
  let edges = max 1 (Digraph.edge_count graph) in
  Array.init n (fun i -> sc * Digraph.in_degree graph i / edges)

let transitions config graph ~teleport =
  match config.mode with
  | Degree ->
    let profile = degree_profile config graph in
    [ (fun _r -> blend config ~teleport profile) ]
  | Pagerank ->
    List.init config.iterations (fun _ r -> step config graph ~teleport r)

let fixed config graph ~activity =
  validate config;
  let n = Digraph.n graph in
  if Array.length activity <> n then invalid_arg "Oracle.fixed: activity length";
  if n = 0 then [||]
  else
    let t = teleport config ~n ~activity in
    List.fold_left (fun r tr -> tr r) t (transitions config graph ~teleport:t)

let to_floats config r =
  let sc = float_of_int (scale config) in
  Array.map (fun v -> float_of_int v /. sc) r

let float_reference config graph ~activity =
  validate config;
  let n = Digraph.n graph in
  if Array.length activity <> n then invalid_arg "Oracle.float_reference: activity length";
  if n = 0 then [||]
  else begin
    let total = float_of_int (Array.fold_left ( + ) 0 activity + n) in
    let t = Array.init n (fun i -> float_of_int (activity.(i) + 1) /. total) in
    let d = config.damping in
    let blend w = Array.init n (fun i -> (d *. w.(i)) +. ((1. -. d) *. t.(i))) in
    match config.mode with
    | Degree ->
      let edges = float_of_int (max 1 (Digraph.edge_count graph)) in
      blend (Array.init n (fun i -> float_of_int (Digraph.in_degree graph i) /. edges))
    | Pagerank ->
      let r = ref (Array.copy t) in
      for _ = 1 to config.iterations do
        let w = Array.make n 0. in
        let dangling = ref 0. in
        for j = 0 to n - 1 do
          let out = Digraph.out_neighbors graph j in
          let deg = Array.length out in
          if deg = 0 then dangling := !dangling +. !r.(j)
          else begin
            let c = !r.(j) /. float_of_int deg in
            Array.iter (fun i -> w.(i) <- w.(i) +. c) out
          end
        done;
        let dshare = !dangling /. float_of_int n in
        for i = 0 to n - 1 do
          w.(i) <- w.(i) +. dshare
        done;
        r := blend w
      done;
      !r
  end

let precision_bound config graph =
  let n = float_of_int (Digraph.n graph) in
  let e = float_of_int (Digraph.edge_count graph) in
  let rounds = float_of_int (transitions_count config + 1) in
  rounds *. (e +. (4. *. n) +. 4.) /. float_of_int (scale config)
