module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Protocol2_distributed = Spe_mpc.Protocol2_distributed
module Plan = Spe_core.Plan
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log

type config = { oracle : Oracle.config; modulus : int }

let default_config = { oracle = Oracle.default_config; modulus = 1 lsl 40 }

type result = { ranks_fx : int array; ranks : float array; activity : int array }

let rounds config = (2 * Oracle.transitions_count config.oracle) + 2

let plan st ~graph ~logs ~shards config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol_rank: need at least two providers";
  if shards < 1 then invalid_arg "Protocol_rank: need at least one shard";
  Oracle.validate config.oracle;
  let n = Digraph.n graph in
  if n < 1 then invalid_arg "Protocol_rank: empty graph";
  Array.iter
    (fun l ->
      if Log.num_users l <> n then
        invalid_arg "Protocol_rank: log/graph user universe mismatch")
    logs;
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  let modulus = config.modulus in
  if modulus <= Oracle.scale config.oracle then
    invalid_arg "Protocol_rank: modulus must exceed the fixed-point scale";
  if modulus <= m * num_actions then
    invalid_arg "Protocol_rank: modulus must exceed the aggregate activity bound";
  let transitions_count = Oracle.transitions_count config.oracle in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let p0 = parties.(0) and p1 = parties.(1) in
  (* Every draw happens here, in a fixed order independent of the shard
     count: the batched Protocol 2 secrets over the full user range,
     then one fresh re-share vector per oracle transition.  Shards are
     cut afterwards as contiguous chunks, so any k (and any engine)
     merges to the same bits. *)
  let rand =
    Protocol2_distributed.draw st ~m ~modulus ~input_bound:num_actions ~length:n
  in
  let reshares =
    Array.init transitions_count (fun _ ->
        Array.init n (fun _ -> Dist.uniform_int st ~lo:0 ~hi:(modulus - 1)))
  in
  let k_eff = max 1 (min shards n) in
  let bound s = s * n / k_eff in
  let cores =
    Array.init k_eff (fun s ->
        let u0 = bound s and u1 = bound (s + 1) in
        let len = u1 - u0 in
        let sl = Protocol2_distributed.slice rand ~start:u0 ~len in
        let inputs =
          Array.init m (fun k () -> Array.sub (Log.user_activity logs.(k)) u0 len)
        in
        Protocol2_distributed.make_core ~parties ~third_party ~slice:sl ~inputs)
  in
  (* One full-batch verdict, exactly as the links plan: core [y] values
     are in the slice's induced permuted order, so scattering through
     the sorted global slots rebuilds the full permuted vector. *)
  let y_of () =
    let y = Array.make n 0 in
    Array.iter
      (fun (core : Protocol2_distributed.core) ->
        let ym = core.y () in
        let sorted = Array.copy core.positions in
        Array.sort compare sorted;
        Array.iteri (fun j p -> y.(p) <- ym.(j)) sorted)
      cores;
    y
  in
  let apply verdicts =
    Array.iter
      (fun (core : Protocol2_distributed.core) -> core.apply_wraps verdicts)
      cores
  in
  let verdict =
    Protocol2_distributed.make_verdict ~p1:parties.(1) ~third_party ~modulus
      ~input_bound:num_actions ~y_of ~apply
  in
  (* A player's full share is the concatenation of its per-core shares:
     slices are contiguous user ranges and core shares are in slice
     input order, so this is the whole-vector share in user order.
     Post-verdict player-2 entries may be negative (the wrap adjustment
     subtracts the modulus), so everything is reduced before going on
     the wire as [Ints] residues. *)
  let reduce s = ((s mod modulus) + modulus) mod modulus in
  let full_share of_core () =
    Array.map reduce
      (Array.concat (Array.to_list (Array.map (fun c -> (of_core c) ()) cores)))
  in
  let ints values = Runtime.Ints { modulus; values } in
  let from inbox src =
    List.find_map
      (fun msg ->
        match msg.Runtime.payload with
        | Runtime.Ints { values; _ } when msg.Runtime.src = src -> Some values
        | _ -> None)
      inbox
  in
  let require who = function
    | Some v -> v
    | None -> failwith ("Protocol_rank: missing " ^ who ^ " shares")
  in
  let activity = ref [||] in
  let published = ref [||] in
  let player_view = [| [||]; [||] |] in
  (* The iterate session's schedule (R = 2 * transitions + 2 rounds):
     round 1 the players send their reduced activity shares; at every
     even round H reconstructs mod S — the aggregate activity at round
     2, the echoed iterate afterwards — applies the next oracle
     transition and sends fresh additive shares of it (pre-drawn
     [reshares]); at odd rounds the players echo their shares straight
     back.  After the last transition H broadcasts the published rank
     vector, which the players receive at their finishing call. *)
  let last_echo_round = (2 * transitions_count) + 1 in
  let player idx me share_of ~round ~inbox =
    if round = 1 then [ { Runtime.src = me; dst = Wire.Host; payload = ints (share_of ()) } ]
    else
      match from inbox Wire.Host with
      | None -> []
      | Some v ->
        if round <= last_echo_round then
          [ { Runtime.src = me; dst = Wire.Host; payload = ints v } ]
        else begin
          player_view.(idx) <- v;
          []
        end
  in
  let transitions = ref [||] in
  let next = ref 0 in
  let host ~round ~inbox =
    if round mod 2 = 1 then []
    else begin
      let v =
        if round = 2 then begin
          let s1 = require "player 1" (from inbox p0) in
          let s2 = require "player 2" (from inbox p1) in
          let a = Array.init n (fun i -> (s1.(i) + s2.(i)) mod modulus) in
          activity := a;
          let t = Oracle.teleport config.oracle ~n ~activity:a in
          transitions :=
            Array.of_list (Oracle.transitions config.oracle graph ~teleport:t);
          t
        end
        else begin
          let u = require "player 1 echo" (from inbox p0) in
          let w = require "player 2 echo" (from inbox p1) in
          Array.init n (fun i -> (u.(i) + w.(i)) mod modulus)
        end
      in
      let i = !next in
      if i < Array.length !transitions then begin
        incr next;
        let v' = (!transitions).(i) v in
        let u = reshares.(i) in
        let w = Array.init n (fun j -> reduce (v'.(j) - u.(j))) in
        [
          { Runtime.src = Wire.Host; dst = p0; payload = ints u };
          { Runtime.src = Wire.Host; dst = p1; payload = ints w };
        ]
      end
      else begin
        published := v;
        [
          { Runtime.src = Wire.Host; dst = p0; payload = ints v };
          { Runtime.src = Wire.Host; dst = p1; payload = ints v };
        ]
      end
    end
  in
  let iterate =
    Session.with_label "rank-iterate"
      (Session.make
         ~parties:[| p0; p1; Wire.Host |]
         ~programs:
           [|
             player 0 p0 (full_share (fun c -> c.Protocol2_distributed.share1));
             player 1 p1 (full_share (fun c -> c.Protocol2_distributed.share2));
             host;
           |]
         ~rounds:(rounds config)
         ~result:(fun () -> ()))
  in
  let result () =
    let ranks_fx = !published in
    (* Player views are only populated by player programs that ran in
       this process; under a daemon deployment H's plan copy never runs
       them, so an untouched view is not a disagreement. *)
    Array.iteri
      (fun idx view ->
        if view <> [||] && view <> ranks_fx then
          failwith
            (Printf.sprintf "Protocol_rank: player %d release disagrees with H"
               (idx + 1)))
      player_view;
    { ranks_fx; ranks = Oracle.to_floats config.oracle ranks_fx; activity = !activity }
  in
  Plan.make ~shards:k_eff
    ~stages:
      [
        Plan.stage ~label:"rank-share"
          (Array.map (fun (c : Protocol2_distributed.core) -> c.session) cores);
        Plan.stage ~label:"p2-verdict" [| verdict.Protocol2_distributed.session |];
        Plan.stage ~label:"rank-iterate" [| iterate |];
      ]
    ~result
