(** The plaintext rank oracle: activity-personalised PageRank (and a
    degree-centrality variant) over the shared social graph, computed in
    {e fixed-point integer} arithmetic so the distributed protocol can
    reproduce it bit for bit.

    The estimand is the second family hosted on the session stack
    (ROADMAP item 5; PAPERS.md: Çatak's MPC PageRank, Roohi et al.'s
    centrality-without-connections): the graph is public to the
    mediator H, but the per-user activity that personalises the
    teleport vector is split across the providers' private action
    logs.  The oracle takes the {e aggregate} activity vector — the
    quantity the MPC pipeline reconstructs without revealing any
    provider's share — and everything downstream of it is deterministic
    integer arithmetic.

    {2 Fixed-point semantics}

    All vectors are scaled by [scale = 2^fbits] and every division
    truncates.  With [t] the Laplace-smoothed activity teleport
    [t_i = scale * (a_i + 1) / (total_a + n)] and [d_fx =
    floor(damping * scale)], one PageRank iteration is

    - walk: each node [j] with out-degree [deg > 0] contributes
      [r_j / deg] (truncated) to each out-neighbour; dangling nodes
      pool their mass and redistribute [dangling / n] to everyone;
    - blend: [r'_i = d_fx * w_i / scale + (scale - d_fx) * t_i / scale].

    Mass only shrinks under truncation, so [0 <= r_i <= scale] holds
    inductively and every product is bounded by [scale^2 <= 2^60].

    {2 Precision bound}

    Against the exact float recursion ({!float_reference}) each
    truncation loses less than [1/scale], the walk matrix is
    column-substochastic, and one iteration introduces at most
    [(E + 4n + 4) / scale] of L1 error (E truncated edge
    contributions, dangling + blend + teleport truncations, and the
    [d_fx] rounding applied to vectors of total mass <= 2); the
    carried error is never amplified.  Hence, coordinate-wise,

    [|fixed/scale - float_reference| <= (I + 1) * (E + 4n + 4) / scale]

    with [I] the iteration count ([I = 1] for {!Degree}) — the bound
    {!precision_bound} returns and the qcheck suite enforces. *)

type mode =
  | Pagerank  (** Power iteration on the damped, activity-personalised walk. *)
  | Degree
      (** One blend of normalised in-degree against the activity
          teleport — centrality without iteration, same disclosure. *)

type config = {
  mode : mode;
  damping : float;  (** [d] in [[0, 1)]. *)
  iterations : int;  (** Power-iteration count (ignored by {!Degree}). *)
  fbits : int;  (** Fractional bits; [scale = 2^fbits], in [[4, 30]]. *)
}

val default_config : config
(** [Pagerank], damping 0.85, 25 iterations, 20 fractional bits. *)

val validate : config -> unit
(** Raises [Invalid_argument] on a damping outside [[0, 1)], negative
    iterations, or [fbits] outside [[4, 30]]. *)

val scale : config -> int
(** [2^fbits]. *)

val transitions_count : config -> int
(** How many host-side vector updates the mode performs:
    [iterations] for {!Pagerank}, [1] for {!Degree}. *)

val teleport : config -> n:int -> activity:int array -> int array
(** The smoothed fixed-point teleport
    [t_i = scale * (activity_i + 1) / (sum activity + n)].
    Sums to at most [scale]. *)

val transitions :
  config ->
  Spe_graph.Digraph.t ->
  teleport:int array ->
  (int array -> int array) list
(** The per-iteration vector updates in application order
    ({!transitions_count} of them) — exactly what the distributed
    host applies between re-sharing rounds. *)

val fixed : config -> Spe_graph.Digraph.t -> activity:int array -> int array
(** The full oracle: teleport, then every transition, from the
    aggregate activity vector.  Returns the fixed-point rank vector
    (entries in [[0, scale]]).  Raises [Invalid_argument] on an
    activity vector of the wrong length or negative entries. *)

val to_floats : config -> int array -> float array
(** Divide by [scale]. *)

val float_reference : config -> Spe_graph.Digraph.t -> activity:int array -> float array
(** The exact float twin of {!fixed}: same walk, same dangling
    handling, no truncation.  Sums to 1 for {!Pagerank}. *)

val precision_bound : config -> Spe_graph.Digraph.t -> float
(** The documented coordinate-wise bound on
    [|to_floats (fixed ...) - float_reference ...|] (see above). *)
