(** The distributed rank pipeline: additively-shared activity
    aggregation (Protocol 1/2 primitives) feeding a multi-round
    re-sharing power iteration, lowered through {!Spe_core.Plan} so it
    runs bit-identical on every engine and shard count.

    {2 Protocol}

    Three stages, built from the same primitives as links/scores:

    + [rank-share] — each provider additively shares its {e per-user
      activity vector} (how many of its own log records each user
      produced) between players P1 and P2 mod S, through the batched
      {!Spe_mpc.Protocol2_distributed} cores.  Sharded k ways over
      contiguous user ranges of the {e centrally drawn} randomness
      (permute-then-shard, as everywhere else), so every k merges to
      the same bits.
    + [p2-verdict] — the single full-batch wrap-verdict announcement.
    + [rank-iterate] — one session of the two players and H.  Round 1:
      both players send their (mod-S reduced) activity shares to H, who
      reconstructs the {e aggregate} activity, builds the fixed-point
      teleport and the iterate [r_0 = t].  Then, per oracle transition:
      H applies the transition, splits the new iterate into fresh
      additive shares (randomness pre-drawn at plan-build time) and
      sends one share to each player; the players echo their shares
      straight back, and H continues from the {e reconstruction} — the
      round-trip is load-bearing, a dropped or altered share changes
      the published ranks.  After the last transition H broadcasts the
      final fixed-point rank vector to both players as the public
      release.  [2 * transitions + 2] rounds, genuinely multi-round
      network traffic proportional to the iteration count.

    {2 Disclosure}

    H learns the aggregate activity vector and every intermediate
    iterate.  The iterates are deterministic functions of the aggregate
    activity and the public graph — simulatable from what H already
    holds — and the aggregate is exactly the quantity the paper's
    pipelines entitle H to (Protocol 4 hands H the aggregated
    counters).  What stays hidden is every {e per-provider}
    decomposition: a provider's activity vector is covered by the
    uniform Protocol 1 shares, the same guarantee links and scores
    rest on (DESIGN.md, "Second estimand family"). *)

type config = {
  oracle : Oracle.config;
  modulus : int;  (** Share modulus S; must exceed [Oracle.scale],
                      the action count, and [m * actions]. *)
}

val default_config : config
(** {!Oracle.default_config} with the CLI's default [2^40] modulus. *)

type result = {
  ranks_fx : int array;
      (** The published fixed-point rank vector (H's release, checked
          identical to what both players received). *)
  ranks : float array;  (** [ranks_fx / scale]. *)
  activity : int array;  (** The aggregate activity H reconstructed. *)
}

val rounds : config -> int
(** The iterate session's declared round count,
    [2 * transitions + 2]. *)

val plan :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  shards:int ->
  config ->
  result Spe_core.Plan.t
(** Build the three-stage plan.  All joint randomness (the Protocol 2
    batch, the per-transition re-share vectors) is drawn here, at
    plan-build time, in an order independent of [shards] — so any
    shard count, any engine and any daemon deployment merge to
    bit-identical [ranks_fx], equal to
    [Oracle.fixed config.oracle graph ~activity:(sum of per-provider
    activity)].  Raises [Invalid_argument] on fewer than two
    providers, an empty graph, a log/graph universe mismatch, or a
    modulus too small for the scale or the activity bound. *)
