(** Rate-controlled replay of an action log as a live event stream.

    The streaming pipeline needs records that {e arrive} over a wall
    clock, not a finished batch.  A source takes a log (typically from
    {!Cascade.generate}), orders it by record time, and assigns every
    record an integer {e arrival tick} on a separate timeline:

    - gaps between arrivals are exponential with mean [1 / rate]
      (a Poisson stream at [rate] events per tick);
    - [burstiness] in [[0, 1)] modulates the gaps with a two-state
      Markov chain — bursts of compressed gaps alternating with quiet
      stretches — while preserving the long-run rate.  [0.] is plain
      Poisson;
    - [jitter] adds an independent uniform offset in [[0, jitter]]
      ticks to each arrival, producing {e bounded} out-of-order
      delivery relative to record-time order (the stream tests feed
      this to the windowed {!Spe_influence.Stream} accumulator).

    Sources are seeded and replayable: the same [State] seed, log and
    parameters reproduce the identical event sequence, which is what
    lets every party of a distributed job derive the same per-epoch
    input without exchanging the stream itself.  Consumption is
    flat-out — the source never sleeps; pacing is the caller's
    business (epoch loops slice the arrival timeline instead). *)

type t

val create :
  Spe_rng.State.t ->
  Log.t ->
  rate:float ->
  ?burstiness:float ->
  ?jitter:int ->
  unit ->
  t
(** Plan the full arrival sequence for [log] (deterministic in the
    state).  [rate] (> 0) is mean arrivals per tick; [burstiness]
    (default 0) in [[0, 1)]; [jitter] (default 0) in ticks. *)

val take_until : t -> arrival:int -> Log.record list
(** Consume and return every not-yet-delivered record with arrival tick
    [<= arrival], in arrival order.  An epoch loop calls this once per
    epoch boundary. *)

val length : t -> int
(** Total events in the stream. *)

val remaining : t -> int
(** Events not yet consumed. *)

val next_arrival : t -> int option
(** Arrival tick of the next undelivered event. *)

val last_arrival : t -> int option
(** Arrival tick of the final event — the horizon after which
    {!take_until} drains nothing new. *)

val reset : t -> unit
(** Rewind to the start; the replayed sequence is identical. *)

val events : t -> (int * Log.record) list
(** The full (arrival, record) sequence in delivery order, without
    consuming — for tests and offline analysis. *)
