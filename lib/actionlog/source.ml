module State = Spe_rng.State
module Dist = Spe_rng.Dist

type event = { arrival : int; record : Log.record }

type t = { events : event array; mutable cursor : int }

(* Burstiness beta in [0, 1) maps to the gap scale of a two-state
   modulated Poisson process: the fast state compresses gaps by
   1/(1 + 3*beta), the slow state stretches them by the inverse, and
   the chain flips state with probability 0.1 per event.  beta = 0
   collapses both states to scale 1 — a plain Poisson stream. *)
let switch_probability = 0.1

let burst_scale ~burstiness = 1. +. (3. *. burstiness)

let create st log ~rate ?(burstiness = 0.) ?(jitter = 0) () =
  if rate <= 0. then invalid_arg "Source.create: rate must be positive";
  if burstiness < 0. || burstiness >= 1. then
    invalid_arg "Source.create: burstiness must lie in [0, 1)";
  if jitter < 0 then invalid_arg "Source.create: jitter must be >= 0";
  let recs = Array.of_list (Log.records log) in
  (* Emission order is record time: the stream delivers the history in
     the order it happened, modulo the bounded reordering below. *)
  Array.sort
    (fun (r1 : Log.record) (r2 : Log.record) ->
      compare (r1.Log.time, r1.Log.action, r1.Log.user) (r2.Log.time, r2.Log.action, r2.Log.user))
    recs;
  let scale = burst_scale ~burstiness in
  let fast = ref true in
  let clock = ref 0. in
  let events =
    Array.map
      (fun record ->
        if State.next_float st < switch_probability then fast := not !fast;
        let gap = Dist.exponential st ~rate *. if !fast then 1. /. scale else scale in
        clock := !clock +. gap;
        let arrival = int_of_float !clock + if jitter > 0 then State.next_int st (jitter + 1) else 0 in
        { arrival; record })
      recs
  in
  (* Jitter can swap neighbours; re-establish arrival order with a
     deterministic tie-break so replay is exact. *)
  Array.sort
    (fun e1 e2 ->
      compare
        (e1.arrival, e1.record.Log.time, e1.record.Log.action, e1.record.Log.user)
        (e2.arrival, e2.record.Log.time, e2.record.Log.action, e2.record.Log.user))
    events;
  { events; cursor = 0 }

let length t = Array.length t.events

let remaining t = Array.length t.events - t.cursor

let next_arrival t =
  if t.cursor < Array.length t.events then Some t.events.(t.cursor).arrival else None

let last_arrival t =
  let n = Array.length t.events in
  if n = 0 then None else Some t.events.(n - 1).arrival

let take_until t ~arrival =
  let out = ref [] in
  while t.cursor < Array.length t.events && t.events.(t.cursor).arrival <= arrival do
    out := t.events.(t.cursor).record :: !out;
    t.cursor <- t.cursor + 1
  done;
  List.rev !out

let reset t = t.cursor <- 0

let events t = Array.to_list (Array.map (fun e -> (e.arrival, e.record)) t.events)
