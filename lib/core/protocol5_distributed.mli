(** Protocol 5 as a {!Spe_mpc.Session}: one action class's secure
    aggregation with every party an isolated state machine.

    Round 1: each class provider ships its obfuscated class log to the
    trusted party as typed [(user, action, time)] tuples.  Round 2: the
    trusted party unifies the logs, computes the non-zero counters on
    the obfuscated ids ({!Protocol5.trusted_count}), and returns the
    [a]/[c] tables to the representative (the first provider) as a
    batch of two tuple tables.  At its finishing call the
    representative inverts the obfuscation.

    The joint secrets (renaming permutations, shift cipher, fake-user
    padding) come from {!Protocol5.prepare}, consumed off the supplied
    generator in the central draw order — the session result is
    bit-identical to {!Protocol5.run}, and the round/message counts
    ([2] rounds, [d + 1] messages) match the central wire statistics
    exactly. *)

type session = Protocol5.class_counters Spe_mpc.Session.t

val make :
  Spe_rng.State.t ->
  h:int ->
  providers:Spe_mpc.Wire.party array ->
  trusted:Spe_mpc.Wire.party ->
  logs:Spe_actionlog.Log.t array ->
  obfuscation:Protocol5.obfuscation ->
  session
(** Same contract as {!Protocol5.run}: [logs.(k)] is the class-filtered
    log of [providers.(k)] (equal universes), [trusted] lies outside
    the providers, the representative is [providers.(0)].  The session
    result raises [Failure] if read before the counters arrived. *)

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  h:int ->
  providers:Spe_mpc.Wire.party array ->
  trusted:Spe_mpc.Wire.party ->
  logs:Spe_actionlog.Log.t array ->
  obfuscation:Protocol5.obfuscation ->
  Protocol5.class_counters
(** {!make} driven by {!Spe_mpc.Session.run}. *)
