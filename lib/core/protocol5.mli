(** Protocol 5 — secure aggregation of the counters of one action class
    (Sec. 5.2, non-exclusive case).

    When the same action can be bought from several providers, a single
    propagation trace is scattered across their logs, and no provider
    can compute window counters alone.  For each action class [A_q] the
    supporting providers obfuscate their class sub-logs, ship them to a
    trusted third party (a provider outside the class, or the host),
    who unifies them, computes every non-zero counter on the obfuscated
    identifiers, and returns them to a representative provider; the
    representative undoes the obfuscation.  From then on the
    representative answers for the whole class in Protocol 4 and all
    providers drop the class records from their logs.

    Two obfuscation methods:
    - {e Basic} — secret uniform permutations rename users and actions;
      time stamps travel in the clear, so the third party sees the
      anonymous temporal activity profile.
    - {e Enhanced} — additionally, time stamps are encrypted with a
      shift cipher of period [T + h], and every time slot is padded to
      a common per-slot record count with fake-user records, so the
      third party cannot locate the wrap-around gap and the temporal
      profile is flattened.  Counters touching a fake user are simply
      discarded by the representative.  The window test still works on
      ciphertexts (inequality (12) — see [Spe_crypto.Shift_cipher]). *)

type obfuscation =
  | Basic
  | Enhanced
      (** Shift-cipher on times plus fake-user padding; the number of
          fake users is sized automatically from the padding demand. *)

type class_counters = {
  a : int array;
      (** Per true user: actions of this class performed anywhere. *)
  c_table : (int * int, int array) Hashtbl.t;
      (** Sparse lag counters: [(i, j) -> [|c^1; ..; c^h|]] on true
          user ids; pairs with all-zero rows are absent. *)
  h : int;
}

type obf_record = { user : int; action : int; time : int }
(** An obfuscated record as it travels to the trusted party.  Not a
    [Log.t]: fake-user padding intentionally repeats [(user, action)]
    pairs across time slots in ways [Log.t]'s at-most-once invariant
    would collapse. *)

type plan = {
  obf_logs : obf_record list array;  (** Per provider, ready to ship. *)
  obf_users : int;
      (** Size of the obfuscated user-id space on the wire ([n], or
          [n + fakes] under {!Enhanced}). *)
  period : int;  (** Time-stamp value space on the wire. *)
  lag_of : int -> int -> int option;
      (** The trusted party's window test on (possibly encrypted)
          stamps: [lag_of t t'] is the lag in [[1, h]] when [t']
          follows [t] within the window. *)
  unobfuscate :
    (int, int) Hashtbl.t -> (int * int, int array) Hashtbl.t -> class_counters;
      (** The representative's inversion of the trusted party's
          [a]/[c] tables back to true user ids. *)
}
(** Everything both protocol twins derive from the jointly drawn
    secrets.  {!prepare} consumes all the class's randomness in one
    fixed order, so the central {!run} and the distributed session
    draw identically. *)

val prepare :
  Spe_rng.State.t ->
  h:int ->
  logs:Spe_actionlog.Log.t array ->
  obfuscation:obfuscation ->
  plan
(** Draw the joint secrets and obfuscate every provider's class log.
    [logs] must be non-empty with equal universes (callers validate). *)

val trusted_count :
  h:int ->
  lag_of:(int -> int -> int option) ->
  obf_record list ->
  (int, int) Hashtbl.t * (int * int, int array) Hashtbl.t
(** The trusted party's computation on the unified obfuscated log:
    dedup real [(user, action)] repeats to the earliest stamp, then
    per obfuscated user the class-activity count, and per ordered user
    pair the lag-counter row (all-zero rows absent).  Deterministic in
    the record {e set} (input order is irrelevant). *)

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  h:int ->
  providers:Spe_mpc.Wire.party array ->
  trusted:Spe_mpc.Wire.party ->
  logs:Spe_actionlog.Log.t array ->
  obfuscation:obfuscation ->
  class_counters
(** [run st ~wire ~h ~providers ~trusted ~logs ~obfuscation] aggregates
    one class.  [logs.(k)] is the class-filtered log of
    [providers.(k)]; all logs share universe sizes.  [trusted] must not
    be one of the providers.  The representative receiving the counters
    is [providers.(0)].  Consumes 2 wire rounds (logs in, counters
    back). *)

val to_provider_input :
  class_counters list -> pairs:(int * int) array -> Protocol4.provider_input
(** Restriction of (a sum of) class counter sets to a published pair
    set — the representative's contribution to Protocol 4.  All sets
    must share the window width and user universe. *)
