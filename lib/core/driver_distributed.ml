module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Protocol2_distributed = Spe_mpc.Protocol2_distributed
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Partition = Spe_actionlog.Partition
module Propagation = Spe_influence.Propagation

let links_exclusive st ~graph ~logs config =
  Protocol4_distributed.make_with_logs st ~graph ~logs config

let links_non_exclusive st ~graph ~logs ~spec ~obfuscation config =
  let m = Array.length logs in
  if m < 2 then
    invalid_arg "Driver_distributed.links_non_exclusive: need at least two providers";
  if spec.Partition.m <> m then
    invalid_arg "Driver_distributed.links_non_exclusive: spec provider count mismatch";
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  Array.iter
    (fun l -> Partition.validate_class_spec spec ~num_actions:(Log.num_actions l))
    logs;
  (* Protocol 5 per class, sequenced in class order exactly as the
     central driver runs them; the representative of each class
     accumulates an accessor to the class counters, which its Protocol
     4 program reads once the class phases have executed. *)
  let held = Array.make m [] in
  let class_sessions =
    Array.to_list spec.Partition.class_providers
    |> List.mapi (fun class_id members ->
           let class_logs =
             Array.map
               (fun k ->
                 Log.filter_actions logs.(k) (fun a ->
                     spec.Partition.action_class.(a) = class_id))
               members
           in
           let providers = Array.map (fun k -> Wire.Provider k) members in
           let trusted = Driver.pick_trusted ~m ~class_members:members in
           let s =
             Protocol5_distributed.make st ~h:config.Protocol4.h ~providers ~trusted
               ~logs:class_logs ~obfuscation
           in
           held.(members.(0)) <- s.Session.result :: held.(members.(0));
           Session.map ignore s)
  in
  let n = Digraph.n graph in
  let core =
    Protocol4_distributed.make st ~graph ~num_actions ~m
      ~provider_input_of:(fun ~k ~pairs ->
        match held.(k) with
        | [] ->
          { Protocol4.a = Array.make n 0;
            c = Array.make_matrix (Array.length pairs) config.Protocol4.h 0 }
        | accessors -> Protocol5.to_provider_input (List.map (fun f -> f ()) accessors) ~pairs)
      config
  in
  match class_sessions with
  | [] -> core
  | s0 :: rest ->
    let seq_unit a b = Session.map (fun ((), ()) -> ()) (Session.seq a b) in
    Session.map snd (Session.seq (List.fold_left seq_unit s0 rest) core)

type scores = { scores : float array; graphs : Propagation.t array }

(* The final unmasking phase, shared by the monolithic and sharded
   score pipelines: mask agreement (rounds 1-2), masked denominators to
   the host (round 3), then the blinded round-trip host -> player 1 ->
   host (rounds 4-5), the host dividing at its finishing call.
   [numerators_of] is forced inside the host program at round 4, after
   every earlier phase has executed. *)
let scores_final_phase ~n ~p0 ~p1 ~masks ~blinds ~share1 ~share2 ~numerators_of =
  let scores_ref = ref [||] in
  let player me other share_of is_player1 ~round ~inbox =
    match round with
    | 1 | 2 ->
      [ { Runtime.src = me; dst = other; payload = Runtime.Floats (Array.make n 0.) } ]
    | 3 ->
      let share = share_of () in
      [ { Runtime.src = me; dst = Wire.Host;
          payload =
            Runtime.Floats (Array.init n (fun i -> masks.(i) *. float_of_int share.(i))) } ]
    | 5 when is_player1 -> (
      match
        List.find_map
          (fun msg ->
            match msg.Runtime.payload with
            | Runtime.Floats v when msg.Runtime.src = Wire.Host -> Some v
            | _ -> None)
          inbox
      with
      | Some to_p1 ->
        [ { Runtime.src = me; dst = Wire.Host;
            payload = Runtime.Floats (Array.init n (fun i -> to_p1.(i) *. masks.(i))) } ]
      | None -> [])
    | _ -> []
  in
  let v1 = ref None and v2 = ref None in
  let host_program ~round ~inbox =
    let floats_from party =
      List.find_map
        (fun msg ->
          match msg.Runtime.payload with
          | Runtime.Floats v when msg.Runtime.src = party -> Some v
          | _ -> None)
        inbox
    in
    match round with
    | 4 -> (
      (match floats_from p0 with Some v -> v1 := Some v | None -> ());
      (match floats_from p1 with Some v -> v2 := Some v | None -> ());
      match (!v1, !v2) with
      | Some a, Some b ->
        let masked_denominators = Array.init n (fun i -> a.(i) +. b.(i)) in
        let numerators = numerators_of () in
        let to_p1 =
          Array.init n (fun i ->
              if masked_denominators.(i) = 0. then 0.
              else blinds.(i) *. float_of_int numerators.(i) /. masked_denominators.(i))
        in
        [ { Runtime.src = Wire.Host; dst = p0; payload = Runtime.Floats to_p1 } ]
      | _ -> [])
    | 6 ->
      (match floats_from p0 with
      | Some from_p1 -> scores_ref := Array.init n (fun i -> from_p1.(i) /. blinds.(i))
      | None -> ());
      []
    | _ -> []
  in
  Session.with_label "scores-final"
    (Session.make
       ~parties:[| p0; p1; Wire.Host |]
       ~programs:[| player p0 p1 share1 true; player p1 p0 share2 false; host_program |]
       ~rounds:5
       ~result:(fun () -> !scores_ref))

let user_scores_exclusive st ~graph ~logs ~tau ~modulus config =
  let m = Array.length logs in
  if m < 2 then
    invalid_arg "Driver_distributed.user_scores_exclusive: need at least two providers";
  if tau < 0 then invalid_arg "Driver_distributed.user_scores_exclusive: negative tau";
  let n = Digraph.n graph in
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  if modulus <= num_actions then
    invalid_arg "Driver_distributed.user_scores_exclusive: modulus must exceed A";
  (* Phase 1: Protocol 6 delivers the propagation graphs to the host. *)
  let p6 = Protocol6_distributed.make st ~graph ~logs config in
  (* Phase 2: the batched Protocol 2 over the activity counters. *)
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let share_session, handle =
    Protocol2_distributed.make_lazy st ~parties ~third_party ~modulus
      ~input_bound:num_actions ~length:n
      ~inputs:(Array.init m (fun k () -> Log.user_activity logs.(k)))
  in
  (* The joint per-user masks, then the host's blinds — the central
     draw order. *)
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  let blinds = Array.init n (fun _ -> Dist.mask_pair st) in
  let p0 = parties.(0) and p1 = parties.(1) in
  (* Phase 3: the shared final unmasking phase, the host reading the
     Protocol 6 numerators once the earlier phases have delivered. *)
  let final_phase =
    scores_final_phase ~n ~p0 ~p1 ~masks ~blinds
      ~share1:handle.Protocol2_distributed.share1
      ~share2:handle.Protocol2_distributed.share2
      ~numerators_of:(fun () ->
        Propagation.sphere_totals (p6.Session.result ()).Protocol6.graphs ~n ~tau)
  in
  Session.map
    (fun ((p6_result, _), user_scores) ->
      { scores = user_scores; graphs = p6_result.Protocol6.graphs })
    (Session.seq (Session.seq p6 share_session) final_phase)
