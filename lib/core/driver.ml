module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Protocol2 = Spe_mpc.Protocol2
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Partition = Spe_actionlog.Partition
module Propagation = Spe_influence.Propagation

type link_result = {
  strengths : ((int * int) * float) list;
  wire : Wire.stats;
  transcript : Wire.message list;
  detail : Protocol4.result;
}

(* Replay the simulated transcript into a trace, so a central run feeds
   [Spe_obs.Metrics.of_trace] through the same counters as the
   engine-instrumented runs.  The simulated wire charges exact bit
   counts; bytes round up per message. *)
let replay_transcript trace wire =
  if Spe_obs.Trace.enabled trace then
    List.iter
      (fun (msg : Wire.message) ->
        let src = Runtime.party_label msg.Wire.src in
        Spe_obs.Trace.count trace ~party:src ~round:msg.Wire.round Spe_obs.Trace.Messages 1;
        Spe_obs.Trace.count trace ~party:src ~round:msg.Wire.round
          Spe_obs.Trace.Payload_bytes
          ((msg.Wire.bits + 7) / 8))
      (Wire.messages wire)

let link_strengths_exclusive ?(trace = Spe_obs.Trace.disabled ()) st ~graph ~logs config =
  let wire = Wire.create () in
  let detail =
    Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
        Protocol4.run_with_logs st ~wire ~graph ~logs config)
  in
  Spe_obs.Trace.set_phases trace [ ("p4", (Wire.stats wire).Wire.rounds) ];
  replay_transcript trace wire;
  { strengths = detail.Protocol4.strengths; wire = Wire.stats wire;
    transcript = Wire.messages wire; detail }

(* Pick a trusted third party for one class: a provider outside the
   class when one exists, the host otherwise. *)
let pick_trusted ~m ~class_members =
  let in_class = Array.make m false in
  Array.iter (fun k -> in_class.(k) <- true) class_members;
  let rec scan k = if k >= m then Wire.Host else if in_class.(k) then scan (k + 1) else Wire.Provider k in
  scan 0

let link_strengths_non_exclusive ?(trace = Spe_obs.Trace.disabled ()) st ~graph ~logs ~spec
    ~obfuscation config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Driver.link_strengths_non_exclusive: need at least two providers";
  if spec.Partition.m <> m then
    invalid_arg "Driver.link_strengths_non_exclusive: spec provider count mismatch";
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  Array.iter
    (fun l -> Partition.validate_class_spec spec ~num_actions:(Log.num_actions l))
    logs;
  let wire = Wire.create () in
  let rounds_so_far () = (Wire.stats wire).Wire.rounds in
  let detail =
    Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" (fun () ->
        (* Protocol 5 per class; the representative (first provider of
           the class) accumulates the class counter sets. *)
        let held = Array.make m [] in
        Array.iteri
          (fun class_id members ->
            let class_logs =
              Array.map
                (fun k ->
                  Log.filter_actions logs.(k) (fun a ->
                      spec.Partition.action_class.(a) = class_id))
                members
            in
            let providers = Array.map (fun k -> Wire.Provider k) members in
            let trusted = pick_trusted ~m ~class_members:members in
            let counters =
              Protocol5.run st ~wire ~h:config.Protocol4.h ~providers ~trusted
                ~logs:class_logs ~obfuscation
            in
            let representative = members.(0) in
            held.(representative) <- counters :: held.(representative))
          spec.Partition.class_providers;
        let class_rounds = rounds_so_far () in
        (* Now the exclusive machinery: publish pairs, build each
           provider's input from the class counters it represents. *)
        let pairs =
          Protocol4.publish_pairs st ~wire ~graph ~m ~c_factor:config.Protocol4.c_factor
        in
        let publish_rounds = rounds_so_far () - class_rounds in
        let n = Digraph.n graph in
        let q = Array.length pairs in
        let zero_input () =
          { Protocol4.a = Array.make n 0; c = Array.make_matrix q config.Protocol4.h 0 }
        in
        let inputs =
          Array.map
            (fun counter_sets ->
              match counter_sets with
              | [] -> zero_input ()
              | sets -> Protocol5.to_provider_input sets ~pairs)
            held
        in
        let detail = Protocol4.run st ~wire ~graph ~num_actions ~pairs ~inputs config in
        Spe_obs.Trace.set_phases trace
          [
            ("p5-class", class_rounds);
            ("p4-publish", publish_rounds);
            ("p4", rounds_so_far () - class_rounds - publish_rounds);
          ];
        detail)
  in
  replay_transcript trace wire;
  { strengths = detail.Protocol4.strengths; wire = Wire.stats wire;
    transcript = Wire.messages wire; detail }

type score_result = {
  scores : float array;
  wire : Wire.stats;
  transcript : Wire.message list;
  graphs : Propagation.t array;
}

let user_scores_exclusive ?(trace = Spe_obs.Trace.disabled ()) st ~graph ~logs ~tau ~modulus
    config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Driver.user_scores_exclusive: need at least two providers";
  if tau < 0 then invalid_arg "Driver.user_scores_exclusive: negative tau";
  let n = Digraph.n graph in
  let wire = Wire.create () in
  let rounds_so_far () = (Wire.stats wire).Wire.rounds in
  Spe_obs.Trace.span trace Spe_obs.Trace.Session "session" @@ fun () ->
  (* Propagation graphs via Protocol 6. *)
  let p6 = Protocol6.run st ~wire ~graph ~logs config in
  let p6_rounds = rounds_so_far () in
  (* The host computes every numerator locally (Def. 3.3's sphere
     sums over the reconstructed propagation graphs). *)
  let numerators = Propagation.sphere_totals p6.Protocol6.graphs ~n ~tau in
  (* Denominators: batched Protocol 2 over the a-counters, then the
     Protocol 4-style masking toward the host. *)
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  if modulus <= num_actions then invalid_arg "Driver.user_scores_exclusive: modulus must exceed A";
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let a_inputs = Array.map (fun l -> Log.user_activity l) logs in
  let { Protocol2.share1; share2; views = _ } =
    Protocol2.run st ~wire ~parties ~third_party ~modulus ~input_bound:num_actions
      ~inputs:a_inputs
  in
  let share_rounds = rounds_so_far () - p6_rounds in
  (* Joint per-user masks (two exchange rounds, as in Protocol 4). *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  let masked1 = Array.init n (fun i -> masks.(i) *. float_of_int share1.(i)) in
  let masked2 = Array.init n (fun i -> masks.(i) *. float_of_int share2.(i)) in
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:Wire.Host ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:Wire.Host ~bits:(n * Wire.float_bits));
  let masked_denominators = Array.init n (fun i -> masked1.(i) +. masked2.(i)) in
  (* Blinded unmasking round-trip (see the interface documentation):
     host -> player 1 -> host. *)
  let blinds = Array.init n (fun _ -> Dist.mask_pair st) in
  let to_p1 =
    Array.init n (fun i ->
        if masked_denominators.(i) = 0. then 0.
        else blinds.(i) *. float_of_int numerators.(i) /. masked_denominators.(i))
  in
  Wire.round wire (fun () ->
      Wire.send wire ~src:Wire.Host ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  let from_p1 = Array.init n (fun i -> to_p1.(i) *. masks.(i)) in
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:Wire.Host ~bits:(n * Wire.float_bits));
  let scores = Array.init n (fun i -> from_p1.(i) /. blinds.(i)) in
  Spe_obs.Trace.set_phases trace
    [
      ("p6", p6_rounds);
      ("p2-shares", share_rounds);
      ("scores-final", rounds_so_far () - p6_rounds - share_rounds);
    ];
  replay_transcript trace wire;
  { scores; wire = Wire.stats wire; transcript = Wire.messages wire;
    graphs = p6.Protocol6.graphs }
