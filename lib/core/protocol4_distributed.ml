module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Protocol2 = Spe_mpc.Protocol2
module Protocol2_distributed = Spe_mpc.Protocol2_distributed
module Digraph = Spe_graph.Digraph
module Obfuscate = Spe_graph.Obfuscate
module Log = Spe_actionlog.Log

type session = Protocol4.result Session.t

let publish_slice_session ~node_modulus ~pairs ~m ~lo ~hi =
  if m < 1 then invalid_arg "Protocol4_distributed.publish_slice_session: need a provider";
  if lo < 0 || hi < lo || hi > Array.length pairs then
    invalid_arg "Protocol4_distributed.publish_slice_session: slice out of range";
  let flat =
    Array.init
      (2 * (hi - lo))
      (fun i ->
        let u, v = pairs.(lo + (i / 2)) in
        if i land 1 = 0 then u else v)
  in
  let received = Array.make m [||] in
  let host_program ~round ~inbox:_ =
    if round = 1 then
      List.init m (fun k ->
          { Runtime.src = Wire.Host; dst = Wire.Provider k;
            payload = Runtime.Ints { modulus = node_modulus; values = flat } })
    else []
  in
  let provider_program k ~round ~inbox =
    if round = 2 then
      List.iter
        (fun msg ->
          match msg.Runtime.payload with
          | Runtime.Ints { values; _ } when msg.Runtime.src = Wire.Host ->
            received.(k) <-
              Array.init
                (Array.length values / 2)
                (fun i -> (values.(2 * i), values.((2 * i) + 1)))
          | _ -> ())
        inbox;
    []
  in
  let parties = Array.append [| Wire.Host |] (Array.init m (fun k -> Wire.Provider k)) in
  let programs = Array.append [| host_program |] (Array.init m provider_program) in
  let session = Session.make ~parties ~programs ~rounds:1 ~result:(fun () -> ()) in
  (session, fun k -> received.(k))

let publish_pairs_phase st ~graph ~m ~c_factor =
  if m < 1 then invalid_arg "Protocol4_distributed.publish_pairs_phase: need a provider";
  let ob = Obfuscate.make st graph ~c:c_factor in
  let q = Obfuscate.size ob in
  let pairs = Array.make q (0, 0) in
  Obfuscate.iteri ob (fun i u v -> pairs.(i) <- (u, v));
  let node_modulus = max 2 (Digraph.n graph) in
  let session, received_of = publish_slice_session ~node_modulus ~pairs ~m ~lo:0 ~hi:q in
  (Session.map (fun () -> pairs) session, pairs, received_of)

let make st ~graph ~num_actions ~m ~provider_input_of config =
  if m < 2 then invalid_arg "Protocol4_distributed.make: need at least two providers";
  if config.Protocol4.h < 1 then invalid_arg "Protocol4_distributed.make: window must be >= 1";
  if config.Protocol4.modulus <= num_actions then
    invalid_arg "Protocol4_distributed.make: modulus must exceed A";
  (match config.Protocol4.estimator with
  | Protocol4.Eq1 -> ()
  | Protocol4.Eq2 w ->
    if Array.length (w :> float array) <> config.Protocol4.h then
      invalid_arg "Protocol4_distributed.make: weight profile length must equal h");
  let n = Digraph.n graph in
  let h = config.Protocol4.h in
  (* Steps 1-2: the host publishes the obfuscated pair set. *)
  let publish, pairs, pairs_of =
    publish_pairs_phase st ~graph ~m ~c_factor:config.Protocol4.c_factor
  in
  let publish = Session.with_label "p4-publish" publish in
  let q = Array.length pairs in
  let len = match config.Protocol4.estimator with Protocol4.Eq1 -> n + q | Protocol4.Eq2 _ -> n + (q * h) in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  (* Steps 3-4: the batched Protocol 2, each provider building its flat
     counter vector from the pair set it received in phase 1. *)
  let flat_input k () =
    let input = provider_input_of ~k ~pairs:(pairs_of k) in
    if Array.length input.Protocol4.a <> n then
      invalid_arg "Protocol4_distributed: activity vector length";
    if Array.length input.Protocol4.c <> q then
      invalid_arg "Protocol4_distributed: lag counter pair count";
    Array.iter
      (fun row ->
        if Array.length row <> h then invalid_arg "Protocol4_distributed: lag counter width")
      input.Protocol4.c;
    Protocol4.flatten_input config.Protocol4.estimator input
  in
  let share_session, handle =
    Protocol2_distributed.make_lazy st ~parties ~third_party ~modulus:config.Protocol4.modulus
      ~input_bound:num_actions ~length:len
      ~inputs:(Array.init m (fun k -> flat_input k))
  in
  (* Steps 5-6: the per-user masks, jointly drawn by players 1 and 2 off
     the shared generator (central draw position). *)
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  let p0 = parties.(0) and p1 = parties.(1) in
  let pair_estimates = ref [||] and strengths = ref [] in
  let player me other share_of my_pairs ~round ~inbox:_ =
    match round with
    | 1 | 2 ->
      (* The joint mask agreement: one exchange of contributions per
         step, as the central cost model charges (the mask values
         themselves come off the shared generator). *)
      [ { Runtime.src = me; dst = other; payload = Runtime.Floats (Array.make n 0.) } ]
    | 3 ->
      (* Steps 7-8: combine, mask, and ship to the host. *)
      let masked_a, masked_num =
        Protocol4.masked_shares_of_flat config.Protocol4.estimator ~h ~n ~pairs:(my_pairs ())
          ~masks (share_of ())
      in
      [ { Runtime.src = me; dst = Wire.Host;
          payload = Runtime.Floats (Array.append masked_a masked_num) } ]
    | _ -> []
  in
  let v0 = ref None and v1 = ref None in
  let host_program ~round:_ ~inbox =
    List.iter
      (fun msg ->
        match msg.Runtime.payload with
        | Runtime.Floats v when Array.length v = n + q ->
          if msg.Runtime.src = p0 then v0 := Some v
          else if msg.Runtime.src = p1 then v1 := Some v
        | _ -> ())
      inbox;
    (match (!v0, !v1) with
    | Some a, Some b ->
      (* Step 9: reconstruct the quotients and keep the real arcs. *)
      let est =
        Protocol4.pair_estimates_of_masked ~pairs ~masked_a1:(Array.sub a 0 n)
          ~masked_a2:(Array.sub b 0 n) ~masked_num1:(Array.sub a n q)
          ~masked_num2:(Array.sub b n q)
      in
      pair_estimates := est;
      strengths := Protocol4.strengths_of_estimates ~graph ~pairs est
    | _ -> ());
    []
  in
  let mask_phase =
    Session.with_label "p4-mask"
      (Session.make
         ~parties:[| p0; p1; Wire.Host |]
         ~programs:
           [|
             player p0 p1 handle.Protocol2_distributed.share1 (fun () -> pairs_of 0);
             player p1 p0 handle.Protocol2_distributed.share2 (fun () -> pairs_of 1);
             host_program;
           |]
         ~rounds:3
         ~result:(fun () -> ()))
  in
  Session.map
    (fun ((_, p2result), ()) ->
      {
        Protocol4.strengths = !strengths;
        pairs;
        pair_estimates = !pair_estimates;
        p2_leaks = p2result.Protocol2.views.Protocol2.p2_leaks;
        p3_leaks = p2result.Protocol2.views.Protocol2.p3_leaks;
      })
    (Session.seq (Session.seq publish share_session) mask_phase)

let make_with_logs st ~graph ~logs config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol4_distributed.make_with_logs: need at least two providers";
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  Array.iter
    (fun l ->
      if Log.num_users l <> Digraph.n graph then
        invalid_arg "Protocol4_distributed.make_with_logs: log/graph user universe mismatch")
    logs;
  make st ~graph ~num_actions ~m
    ~provider_input_of:(fun ~k ~pairs ->
      Protocol4.provider_input_of_log logs.(k) ~h:config.Protocol4.h ~pairs)
    config

let run st ~wire ~graph ~logs config = Session.run (make_with_logs st ~graph ~logs config) ~wire
