(** Protocol 4 as a composed {!Spe_mpc.Session}: the full Sec. 5.1
    link-strength pipeline with every party an isolated state machine,
    runnable on any engine — the in-process {!Spe_mpc.Runtime}, or the
    [Spe_net] memory-channel and socket endpoints.

    The session is built by sequencing three phases with
    {!Spe_mpc.Session.seq}:

    + {e publish} — the host ships the obfuscated pair set
      [Omega_E'] to every provider (Steps 1-2);
    + {e share} — the batched Protocol 2 over all counters
      ({!Spe_mpc.Protocol2_distributed.make_lazy}; each provider builds
      its flat counter vector from the pair set it {e received} in
      phase 1, Steps 3-4);
    + {e mask} — players 1 and 2 exchange the two joint-mask
      agreement rounds, combine and mask their shares, and ship the
      masked reals; the host reconstructs the quotients at its
      finishing call (Steps 5-9).

    All randomness (the pair obfuscation, the Protocol 2 secrets, the
    per-user masks) is consumed off the supplied generator in exactly
    the central draw order, so the session result is {e bit-identical}
    to {!Protocol4.run_with_logs} from an equal-positioned generator,
    and the charged round/message counts match the central wire
    statistics ([NR]/[NM]) exactly; message {e sizes} differ only by
    the typed payload encodings (see DESIGN.md, "central vs distributed
    wire sizes"). *)

type session = Protocol4.result Spe_mpc.Session.t

val publish_slice_session :
  node_modulus:int ->
  pairs:(int * int) array ->
  m:int ->
  lo:int ->
  hi:int ->
  unit Spe_mpc.Session.t * (int -> (int * int) array)
(** A one-round session in which the host broadcasts the flattened
    slice [pairs.(lo .. hi - 1)] of an already-published pair set to
    [m] providers, who decode it at their finishing call.  This is the
    publish phase of one {e shard} (see [Shard]); the whole-set
    {!publish_pairs_phase} is the [lo = 0, hi = q] instance, so slice
    payload bytes sum exactly to the unsharded broadcast.  Returns
    [(session, received_of)]; raises [Invalid_argument] if [m < 1] or
    the slice is out of range. *)

val publish_pairs_phase :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  m:int ->
  c_factor:float ->
  (int * int) array Spe_mpc.Session.t * (int * int) array * (int -> (int * int) array)
(** Steps 1-2 as a one-round session over [Host] plus [m] providers:
    the host draws [E' ⊇ E] and broadcasts the flattened pair list.
    Returns [(session, pairs, received_of)] where [pairs] is the
    host-side published set (also the session result) and
    [received_of k] reads provider [k]'s decoded copy — valid once the
    phase has executed.  Shared with [Protocol6_distributed]. *)

val make :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  num_actions:int ->
  m:int ->
  provider_input_of:(k:int -> pairs:(int * int) array -> Protocol4.provider_input) ->
  Protocol4.config ->
  session
(** Build the full pipeline session.  [provider_input_of ~k ~pairs] is
    called {e inside} provider [k]'s program when the Protocol 2 phase
    starts, with the pair set that provider received — the
    non-exclusive driver passes a closure reading the Protocol 5 class
    results delivered by earlier phases.  Raises [Invalid_argument] on
    the same parameter violations as {!Protocol4.run}. *)

val make_with_logs :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol4.config ->
  session
(** The exclusive case: each provider's input is extracted from its own
    log against the received pair set ({!Protocol4.provider_input_of_log}). *)

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol4.config ->
  Protocol4.result
(** {!make_with_logs} driven by {!Spe_mpc.Session.run}. *)
