module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Protocol2_distributed = Spe_mpc.Protocol2_distributed
module Digraph = Spe_graph.Digraph
module Obfuscate = Spe_graph.Obfuscate
module Log = Spe_actionlog.Log
module Partition = Spe_actionlog.Partition
module Propagation = Spe_influence.Propagation

(* One link-pipeline shard: the counter groups [i0, i1) of the
   published order — user counters [u0, u1) and pair groups [a0, a1) —
   with its publish slice, its Protocol 2 core, and the pair slice each
   provider received. *)
type links_shard = {
  u0 : int;
  u1 : int;
  a0 : int;
  a1 : int;
  core : Protocol2_distributed.core;
  received_of : int -> (int * int) array;
  session : unit Session.t;
}

let links_plan st ~graph ~num_actions ~m ~provider_input_of ~pre_stages ~shards config =
  if m < 2 then invalid_arg "Shard.links: need at least two providers";
  if shards < 1 then invalid_arg "Shard.links: need at least one shard";
  if config.Protocol4.h < 1 then invalid_arg "Shard.links: window must be >= 1";
  if config.Protocol4.modulus <= num_actions then
    invalid_arg "Shard.links: modulus must exceed A";
  (match config.Protocol4.estimator with
  | Protocol4.Eq1 -> ()
  | Protocol4.Eq2 w ->
    if Array.length (w :> float array) <> config.Protocol4.h then
      invalid_arg "Shard.links: weight profile length must equal h");
  let n = Digraph.n graph in
  let h = config.Protocol4.h in
  (* Every draw happens here, at plan-build time, in exactly the
     unsharded order: the pair obfuscation, the batched Protocol 2
     secrets, the per-user masks.  Shards are then cut as contiguous
     chunks of the already-drawn (and already-permuted) published
     order — no extra draws, so the k = 1 plan is the monolithic
     session wire-for-wire, and any k merges to the same bits. *)
  let ob = Obfuscate.make st graph ~c:config.Protocol4.c_factor in
  let q = Obfuscate.size ob in
  let pairs = Array.make q (0, 0) in
  Obfuscate.iteri ob (fun i u v -> pairs.(i) <- (u, v));
  let node_modulus = max 2 n in
  let w = match config.Protocol4.estimator with Protocol4.Eq1 -> 1 | Protocol4.Eq2 _ -> h in
  let len = n + (q * w) in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let p0 = parties.(0) and p1 = parties.(1) in
  let rand =
    Protocol2_distributed.draw st ~m ~modulus:config.Protocol4.modulus
      ~input_bound:num_actions ~length:len
  in
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  (* Cut the n + q counter groups (user counters have width 1, pair
     groups width [w] in the flat Protocol 2 vector) into k contiguous
     chunks. *)
  let items = n + q in
  let k_eff = max 1 (min shards items) in
  let bound s = s * items / k_eff in
  (* Each provider's counters are computed once, against the full
     published pair list — [Counters.compute] pays a per-action scan of
     the whole log no matter how short its pair slice, so per-shard
     recomputation would multiply that scan by k.  Per-pair rows are
     independent, so every shard's input is a plain slice of this one
     flat vector, bit-identical to computing it per shard.  Memoised on
     first use, not precomputed: the non-exclusive inputs read the
     Protocol 5 class results, which exist only once the p5-classes
     stage has run.  Mutex, not [Lazy]: concurrent shard sessions race
     to the first force, and [Lazy.force] is not thread-safe. *)
  let input_lock = Mutex.create () in
  let full_flat_memo = Array.make m None in
  let full_flat k =
    Mutex.lock input_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock input_lock)
      (fun () ->
        match full_flat_memo.(k) with
        | Some flat -> flat
        | None ->
          let input = provider_input_of ~k ~pairs in
          if Array.length input.Protocol4.a <> n then
            invalid_arg "Shard.links: activity vector length";
          if Array.length input.Protocol4.c <> q then
            invalid_arg "Shard.links: lag counter pair count";
          Array.iter
            (fun row ->
              if Array.length row <> h then
                invalid_arg "Shard.links: lag counter width")
            input.Protocol4.c;
          let flat = Protocol4.flatten_input config.Protocol4.estimator input in
          full_flat_memo.(k) <- Some flat;
          flat)
  in
  let shard_records =
    Array.init k_eff (fun s ->
        let i0 = bound s and i1 = bound (s + 1) in
        let u0 = min i0 n and u1 = min i1 n in
        let a0 = max i0 n - n and a1 = max i1 n - n in
        let n_s = u1 - u0 and q_s = a1 - a0 in
        let publish, received_of =
          Protocol4_distributed.publish_slice_session ~node_modulus ~pairs ~m ~lo:a0
            ~hi:a1
        in
        let publish = Session.with_label "p4-publish" publish in
        let sl =
          Protocol2_distributed.slice rand ~start:(u0 + (a0 * w)) ~len:(n_s + (q_s * w))
        in
        let inputs =
          Array.init m (fun k () ->
              let flat = full_flat k in
              Array.append (Array.sub flat u0 n_s) (Array.sub flat (n + (a0 * w)) (q_s * w)))
        in
        let core = Protocol2_distributed.make_core ~parties ~third_party ~slice:sl ~inputs in
        let session =
          Session.map
            (fun ((), ()) -> ())
            (Session.seq publish core.Protocol2_distributed.session)
        in
        { u0; u1; a0; a1; core; received_of; session })
  in
  let cores =
    Array.to_list shard_records |> List.map (fun r -> r.core)
  in
  (* One full-batch verdict: the third party re-assembles y from the
     per-core vectors.  Core [y] values are in the slice's induced
     permuted order — entry [j] belongs to the j-th smallest global
     slot of the slice — so scattering through the sorted slot arrays
     rebuilds the full permuted y, and the single [Bits] announcement
     is byte-identical to the unsharded one. *)
  let y_of () =
    let y = Array.make len 0 in
    List.iter
      (fun (core : Protocol2_distributed.core) ->
        let ym = core.y () in
        let sorted = Array.copy core.positions in
        Array.sort compare sorted;
        Array.iteri (fun j p -> y.(p) <- ym.(j)) sorted)
      cores;
    y
  in
  let apply verdicts =
    List.iter (fun (core : Protocol2_distributed.core) -> core.apply_wraps verdicts) cores
  in
  let verdict =
    Protocol2_distributed.make_verdict ~p1:parties.(1) ~third_party
      ~modulus:config.Protocol4.modulus ~input_bound:num_actions ~y_of ~apply
  in
  (* The masking phase, per shard, writing into the plan-level masked
     arrays: the host's merge is a plain disjoint-range scatter, so the
     final quotients run over exactly the arrays the unsharded host
     collects. *)
  let ma1 = Array.make n 0. and ma2 = Array.make n 0. in
  let mn1 = Array.make q 0. and mn2 = Array.make q 0. in
  let mask_session r =
    let n_s = r.u1 - r.u0 and q_s = r.a1 - r.a0 in
    (* Shard-local copy of [Protocol4.masked_shares_of_flat]'s
       arithmetic: same operations in the same order on the same
       values, so the floats are bit-identical — the whole-array helper
       indexes masks globally for users but per-pair for numerators, so
       it cannot be applied to a slice directly. *)
    let numerator_share sh j =
      match config.Protocol4.estimator with
      | Protocol4.Eq1 -> float_of_int sh.(n_s + j)
      | Protocol4.Eq2 wts ->
        let wts = (wts :> float array) in
        let acc = ref 0. in
        for l = 0 to h - 1 do
          acc := !acc +. (wts.(l) *. float_of_int sh.(n_s + (j * h) + l))
        done;
        !acc
    in
    let player me other share_of my_pairs ~round ~inbox:_ =
      match round with
      | 1 | 2 ->
        [ { Runtime.src = me; dst = other; payload = Runtime.Floats (Array.make n_s 0.) } ]
      | 3 ->
        let sh = share_of () in
        let pr = my_pairs () in
        let masked_a =
          Array.init n_s (fun i -> masks.(r.u0 + i) *. float_of_int sh.(i))
        in
        let masked_num =
          Array.init q_s (fun j ->
              let i, _ = pr.(j) in
              masks.(i) *. numerator_share sh j)
        in
        [ { Runtime.src = me; dst = Wire.Host;
            payload = Runtime.Floats (Array.append masked_a masked_num) } ]
      | _ -> []
    in
    let host_program ~round:_ ~inbox =
      List.iter
        (fun msg ->
          match msg.Runtime.payload with
          | Runtime.Floats v when Array.length v = n_s + q_s ->
            let write ma mn =
              for i = 0 to n_s - 1 do
                ma.(r.u0 + i) <- v.(i)
              done;
              for j = 0 to q_s - 1 do
                mn.(r.a0 + j) <- v.(n_s + j)
              done
            in
            if msg.Runtime.src = p0 then write ma1 mn1
            else if msg.Runtime.src = p1 then write ma2 mn2
          | _ -> ())
        inbox;
      []
    in
    Session.with_label "p4-mask"
      (Session.make
         ~parties:[| p0; p1; Wire.Host |]
         ~programs:
           [|
             player p0 p1 r.core.Protocol2_distributed.share1 (fun () -> r.received_of 0);
             player p1 p0 r.core.Protocol2_distributed.share2 (fun () -> r.received_of 1);
             host_program;
           |]
         ~rounds:3
         ~result:(fun () -> ()))
  in
  let result () =
    let est =
      Protocol4.pair_estimates_of_masked ~pairs ~masked_a1:ma1 ~masked_a2:ma2
        ~masked_num1:mn1 ~masked_num2:mn2
    in
    {
      Protocol4.strengths = Protocol4.strengths_of_estimates ~graph ~pairs est;
      pairs;
      pair_estimates = est;
      p2_leaks =
        Array.concat
          (List.map
             (fun (c : Protocol2_distributed.core) -> c.p2_leaks ())
             cores);
      p3_leaks = verdict.Protocol2_distributed.p3_leaks ();
    }
  in
  Plan.make ~shards:k_eff
    ~stages:
      (pre_stages
      @ [
          Plan.stage ~label:"links-shards"
            (Array.map (fun r -> r.session) shard_records);
          Plan.stage ~label:"p2-verdict" [| verdict.Protocol2_distributed.session |];
          Plan.stage ~label:"p4-mask" (Array.map mask_session shard_records);
        ])
    ~result

let links_exclusive st ~graph ~logs ~shards config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Shard.links_exclusive: need at least two providers";
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  Array.iter
    (fun l ->
      if Log.num_users l <> Digraph.n graph then
        invalid_arg "Shard.links_exclusive: log/graph user universe mismatch")
    logs;
  links_plan st ~graph ~num_actions ~m
    ~provider_input_of:(fun ~k ~pairs ->
      Protocol4.provider_input_of_log logs.(k) ~h:config.Protocol4.h ~pairs)
    ~pre_stages:[] ~shards config

let links_non_exclusive st ~graph ~logs ~spec ~obfuscation ~shards config =
  let m = Array.length logs in
  if m < 2 then
    invalid_arg "Shard.links_non_exclusive: need at least two providers";
  if spec.Partition.m <> m then
    invalid_arg "Shard.links_non_exclusive: spec provider count mismatch";
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  Array.iter
    (fun l -> Partition.validate_class_spec spec ~num_actions:(Log.num_actions l))
    logs;
  (* The Protocol 5 class sessions, built in class order exactly as the
     unsharded driver does (same draws); they have no mutual dataflow,
     so the plan runs them as one concurrent stage. *)
  let held = Array.make m [] in
  let class_sessions =
    Array.to_list spec.Partition.class_providers
    |> List.mapi (fun class_id members ->
           let class_logs =
             Array.map
               (fun k ->
                 Log.filter_actions logs.(k) (fun a ->
                     spec.Partition.action_class.(a) = class_id))
               members
           in
           let providers = Array.map (fun k -> Wire.Provider k) members in
           let trusted = Driver.pick_trusted ~m ~class_members:members in
           let s =
             Protocol5_distributed.make st ~h:config.Protocol4.h ~providers ~trusted
               ~logs:class_logs ~obfuscation
           in
           held.(members.(0)) <- s.Session.result :: held.(members.(0));
           Session.map ignore s)
  in
  let n = Digraph.n graph in
  let pre_stages =
    match class_sessions with
    | [] -> []
    | ss -> [ Plan.stage ~label:"p5-classes" (Array.of_list ss) ]
  in
  links_plan st ~graph ~num_actions ~m
    ~provider_input_of:(fun ~k ~pairs ->
      match held.(k) with
      | [] ->
        { Protocol4.a = Array.make n 0;
          c = Array.make_matrix (Array.length pairs) config.Protocol4.h 0 }
      | accessors ->
        Protocol5.to_provider_input (List.map (fun f -> f ()) accessors) ~pairs)
    ~pre_stages ~shards config

let user_scores_exclusive st ~graph ~logs ~tau ~modulus ~shards config =
  let m = Array.length logs in
  if m < 2 then
    invalid_arg "Shard.user_scores_exclusive: need at least two providers";
  if tau < 0 then invalid_arg "Shard.user_scores_exclusive: negative tau";
  if shards < 1 then invalid_arg "Shard.user_scores_exclusive: need at least one shard";
  let n = Digraph.n graph in
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  if modulus <= num_actions then
    invalid_arg "Shard.user_scores_exclusive: modulus must exceed A";
  (* All Protocol 6 draws (obfuscation, keygen, every encryption)
     happen at prepare time in the central order; the action range is
     then cut into k contiguous bundle relays. *)
  let p = Protocol6_distributed.prepare st ~graph ~logs config in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let share_session, handle =
    Protocol2_distributed.make_lazy st ~parties ~third_party ~modulus
      ~input_bound:num_actions ~length:n
      ~inputs:(Array.init m (fun k () -> Log.user_activity logs.(k)))
  in
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  let blinds = Array.init n (fun _ -> Dist.mask_pair st) in
  let p0 = parties.(0) and p1 = parties.(1) in
  let final_phase =
    Driver_distributed.scores_final_phase ~n ~p0 ~p1 ~masks ~blinds
      ~share1:handle.Protocol2_distributed.share1
      ~share2:handle.Protocol2_distributed.share2
      ~numerators_of:(fun () ->
        Propagation.sphere_totals
          (p.Protocol6_distributed.result ()).Protocol6.graphs ~n ~tau)
  in
  let actions = p.Protocol6_distributed.num_actions in
  let k_eff = max 1 (min shards actions) in
  let bound s = s * actions / k_eff in
  let bundle_sessions =
    Array.init k_eff (fun s ->
        p.Protocol6_distributed.bundle_session ~lo:(bound s) ~hi:(bound (s + 1)))
  in
  Plan.make ~shards:k_eff
    ~stages:
      [
        Plan.stage ~label:"p6-setup" [| p.Protocol6_distributed.setup_session |];
        Plan.stage ~label:"p6-bundles" bundle_sessions;
        Plan.stage ~label:"scores-share"
          [| Session.map ignore (Session.seq share_session final_phase) |];
      ]
    ~result:(fun () ->
      {
        Driver_distributed.scores = final_phase.Session.result ();
        graphs = (p.Protocol6_distributed.result ()).Protocol6.graphs;
      })
