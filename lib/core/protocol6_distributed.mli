(** Protocol 6 as a composed {!Spe_mpc.Session}: the Sec. 6.1
    propagation-graph pipeline with every party an isolated state
    machine, runnable on any engine.

    Four charged rounds, as in Table 2 and {!Protocol6.run}: pair
    publication ({!Protocol4_distributed.publish_pairs_phase}), key
    broadcast, encrypted Delta bundles to provider 1, forward to the
    host — who decrypts and rebuilds the propagation graphs at its
    finishing call.

    Two modelling notes, mirrored from the central implementation's
    semi-honest shorthand (DESIGN.md):
    - [Spe_crypto.Cipher] hides the key material behind closures, so
      the key broadcast carries a placeholder natural of the key's
      exact wire width; the providers encrypt through the shared
      [public] closure.
    - The Delta bundles are prepared at [make] time, in provider order,
      against the published pair set (the same array each provider
      receives in phase 1) — this keeps the probabilistic Paillier
      encryption stream on a single draw order, making plaintexts and
      wire sizes engine-independent.

    All randomness is consumed in the central draw order, so the
    session result is bit-identical to {!Protocol6.run}, and the
    charged round/message counts match the central statistics
    exactly. *)

type session = Protocol6.result Spe_mpc.Session.t

type prepared = {
  setup_session : unit Spe_mpc.Session.t;
      (** Pair publication followed by the key broadcast (phases
          [p6-publish] and [p6-key], two charged rounds). *)
  pairs : (int * int) array;  (** The published pair set. *)
  num_actions : int;  (** The joint action universe [A]. *)
  bundle_session : lo:int -> hi:int -> unit Spe_mpc.Session.t;
      (** One two-round bundle relay over the actions in [lo, hi):
          every provider contributes only its in-range bundles; the
          host decrypts at its finishing call and fills the shared
          per-action graph array.  Distinct calls must cover disjoint
          ranges; bundle payloads are per-action, so shard payload
          bytes sum exactly to the [lo = 0, hi = num_actions] relay.
          Raises [Invalid_argument] on an out-of-range window. *)
  result : unit -> Protocol6.result;
      (** The merged result; raises [Failure] until every bundle
          session built from this value has been driven through its
          host finishing call. *)
}
(** The pipeline cut at its natural shard seam.  All randomness — the
    pair obfuscation, the keygen, every Paillier encryption — is drawn
    at [prepare] time in the central order, so the merged result is
    bit-identical to {!Protocol6.run} for {e any} partition of the
    action range. *)

val prepare :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol6.config ->
  prepared
(** Same contract as {!make}; {!make} itself is
    [setup_session] sequenced with the full-range bundle session. *)

val make :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol6.config ->
  session
(** Same contract as {!Protocol6.run}: [m >= 2] exclusive provider
    logs over the graph's user universe.  Raises [Invalid_argument]
    otherwise. *)

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol6.config ->
  Protocol6.result
(** {!make} driven by {!Spe_mpc.Session.run}. *)
