(** An execution plan: a pipeline cut into {e stages}, each stage a set
    of sessions with no mutual dataflow, so any engine may drive a
    stage's sessions concurrently (the [Spe_net.Endpoint] worker pool
    does) — while dataflow {e between} stages still travels through the
    party closures, exactly as {!Spe_mpc.Session.seq} phases do.

    A plan is engine-agnostic data.  {!to_session} lowers it to one
    ordinary session (stage sessions multiplexed with
    {!Spe_mpc.Session.all}, stages sequenced with
    {!Spe_mpc.Session.seq}) for the simulated engine; the transport
    engines instead walk {!field-stages} in order and hand each stage's
    array to a worker pool, one connection group per session.  Both
    executions drive the same party closures, so {!field-result} reads
    the same answer either way — the sharded pipelines in [Shard] rely
    on this to stay bit-identical across engines and shard counts. *)

type stage = {
  label : string;  (** Stage name for progress/observability. *)
  epoch : int option;
      (** For epoch-delta plans ([Delta]): which release epoch this
          stage belongs to, so engines and daemons can attribute
          progress per epoch.  [None] for batch pipelines. *)
  sessions : unit Spe_mpc.Session.t array;
      (** Mutually independent sessions; for sharded pipelines, one per
          shard. *)
}

type 'r t = {
  shards : int;  (** The effective shard count [k] the plan was cut into. *)
  stages : stage list;  (** Executed strictly in order. *)
  result : unit -> 'r;
      (** Read the merged result out of the party closures; call only
          after every stage has been driven to quiescence. *)
}

val stage : ?epoch:int -> label:string -> unit Spe_mpc.Session.t array -> stage
(** Stage constructor; [epoch] (>= 0 when given) tags the stage with
    its release epoch. *)

val make : shards:int -> stages:stage list -> result:(unit -> 'r) -> 'r t
(** Raises [Invalid_argument] on a non-positive shard count, an empty
    stage list, or a stage with no sessions. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-compose the result thunk. *)

val total_rounds : 'r t -> int
(** The sum of every stage session's declared rounds — the charged
    round count {!to_session} executes, and what the transport engines
    report as the plan's [NR]. *)

val to_session : 'r t -> 'r Spe_mpc.Session.t
(** Lower the plan to a single session for serial engines: each
    stage's sessions are multiplexed with {!Spe_mpc.Session.all}
    (single-session stages are taken as-is, keeping their own phase
    labels), and stages are sequenced with {!Spe_mpc.Session.seq}. *)
