(** Protocol 6 — secure computation of the propagation graphs
    [PG(alpha)] for all actions (Sec. 6.1, exclusive case).

    The host publishes an obfuscated pair set [Omega_E'] and a public
    encryption key.  Each provider computes, for each action it
    controls, the vector of time differences [Delta_(alpha,i,j)] over
    the published pairs ([t_j - t_i] when both users performed the
    action in that order, [0] otherwise), encrypts every entry under
    the host's key, and sends the bundle to provider 1, who forwards
    the accumulated bundles to the host.  Only the host can decrypt; it
    reconstructs each [E(alpha)] by keeping the real arcs with a
    positive label.  From the propagation graphs (plus the activity
    denominators [a_i], obtained with the Protocol 4 machinery) the
    host computes every user's tau-influence score locally.

    The relaying through provider 1 means the host cannot attribute a
    [Delta] bundle to the provider that produced it, and provider 1 —
    lacking the private key — learns only how many actions each peer
    controls.

    The paper quotes ciphertext size [z = 1024] bits for RSA; the
    {!config} lets tests run with smaller keys while the Table 2 cost
    model uses the recommended size.  As an engineering extension,
    [pack_slots > 1] packs up to that many [Delta] entries into a
    single plaintext via {!Spe_mpc.Pack}, cutting the ciphertext count
    per action from [q] to [ceil(q / per)] where [per] is clamped to
    what the key and the native-int decode path admit
    ([Spe_mpc.Pack.max_slots]) — the ablation bench quantifies the
    saving, and PERFORMANCE.md derives it. *)

type scheme = Rsa | Paillier

type config = {
  c_factor : float;  (** Obfuscation blow-up for [E']. *)
  key_bits : int;  (** Public-key modulus size. *)
  scheme : scheme;
  pack_slots : int;
      (** Upper bound on [Delta] entries per ciphertext; [1] disables
          packing (bit-identical to the unpacked protocol). *)
  accel : bool;
      (** Crypto hot-path accelerations (hoisted Montgomery contexts,
          CRT decryption, fixed-base randomness).  On by default;
          [false] reproduces the pre-acceleration baseline for
          ablation benchmarks. *)
}

val default_config : config
(** [c = 2], RSA-1024, no packing, accelerations on — the paper's
    recommended setting. *)

type result = {
  graphs : Spe_influence.Propagation.t array;
      (** [PG(alpha)] per action, restricted to real arcs. *)
  pairs : (int * int) array;  (** The published [Omega_E']. *)
  ciphertexts : int;  (** Total ciphertexts that crossed the wire. *)
}

val check_exclusive : Spe_actionlog.Log.t array -> int -> unit
(** [check_exclusive logs num_actions] raises [Invalid_argument] when
    some action occurs in two providers' logs — the non-exclusive case
    requires the Protocol 5 preprocessing first. *)

val deltas_of_action :
  Spe_actionlog.Log.t -> pairs:(int * int) array -> action:int -> int array
(** The Delta vector of one action over the published pairs:
    [t_j - t_i] when both users acted and [j] strictly followed [i],
    else [0].  Shared with [Protocol6_distributed]. *)

val pack_deltas : per:int -> delta_bits:int -> int array -> int array
(** Pack consecutive groups of [per] deltas (each [< 2^delta_bits])
    into one plaintext integer, little-endian — a thin wrapper over
    {!Spe_mpc.Pack.pack} shared with [Protocol6_distributed]. *)

val unpack_deltas : per:int -> delta_bits:int -> q:int -> int array -> int array
(** Inverse of {!pack_deltas} for a vector of [q] deltas. *)

val slots_per_plaintext : config -> delta_bits:int -> int
(** The effective [per]: [config.pack_slots] clamped to what the key
    and the native-int decode path admit (at least 1).  Exposed so the
    distributed engines and the cost model agree with {!run} on the
    chunk count. *)

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  config ->
  result
(** [run st ~wire ~graph ~logs config] executes the protocol over
    [m >= 2] exclusive provider logs (every action's records live in
    exactly one log; raises [Invalid_argument] otherwise, as the
    non-exclusive case requires the Sec. 5.2 preprocessing first).
    Wire rounds: pair publication, key broadcast, bundles to provider
    1, forward to host — 4 rounds as in Table 2. *)
