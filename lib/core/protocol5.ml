module State = Spe_rng.State
module Perm = Spe_rng.Perm
module Wire = Spe_mpc.Wire
module Log = Spe_actionlog.Log
module Shift_cipher = Spe_crypto.Shift_cipher

type obfuscation = Basic | Enhanced

type class_counters = {
  a : int array;
  c_table : (int * int, int array) Hashtbl.t;
  h : int;
}

(* An obfuscated record as it travels to the trusted party.  We do not
   reuse Log.t because fake-user padding intentionally repeats
   (user, action) pairs across time slots in ways Log.t's at-most-once
   invariant would collapse. *)
type obf_record = { user : int; action : int; time : int }

(* The trusted party's computation: unify, dedup real (user, action)
   duplicates to the earliest stamp, then count lagged co-occurrences
   per action using the supplied window test. *)
let trusted_count ~h ~lag_of records =
  let best = Hashtbl.create (List.length records) in
  List.iter
    (fun r ->
      match Hashtbl.find_opt best (r.user, r.action) with
      | Some t0 when t0 <= r.time -> ()
      | _ -> Hashtbl.replace best (r.user, r.action) r.time)
    records;
  let by_action = Hashtbl.create 64 in
  let a_table = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (user, action) time ->
      Hashtbl.replace by_action action
        ((user, time) :: (Option.value ~default:[] (Hashtbl.find_opt by_action action)));
      Hashtbl.replace a_table user (1 + Option.value ~default:0 (Hashtbl.find_opt a_table user)))
    best;
  let c_table = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _action members ->
      List.iter
        (fun (u, t) ->
          List.iter
            (fun (u', t') ->
              if u <> u' then
                match lag_of t t' with
                | Some lag ->
                  let row =
                    match Hashtbl.find_opt c_table (u, u') with
                    | Some row -> row
                    | None ->
                      let row = Array.make h 0 in
                      Hashtbl.replace c_table (u, u') row;
                      row
                  in
                  row.(lag - 1) <- row.(lag - 1) + 1
                | None -> ())
            members)
        members)
    by_action;
  (a_table, c_table)

(* Message size of one obfuscated record. *)
let record_bits ~num_users ~num_actions ~period =
  Wire.bits_for_int_mod (max 2 num_users)
  + Wire.bits_for_int_mod (max 2 num_actions)
  + Wire.bits_for_int_mod (max 2 period)

(* Size of the counters message from the trusted party. *)
let counters_bits ~num_users ~bound ~h ~n_a ~n_c =
  let user_bits = Wire.bits_for_int_mod (max 2 num_users) in
  let count_bits = Wire.bits_for_int_mod (max 2 (bound + 1)) in
  (n_a * (user_bits + count_bits)) + (n_c * ((2 * user_bits) + (h * count_bits)))

let validate ~providers ~trusted ~logs =
  let d = Array.length providers in
  if d < 1 then invalid_arg "Protocol5.run: need at least one provider";
  if Array.length logs <> d then invalid_arg "Protocol5.run: one log per provider";
  if Array.exists (fun p -> p = trusted) providers then
    invalid_arg "Protocol5.run: trusted party must be outside the class providers";
  let n = Log.num_users logs.(0) and na = Log.num_actions logs.(0) in
  Array.iter
    (fun l ->
      if Log.num_users l <> n || Log.num_actions l <> na then
        invalid_arg "Protocol5.run: mismatched log universes")
    logs;
  (d, n, na)

(* Everything both twins derive from the jointly drawn secrets: the
   obfuscated per-provider logs, the public wire-value spaces, the
   window test on (possibly encrypted) stamps, and the representative's
   inversion.  All randomness is consumed here, in one fixed order —
   the central [run] and the distributed session draw identically. *)
type plan = {
  obf_logs : obf_record list array;
  obf_users : int;
  period : int;
  lag_of : int -> int -> int option;
  unobfuscate :
    (int, int) Hashtbl.t -> (int * int, int array) Hashtbl.t -> class_counters;
}

let prepare st ~h ~logs ~obfuscation =
  if Array.length logs < 1 then invalid_arg "Protocol5.prepare: need at least one provider";
  let d = Array.length logs in
  let n = Log.num_users logs.(0) in
  let num_actions = Log.num_actions logs.(0) in
  (* Secrets drawn jointly by the class providers (shared generator;
     semi-honest model, see DESIGN.md). *)
  let sigma = Perm.random st (max 1 num_actions) in
  let horizon = 1 + Array.fold_left (fun acc l -> max acc (Log.max_time l)) 0 logs in
  match obfuscation with
  | Basic ->
    let pi = Perm.random st n in
    let obf_logs =
      Array.map
        (fun l ->
          List.map
            (fun (r : Log.record) ->
              { user = Perm.apply pi r.Log.user; action = Perm.apply sigma r.Log.action;
                time = r.Log.time })
            (Log.records l))
        logs
    in
    let lag_of t t' =
      let diff = t' - t in
      if diff >= 1 && diff <= h then Some diff else None
    in
    (* The representative inverts the user permutation. *)
    let unobfuscate a_table c_table =
      let inv = Perm.inverse pi in
      let a = Array.make n 0 in
      Hashtbl.iter (fun u cnt -> a.(Perm.apply inv u) <- cnt) a_table;
      let c_out = Hashtbl.create (Hashtbl.length c_table) in
      Hashtbl.iter
        (fun (u, u') row -> Hashtbl.replace c_out (Perm.apply inv u, Perm.apply inv u') row)
        c_table;
      { a; c_table = c_out; h }
    in
    { obf_logs; obf_users = n; period = horizon; lag_of; unobfuscate }
  | Enhanced ->
    let period = horizon + h in
    let cipher = Shift_cipher.random st ~period in
    (* Padding demand per provider: every slot of [0, period) is raised
       to that provider's busiest-slot load W_k. *)
    let slot_counts =
      Array.map
        (fun l ->
          let w = Array.make period 0 in
          List.iter (fun (r : Log.record) -> w.(r.Log.time) <- w.(r.Log.time) + 1) (Log.records l);
          w)
        logs
    in
    let demand =
      Array.map
        (fun w ->
          let wk = Array.fold_left max 0 w in
          Array.fold_left (fun acc c -> acc + (wk - c)) 0 w)
        slot_counts
    in
    (* Fake users: provider k needs enough ids that no (fake user,
       action) pair repeats. *)
    let fake_needed =
      Array.map
        (fun need -> if need = 0 then 0 else (need + max 1 num_actions - 1) / max 1 num_actions)
        demand
    in
    let total_fake = Array.fold_left ( + ) 0 fake_needed in
    let n_obf = n + total_fake in
    (* One random permutation of the obfuscated id space: the first n
       entries rename the true users (the injection f), the rest form
       the per-provider fake pools. *)
    let rho = Perm.random st n_obf in
    let fake_offset = Array.make d 0 in
    let running = ref n in
    Array.iteri
      (fun k need ->
        fake_offset.(k) <- !running;
        running := !running + need)
      fake_needed;
    let obf_logs =
      Array.mapi
        (fun k l ->
          let real =
            List.map
              (fun (r : Log.record) ->
                { user = Perm.apply rho r.Log.user; action = Perm.apply sigma r.Log.action;
                  time = Shift_cipher.encrypt cipher r.Log.time })
              (Log.records l)
          in
          (* Pad every slot to W_k with this provider's fake pool,
             walking the (fake user, action) grid so pairs never
             repeat. *)
          let w = slot_counts.(k) in
          let wk = Array.fold_left max 0 w in
          let next_pair = ref 0 in
          let fakes = ref [] in
          for t = 0 to period - 1 do
            for _ = 1 to wk - w.(t) do
              let fake_idx = fake_offset.(k) + (!next_pair / max 1 num_actions) in
              let action = !next_pair mod max 1 num_actions in
              incr next_pair;
              fakes :=
                { user = Perm.apply rho fake_idx; action = Perm.apply sigma action;
                  time = Shift_cipher.encrypt cipher t }
                :: !fakes
            done
          done;
          real @ !fakes)
        logs
    in
    let lag_of e e' =
      if Shift_cipher.follows_within cipher ~h e e' then Some (((e' - e) mod period + period) mod period)
      else None
    in
    (* The representative keeps only counters whose ids are images of
       true users and inverts the renaming. *)
    let unobfuscate a_table c_table =
      let inv = Perm.inverse rho in
      let is_true obf_id = Perm.apply inv obf_id < n in
      let a = Array.make n 0 in
      Hashtbl.iter
        (fun u cnt -> if is_true u then a.(Perm.apply inv u) <- cnt)
        a_table;
      let c_out = Hashtbl.create (Hashtbl.length c_table) in
      Hashtbl.iter
        (fun (u, u') row ->
          if is_true u && is_true u' then
            Hashtbl.replace c_out (Perm.apply inv u, Perm.apply inv u') row)
        c_table;
      { a; c_table = c_out; h }
    in
    { obf_logs; obf_users = n_obf; period; lag_of; unobfuscate }

let run st ~wire ~h ~providers ~trusted ~logs ~obfuscation =
  if h < 1 then invalid_arg "Protocol5.run: window must be >= 1";
  let _, _, num_actions = validate ~providers ~trusted ~logs in
  let representative = providers.(0) in
  let plan = prepare st ~h ~logs ~obfuscation in
  let rbits = record_bits ~num_users:plan.obf_users ~num_actions ~period:plan.period in
  Wire.round wire (fun () ->
      Array.iteri
        (fun k recs ->
          Wire.send wire ~src:providers.(k) ~dst:trusted ~bits:(List.length recs * rbits))
        plan.obf_logs);
  let a_table, c_table =
    trusted_count ~h ~lag_of:plan.lag_of (List.concat (Array.to_list plan.obf_logs))
  in
  Wire.round wire (fun () ->
      Wire.send wire ~src:trusted ~dst:representative
        ~bits:
          (counters_bits ~num_users:plan.obf_users ~bound:num_actions ~h
             ~n_a:(Hashtbl.length a_table) ~n_c:(Hashtbl.length c_table)));
  plan.unobfuscate a_table c_table

let to_provider_input class_sets ~pairs =
  match class_sets with
  | [] -> invalid_arg "Protocol5.to_provider_input: empty class list"
  | first :: rest ->
    let h = first.h and n = Array.length first.a in
    List.iter
      (fun cs ->
        if cs.h <> h || Array.length cs.a <> n then
          invalid_arg "Protocol5.to_provider_input: mismatched class counter shapes")
      rest;
    let a = Array.make n 0 in
    List.iter (fun cs -> Array.iteri (fun i v -> a.(i) <- a.(i) + v) cs.a) class_sets;
    let q = Array.length pairs in
    let c = Array.make_matrix q h 0 in
    List.iter
      (fun cs ->
        Array.iteri
          (fun k pair ->
            match Hashtbl.find_opt cs.c_table pair with
            | Some row -> Array.iteri (fun l v -> c.(k).(l) <- c.(k).(l) + v) row
            | None -> ())
          pairs)
      class_sets;
    { Protocol4.a; c }
