module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Cipher = Spe_crypto.Cipher
module Nat = Spe_bignum.Nat
module Propagation = Spe_influence.Propagation

type session = Protocol6.result Session.t

type prepared = {
  setup_session : unit Session.t;
  pairs : (int * int) array;
  num_actions : int;
  bundle_session : lo:int -> hi:int -> unit Session.t;
  result : unit -> Protocol6.result;
}

let prepare st ~graph ~logs config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol6_distributed.make: need at least two providers";
  if config.Protocol6.key_bits < 16 then
    invalid_arg "Protocol6_distributed.make: key too small";
  let n = Digraph.n graph in
  Array.iter
    (fun l ->
      if Log.num_users l <> n then
        invalid_arg "Protocol6_distributed.make: log/graph universe mismatch")
    logs;
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  Protocol6.check_exclusive logs num_actions;
  (* Steps 1-2: pair publication (draws the obfuscation). *)
  let publish, pairs, _received_of =
    Protocol4_distributed.publish_pairs_phase st ~graph ~m
      ~c_factor:config.Protocol6.c_factor
  in
  let publish = Session.with_label "p6-publish" publish in
  let q = Array.length pairs in
  let period = 1 + Array.fold_left (fun acc l -> max acc (Log.max_time l)) 0 logs in
  let delta_bits = Wire.bits_for_int_mod (max 2 (period + 1)) in
  let per = Protocol6.slots_per_plaintext config ~delta_bits in
  (* Step 3: host-local keygen, at the central draw position, declaring
     the packed plaintext width so a too-small key fails typed. *)
  let plain_bits = per * delta_bits in
  let cipher =
    match config.Protocol6.scheme with
    | Protocol6.Rsa ->
      Cipher.rsa ~plain_bits ~accel:config.Protocol6.accel st
        ~bits:config.Protocol6.key_bits
    | Protocol6.Paillier ->
      Cipher.paillier ~plain_bits ~accel:config.Protocol6.accel st
        ~bits:config.Protocol6.key_bits
  in
  let z = cipher.Cipher.public.Cipher.ciphertext_bits in
  let chunks_per_action = (q + per - 1) / per in
  (* The key-broadcast phase.  [Cipher.t] deliberately hides the key
     material behind closures, so the broadcast carries a placeholder
     natural of the key's exact wire width — the cost model sees the
     real key size, the providers use the shared [public] closure (the
     same semi-honest shared-object shorthand as the joint coin
     flips). *)
  let key_phase =
    let key_width = cipher.Cipher.public.Cipher.key_bits in
    let host_program ~round ~inbox:_ =
      if round = 1 then
        List.init m (fun k ->
            { Runtime.src = Wire.Host; dst = Wire.Provider k;
              payload = Runtime.Nats { width_bits = key_width; values = [| Nat.zero |] } })
      else []
    in
    let silent ~round:_ ~inbox:_ = [] in
    Session.with_label "p6-key"
      (Session.make
         ~parties:(Array.append [| Wire.Host |] (Array.init m (fun k -> Wire.Provider k)))
         ~programs:(Array.append [| host_program |] (Array.make m silent))
         ~rounds:1
         ~result:(fun () -> ()))
  in
  let setup_session = Session.map (fun (_, ()) -> ()) (Session.seq publish key_phase) in
  (* Steps 4-9: per controlled action, the delta vector over the
     published pairs, packed and encrypted.  The bundles are prepared
     here, in provider order over the {e full} action range, against
     the published pair set — this keeps the probabilistic Paillier
     stream on the single make-time draw order whatever the shard cut,
     so ciphertext {e sizes} and plaintexts are engine- and
     shard-independent. *)
  let bundles =
    Array.map
      (fun l ->
        List.map
          (fun action ->
            let deltas = Protocol6.deltas_of_action l ~pairs ~action in
            let plain = Protocol6.pack_deltas ~per ~delta_bits deltas in
            (action, Array.map cipher.Cipher.public.Cipher.encrypt_int plain))
          (Log.actions_present l))
      logs
  in
  let action_modulus = max 2 num_actions in
  let bundle_payload bundle =
    Runtime.Batch
      [
        Runtime.Ints
          { modulus = action_modulus;
            values = Array.of_list (List.map fst bundle) };
        Runtime.Nats { width_bits = z; values = Array.concat (List.map snd bundle) };
      ]
  in
  let decode_bundle = function
    | Runtime.Batch [ Runtime.Ints { values = actions; _ }; Runtime.Nats { values = cts; _ } ]
      ->
      List.init (Array.length actions) (fun i ->
          (actions.(i), Array.sub cts (i * chunks_per_action) chunks_per_action))
    | _ -> []
  in
  (* The merge target: one propagation graph per action, allocated
     up-front; bundle sessions fill {e disjoint} action ranges, so
     sharded and unsharded fills commute to the same array. *)
  let graphs = Array.init num_actions (fun action -> Propagation.of_arcs ~n ~action []) in
  let total_ciphertexts = ref 0 in
  let dones = ref [] in
  (* One bundle relay over the actions in [lo, hi): providers 2..m ship
     their in-range bundles to provider 1 (round 1), who forwards
     everything — own bundle first, then the peers' in party order — to
     the host (round 2); the host decrypts and fills the shared graph
     array at its finishing call.  Bundle payloads are per-action, so
     the shard payload bytes sum exactly to the unsharded relay. *)
  let bundle_session ~lo ~hi =
    if lo < 0 || hi < lo || hi > num_actions then
      invalid_arg "Protocol6_distributed.bundle_session: action range out of range";
    let shard_bundles =
      Array.map (List.filter (fun (action, _) -> action >= lo && action < hi)) bundles
    in
    let done_ = ref false in
    dones := done_ :: !dones;
    let provider_program k ~round ~inbox =
      match round with
      | 1 ->
        if k = 0 then []
        else
          [ { Runtime.src = Wire.Provider k; dst = Wire.Provider 0;
              payload = bundle_payload shard_bundles.(k) } ]
      | 2 when k = 0 ->
        let received =
          List.concat_map (fun msg -> decode_bundle msg.Runtime.payload) inbox
        in
        let all = shard_bundles.(0) @ received in
        [ { Runtime.src = Wire.Provider 0; dst = Wire.Host; payload = bundle_payload all } ]
      | _ -> []
    in
    let host_program ~round ~inbox =
      (if round = 3 then
         match List.concat_map (fun msg -> decode_bundle msg.Runtime.payload) inbox with
         | [] when q > 0 && List.exists (fun b -> b <> []) (Array.to_list shard_bundles) ->
           failwith "Protocol6_distributed: bundles never arrived"
         | all_bundles ->
           (* Steps 11-12 (central code shape): decrypt and keep the real
              arcs with a positive label. *)
           total_ciphertexts :=
             !total_ciphertexts
             + List.fold_left (fun acc (_, cts) -> acc + Array.length cts) 0 all_bundles;
           List.iter
             (fun (action, cts) ->
               let packed = Array.map cipher.Cipher.decrypt_int cts in
               let deltas = Protocol6.unpack_deltas ~per ~delta_bits ~q packed in
               let arcs = ref [] in
               Array.iteri
                 (fun k d ->
                   let u, v = pairs.(k) in
                   if d > 0 && Digraph.mem_edge graph u v then
                     arcs := { Propagation.src = u; dst = v; delta = d } :: !arcs)
                 deltas;
               graphs.(action) <- Propagation.of_arcs ~n ~action !arcs)
             all_bundles;
           done_ := true);
      []
    in
    Session.with_label "p6-bundles"
      (Session.make
         ~parties:(Array.append (Array.init m (fun k -> Wire.Provider k)) [| Wire.Host |])
         ~programs:(Array.append (Array.init m provider_program) [| host_program |])
         ~rounds:2
         ~result:(fun () -> ()))
  in
  let result () =
    if !dones = [] || List.exists (fun d -> not !d) !dones then
      failwith "Protocol6_distributed: host never decrypted";
    { Protocol6.graphs; pairs; ciphertexts = !total_ciphertexts }
  in
  { setup_session; pairs; num_actions; bundle_session; result }

let make st ~graph ~logs config =
  let p = prepare st ~graph ~logs config in
  Session.map
    (fun ((), ()) -> p.result ())
    (Session.seq p.setup_session (p.bundle_session ~lo:0 ~hi:p.num_actions))

let run st ~wire ~graph ~logs config = Session.run (make st ~graph ~logs config) ~wire
