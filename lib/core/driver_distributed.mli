(** The end-to-end pipelines as single composed {!Spe_mpc.Session}s,
    runnable on any engine: the in-process {!Spe_mpc.Session.run}, or
    the [Spe_net] memory-channel and socket endpoints
    ([Spe_net.Endpoint.run_session_memory] / [run_session_socket]).

    Each builder mirrors the corresponding central driver phase for
    phase and draw for draw, so from an equal-positioned generator the
    session results are {e bit-identical} to [Driver]'s, and the
    charged round/message counts equal the central [NR]/[NM]
    statistics.  Message sizes differ only by the typed payload
    encodings (DESIGN.md, "central vs distributed wire sizes"); the
    cross-engine tests pin both facts. *)

val links_exclusive :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol4.config ->
  Protocol4.result Spe_mpc.Session.t
(** The Sec. 5.1 pipeline over exclusive provider logs
    ({!Protocol4_distributed.make_with_logs}). *)

val links_non_exclusive :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  spec:Spe_actionlog.Partition.class_spec ->
  obfuscation:Protocol5.obfuscation ->
  Protocol4.config ->
  Protocol4.result Spe_mpc.Session.t
(** The Sec. 5.2 pipeline: one {!Protocol5_distributed} session per
    action class (same trusted-party seating as the central driver),
    sequenced in class order, then the Protocol 4 core with each
    representative's program reading the class counters delivered by
    the earlier phases. *)

type scores = {
  scores : float array;  (** [score(v_i)] per user (Def. 3.3). *)
  graphs : Spe_influence.Propagation.t array;
      (** The propagation graphs the host reconstructed. *)
}

val scores_final_phase :
  n:int ->
  p0:Spe_mpc.Wire.party ->
  p1:Spe_mpc.Wire.party ->
  masks:float array ->
  blinds:float array ->
  share1:(unit -> int array) ->
  share2:(unit -> int array) ->
  numerators_of:(unit -> int array) ->
  float array Spe_mpc.Session.t
(** The five-round final unmasking phase ([scores-final]) on its own:
    mask agreement, masked denominators to the host, and the blinded
    round-trip host -> player 1 -> host, the host dividing out its
    blinds at the finishing call.  [share1]/[share2] read the players'
    Protocol 2 activity shares and [numerators_of] the Protocol 6
    sphere totals; all three are forced only once the phase is
    executing, so any earlier composition — monolithic or sharded
    ([Shard]) — can deliver them.  The session result is the score
    vector. *)

val user_scores_exclusive :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  tau:int ->
  modulus:int ->
  Protocol6.config ->
  scores Spe_mpc.Session.t
(** The Sec. 6 pipeline: {!Protocol6_distributed} for the propagation
    graphs, the batched Protocol 2 over the activity counters, the
    Protocol 4-style masking toward the host, and the blinded
    unmasking round-trip (host -> player 1 -> host, see [Driver]'s
    interface documentation) — the host dividing out its blinds at the
    finishing call. *)
