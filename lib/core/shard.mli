(** Sharded pipeline construction: cut the Protocol 4/5/6 pipelines
    into [k] per-shard sessions organised as a {!Plan}, merging to {e
    exactly} the unsharded [Driver_distributed] output.

    {2 Permute-then-shard}

    Sharding must not change what any party learns.  All joint
    randomness — the pair obfuscation, the batched Protocol 2 pieces,
    masks and {e the secret permutation}, the Protocol 6 keygen and
    encryptions — is drawn at plan-build time in exactly the unsharded
    (central) order; shards are then contiguous chunks of the {e
    already-permuted} published order.  The shard boundary is therefore
    a public function of published sizes and [k] alone, and leaks
    nothing about which counters landed in which shard; and because no
    draw depends on [k], every shard count merges to bit-identical
    results (DESIGN.md, "Sharded execution").

    For the link pipelines the n + q counter groups (n user counters,
    then the q published pair groups) are partitioned; each shard gets
    its own pair-slice publication and verdict-less Protocol 2 core
    ({!Spe_mpc.Protocol2_distributed.make_core}), one full-batch
    verdict session announces all wraps in a single [Bits] message
    (byte-identical to the unsharded announcement), and per-shard
    masking sessions scatter into the host's masked arrays.  For the
    score pipeline the {e action} range of the Protocol 6 bundle relay
    is partitioned ({!Protocol6_distributed.prepare}); the activity
    Protocol 2 and the final unmasking stay single-session.  In both
    cases per-shard payload bytes sum exactly to the unsharded totals
    ([MS] invariant), while rounds and message counts grow with [k] by
    the closed forms in DESIGN.md. *)

val links_exclusive :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  shards:int ->
  Protocol4.config ->
  Protocol4.result Plan.t
(** The Sec. 5.1 pipeline cut into [min shards (n + q)] shards.  Same
    contract as {!Driver_distributed.links_exclusive}; the plan result
    is bit-identical to it on any engine, for any [shards >= 1] (and
    [shards = 1] is the monolithic session wire-for-wire). *)

val links_non_exclusive :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  spec:Spe_actionlog.Partition.class_spec ->
  obfuscation:Protocol5.obfuscation ->
  shards:int ->
  Protocol4.config ->
  Protocol4.result Plan.t
(** The Sec. 5.2 pipeline: the Protocol 5 class sessions (built in
    class order, same draws as the unsharded driver) run as one
    concurrent pre-stage, then the sharded Protocol 4 core.  Same
    contract as {!Driver_distributed.links_non_exclusive}. *)

val user_scores_exclusive :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  tau:int ->
  modulus:int ->
  shards:int ->
  Protocol6.config ->
  Driver_distributed.scores Plan.t
(** The Sec. 6 pipeline with the bundle relay cut into
    [min shards num_actions] action-range shards.  Same contract as
    {!Driver_distributed.user_scores_exclusive}. *)
