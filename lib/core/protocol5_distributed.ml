module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Log = Spe_actionlog.Log

type session = Protocol5.class_counters Session.t

let make st ~h ~providers ~trusted ~logs ~obfuscation =
  if h < 1 then invalid_arg "Protocol5_distributed.make: window must be >= 1";
  let d = Array.length providers in
  if d < 1 then invalid_arg "Protocol5_distributed.make: need at least one provider";
  if Array.length logs <> d then invalid_arg "Protocol5_distributed.make: one log per provider";
  if Array.exists (fun p -> p = trusted) providers then
    invalid_arg "Protocol5_distributed.make: trusted party must be outside the class providers";
  let num_actions = Log.num_actions logs.(0) in
  Array.iter
    (fun l ->
      if Log.num_users l <> Log.num_users logs.(0) || Log.num_actions l <> num_actions then
        invalid_arg "Protocol5_distributed.make: mismatched log universes")
    logs;
  let representative = providers.(0) in
  (* All the class randomness (the joint renaming secrets, the shift
     cipher) is drawn here, in the central order; the programs only
     ship and count. *)
  let plan = Protocol5.prepare st ~h ~logs ~obfuscation in
  let user_modulus = max 2 plan.Protocol5.obf_users in
  let action_modulus = max 2 num_actions in
  let time_modulus = max 2 plan.Protocol5.period in
  let count_modulus = max 2 (num_actions + 1) in
  let record_moduli = [| user_modulus; action_modulus; time_modulus |] in
  let a_moduli = [| user_modulus; count_modulus |] in
  let c_moduli = Array.append [| user_modulus; user_modulus |] (Array.make h count_modulus) in
  let result = ref None in
  let decode_counters inbox =
    List.iter
      (fun msg ->
        match msg.Runtime.payload with
        | Runtime.Batch
            [ Runtime.Tuples { rows = a_rows; _ }; Runtime.Tuples { rows = c_rows; _ } ]
          when msg.Runtime.src = trusted ->
          let a_table = Hashtbl.create (Array.length a_rows) in
          Array.iter (fun row -> Hashtbl.replace a_table row.(0) row.(1)) a_rows;
          let c_table = Hashtbl.create (Array.length c_rows) in
          Array.iter
            (fun row -> Hashtbl.replace c_table (row.(0), row.(1)) (Array.sub row 2 h))
            c_rows;
          result := Some (plan.Protocol5.unobfuscate a_table c_table)
        | _ -> ())
      inbox
  in
  let provider_program k ~round ~inbox =
    match round with
    | 1 ->
      (* Round 1: every class provider ships its obfuscated class log. *)
      let rows =
        Array.of_list
          (List.map
             (fun r -> [| r.Protocol5.user; r.Protocol5.action; r.Protocol5.time |])
             plan.Protocol5.obf_logs.(k))
      in
      [ { Runtime.src = providers.(k); dst = trusted;
          payload = Runtime.Tuples { moduli = record_moduli; rows } } ]
    | _ ->
      (* Round 3 (the finishing call): the representative receives the
         counter tables and inverts the obfuscation. *)
      if k = 0 then decode_counters inbox;
      []
  in
  let trusted_program ~round ~inbox =
    if round = 2 then begin
      let records =
        List.concat_map
          (fun msg ->
            match msg.Runtime.payload with
            | Runtime.Tuples { moduli; rows } when moduli = record_moduli ->
              List.map
                (fun row -> { Protocol5.user = row.(0); action = row.(1); time = row.(2) })
                (Array.to_list rows)
            | _ -> [])
          inbox
      in
      let a_table, c_table =
        Protocol5.trusted_count ~h ~lag_of:plan.Protocol5.lag_of records
      in
      let a_rows =
        Array.of_list (Hashtbl.fold (fun u cnt acc -> [| u; cnt |] :: acc) a_table [])
      in
      let c_rows =
        Array.of_list
          (Hashtbl.fold
             (fun (u, u') row acc -> Array.append [| u; u' |] row :: acc)
             c_table [])
      in
      [ { Runtime.src = trusted; dst = representative;
          payload =
            Runtime.Batch
              [ Runtime.Tuples { moduli = a_moduli; rows = a_rows };
                Runtime.Tuples { moduli = c_moduli; rows = c_rows } ] } ]
    end
    else []
  in
  let parties = Array.append providers [| trusted |] in
  let programs =
    Array.append (Array.init d provider_program) [| trusted_program |]
  in
  Session.with_label "p5-class"
  @@ Session.make ~parties ~programs ~rounds:2 ~result:(fun () ->
         match !result with
         | Some counters -> counters
         | None -> failwith "Protocol5_distributed: counters never arrived")

let run st ~wire ~h ~providers ~trusted ~logs ~obfuscation =
  Session.run (make st ~h ~providers ~trusted ~logs ~obfuscation) ~wire
