module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Cipher = Spe_crypto.Cipher
module Propagation = Spe_influence.Propagation

type scheme = Rsa | Paillier

type config = {
  c_factor : float;
  key_bits : int;
  scheme : scheme;
  pack_slots : int;
  accel : bool;
}

let default_config =
  { c_factor = 2.; key_bits = 1024; scheme = Rsa; pack_slots = 1; accel = true }

type result = {
  graphs : Propagation.t array;
  pairs : (int * int) array;
  ciphertexts : int;
}

let check_exclusive logs num_actions =
  let owner = Array.make num_actions (-1) in
  Array.iteri
    (fun k l ->
      List.iter
        (fun action ->
          if owner.(action) >= 0 && owner.(action) <> k then
            invalid_arg "Protocol6.run: logs are not exclusive (run Protocol 5 first)";
          owner.(action) <- k)
        (Log.actions_present l))
    logs

(* Delta vector of one action over the published pairs: t_j - t_i when
   both users acted and j strictly followed i, else 0. *)
let deltas_of_action log ~pairs ~action =
  let time = Hashtbl.create 16 in
  List.iter (fun (u, t) -> Hashtbl.replace time u t) (Log.by_action log action);
  Array.map
    (fun (i, j) ->
      match (Hashtbl.find_opt time i, Hashtbl.find_opt time j) with
      | Some ti, Some tj when tj > ti -> tj - ti
      | _ -> 0)
    pairs

(* Packing lives in Spe_mpc.Pack; these wrappers keep the historical
   labelled interface shared with Protocol6_distributed. *)
let pack_deltas ~per ~delta_bits deltas =
  Spe_mpc.Pack.pack (Spe_mpc.Pack.create ~slots:per ~slot_bits:delta_bits) deltas

let unpack_deltas ~per ~delta_bits ~q packed =
  Spe_mpc.Pack.unpack (Spe_mpc.Pack.create ~slots:per ~slot_bits:delta_bits) ~q packed

(* Admissible slots per plaintext for this run's key and delta width. *)
let slots_per_plaintext config ~delta_bits =
  max 1
    (min config.pack_slots
       (Spe_mpc.Pack.max_slots ~key_bits:config.key_bits ~slot_bits:delta_bits))

let run st ~wire ~graph ~logs config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol6.run: need at least two providers";
  if config.key_bits < 16 then invalid_arg "Protocol6.run: key too small";
  let n = Digraph.n graph in
  Array.iter
    (fun l ->
      if Log.num_users l <> n then invalid_arg "Protocol6.run: log/graph universe mismatch")
    logs;
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  check_exclusive logs num_actions;
  (* Steps 1-2. *)
  let pairs = Protocol4.publish_pairs st ~wire ~graph ~m ~c_factor:config.c_factor in
  let q = Array.length pairs in
  let period = 1 + Array.fold_left (fun acc l -> max acc (Log.max_time l)) 0 logs in
  let delta_bits = Wire.bits_for_int_mod (max 2 (period + 1)) in
  let per = slots_per_plaintext config ~delta_bits in
  (* Step 3: keygen and broadcast.  Declaring the packed width to
     keygen turns a too-small key into a typed Key_too_small error
     instead of silently wrapped ciphertexts. *)
  let plain_bits = per * delta_bits in
  let cipher =
    match config.scheme with
    | Rsa -> Cipher.rsa ~plain_bits ~accel:config.accel st ~bits:config.key_bits
    | Paillier -> Cipher.paillier ~plain_bits ~accel:config.accel st ~bits:config.key_bits
  in
  let z = cipher.Cipher.public.Cipher.ciphertext_bits in
  Wire.round wire (fun () ->
      for k = 0 to m - 1 do
        Wire.send wire ~src:Wire.Host ~dst:(Wire.Provider k)
          ~bits:cipher.Cipher.public.Cipher.key_bits
      done);
  (* Steps 4-9: per controlled action, encrypt the (packed) delta
     vector. *)
  let encrypt_action log action =
    let deltas = deltas_of_action log ~pairs ~action in
    let plain = pack_deltas ~per ~delta_bits deltas in
    (action, Array.map cipher.Cipher.public.Cipher.encrypt_int plain)
  in
  let bundles =
    Array.map
      (fun l -> List.map (encrypt_action l) (Log.actions_present l))
      logs
  in
  let bundle_ciphertexts b =
    List.fold_left (fun acc (_, cts) -> acc + Array.length cts) 0 b
  in
  (* Providers 2..m ship their bundles to provider 1. *)
  Wire.round wire (fun () ->
      for k = 1 to m - 1 do
        Wire.send wire ~src:(Wire.Provider k) ~dst:(Wire.Provider 0)
          ~bits:(bundle_ciphertexts bundles.(k) * z)
      done);
  (* Step 10: provider 1 forwards everything to the host. *)
  let all_bundles = List.concat (Array.to_list (Array.map (fun b -> b) bundles)) in
  let total_ciphertexts = bundle_ciphertexts all_bundles in
  Wire.round wire (fun () ->
      Wire.send wire ~src:(Wire.Provider 0) ~dst:Wire.Host ~bits:(total_ciphertexts * z));
  (* Steps 11-12: decrypt and rebuild the labelled arc sets, keeping
     real arcs only. *)
  let graphs = Array.make num_actions (Propagation.of_arcs ~n ~action:0 []) in
  for action = 0 to num_actions - 1 do
    graphs.(action) <- Propagation.of_arcs ~n ~action []
  done;
  List.iter
    (fun (action, cts) ->
      let packed = Array.map cipher.Cipher.decrypt_int cts in
      let deltas = unpack_deltas ~per ~delta_bits ~q packed in
      let arcs = ref [] in
      Array.iteri
        (fun k d ->
          let u, v = pairs.(k) in
          if d > 0 && Digraph.mem_edge graph u v then
            arcs := { Propagation.src = u; dst = v; delta = d } :: !arcs)
        deltas;
      graphs.(action) <- Propagation.of_arcs ~n ~action !arcs)
    all_bundles;
  { graphs; pairs; ciphertexts = total_ciphertexts }
