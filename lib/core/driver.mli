(** End-to-end drivers: what a deployment actually calls.

    Each driver builds a fresh wire, runs the complete protocol stack,
    and returns the host-side outputs together with the wire statistics
    that the Sec. 7.1 evaluation reports.

    {2 The score-unmasking step}

    Sec. 6 states that the host obtains the score denominators [a_i]
    "as covered by Protocol 4", but the masked values [r_i * a_i] alone
    do not let the host finish the division because it does not know
    [r_i].  We complete the protocol with a blinded round-trip, noted
    in DESIGN.md: the host computes the numerators
    [N_i = sum_alpha |Inf_tau(v_i, alpha)|] from the Protocol 6 output,
    blinds [sigma_i = N_i / (r_i * a_i)] with its own fresh mask
    [rho_i] (drawn from the same heavy-tailed family), and sends
    [rho_i * sigma_i] to player 1; player 1 — who knows [r_i] —
    multiplies and returns [rho_i * N_i / a_i]; the host strips
    [rho_i].  Player 1 observes only [rho_i * score_i], a masked value
    carrying no more information than Protocol 3's masked
    observations; the host learns [score_i] and hence (for [N_i > 0])
    [a_i = N_i / score_i], which is implied by its legitimate output
    anyway. *)

type link_result = {
  strengths : ((int * int) * float) list;
      (** [p_(i,j)] per real arc, as the host computed them. *)
  wire : Spe_mpc.Wire.stats;
  transcript : Spe_mpc.Wire.message list;
      (** Full message transcript, for tracing and audits. *)
  detail : Protocol4.result;
}

val link_strengths_exclusive :
  ?trace:Spe_obs.Trace.t ->
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  Protocol4.config ->
  link_result
(** The Sec. 5.1 pipeline over exclusive provider logs.

    When [trace] is recording, the run is wrapped in a [Session] span
    and the simulated transcript is replayed into the trace's
    [Messages]/[Payload_bytes] counters (bytes round up per message),
    so {!Spe_obs.Metrics.of_trace} works identically on central and
    engine-hosted runs.  The central pipelines expose coarser phase
    maps than the composed sessions — here a single ["p4"] segment. *)

val pick_trusted : m:int -> class_members:int array -> Spe_mpc.Wire.party
(** The trusted third party for one action class: a provider outside
    the class when one exists, the host otherwise.  Shared with
    [Driver_distributed] so both pipelines seat the same parties. *)

val link_strengths_non_exclusive :
  ?trace:Spe_obs.Trace.t ->
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  spec:Spe_actionlog.Partition.class_spec ->
  obfuscation:Protocol5.obfuscation ->
  Protocol4.config ->
  link_result
(** The Sec. 5.2 pipeline: Protocol 5 per action class (the trusted
    third party is a provider outside the class when one exists, the
    host otherwise; the class representative is its first provider),
    then Protocol 4 over the representatives' aggregated counters.
    [trace] as in {!link_strengths_exclusive}; the phase map derives
    from the wire's round deltas between stages
    (["p5-class"]/["p4-publish"]/["p4"]). *)

type score_result = {
  scores : float array;  (** [score(v_i)] per user (Def. 3.3). *)
  wire : Spe_mpc.Wire.stats;
  transcript : Spe_mpc.Wire.message list;
  graphs : Spe_influence.Propagation.t array;
      (** The propagation graphs the host reconstructed. *)
}

val user_scores_exclusive :
  ?trace:Spe_obs.Trace.t ->
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  tau:int ->
  modulus:int ->
  Protocol6.config ->
  score_result
(** The Sec. 6 pipeline: Protocol 6 for the propagation graphs, the
    Protocol 2/3 machinery for the masked denominators, and the blinded
    unmasking round-trip described above.  [modulus] is the share
    modulus for the denominator sharing.  [trace] as in
    {!link_strengths_exclusive}; phases
    ["p6"]/["p2-shares"]/["scores-final"]. *)
