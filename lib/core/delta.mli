(** Epoch-delta recomputation for the exclusive-links pipeline.

    A streaming deployment re-releases the pair estimates every epoch,
    but most counters do not change between consecutive epochs.  This
    module re-runs Protocols 1–3 only over the {e dirty} counter
    groups — reusing the prior epoch's masked-share state for clean
    ones — and proves the optimisation is invisible: a Delta-mode run
    and a Full-mode run (every group recomputed every epoch) release
    {e bit-identical} estimates at every epoch, on any engine.

    {2 Counter groups}

    The unit of recomputation is the counter group of user [i]: the
    activity counter [a_i] together with every published pair sourced
    at [i].  The Protocol 3 mask [r_i] multiplies both the denominator
    [a_i] shares and the numerators of exactly those pairs, so the
    group must be re-shared and re-masked as a whole for the host's
    quotients to keep cancelling.  A group is dirty in an epoch when
    the window accumulator ({!Spe_influence.Stream}) reports its user
    or any of its sourced pairs changed; the dirty indices must refer
    to {e this} instance's published order ({!pairs}), so streaming
    callers build their accumulators over that array.

    {2 Keyed randomness and bit-identity}

    Each group's randomness (Protocol 1/2 pieces, wrap masks, batch
    permutation, Protocol 3 mask) is drawn from a private generator
    seeded by [(group_seed, group, version)], where a group's version
    counts the epochs that dirtied it.  Versions advance identically
    in both modes, so a Full-mode recomputation of a clean group
    replays its previous draws — and its previous inputs, since clean
    means unchanged counters — producing the same masked floats the
    caches already hold.  That, plus IEEE sign symmetry for the
    never-touched all-zero groups, is the whole bit-identity argument;
    the test suite pins it per epoch via the release {!release.digest}.

    This per-group keying is a different randomness architecture from
    the batch pipeline ([Shard]), so delta releases are {e not}
    bit-comparable to [Shard.links_exclusive] — the invariant is
    Delta ≡ Full at every epoch, with both within mask tolerance of
    the plaintext estimates.

    Privacy: each (group, version) is one independent execution of the
    Theorem 4.1 protocol; [Spe_privacy.Composition] bounds what the
    sequence of releases leaks. *)

type mode =
  | Delta  (** Recompute only the epoch's dirty groups. *)
  | Full  (** Recompute every group — the reference the delta must match. *)

type release = {
  epoch : int;
  estimates : float array;  (** Per published pair, the [p_ij] estimate. *)
  strengths : ((int * int) * float) list;  (** Estimates restricted to true arcs. *)
  digest : int;
      (** 61-bit FNV-1a over the estimate bit patterns, broadcast to
          every provider in the release round — the quantity the
          delta≡full check compares. *)
  recomputed : int;  (** Groups re-run this epoch (= dirty groups in Delta mode). *)
}

type epoch_input = {
  epoch : int;  (** Must be consecutive from 0. *)
  dirty_users : int list;  (** From {!Spe_influence.Stream.dirty_users}. *)
  dirty_pairs : int list;  (** From {!Spe_influence.Stream.dirty_pairs}. *)
  inputs : Protocol4.provider_input array;
      (** Per provider, the full windowed counter snapshot against
          {!pairs} — evaluated eagerly, so epochs can be planned ahead
          while the accumulators keep moving. *)
}

type t

val create :
  Spe_rng.State.t ->
  graph:Spe_graph.Digraph.t ->
  m:int ->
  num_actions:int ->
  group_seed:int ->
  Protocol4.config ->
  t
(** Draw the pair obfuscation from [st] and set up empty caches.
    [group_seed] keys the per-(group, version) randomness; a Delta and
    a Full instance meant to be compared must share both the seed of
    [st] and [group_seed].  Validation as in [Shard.links]. *)

val pairs : t -> (int * int) array
(** The published pair order every dirty index refers to. *)

val epoch_stages : t -> mode:mode -> epoch_input -> Plan.stage list
(** Plan one epoch: a publish stage (epoch 0 only), one concurrent
    stage of per-group recomputation sessions (absent when nothing is
    dirty in Delta mode), and the release stage.  Stages carry the
    epoch in {!Plan.stage.epoch} and phase labels are prefixed
    [e<epoch>/].  Mutates the instance (versions, epoch cursor), so
    feed each epoch exactly once, in order; the returned stages must
    be executed before the next epoch's stages are {e run} (building
    ahead is fine — inputs are snapshots).  Raises [Invalid_argument]
    on a non-consecutive epoch or malformed inputs. *)

val epoch_plan : t -> mode:mode -> epoch_input -> release Plan.t
(** {!epoch_stages} wrapped as a single-epoch plan whose result is the
    epoch's {!release} — what [spe stream] drives per epoch. *)

val releases : t -> release list
(** Every release produced so far, ascending by epoch. *)

val digest_of_estimates : float array -> int
(** The release digest function (61-bit FNV-1a over IEEE bit
    patterns), exposed for verifiers. *)
