module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Protocol2 = Spe_mpc.Protocol2
module Digraph = Spe_graph.Digraph
module Obfuscate = Spe_graph.Obfuscate
module Log = Spe_actionlog.Log
module Counters = Spe_influence.Counters

type estimator = Eq1 | Eq2 of Spe_influence.Link_strength.weights

type config = { c_factor : float; modulus : int; h : int; estimator : estimator }

let default_config ~h = { c_factor = 2.; modulus = 1 lsl 40; h; estimator = Eq1 }

type provider_input = { a : int array; c : int array array }

let provider_input_of_log log ~h ~pairs =
  let ct = Counters.compute log ~h ~pairs in
  { a = ct.Counters.a; c = ct.Counters.c }

type result = {
  strengths : ((int * int) * float) list;
  pairs : (int * int) array;
  pair_estimates : float array;
  p2_leaks : Protocol2.leak array;
  p3_leaks : Protocol2.leak array;
}

let publish_pairs st ~wire ~graph ~m ~c_factor =
  let ob = Obfuscate.make st graph ~c:c_factor in
  let q = Obfuscate.size ob in
  let node_bits = Wire.bits_for_int_mod (max 2 (Digraph.n graph)) in
  Wire.round wire (fun () ->
      for k = 0 to m - 1 do
        Wire.send wire ~src:Wire.Host ~dst:(Wire.Provider k) ~bits:(q * 2 * node_bits)
      done);
  let pairs = Array.make q (0, 0) in
  Obfuscate.iteri ob (fun i u v -> pairs.(i) <- (u, v));
  pairs

let validate_inputs ~n ~q ~h inputs =
  let m = Array.length inputs in
  if m < 2 then invalid_arg "Protocol4.run: need at least two providers";
  Array.iter
    (fun input ->
      if Array.length input.a <> n then invalid_arg "Protocol4.run: activity vector length";
      if Array.length input.c <> q then invalid_arg "Protocol4.run: lag counter pair count";
      Array.iter
        (fun row -> if Array.length row <> h then invalid_arg "Protocol4.run: lag counter width")
        input.c)
    inputs;
  m

(* The counters provider k contributes to the batched Protocol 2,
   flattened as [a_0..a_(n-1); per-pair numerator counters].  For Eq. 1
   the numerator counter of a pair is b^h (the lag row-sum); for Eq. 2
   the h lag counters are shared individually. *)
let flatten_input estimator input =
  let numer =
    match estimator with
    | Eq1 -> Array.map (fun row -> Array.fold_left ( + ) 0 row) input.c
    | Eq2 _ -> Array.concat (Array.to_list input.c)
  in
  Array.append input.a numer

(* One player's Steps 7-8 arithmetic: the local weighted combination of
   the numerator shares (float once the Eq. 2 weights enter; exact
   integers under Eq. 1), then the per-user mask multiplies.  Shared
   with the distributed twin so both paths produce bit-identical
   floats. *)
let masked_shares_of_flat estimator ~h ~n ~pairs ~masks shares =
  let numerator_share k =
    match estimator with
    | Eq1 -> float_of_int shares.(n + k)
    | Eq2 w ->
      let w = (w :> float array) in
      let acc = ref 0. in
      for l = 0 to h - 1 do
        acc := !acc +. (w.(l) *. float_of_int shares.(n + (k * h) + l))
      done;
      !acc
  in
  let masked_a = Array.init n (fun i -> masks.(i) *. float_of_int shares.(i)) in
  let masked_num =
    Array.init (Array.length pairs) (fun k ->
        let i, _ = pairs.(k) in
        masks.(i) *. numerator_share k)
  in
  (masked_a, masked_num)

let pair_estimates_of_masked ~pairs ~masked_a1 ~masked_a2 ~masked_num1 ~masked_num2 =
  Array.init (Array.length pairs) (fun k ->
      let i, _ = pairs.(k) in
      let den = masked_a1.(i) +. masked_a2.(i) in
      if den = 0. then 0. else (masked_num1.(k) +. masked_num2.(k)) /. den)

let strengths_of_estimates ~graph ~pairs estimates =
  let strengths = ref [] in
  for k = Array.length pairs - 1 downto 0 do
    let u, v = pairs.(k) in
    if Digraph.mem_edge graph u v then strengths := ((u, v), estimates.(k)) :: !strengths
  done;
  !strengths

type masked_shares = {
  masked_a1 : float array;
  masked_a2 : float array;
  masked_num1 : float array;
  masked_num2 : float array;
  share_p2_leaks : Protocol2.leak array;
  share_p3_leaks : Protocol2.leak array;
}

let share_and_mask st ~wire ~n ~num_actions ~pairs ~inputs config =
  if config.h < 1 then invalid_arg "Protocol4.run: window must be >= 1";
  if config.modulus <= num_actions then invalid_arg "Protocol4.run: modulus must exceed A";
  (match config.estimator with
  | Eq1 -> ()
  | Eq2 w ->
    if Array.length (w :> float array) <> config.h then
      invalid_arg "Protocol4.run: weight profile length must equal h");
  let q = Array.length pairs in
  let m = validate_inputs ~n ~q ~h:config.h inputs in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  (* Steps 3-4: batched Protocol 2 over all counters. *)
  let flat_inputs = Array.map (flatten_input config.estimator) inputs in
  let { Protocol2.share1; share2; views } =
    Protocol2.run st ~wire ~parties ~third_party ~modulus:config.modulus
      ~input_bound:num_actions ~inputs:flat_inputs
  in
  (* Steps 5-6: players 1 and 2 jointly draw M_i then r_i per user.
     The joint generation is one exchange of random contributions per
     step (semi-honest; DESIGN.md), accounted as in Table 1. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  let masked_a1, masked_num1 =
    masked_shares_of_flat config.estimator ~h:config.h ~n ~pairs ~masks share1
  in
  let masked_a2, masked_num2 =
    masked_shares_of_flat config.estimator ~h:config.h ~n ~pairs ~masks share2
  in
  {
    masked_a1;
    masked_a2;
    masked_num1;
    masked_num2;
    share_p2_leaks = views.Protocol2.p2_leaks;
    share_p3_leaks = views.Protocol2.p3_leaks;
  }

let estimates_of_masked ms ~pairs =
  pair_estimates_of_masked ~pairs ~masked_a1:ms.masked_a1 ~masked_a2:ms.masked_a2
    ~masked_num1:ms.masked_num1 ~masked_num2:ms.masked_num2

let run st ~wire ~graph ~num_actions ~pairs ~inputs config =
  let n = Digraph.n graph in
  let q = Array.length pairs in
  let ms = share_and_mask st ~wire ~n ~num_actions ~pairs ~inputs config in
  (* Steps 7-8: each of players 1 and 2 ships n + q masked reals. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:(Wire.Provider 0) ~dst:Wire.Host ~bits:((n + q) * Wire.float_bits);
      Wire.send wire ~src:(Wire.Provider 1) ~dst:Wire.Host ~bits:((n + q) * Wire.float_bits));
  (* Step 9: the host reconstructs the quotients. *)
  let pair_estimates = estimates_of_masked ms ~pairs in
  {
    strengths = strengths_of_estimates ~graph ~pairs pair_estimates;
    pairs;
    pair_estimates;
    p2_leaks = ms.share_p2_leaks;
    p3_leaks = ms.share_p3_leaks;
  }

let run_with_logs st ~wire ~graph ~logs config =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol4.run_with_logs: need at least two providers";
  let num_actions =
    Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs
  in
  Array.iter
    (fun l ->
      if Log.num_users l <> Digraph.n graph then
        invalid_arg "Protocol4.run_with_logs: log/graph user universe mismatch")
    logs;
  let pairs = publish_pairs st ~wire ~graph ~m ~c_factor:config.c_factor in
  let inputs = Array.map (fun l -> provider_input_of_log l ~h:config.h ~pairs) logs in
  run st ~wire ~graph ~num_actions ~pairs ~inputs config
