module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Runtime = Spe_mpc.Runtime
module Session = Spe_mpc.Session
module Protocol2_distributed = Spe_mpc.Protocol2_distributed
module Digraph = Spe_graph.Digraph
module Obfuscate = Spe_graph.Obfuscate

type mode = Delta | Full

type release = {
  epoch : int;
  estimates : float array;
  strengths : ((int * int) * float) list;
  digest : int;
  recomputed : int;
}

type epoch_input = {
  epoch : int;
  dirty_users : int list;
  dirty_pairs : int list;
  inputs : Protocol4.provider_input array;
}

type t = {
  graph : Digraph.t;
  pairs : (int * int) array;
  (* sourced.(i): the published pair indices with source [i], ascending —
     the pair half of counter group [i]. *)
  sourced : int array array;
  m : int;
  num_actions : int;
  config : Protocol4.config;
  group_seed : int;
  (* versions.(i): how many epochs have dirtied group [i] so far.  The
     version keys the group's randomness, so a Full-mode re-run of a
     clean group replays the draws of its last recomputation exactly. *)
  versions : int array;
  (* The host's caches of the latest masked shares, written in place by
     each recomputed group's session: the release quotients always read
     the full arrays, delta or not. *)
  ma1 : float array;
  ma2 : float array;
  mn1 : float array;
  mn2 : float array;
  mutable next_epoch : int;
  mutable releases : release list;  (* newest first *)
}

(* SplitMix64 finalisation chain: a 63-bit seed for the per-(group,
   version) generator.  Any fixed injective-ish mixer works — it only
   has to be deterministic and spread nearby (group, version) pairs
   apart. *)
let mix ~seed ~group ~version =
  let splitmix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    logxor z (shift_right_logical z 31)
  in
  let z = splitmix (Int64.add (Int64.of_int seed) 0x9e3779b97f4a7c15L) in
  let z = splitmix (Int64.logxor z (Int64.of_int group)) in
  let z = splitmix (Int64.logxor z (Int64.of_int version)) in
  Int64.to_int (Int64.shift_right_logical z 1)

(* FNV-1a over the IEEE bit patterns of the estimate vector, truncated
   to 61 bits so the digest travels as a plain bounded [Ints] payload. *)
let digest_modulus = 1 lsl 61

let digest_of_estimates estimates =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  Array.iter
    (fun x ->
      let bits = Int64.bits_of_float x in
      for i = 0 to 7 do
        let b = Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xffL in
        h := Int64.mul (Int64.logxor !h b) prime
      done)
    estimates;
  Int64.to_int (Int64.shift_right_logical !h 3)

let width config =
  match config.Protocol4.estimator with
  | Protocol4.Eq1 -> 1
  | Protocol4.Eq2 _ -> config.Protocol4.h

let create st ~graph ~m ~num_actions ~group_seed config =
  if m < 2 then invalid_arg "Delta.create: need at least two providers";
  if config.Protocol4.h < 1 then invalid_arg "Delta.create: window must be >= 1";
  if config.Protocol4.modulus <= num_actions then
    invalid_arg "Delta.create: modulus must exceed A";
  (match config.Protocol4.estimator with
  | Protocol4.Eq1 -> ()
  | Protocol4.Eq2 w ->
    if Array.length (w :> float array) <> config.Protocol4.h then
      invalid_arg "Delta.create: weight profile length must equal h");
  let ob = Obfuscate.make st graph ~c:config.Protocol4.c_factor in
  let q = Obfuscate.size ob in
  let pairs = Array.make q (0, 0) in
  Obfuscate.iteri ob (fun i u v -> pairs.(i) <- (u, v));
  let n = Digraph.n graph in
  let buckets = Array.make n [] in
  Array.iteri (fun k (i, _) -> buckets.(i) <- k :: buckets.(i)) pairs;
  {
    graph;
    pairs;
    sourced = Array.map (fun l -> Array.of_list (List.rev l)) buckets;
    m;
    num_actions;
    config;
    group_seed;
    versions = Array.make n 0;
    ma1 = Array.make n 0.;
    ma2 = Array.make n 0.;
    mn1 = Array.make q 0.;
    mn2 = Array.make q 0.;
    next_epoch = 0;
    releases = [];
  }

let pairs t = t.pairs

let releases t = List.rev t.releases

(* One group's recomputation: a fresh Protocol 2 share of the group's
   counters — the user's a_i plus every pair sourced at i, so the
   multiplicative mask r_i keeps cancelling in the release quotients —
   then the Protocol 3 mask rounds, writing the masked shares into the
   host caches at the group's indices.  All randomness comes from the
   (group, version)-keyed generator, nothing from a shared stream, so
   groups recompute independently and replays are exact. *)
let group_session t ~group:g ~flat_inputs =
  let config = t.config in
  let h = config.Protocol4.h in
  let w = width config in
  let ks = t.sourced.(g) in
  let q_g = Array.length ks in
  let len = 1 + (q_g * w) in
  let n = Array.length t.ma1 in
  let parties = Array.init t.m (fun k -> Wire.Provider k) in
  let third_party = if t.m > 2 then Wire.Provider 2 else Wire.Host in
  let p0 = parties.(0) and p1 = parties.(1) in
  let st_g =
    State.create ~seed:(mix ~seed:t.group_seed ~group:g ~version:t.versions.(g)) ()
  in
  let inputs =
    Array.map
      (fun flat () ->
        Array.init len (fun i ->
            if i = 0 then flat.(g)
            else
              let j = (i - 1) / w and l = (i - 1) mod w in
              flat.(n + (ks.(j) * w) + l)))
      flat_inputs
  in
  let share_session, handle =
    Protocol2_distributed.make_lazy st_g ~parties ~third_party
      ~modulus:config.Protocol4.modulus ~input_bound:t.num_actions ~length:len ~inputs
  in
  let mask = Dist.mask_pair st_g in
  let numerator_share sh j =
    match config.Protocol4.estimator with
    | Protocol4.Eq1 -> float_of_int sh.(1 + j)
    | Protocol4.Eq2 wts ->
      let wts = (wts :> float array) in
      let acc = ref 0. in
      for l = 0 to h - 1 do
        acc := !acc +. (wts.(l) *. float_of_int sh.(1 + (j * h) + l))
      done;
      !acc
  in
  let player me other share_of ~round ~inbox:_ =
    match round with
    | 1 | 2 -> [ { Runtime.src = me; dst = other; payload = Runtime.Floats [| 0. |] } ]
    | 3 ->
      let sh = share_of () in
      let masked =
        Array.init (1 + q_g) (fun i ->
            if i = 0 then mask *. float_of_int sh.(0)
            else mask *. numerator_share sh (i - 1))
      in
      [ { Runtime.src = me; dst = Wire.Host; payload = Runtime.Floats masked } ]
    | _ -> []
  in
  let host_program ~round:_ ~inbox =
    List.iter
      (fun msg ->
        match msg.Runtime.payload with
        | Runtime.Floats v when Array.length v = 1 + q_g ->
          let write ma mn =
            ma.(g) <- v.(0);
            Array.iteri (fun j k -> mn.(k) <- v.(1 + j)) ks
          in
          if msg.Runtime.src = p0 then write t.ma1 t.mn1
          else if msg.Runtime.src = p1 then write t.ma2 t.mn2
        | _ -> ())
      inbox;
    []
  in
  let mask_session =
    Session.with_label "p4-mask"
      (Session.make
         ~parties:[| p0; p1; Wire.Host |]
         ~programs:
           [|
             player p0 p1 handle.Protocol2_distributed.share1;
             player p1 p0 handle.Protocol2_distributed.share2;
             host_program;
           |]
         ~rounds:3
         ~result:(fun () -> ()))
  in
  Session.map
    (fun _ -> ())
    (Session.seq
       (Session.with_label "p2-group" (Session.map ignore share_session))
       mask_session)

(* The per-epoch release: the host folds the caches into the quotient
   estimates and broadcasts their digest, so every engine's transcript
   commits to the released bits — the delta≡full check compares exactly
   these digests. *)
let release_session t ~epoch ~recomputed =
  let parties = Array.init t.m (fun k -> Wire.Provider k) in
  let host ~round ~inbox:_ =
    match round with
    | 1 ->
      let estimates =
        Protocol4.pair_estimates_of_masked ~pairs:t.pairs ~masked_a1:t.ma1
          ~masked_a2:t.ma2 ~masked_num1:t.mn1 ~masked_num2:t.mn2
      in
      let digest = digest_of_estimates estimates in
      let strengths = Protocol4.strengths_of_estimates ~graph:t.graph ~pairs:t.pairs estimates in
      t.releases <- { epoch; estimates; strengths; digest; recomputed } :: t.releases;
      Array.to_list
        (Array.map
           (fun p ->
             { Runtime.src = Wire.Host;
               dst = p;
               payload = Runtime.Ints { modulus = digest_modulus; values = [| digest |] } })
           parties)
    | _ -> []
  in
  let provider ~round:_ ~inbox:_ = [] in
  Session.with_label "release"
    (Session.make
       ~parties:(Array.append [| Wire.Host |] parties)
       ~programs:(Array.append [| host |] (Array.map (fun _ -> provider) parties))
       ~rounds:1
       ~result:(fun () -> ()))

let validate_inputs t inputs =
  if Array.length inputs <> t.m then invalid_arg "Delta.epoch_stages: provider count mismatch";
  let n = Array.length t.ma1 and q = Array.length t.pairs in
  Array.iter
    (fun input ->
      if Array.length input.Protocol4.a <> n then
        invalid_arg "Delta.epoch_stages: activity vector length";
      if Array.length input.Protocol4.c <> q then
        invalid_arg "Delta.epoch_stages: lag counter pair count";
      Array.iter
        (fun row ->
          if Array.length row <> t.config.Protocol4.h then
            invalid_arg "Delta.epoch_stages: lag counter width")
        input.Protocol4.c)
    inputs

(* Bump the versions of the dirtied groups — identically in both modes,
   so the keyed randomness never depends on which mode runs — and
   return the groups to recompute this epoch. *)
let recompute_groups t ~mode ei =
  let n = Array.length t.versions in
  let dirty = Hashtbl.create 16 in
  List.iter
    (fun u ->
      if u < 0 || u >= n then invalid_arg "Delta.epoch_stages: dirty user out of range";
      Hashtbl.replace dirty u ())
    ei.dirty_users;
  List.iter
    (fun k ->
      if k < 0 || k >= Array.length t.pairs then
        invalid_arg "Delta.epoch_stages: dirty pair out of range";
      Hashtbl.replace dirty (fst t.pairs.(k)) ())
    ei.dirty_pairs;
  Hashtbl.iter (fun g () -> t.versions.(g) <- t.versions.(g) + 1) dirty;
  match mode with
  | Full -> Array.init n Fun.id
  | Delta ->
    Array.of_list (List.sort compare (Hashtbl.fold (fun g () acc -> g :: acc) dirty []))

let epoch_stages t ~mode ei =
  if ei.epoch <> t.next_epoch then
    invalid_arg "Delta.epoch_stages: epochs must be consecutive from 0";
  t.next_epoch <- ei.epoch + 1;
  validate_inputs t ei.inputs;
  let flat_inputs =
    Array.map (fun input -> Protocol4.flatten_input t.config.Protocol4.estimator input) ei.inputs
  in
  let groups = recompute_groups t ~mode ei in
  let sessions =
    Array.map
      (fun g -> Session.with_epoch ei.epoch (group_session t ~group:g ~flat_inputs))
      groups
  in
  let publish_stages =
    if ei.epoch = 0 then begin
      let n = Array.length t.ma1 in
      let publish, _received =
        Protocol4_distributed.publish_slice_session ~node_modulus:(max 2 n) ~pairs:t.pairs
          ~m:t.m ~lo:0 ~hi:(Array.length t.pairs)
      in
      [ Plan.stage ~epoch:0 ~label:"publish"
          [| Session.with_epoch 0 (Session.with_label "p4-publish" publish) |];
      ]
    end
    else []
  in
  let group_stages =
    if Array.length sessions = 0 then []
    else [ Plan.stage ~epoch:ei.epoch ~label:"delta-groups" sessions ]
  in
  publish_stages @ group_stages
  @ [
      Plan.stage ~epoch:ei.epoch ~label:"release"
        [|
          Session.with_epoch ei.epoch
            (release_session t ~epoch:ei.epoch ~recomputed:(Array.length groups));
        |];
    ]

let epoch_plan t ~mode ei =
  let epoch = ei.epoch in
  let stages = epoch_stages t ~mode ei in
  Plan.make ~shards:1 ~stages ~result:(fun () ->
      match t.releases with
      | r :: _ when r.epoch = epoch -> r
      | _ -> failwith "Delta.epoch_plan: release was not produced")
