module Session = Spe_mpc.Session

type stage = { label : string; epoch : int option; sessions : unit Session.t array }

type 'r t = { shards : int; stages : stage list; result : unit -> 'r }

let stage ?epoch ~label sessions =
  (match epoch with
  | Some e when e < 0 -> invalid_arg "Plan.stage: epoch must be >= 0"
  | _ -> ());
  { label; epoch; sessions }

let make ~shards ~stages ~result =
  if shards < 1 then invalid_arg "Plan.make: need at least one shard";
  if stages = [] then invalid_arg "Plan.make: need at least one stage";
  List.iter
    (fun s -> if Array.length s.sessions = 0 then invalid_arg "Plan.make: empty stage")
    stages;
  { shards; stages; result }

let map f t =
  { shards = t.shards; stages = t.stages; result = (fun () -> f (t.result ())) }

let total_rounds t =
  List.fold_left
    (fun acc stage ->
      Array.fold_left (fun a s -> a + s.Session.rounds) acc stage.sessions)
    0 t.stages

let session_of_stage stage =
  match Array.to_list stage.sessions with
  | [] -> invalid_arg "Plan.to_session: empty stage"
  | [ s ] -> s
  | ss -> Session.map ignore (Session.all ss)

let to_session t =
  match t.stages with
  | [] -> invalid_arg "Plan.to_session: empty plan"
  | s0 :: rest ->
    let seq_unit a b = Session.map (fun ((), ()) -> ()) (Session.seq a b) in
    let combined =
      List.fold_left
        (fun acc stage -> seq_unit acc (session_of_stage stage))
        (session_of_stage s0) rest
    in
    Session.map (fun () -> t.result ()) combined
