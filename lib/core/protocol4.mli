(** Protocol 4 — secure computation of link influence probabilities
    (Sec. 5.1, exclusive case).

    The host owns the social graph; each provider owns a private
    counter set derived from his action log (or, in the non-exclusive
    case, from the Protocol 5 preprocessing).  The host ends up with
    [p_(i,j)] for every real arc; the providers never learn which pairs
    are real, the host never sees raw counters.

    Pipeline:
    + the host publishes the obfuscated pair set [Omega_E'] of size
      [q >= c * |E|] ({!publish_pairs}, Steps 1-2);
    + the providers run the batched Protocol 2 over all counters — the
      [n] activity counters [a_i] plus, per published pair, either the
      [q] window counters [b^h] (Eq. 1) or the [q*h] lag counters [c^l]
      (Eq. 2) — ending with integer additive shares at players 1 and 2
      (Steps 3-4);
    + players 1 and 2 jointly draw one mask [r_i] per user (Steps 5-6,
      Protocol 3's heavy-tailed distribution), multiply their shares —
      for Eq. 2 each lag share enters the local weighted combination
      first — and send the masked shares to the host (Steps 7-8);
    + the host sums share pairs, divides, and keeps the real arcs
      (Step 9). *)

type estimator =
  | Eq1  (** [p = b^h / a]. *)
  | Eq2 of Spe_influence.Link_strength.weights
      (** [p = sum_l w_l c^l / a] — temporal decay. *)

type config = {
  c_factor : float;  (** Obfuscation blow-up [c >= 1] for [E']. *)
  modulus : int;  (** The share modulus [S >> A]. *)
  h : int;  (** Memory-window width. *)
  estimator : estimator;
}

val default_config : h:int -> config
(** [c = 2], [S = 2^40], Eq. 1. *)

val publish_pairs :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  m:int ->
  c_factor:float ->
  (int * int) array
(** Steps 1-2: the host draws [E' ⊇ E] with [|E'| >= c_factor * |E|]
    and broadcasts [Omega_E'] to the [m] providers (one wire round). *)

type provider_input = {
  a : int array;  (** Local activity counters [a_(i,k)], length [n]. *)
  c : int array array;
      (** Local lag counters: [c.(k).(l-1)] is [c^l] of the k-th
          published pair.  [b^h] is recovered as the row sum. *)
}

val provider_input_of_log :
  Spe_actionlog.Log.t -> h:int -> pairs:(int * int) array -> provider_input
(** What each provider computes locally once [Omega_E'] is known. *)

val flatten_input : estimator -> provider_input -> int array
(** The counters one provider feeds the batched Protocol 2, flattened
    as [a_0..a_(n-1)] followed by the per-pair numerator counters — the
    window counters [b^h] under Eq. 1, the [h] lag counters per pair
    under Eq. 2.  Shared with [Protocol4_distributed]. *)

val masked_shares_of_flat :
  estimator ->
  h:int ->
  n:int ->
  pairs:(int * int) array ->
  masks:float array ->
  int array ->
  float array * float array
(** [(masked_a, masked_num)] of one player's flat share vector: the
    Steps 7-8 local weighted combination and per-user mask multiplies.
    Shared with [Protocol4_distributed] so both paths produce
    bit-identical floats. *)

val pair_estimates_of_masked :
  pairs:(int * int) array ->
  masked_a1:float array ->
  masked_a2:float array ->
  masked_num1:float array ->
  masked_num2:float array ->
  float array
(** Step 9, the host side: [(num1_k + num2_k) / (a1_i + a2_i)] per
    published pair, [0] on a zero denominator. *)

val strengths_of_estimates :
  graph:Spe_graph.Digraph.t ->
  pairs:(int * int) array ->
  float array ->
  ((int * int) * float) list
(** Restriction of the per-pair estimates to the real arcs, in
    published-pair order. *)

type result = {
  strengths : ((int * int) * float) list;
      (** Final output: [p_(i,j)] for the real arcs only. *)
  pairs : (int * int) array;  (** The published [Omega_E']. *)
  pair_estimates : float array;
      (** The host's quotient for every published pair (including
          decoys) — inputs to the cost/privacy analyses. *)
  p2_leaks : Spe_mpc.Protocol2.leak array;
      (** Protocol 2 leakage to player 2, one entry per shared
          counter. *)
  p3_leaks : Spe_mpc.Protocol2.leak array;
      (** Leakage to the third party, in its (permuted) view order. *)
}

type masked_shares = {
  masked_a1 : float array;  (** Player 1's masked activity shares. *)
  masked_a2 : float array;
  masked_num1 : float array;  (** Player 1's masked numerator shares, per pair. *)
  masked_num2 : float array;
  share_p2_leaks : Spe_mpc.Protocol2.leak array;
  share_p3_leaks : Spe_mpc.Protocol2.leak array;
}

val share_and_mask :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  n:int ->
  num_actions:int ->
  pairs:(int * int) array ->
  inputs:provider_input array ->
  config ->
  masked_shares
(** Steps 3-6 of Protocol 4 (batched Protocol 2 + joint masking),
    without the host-directed sends — the shared building block of
    {!run}, [Protocol4_multi_host] and the estimator variants.  The
    host computes [(num1_k + num2_k) / (a1_i + a2_i)] for a pair [k]
    with source [i]. *)

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  num_actions:int ->
  pairs:(int * int) array ->
  inputs:provider_input array ->
  config ->
  result
(** Steps 3-9, given a previously published pair set and the providers'
    counter sets built against it.  [m = Array.length inputs >= 2]; the
    third party for Protocol 2 is provider 3 when [m > 2], else the
    host.  Raises [Invalid_argument] on shape or parameter
    violations. *)

val run_with_logs :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  config ->
  result
(** End-to-end exclusive case: {!publish_pairs}, local counter
    extraction from each provider's log, then {!run}. *)
