module State = Spe_rng.State
module Digraph = Spe_graph.Digraph

type params = { epsilon : float; sensitivity : float; seed : int }

let validate params =
  if not (params.epsilon > 0.) then
    invalid_arg "Dp_release: epsilon must be positive (or infinity)";
  if not (params.sensitivity > 0.) then
    invalid_arg "Dp_release: sensitivity must be positive"

let exact params =
  validate params;
  params.epsilon = infinity

(* One draw per entry in entry order, public or not — so the public
   predicate perturbs nothing but the entries it names. *)
let release params ~public ~entries ~value ~rebuild =
  validate params;
  if params.epsilon = infinity then Array.map (fun e -> rebuild e (value e)) entries
  else begin
    let st = State.create ~seed:params.seed () in
    let scale = params.sensitivity /. params.epsilon in
    Array.map
      (fun e ->
        let noise = Perturbation.laplace_noise st ~scale in
        let v = value e in
        rebuild e (if public e then v else v +. noise))
      entries
  end

let values ?(public = fun _ -> false) params v =
  release params
    ~public:(fun i -> public i)
    ~entries:(Array.init (Array.length v) Fun.id)
    ~value:(fun i -> v.(i))
    ~rebuild:(fun _ v -> v)

let strengths ?(public = fun _ -> false) params rows =
  release params
    ~public:(fun (pair, _) -> public pair)
    ~entries:(Array.of_list rows)
    ~value:snd
    ~rebuild:(fun (pair, _) v -> (pair, v))
  |> Array.to_list

let hubs ~degree_threshold graph (i, j) =
  let total v = Digraph.in_degree graph v + Array.length (Digraph.out_neighbors graph v) in
  total i >= degree_threshold && total j >= degree_threshold

let mean_abs_error a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Dp_release.mean_abs_error: length mismatch";
  if n = 0 then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. abs_float (a.(i) -. b.(i))
    done;
    !acc /. float_of_int n
  end

let mean_abs_error_strengths xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Dp_release.mean_abs_error_strengths: length mismatch";
  List.iter2
    (fun (p, _) (q, _) ->
      if p <> q then
        invalid_arg "Dp_release.mean_abs_error_strengths: pair label mismatch")
    xs ys;
  mean_abs_error
    (Array.of_list (List.map snd xs))
    (Array.of_list (List.map snd ys))
