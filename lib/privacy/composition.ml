module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Protocol2 = Spe_mpc.Protocol2

type schedule = { group_sizes : int array; versions : int array }

let schedule ~group_sizes ~versions =
  if Array.length group_sizes <> Array.length versions then
    invalid_arg "Composition.schedule: one version count per group";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Composition.schedule: negative group size")
    group_sizes;
  Array.iter
    (fun v -> if v < 0 then invalid_arg "Composition.schedule: negative version count")
    versions;
  { group_sizes; versions }

let of_group_widths ~width ~sourced ~versions =
  if width < 1 then invalid_arg "Composition.of_group_widths: width must be >= 1";
  let group_sizes = Array.map (fun q_g -> 1 + (q_g * width)) sourced in
  schedule ~group_sizes ~versions

let executions sched =
  let total = ref 0 in
  Array.iteri (fun g s -> total := !total + (s * sched.versions.(g))) sched.group_sizes;
  !total

type bound = {
  executions : int;
  per_counter : float;
  total : float;
  equivalent_counters : int;
}

let per_counter_rate ~modulus ~input_bound =
  if modulus <= input_bound then invalid_arg "Composition.closed_form: need S > A";
  if input_bound < 0 then invalid_arg "Composition.closed_form: need A >= 0";
  let s = float_of_int modulus and a = float_of_int input_bound in
  (* Theorem 4.1 per counter sharing: player 2 learns a lower or upper
     bound w.p. x/S + (A - x)/S = A/S regardless of x, and the third
     party learns one w.p. A/(S - A) on each side of the wrap test. *)
  (a /. s) +. (2. *. a /. (s -. a))

let closed_form ~modulus ~input_bound sched =
  let e = executions sched in
  let r = per_counter_rate ~modulus ~input_bound in
  {
    executions = e;
    per_counter = r;
    total = Float.min 1. (float_of_int e *. r);
    equivalent_counters = e;
  }

let required_modulus ~input_bound sched ~epsilon =
  Leakage.required_modulus ~input_bound ~counters:(max 1 (executions sched)) ~epsilon

let independent_any_leak rates =
  1. -. List.fold_left (fun acc r -> acc *. (1. -. r)) 1. rates

(* One Theorem 4.1 execution of a single counter x, returning whether
   any party's view leaked a bound — the per-trial event the union
   bound charges once per execution. *)
let leaks_once st ~modulus ~input_bound ~x =
  let x1 = State.next_int st (x + 1) in
  let wire = Wire.create () in
  let r =
    Protocol2.run st ~wire
      ~parties:[| Wire.Provider 0; Wire.Provider 1 |]
      ~third_party:Wire.Host ~modulus ~input_bound
      ~inputs:[| [| x1 |]; [| x - x1 |] |]
  in
  let hit = function Protocol2.Nothing -> false | _ -> true in
  hit r.Protocol2.views.Protocol2.p2_leaks.(0)
  || hit r.Protocol2.views.Protocol2.p3_leaks.(0)

type mc = {
  trials : int;
  single_rate : float;
  composed_rate : float;
  predicted : float;
}

let monte_carlo st ~modulus ~input_bound ~x ~versions ~trials =
  if trials < 1 then invalid_arg "Composition.monte_carlo: need at least one trial";
  if versions < 1 then invalid_arg "Composition.monte_carlo: need at least one version";
  if x < 0 || x > input_bound then invalid_arg "Composition.monte_carlo: x out of [0, A]";
  let single = ref 0 and composed = ref 0 in
  for _ = 1 to trials do
    if leaks_once st ~modulus ~input_bound ~x then incr single;
    (* The same counter re-shared [versions] times with fresh
       randomness — one per (group, version) generator — leaks iff any
       execution leaks. *)
    let any = ref false in
    for _ = 1 to versions do
      if leaks_once st ~modulus ~input_bound ~x then any := true
    done;
    if !any then incr composed
  done;
  let single_rate = float_of_int !single /. float_of_int trials in
  {
    trials;
    single_rate;
    composed_rate = float_of_int !composed /. float_of_int trials;
    predicted = independent_any_leak (List.init versions (fun _ -> single_rate));
  }
