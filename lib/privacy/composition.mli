(** Composition of Theorem 4.1 bounds across epoch-delta releases.

    The epoch-delta pipeline ([Spe_core.Delta]) publishes the pair set
    Ω once and then, per epoch, re-shares only the dirtied counter
    groups, each from a fresh [(group, version)]-keyed generator.  Two
    observations make the privacy argument compose:

    - A clean group's transcript is {e bit-identical} to its previous
      epoch's (same randomness version, same counters), so replaying
      it adds zero marginal leakage — an adversary already held those
      bytes.
    - A dirtied group's recomputation is one fresh, independent
      execution of the Theorem 4.1 protocol over that group's
      counters: new Protocol 1/2 shares, new wrap masks, new
      Protocol 3 mask.

    Hence the view of [e] epochs equals the view of {e one} release
    over the union schedule: a protocol that shares
    [sum_g size_g * versions_g] counters ({!executions}), where
    [versions_g] counts the epochs that dirtied group [g].  Theorem
    4.1's per-counter rates then union-bound the whole sequence
    ({!closed_form}), the modulus needed for a target budget comes
    from the same closed form as the batch release
    ({!required_modulus}), and the independence of the per-version
    generators is checked empirically ({!monte_carlo}): the any-leak
    rate over [v] re-sharings matches [1 - (1 - r)^v]. *)

type schedule = {
  group_sizes : int array;  (** Counters in each group: [1 + q_g * w]. *)
  versions : int array;  (** Executions (dirty epochs) of each group. *)
}

val schedule : group_sizes:int array -> versions:int array -> schedule
(** Validated constructor.  Raises [Invalid_argument] on length
    mismatch or negative entries. *)

val of_group_widths : width:int -> sourced:int array -> versions:int array -> schedule
(** The delta-pipeline shape: group [g] holds one activity counter
    plus [sourced.(g)] pairs of [width] lag counters each ([width] is
    1 under Eq. 1, [h] under Eq. 2). *)

val executions : schedule -> int
(** [sum_g group_sizes.(g) * versions.(g)] — the counter-sharing count
    of the equivalent single release. *)

type bound = {
  executions : int;
  per_counter : float;
      (** Any-party any-bound rate for one shared counter:
          [A/S + 2A/(S - A)]. *)
  total : float;  (** Union bound over all executions, clamped to 1. *)
  equivalent_counters : int;
      (** The batch-release counter count with the same closed-form
          leakage — equal to {!field-executions}. *)
}

val per_counter_rate : modulus:int -> input_bound:int -> float

val closed_form : modulus:int -> input_bound:int -> schedule -> bound
(** Raises [Invalid_argument] unless [S > A >= 0]. *)

val required_modulus : input_bound:int -> schedule -> epsilon:float -> int
(** The modulus keeping the whole epoch sequence's union bound under
    [epsilon] — {!Leakage.required_modulus} fed the equivalent counter
    count. *)

val independent_any_leak : float list -> float
(** [1 - prod (1 - r_i)]: the any-leak rate of independent executions
    with the given per-execution rates. *)

type mc = {
  trials : int;
  single_rate : float;  (** Empirical per-execution any-leak rate. *)
  composed_rate : float;
      (** Empirical any-leak rate across [versions] fresh executions. *)
  predicted : float;
      (** [1 - (1 - single_rate)^versions] — what independence
          predicts for [composed_rate]. *)
}

val monte_carlo :
  Spe_rng.State.t ->
  modulus:int ->
  input_bound:int ->
  x:int ->
  versions:int ->
  trials:int ->
  mc
(** Share the counter [x] once and [versions] times per trial, with
    fresh randomness each execution, recording any-party leak events.
    The test suite asserts [composed_rate] sits near [predicted] and
    under the closed-form union bound. *)
