(** Differentially private {e output} release — the Laplace mechanism
    applied to the quantities the pipelines publish (pair strengths,
    user scores, fixed-point ranks), orthogonal to the MPC that
    computed them.

    Where {!Perturbation} noises the providers' {e inputs} (the
    paradigm the paper contrasts against), this module noises the {e
    published} values, so one run can compare three regimes on
    utility: MPC-exact, MPC + DP release, and plaintext + DP release —
    the last two are the {e same} mechanism over the same seeded
    sampler, so their releases coincide whenever the exact values do.

    {2 Determinism and replay}

    A release is a pure function of [(params, values)]: the sampler is
    seeded from [params.seed] alone and consumes {e exactly one}
    Laplace draw per entry {e in entry order}, whether or not the
    entry ends up perturbed — so marking an entry public changes that
    entry only, never its neighbours' noise.  Re-running with the same
    parameters replays the identical release byte for byte.

    {2 Public entries and [epsilon = infinity]}

    Following the public/private split of the graph-DP literature
    (SNIPPETS.md exemplars), entries may be declared {e public} — e.g.
    high-degree hub nodes whose behaviour is already published —
    and are then released exactly; only private entries are noised.
    [epsilon = infinity] degenerates to the exact release: no state is
    created, no draws are consumed, and the output is a fresh copy of
    the input, byte for byte. *)

type params = {
  epsilon : float;
      (** Privacy budget; positive, or [infinity] for the exact
          release. *)
  sensitivity : float;
      (** L1 sensitivity of each released entry; the Laplace scale is
          [sensitivity / epsilon].  Strengths and normalised ranks lie
          in [[0, 1]] so sensitivity 1 is the conservative default;
          scores are change-one-record sensitive at 1 as well. *)
  seed : int;  (** Sampler seed; equal seeds replay equal releases. *)
}

val validate : params -> unit
(** Raises [Invalid_argument] on a non-positive or NaN [epsilon] or a
    non-positive [sensitivity]. *)

val exact : params -> bool
(** Whether the release degenerates to the identity
    ([epsilon = infinity]). *)

val values : ?public:(int -> bool) -> params -> float array -> float array
(** Release a plain vector: entry [i] is exact when [public i], noised
    otherwise.  Default [public] is never. *)

val strengths :
  ?public:(int * int -> bool) ->
  params ->
  ((int * int) * float) list ->
  ((int * int) * float) list
(** Release a published strength list in list order (list order {e is}
    draw order); the pair labels pass through untouched and [public]
    sees them. *)

val hubs : degree_threshold:int -> Spe_graph.Digraph.t -> int * int -> bool
(** The exemplar public predicate: an arc is public iff {e both}
    endpoints have total degree (in + out) at least the threshold —
    hub-to-hub links carry no individual's secret.  Partially apply to
    get a node predicate via [(fun i -> hubs ~degree_threshold g (i, i))]. *)

val mean_abs_error : float array -> float array -> float
(** MAE between two equal-length vectors (0 on empty input); the
    utility figure the CLI and bench report for exact-vs-DP
    comparisons.  Raises [Invalid_argument] on a length mismatch. *)

val mean_abs_error_strengths :
  ((int * int) * float) list -> ((int * int) * float) list -> float
(** {!mean_abs_error} over the strength values, requiring the pair
    labels to match positionally. *)
