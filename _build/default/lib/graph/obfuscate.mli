(** Edge-set obfuscation (Protocol 4, Steps 1-2; Protocol 6, Step 1).

    The host hides his arc set [E] inside a larger set [E'] with
    [|E'| >= c * |E|]: the extra pairs are drawn uniformly at random
    from the off-diagonal pairs outside [E].  The service providers
    then compute counters for every pair in [E'] without learning which
    pairs are real.  The factor [c] is the privacy-efficiency dial
    discussed in Sec. 5.1.1. *)

type t = private {
  pairs : (int * int) array;  (** The published set [Omega_E'], sorted. *)
  n : int;  (** Number of nodes. *)
}

val make : Spe_rng.State.t -> Digraph.t -> c:float -> t
(** [make st g ~c] publishes an obfuscated arc set covering [g]'s arcs.
    Requires [c >= 1].  If [ceil(c * |E|)] exceeds the number of
    available pairs, all pairs are used (the perfect-hiding limit
    discussed in the paper). *)

val size : t -> int
(** [|E'|] — the paper's [q]. *)

val covers : t -> Digraph.t -> bool
(** Check [E ⊆ E'] (used in tests and as a protocol assertion). *)

val mem : t -> int -> int -> bool

val index_of : t -> int -> int -> int option
(** Position of a pair in the published ordering; the batched protocols
    use this ordering for counter vectors. *)

val iteri : t -> (int -> int -> int -> unit) -> unit
(** [iteri t f] calls [f idx u v] for each published pair in order. *)
