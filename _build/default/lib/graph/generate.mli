(** Random social-graph generators.

    The paper evaluates on analytic cost models and synthetic masking
    experiments; we additionally need realistic graph inputs to drive
    the end-to-end protocols (DESIGN.md substitution table).  Three
    standard families are provided; all produce directed graphs — the
    undirected families follow the paper's footnote 4 and emit both
    arcs per edge. *)

val erdos_renyi_gnp : Spe_rng.State.t -> n:int -> p:float -> Digraph.t
(** Directed [G(n, p)]: each ordered pair becomes an arc independently
    with probability [p].  Uses geometric skipping, so sparse graphs
    cost time proportional to the number of arcs produced. *)

val erdos_renyi_gnm : Spe_rng.State.t -> n:int -> m:int -> Digraph.t
(** Directed [G(n, M)]: exactly [m] distinct arcs drawn uniformly.
    Raises [Invalid_argument] if [m] exceeds [n * (n-1)]. *)

val barabasi_albert : Spe_rng.State.t -> n:int -> m:int -> Digraph.t
(** Preferential attachment: start from a clique of [m + 1] nodes; each
    new node attaches to [m] distinct existing nodes chosen
    proportionally to degree.  Undirected edges, both arcs emitted —
    yields the heavy-tailed degree profile of follower networks. *)

val watts_strogatz : Spe_rng.State.t -> n:int -> k:int -> beta:float -> Digraph.t
(** Small-world ring: each node connects to its [k] nearest neighbours
    ([k] even), then each edge is rewired with probability [beta].
    Undirected edges, both arcs emitted. *)

val configuration_model : Spe_rng.State.t -> degrees:int array -> Digraph.t
(** Undirected configuration model: a uniform random matching of the
    degree stubs, with self-loops and multi-edges discarded (so
    realised degrees can fall slightly short — the standard "erased"
    variant).  The stub count must be even.  Both arcs emitted per kept
    edge. *)

val forest_fire : Spe_rng.State.t -> n:int -> forward:float -> backward:float -> Digraph.t
(** Leskovec et al.'s forest-fire model: each arriving node picks a
    uniform ambassador, links to it, then "burns" recursively through
    the ambassador's out- and in-links with geometric fan-outs of means
    [forward / (1 - forward)] and [backward / (1 - backward)], linking
    to every burned node.  Produces densifying, heavy-tailed directed
    graphs.  [forward], [backward] in [[0, 1)]. *)
