(** Directed social graphs.

    Nodes are integers [0 .. n-1] (the paper's users [v_1 .. v_n],
    zero-indexed).  An arc [(u, v)] means "v follows u": v sees u's
    activity, i.e. u can influence v (Sec. 3).  Graphs are immutable
    after construction; adjacency is stored as sorted arrays so that
    membership tests are logarithmic and iteration allocation-free. *)

type t

type edge = int * int
(** [(u, v)]: u can influence v. *)

val create : n:int -> edge list -> t
(** Build a graph on [n] nodes.  Self-loops are rejected
    ([Invalid_argument]); duplicate edges are collapsed; endpoints must
    lie in [[0, n)]. *)

val of_undirected : n:int -> edge list -> t
(** Footnote 4 of the paper: an undirected (friendship) graph is
    modelled by both directed arcs per edge. *)

val n : t -> int
(** Number of nodes. *)

val edge_count : t -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests the arc [(u, v)]. *)

val out_neighbors : t -> int -> int array
(** Followers of [u] — the nodes [u] can influence.  The returned array
    is owned by the graph; callers must not mutate it. *)

val in_neighbors : t -> int -> int array
(** The nodes that can influence [u]. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val edges : t -> edge list
(** All arcs in lexicographic order. *)

val iter_edges : t -> (int -> int -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
(** Summary (node/edge counts), not the full arc list. *)
