let degree_histogram g side =
  let n = Digraph.n g in
  let deg v = match side with `In -> Digraph.in_degree g v | `Out -> Digraph.out_degree g v in
  let maxd = ref 0 in
  for v = 0 to n - 1 do
    maxd := max !maxd (deg v)
  done;
  let h = Array.make (!maxd + 1) 0 in
  for v = 0 to n - 1 do
    h.(deg v) <- h.(deg v) + 1
  done;
  h

let max_degree g side = Array.length (degree_histogram g side) - 1

let reciprocity g =
  let total = Digraph.edge_count g in
  if total = 0 then 0.
  else begin
    let reciprocal =
      Digraph.fold_edges g ~init:0 ~f:(fun acc u v ->
          if Digraph.mem_edge g v u then acc + 1 else acc)
    in
    float_of_int reciprocal /. float_of_int total
  end

let global_clustering g =
  let n = Digraph.n g in
  (* Undirected skeleton adjacency as sorted arrays. *)
  let neighbor_sets =
    Array.init n (fun v ->
        let s = Hashtbl.create 8 in
        Array.iter (fun u -> Hashtbl.replace s u ()) (Digraph.out_neighbors g v);
        Array.iter (fun u -> Hashtbl.replace s u ()) (Digraph.in_neighbors g v);
        s)
  in
  let closed = ref 0 and triads = ref 0 in
  for v = 0 to n - 1 do
    let nbrs = Hashtbl.fold (fun u () acc -> u :: acc) neighbor_sets.(v) [] in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        List.iter
          (fun b ->
            incr triads;
            if Hashtbl.mem neighbor_sets.(a) b then incr closed)
          rest;
        pairs rest
    in
    pairs nbrs
  done;
  if !triads = 0 then 0. else float_of_int !closed /. float_of_int !triads

let pagerank ?(damping = 0.85) ?(iterations = 50) g =
  if damping < 0. || damping >= 1. then invalid_arg "Metrics.pagerank: damping out of [0,1)";
  let n = Digraph.n g in
  if n = 0 then [||]
  else begin
    let rank = ref (Array.make n (1. /. float_of_int n)) in
    for _ = 1 to iterations do
      let next = Array.make n ((1. -. damping) /. float_of_int n) in
      let dangling = ref 0. in
      for v = 0 to n - 1 do
        let out = Digraph.out_degree g v in
        if out = 0 then dangling := !dangling +. !rank.(v)
        else begin
          let share = damping *. !rank.(v) /. float_of_int out in
          Array.iter (fun u -> next.(u) <- next.(u) +. share) (Digraph.out_neighbors g v)
        end
      done;
      let dangling_share = damping *. !dangling /. float_of_int n in
      for v = 0 to n - 1 do
        next.(v) <- next.(v) +. dangling_share
      done;
      rank := next
    done;
    !rank
  end

let top_k k score =
  let n = Array.length score in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Stdlib.compare score.(b) score.(a) in
      if c <> 0 then c else Stdlib.compare a b)
    idx;
  Array.to_list (Array.sub idx 0 (min k n))
