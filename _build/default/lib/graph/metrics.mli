(** Structural graph metrics.

    Used by the examples and benches to characterise generated networks
    (degree profiles of the generator families) and to compare
    influence rankings against classical centralities (out-degree,
    PageRank) — the evaluation style of the leadership papers the
    influence-score definition builds on. *)

val degree_histogram : Digraph.t -> [ `In | `Out ] -> int array
(** [h.(d)] = number of nodes with the given degree. *)

val max_degree : Digraph.t -> [ `In | `Out ] -> int

val reciprocity : Digraph.t -> float
(** Fraction of arcs whose reverse arc also exists ([0.] for an empty
    graph; [1.] for graphs built with [of_undirected]). *)

val global_clustering : Digraph.t -> float
(** Transitivity of the undirected skeleton: 3 x triangles / open
    triads ([0.] when there are no triads). *)

val pagerank : ?damping:float -> ?iterations:int -> Digraph.t -> float array
(** Power iteration with uniform teleport (damping 0.85, 50 iterations
    by default).  Dangling mass is redistributed uniformly.  The result
    sums to 1. *)

val top_k : int -> float array -> int list
(** Indices of the k largest entries, descending (ties by index). *)
