module State = Spe_rng.State

type t = { pairs : (int * int) array; n : int }

let make st g ~c =
  if c < 1. then invalid_arg "Obfuscate.make: c must be at least 1";
  let n = Digraph.n g in
  let total = if n <= 1 then 0 else n * (n - 1) in
  let e = Digraph.edge_count g in
  let target = min total (int_of_float (ceil (c *. float_of_int e))) in
  let chosen = Hashtbl.create (2 * target) in
  let key (u, v) = (u * n) + v in
  Digraph.iter_edges g (fun u v -> Hashtbl.replace chosen (key (u, v)) (u, v));
  (* Pad with uniform random decoy pairs until the target size. *)
  while Hashtbl.length chosen < target do
    let k = State.next_int st total in
    let u = k / (n - 1) in
    let r = k mod (n - 1) in
    let v = if r < u then r else r + 1 in
    if not (Hashtbl.mem chosen (key (u, v))) then Hashtbl.replace chosen (key (u, v)) (u, v)
  done;
  let pairs = Array.of_seq (Hashtbl.to_seq_values chosen) in
  Array.sort Stdlib.compare pairs;
  { pairs; n }

let size t = Array.length t.pairs

let find t u v =
  let target = (u, v) in
  let rec bs lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = Stdlib.compare t.pairs.(mid) target in
      if c = 0 then Some mid else if c < 0 then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (Array.length t.pairs)

let mem t u v = find t u v <> None
let index_of t u v = find t u v

let covers t g =
  Digraph.fold_edges g ~init:true ~f:(fun acc u v -> acc && mem t u v)

let iteri t f = Array.iteri (fun i (u, v) -> f i u v) t.pairs
