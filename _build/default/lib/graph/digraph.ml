type edge = int * int

type t = {
  node_count : int;
  out_adj : int array array; (* sorted, deduplicated *)
  in_adj : int array array;
  edge_count : int;
}

let sort_dedup (a : int array) =
  Array.sort Stdlib.compare a;
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let create ~n edges =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: endpoint out of range";
      if u = v then invalid_arg "Digraph.create: self-loop")
    edges;
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out_deg.(u) <- out_deg.(u) + 1;
      in_deg.(v) <- in_deg.(v) + 1)
    edges;
  let out_adj = Array.init n (fun u -> Array.make out_deg.(u) 0) in
  let in_adj = Array.init n (fun v -> Array.make in_deg.(v) 0) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      out_adj.(u).(out_fill.(u)) <- v;
      out_fill.(u) <- out_fill.(u) + 1;
      in_adj.(v).(in_fill.(v)) <- u;
      in_fill.(v) <- in_fill.(v) + 1)
    edges;
  let out_adj = Array.map sort_dedup out_adj in
  let in_adj = Array.map sort_dedup in_adj in
  let edge_count = Array.fold_left (fun acc a -> acc + Array.length a) 0 out_adj in
  { node_count = n; out_adj; in_adj; edge_count }

let of_undirected ~n edges =
  let both = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
  create ~n both

let n g = g.node_count
let edge_count g = g.edge_count

let mem_sorted (a : int array) x =
  let rec bs lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (Array.length a)

let mem_edge g u v =
  if u < 0 || u >= g.node_count || v < 0 || v >= g.node_count then false
  else mem_sorted g.out_adj.(u) v

let out_neighbors g u = g.out_adj.(u)
let in_neighbors g u = g.in_adj.(u)
let out_degree g u = Array.length g.out_adj.(u)
let in_degree g u = Array.length g.in_adj.(u)

let iter_edges g f =
  Array.iteri (fun u nbrs -> Array.iter (fun v -> f u v) nbrs) g.out_adj

let fold_edges g ~init ~f =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = List.rev (fold_edges g ~init:[] ~f:(fun acc u v -> (u, v) :: acc))

let pp fmt g =
  Format.fprintf fmt "digraph(n=%d, |E|=%d)" g.node_count g.edge_count
