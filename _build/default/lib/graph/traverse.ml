(* A minimal binary min-heap of (priority, payload) pairs, local to
   Dijkstra.  Lazy deletion: stale entries are skipped on pop. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 16 (0, 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio payload =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (prio, payload);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

let bfs_distances g ~src =
  let n = Digraph.n g in
  if src < 0 || src >= n then invalid_arg "Traverse.bfs_distances: source out of range";
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      (Digraph.out_neighbors g u)
  done;
  dist

let reachable g ~src =
  let dist = bfs_distances g ~src in
  Array.map (fun d -> d < max_int) dist

let weighted_distances ~n ~adj ~src =
  if src < 0 || src >= n then invalid_arg "Traverse.weighted_distances: source out of range";
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let heap = Heap.create () in
  Heap.push heap 0 src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if d = dist.(u) then
        List.iter
          (fun (v, w) ->
            if w <= 0 then invalid_arg "Traverse.weighted_distances: non-positive weight";
            if v < 0 || v >= n then invalid_arg "Traverse.weighted_distances: node out of range";
            let nd = d + w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              Heap.push heap nd v
            end)
          (adj u);
      drain ()
  in
  drain ();
  dist

let bounded_reachable ~n ~adj ~src ~tau =
  let dist = weighted_distances ~n ~adj ~src in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if v <> src && dist.(v) <= tau then acc := v :: !acc
  done;
  !acc

let is_connected_undirected g =
  let n = Digraph.n g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    seen.(0) <- true;
    let queue = Queue.create () in
    Queue.push 0 queue;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let visit v =
        if not seen.(v) then begin
          seen.(v) <- true;
          incr visited;
          Queue.push v queue
        end
      in
      Array.iter visit (Digraph.out_neighbors g u);
      Array.iter visit (Digraph.in_neighbors g u)
    done;
    !visited = n
  end
