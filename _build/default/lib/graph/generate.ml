module State = Spe_rng.State
module Dist = Spe_rng.Dist

(* Linear index over the n*(n-1) ordered pairs without the diagonal. *)
let pair_of_index n k =
  let u = k / (n - 1) in
  let r = k mod (n - 1) in
  (u, if r < u then r else r + 1)

let erdos_renyi_gnp st ~n ~p =
  if p < 0. || p > 1. then invalid_arg "Generate.erdos_renyi_gnp: p out of [0,1]";
  if n <= 1 || p = 0. then Digraph.create ~n []
  else begin
    let total = n * (n - 1) in
    let edges = ref [] in
    if p = 1. then
      for k = 0 to total - 1 do
        edges := pair_of_index n k :: !edges
      done
    else begin
      (* Skip a geometric number of non-edges between successive hits. *)
      let k = ref (Dist.geometric st ~p) in
      while !k < total do
        edges := pair_of_index n !k :: !edges;
        k := !k + 1 + Dist.geometric st ~p
      done
    end;
    Digraph.create ~n !edges
  end

let erdos_renyi_gnm st ~n ~m =
  let total = if n <= 1 then 0 else n * (n - 1) in
  if m < 0 || m > total then invalid_arg "Generate.erdos_renyi_gnm: m out of range";
  let chosen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  while Hashtbl.length chosen < m do
    let k = State.next_int st total in
    if not (Hashtbl.mem chosen k) then begin
      Hashtbl.add chosen k ();
      edges := pair_of_index n k :: !edges
    end
  done;
  Digraph.create ~n !edges

let barabasi_albert st ~n ~m =
  if m < 1 then invalid_arg "Generate.barabasi_albert: m must be at least 1";
  if n < m + 1 then invalid_arg "Generate.barabasi_albert: need n >= m + 1";
  (* endpoints holds one entry per edge endpoint: sampling uniformly
     from it is degree-proportional sampling. *)
  let endpoints = ref [] and endpoint_count = ref 0 in
  let undirected = ref [] in
  let add_edge u v =
    undirected := (u, v) :: !undirected;
    endpoints := u :: v :: !endpoints;
    endpoint_count := !endpoint_count + 2
  in
  (* Seed: clique on m + 1 nodes. *)
  for u = 0 to m do
    for v = u + 1 to m do
      add_edge u v
    done
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  let refresh () = endpoint_array := Array.of_list !endpoints in
  for node = m + 1 to n - 1 do
    refresh ();
    let targets = Hashtbl.create m in
    while Hashtbl.length targets < m do
      let t = (!endpoint_array).(State.next_int st !endpoint_count) in
      if not (Hashtbl.mem targets t) then Hashtbl.add targets t ()
    done;
    Hashtbl.iter (fun t () -> add_edge node t) targets
  done;
  Digraph.of_undirected ~n !undirected

let configuration_model st ~degrees =
  let n = Array.length degrees in
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Generate.configuration_model: negative degree")
    degrees;
  let total = Array.fold_left ( + ) 0 degrees in
  if total mod 2 <> 0 then invalid_arg "Generate.configuration_model: odd stub count";
  (* One stub per half-edge; a uniform matching is a shuffle paired off
     two by two. *)
  let stubs = Array.make total 0 in
  let fill = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!fill) <- v;
        incr fill
      done)
    degrees;
  for i = total - 1 downto 1 do
    let j = State.next_int st (i + 1) in
    let tmp = stubs.(i) in
    stubs.(i) <- stubs.(j);
    stubs.(j) <- tmp
  done;
  let edges = ref [] in
  let seen = Hashtbl.create total in
  let i = ref 0 in
  while !i + 1 < total do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    (* Erased variant: drop self-loops and duplicate pairs. *)
    if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
      Hashtbl.replace seen (min u v, max u v) ();
      edges := (u, v) :: !edges
    end;
    i := !i + 2
  done;
  Digraph.of_undirected ~n !edges

let forest_fire st ~n ~forward ~backward =
  if forward < 0. || forward >= 1. || backward < 0. || backward >= 1. then
    invalid_arg "Generate.forest_fire: burn probabilities must be in [0, 1)";
  if n < 1 then invalid_arg "Generate.forest_fire: need at least one node";
  (* Mutable adjacency while the graph grows. *)
  let out_adj = Array.make n [] and in_adj = Array.make n [] in
  let add_arc u v =
    out_adj.(u) <- v :: out_adj.(u);
    in_adj.(v) <- u :: in_adj.(v)
  in
  let geometric p = if p = 0. then 0 else Dist.geometric st ~p:(1. -. p) in
  for v = 1 to n - 1 do
    let burned = Hashtbl.create 16 in
    let queue = Queue.create () in
    let ambassador = State.next_int st v in
    Hashtbl.replace burned ambassador ();
    Queue.push ambassador queue;
    while not (Queue.is_empty queue) do
      let w = Queue.pop queue in
      (* Burn geometric numbers of unvisited out- and in-neighbours. *)
      let burn_from nbrs count =
        let fresh = List.filter (fun x -> not (Hashtbl.mem burned x)) nbrs in
        List.iteri
          (fun i x ->
            if i < count then begin
              Hashtbl.replace burned x ();
              Queue.push x queue
            end)
          fresh
      in
      burn_from out_adj.(w) (geometric forward);
      burn_from in_adj.(w) (geometric backward)
    done;
    Hashtbl.iter (fun w () -> add_arc v w) burned
  done;
  let edges = ref [] in
  for u = 0 to n - 1 do
    List.iter (fun v -> edges := (u, v) :: !edges) out_adj.(u)
  done;
  Digraph.create ~n !edges

let watts_strogatz st ~n ~k ~beta =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Generate.watts_strogatz: k must be even and >= 2";
  if n <= k then invalid_arg "Generate.watts_strogatz: need n > k";
  if beta < 0. || beta > 1. then invalid_arg "Generate.watts_strogatz: beta out of [0,1]";
  let key u v = (min u v * n) + max u v in
  let present = Hashtbl.create (n * k) in
  let add u v = Hashtbl.replace present (key u v) (u, v) in
  let remove u v = Hashtbl.remove present (key u v) in
  let mem u v = Hashtbl.mem present (key u v) in
  (* Ring lattice: node u connects to u+1 .. u+k/2 (mod n). *)
  for u = 0 to n - 1 do
    for j = 1 to k / 2 do
      add u ((u + j) mod n)
    done
  done;
  (* Rewire pass over the original lattice edges. *)
  for u = 0 to n - 1 do
    for j = 1 to k / 2 do
      let v = (u + j) mod n in
      if mem u v && Dist.bernoulli st ~p:beta then begin
        (* Keep u, replace v by a uniform non-neighbour. *)
        let rec draw tries =
          if tries = 0 then None
          else
            let w = State.next_int st n in
            if w = u || mem u w then draw (tries - 1) else Some w
        in
        match draw (4 * n) with
        | None -> () (* node saturated; keep the lattice edge *)
        | Some w ->
          remove u v;
          add u w
      end
    done
  done;
  let edges = Hashtbl.fold (fun _ e acc -> e :: acc) present [] in
  Digraph.of_undirected ~n edges
