(** Graph traversals.

    {!bounded_reachable} is the computational core of the user
    influence score (Def. 3.2): the tau-influence sphere of a node in a
    propagation graph is the set of nodes reachable by a path whose sum
    of (positive) labels is at most tau.  Since all labels are
    positive, Dijkstra computes minimal label-sums and the sphere is
    the set of nodes whose distance is within the threshold. *)

val bfs_distances : Digraph.t -> src:int -> int array
(** Hop distances from [src]; unreachable nodes get [max_int]. *)

val reachable : Digraph.t -> src:int -> bool array
(** Reachability along directed arcs. *)

val bounded_reachable :
  n:int -> adj:(int -> (int * int) list) -> src:int -> tau:int -> int list
(** [bounded_reachable ~n ~adj ~src ~tau] returns the nodes [v] (other
    than [src] itself) whose minimal weighted distance from [src] is
    [<= tau], where [adj u] lists [(v, w)] arcs with positive weights
    [w].  Raises [Invalid_argument] on a non-positive weight.  Sorted
    ascending. *)

val weighted_distances :
  n:int -> adj:(int -> (int * int) list) -> src:int -> int array
(** Full Dijkstra distances; unreachable nodes get [max_int]. *)

val is_connected_undirected : Digraph.t -> bool
(** Weak connectivity (treating every arc as undirected).  Used by the
    generator tests. *)
