lib/graph/obfuscate.mli: Digraph Spe_rng
