lib/graph/metrics.mli: Digraph
