lib/graph/traverse.mli: Digraph
