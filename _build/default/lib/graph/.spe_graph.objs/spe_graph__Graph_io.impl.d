lib/graph/graph_io.ml: Buffer Digraph Fun List Printf String
