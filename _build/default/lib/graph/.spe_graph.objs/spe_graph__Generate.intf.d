lib/graph/generate.mli: Digraph Spe_rng
