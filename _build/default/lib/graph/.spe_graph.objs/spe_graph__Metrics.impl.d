lib/graph/metrics.ml: Array Digraph Hashtbl List Stdlib
