lib/graph/obfuscate.ml: Array Digraph Hashtbl Spe_rng Stdlib
