lib/graph/generate.ml: Array Digraph Hashtbl List Queue Spe_rng
