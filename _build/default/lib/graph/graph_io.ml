let to_string g =
  let buf = Buffer.create (16 * Digraph.edge_count g) in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Digraph.n g));
  Digraph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let parse_line ~lineno line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> `Blank
  | s :: _ when String.length s > 0 && s.[0] = '#' -> `Blank
  | [ "n"; count ] -> (
    match int_of_string_opt count with
    | Some n when n >= 0 -> `Header n
    | _ -> failwith (Printf.sprintf "graph file line %d: bad node count" lineno))
  | [ a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some u, Some v -> `Arc (u, v)
    | _ -> failwith (Printf.sprintf "graph file line %d: bad arc" lineno))
  | _ -> failwith (Printf.sprintf "graph file line %d: unrecognised" lineno)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n = ref None and arcs = ref [] in
  List.iteri
    (fun i line ->
      match parse_line ~lineno:(i + 1) line with
      | `Blank -> ()
      | `Header count ->
        if !n <> None then failwith "graph file: duplicate header";
        n := Some count
      | `Arc (u, v) -> arcs := (u, v) :: !arcs)
    lines;
  match !n with
  | None -> failwith "graph file: missing 'n <count>' header"
  | Some n -> Digraph.create ~n (List.rev !arcs)

let save g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
