(** Plain-text persistence for graphs (the CLI's interchange format).

    Format: a header line ["n <nodes>"], then one arc per line
    ["<src> <dst>"], whitespace-separated, ['#'] comments and blank
    lines ignored. *)

val save : Digraph.t -> string -> unit
(** [save g path] writes the graph.  Raises [Sys_error] on I/O
    failure. *)

val load : string -> Digraph.t
(** [load path] parses a graph file.  Raises [Failure] with a
    line-numbered message on malformed input. *)

val to_string : Digraph.t -> string
val of_string : string -> Digraph.t
