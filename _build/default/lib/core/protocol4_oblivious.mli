(** The "perfectly hiding" Protocol 4 variant of Sec. 5.1.1.

    The published pair set [E'] leaks that the real arcs lie inside it.
    The paper sketches the alternative that leaks nothing about [E]:
    run the counter sharing for {e all} [n(n-1)] ordered pairs, then
    let the host retrieve the two masked share values of each real arc
    by oblivious transfer, so the providers never learn which pairs
    were touched — and dismisses it as prohibitive
    ([O(|E| n^2)] public-key operations).  This module implements the
    sketch so the cost claim is measured, not asserted.

    Implementation notes:
    - the providers run the batched Protocol 2 over [n + n(n-1)]
      counters and mask exactly as in Protocol 4;
    - masked activity values (denominators, per user — not
      arc-structured, so not secret-relevant) travel in the clear as in
      Protocol 4;
    - each masked numerator is an IEEE double; it is shipped through
      two 1-out-of-[n(n-1)] OTs (high and low 32-bit halves of the bit
      pattern), against each of players 1 and 2: four transfers per
      real arc. *)

type result = {
  strengths : ((int * int) * float) list;  (** [p_(i,j)] per real arc. *)
  transfers : int;  (** OT executions performed. *)
}

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  num_actions:int ->
  logs:Spe_actionlog.Log.t array ->
  modulus:int ->
  h:int ->
  key_bits:int ->
  result
(** End-to-end run (Eq. 1 estimator).  Feasible only for small [n] —
    which is the point; the bench compares its measured wire bits
    against standard Protocol 4 on the same workload. *)

val analytic_wire_bits : n:int -> edges:int -> key_bits:int -> modulus_bits:int -> int
(** Closed-form wire cost: the Protocol 1/2 rounds over [n + n(n-1)]
    counters plus [4 |E|] oblivious transfers of width [n(n-1)]. *)
