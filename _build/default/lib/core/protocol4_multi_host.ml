module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log

type host_result = { host : int; strengths : ((int * int) * float) list }

(* Host j's wire identity.  The Wire.party type has a single host
   constructor; multiple hosts are modelled as providers beyond the
   real provider range for accounting purposes. *)
let host_party ~m j = Wire.Provider (m + j)

let run st ~wire ~graphs ~logs config =
  let t = Array.length graphs in
  if t < 1 then invalid_arg "Protocol4_multi_host.run: need at least one host";
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol4_multi_host.run: need at least two providers";
  let n = Digraph.n graphs.(0) in
  Array.iter
    (fun g ->
      if Digraph.n g <> n then
        invalid_arg "Protocol4_multi_host.run: hosts must share the user universe")
    graphs;
  Array.iter
    (fun l ->
      if Log.num_users l <> n then
        invalid_arg "Protocol4_multi_host.run: log/graph user universe mismatch")
    logs;
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  (* Each host publishes its own obfuscated pair set (Steps 1-2 per
     host, each a broadcast to the m providers). *)
  let published =
    Array.mapi
      (fun j g ->
        let ob = Spe_graph.Obfuscate.make st g ~c:config.Protocol4.c_factor in
        let qj = Spe_graph.Obfuscate.size ob in
        let node_bits = Wire.bits_for_int_mod (max 2 n) in
        Wire.round wire (fun () ->
            for k = 0 to m - 1 do
              Wire.send wire ~src:(host_party ~m j) ~dst:(Wire.Provider k)
                ~bits:(qj * 2 * node_bits)
            done);
        let pairs = Array.make qj (0, 0) in
        Spe_graph.Obfuscate.iteri ob (fun i u v -> pairs.(i) <- (u, v));
        pairs)
      graphs
  in
  (* Union of all published pairs, with each host's back-references. *)
  let union_index = Hashtbl.create 1024 in
  let union_rev = ref [] in
  let next = ref 0 in
  Array.iter
    (Array.iter (fun pair ->
         if not (Hashtbl.mem union_index pair) then begin
           Hashtbl.replace union_index pair !next;
           union_rev := pair :: !union_rev;
           incr next
         end))
    published;
  let union_pairs = Array.of_list (List.rev !union_rev) in
  (* One shared batch of sharing + masking over the union. *)
  let inputs =
    Array.map
      (fun l -> Protocol4.provider_input_of_log l ~h:config.Protocol4.h ~pairs:union_pairs)
      logs
  in
  let ms = Protocol4.share_and_mask st ~wire ~n ~num_actions ~pairs:union_pairs ~inputs config in
  (* Per host: players 1 and 2 ship the masked activity vector plus the
     masked numerators of that host's pairs only. *)
  Array.mapi
    (fun j pairs ->
      let qj = Array.length pairs in
      Wire.round wire (fun () ->
          Wire.send wire ~src:(Wire.Provider 0) ~dst:(host_party ~m j)
            ~bits:((n + qj) * Wire.float_bits);
          Wire.send wire ~src:(Wire.Provider 1) ~dst:(host_party ~m j)
            ~bits:((n + qj) * Wire.float_bits));
      let strengths = ref [] in
      Array.iter
        (fun ((u, v) as pair) ->
          if Digraph.mem_edge graphs.(j) u v then begin
            let k = Hashtbl.find union_index pair in
            let den = ms.Protocol4.masked_a1.(u) +. ms.Protocol4.masked_a2.(u) in
            let p =
              if den = 0. then 0.
              else (ms.Protocol4.masked_num1.(k) +. ms.Protocol4.masked_num2.(k)) /. den
            in
            strengths := ((u, v), p) :: !strengths
          end)
        pairs;
      { host = j; strengths = List.rev !strengths })
    published
