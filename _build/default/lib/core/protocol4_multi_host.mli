(** Multi-host Protocol 4 — the paper's Sec. 8 future-work setting
    "the graph data is split between several social networking
    platforms", implemented.

    [t] hosts each own a private arc set over the same user universe
    (e.g. the follower graphs of different platforms).  Each host
    publishes its own obfuscated pair set; the providers run {e one}
    batched Protocol 2 over the union of all published pairs (plus the
    activity counters), mask with a single per-user mask vector, and
    send each host only the masked shares of the pairs {e that host}
    published.  Each host ends with the influence strengths of its own
    arcs; hosts learn nothing about each other's arc sets beyond what
    the union pair set implies (their published sets are mixed into a
    single counter batch, and the decoy mechanism applies per host
    exactly as in the single-host protocol).

    Sharing one Protocol 2 batch across hosts is the whole point:
    the m^2 share-exchange traffic is paid once on the union instead of
    once per host. *)

type host_result = {
  host : int;
  strengths : ((int * int) * float) list;
      (** Influence strengths of this host's real arcs. *)
}

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graphs:Spe_graph.Digraph.t array ->
  logs:Spe_actionlog.Log.t array ->
  Protocol4.config ->
  host_result array
(** [run st ~wire ~graphs ~logs config] with one graph per host (all on
    the same user universe) and exclusive provider logs.  Uses the
    Eq. 1 / Eq. 2 estimator from [config] exactly as Protocol 4.
    Raises [Invalid_argument] on mismatched universes or fewer than two
    providers / one host. *)
