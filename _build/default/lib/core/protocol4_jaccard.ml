module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Protocol2 = Spe_mpc.Protocol2
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Counters = Spe_influence.Counters

type result = { strengths : ((int * int) * float) list; pairs : (int * int) array }

let run_with_logs st ~wire ~graph ~logs ~h ~c_factor ~modulus =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol4_jaccard.run_with_logs: need at least two providers";
  let num_actions = Array.fold_left (fun acc l -> max acc (Log.num_actions l)) 0 logs in
  (* The denominator aggregates can reach 2A. *)
  let input_bound = 2 * num_actions in
  if modulus <= input_bound then
    invalid_arg "Protocol4_jaccard.run_with_logs: modulus must exceed 2A";
  let pairs = Protocol4.publish_pairs st ~wire ~graph ~m ~c_factor in
  let q = Array.length pairs in
  (* Per provider: [numerator b per pair; denominator contribution
     a_i,k + a_j,k - both_k per pair]. *)
  let inputs =
    Array.map
      (fun log ->
        let ct = Counters.compute log ~h ~pairs in
        let numer = ct.Counters.b in
        let denom =
          Array.mapi
            (fun k (i, j) -> ct.Counters.a.(i) + ct.Counters.a.(j) - ct.Counters.both.(k))
            pairs
        in
        Array.append numer denom)
      logs
  in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let { Protocol2.share1; share2; views = _ } =
    Protocol2.run st ~wire ~parties ~third_party ~modulus ~input_bound ~inputs
  in
  (* Joint per-pair masks (the denominator is pair-specific). *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(q * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(q * Wire.float_bits));
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(q * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(q * Wire.float_bits));
  let masks = Array.init q (fun _ -> Dist.mask_pair st) in
  let masked shares k = masks.(k) *. float_of_int shares.(k) in
  let masked_den shares k = masks.(k) *. float_of_int shares.(q + k) in
  (* Both players ship 2q masked reals to the host. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:Wire.Host ~bits:(2 * q * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:Wire.Host ~bits:(2 * q * Wire.float_bits));
  let strengths = ref [] in
  for k = q - 1 downto 0 do
    let u, v = pairs.(k) in
    if Digraph.mem_edge graph u v then begin
      let den = masked_den share1 k +. masked_den share2 k in
      let p = if den = 0. then 0. else (masked share1 k +. masked share2 k) /. den in
      strengths := ((u, v), p) :: !strengths
    end
  done;
  { strengths = !strengths; pairs }
