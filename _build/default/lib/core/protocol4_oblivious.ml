module State = Spe_rng.State
module Dist = Spe_rng.Dist
module Wire = Spe_mpc.Wire
module Protocol2 = Spe_mpc.Protocol2
module Ot = Spe_mpc.Ot
module Digraph = Spe_graph.Digraph
module Log = Spe_actionlog.Log
module Counters = Spe_influence.Counters

type result = { strengths : ((int * int) * float) list; transfers : int }

let all_pairs n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto 0 do
      if u <> v then acc := (u, v) :: !acc
    done
  done;
  Array.of_list !acc

(* Split a double into two non-negative 32-bit OT messages and back. *)
let float_halves f =
  let bits = Int64.bits_of_float f in
  ( Int64.to_int (Int64.shift_right_logical bits 32),
    Int64.to_int (Int64.logand bits 0xFFFFFFFFL) )

let float_of_halves (hi, lo) =
  Int64.float_of_bits
    (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

let analytic_wire_bits ~n ~edges ~key_bits ~modulus_bits =
  let q = n * (n - 1) in
  let counters = n + q in
  let m = 2 in
  (* Protocol 1/2 rounds (m = 2) + masked activity + 4|E| transfers. *)
  let sharing = (m * (m - 1) * counters * modulus_bits) + (2 * counters * modulus_bits) + counters in
  let masks = 4 * n * Wire.float_bits in
  let activity = 2 * n * Wire.float_bits in
  sharing + masks + activity + (4 * edges * Ot.wire_bits ~n:q ~key_bits)

let run st ~wire ~graph ~num_actions ~logs ~modulus ~h ~key_bits =
  let m = Array.length logs in
  if m < 2 then invalid_arg "Protocol4_oblivious.run: need at least two providers";
  let n = Digraph.n graph in
  let pairs = all_pairs n in
  let q = Array.length pairs in
  (* Providers build counters for every ordered pair; nothing about E
     is published. *)
  let inputs =
    Array.map
      (fun log ->
        let ct = Counters.compute log ~h ~pairs in
        Array.append ct.Counters.a (Array.map (fun row -> Array.fold_left ( + ) 0 row) ct.Counters.c))
      logs
  in
  let parties = Array.init m (fun k -> Wire.Provider k) in
  let third_party = if m > 2 then Wire.Provider 2 else Wire.Host in
  let { Protocol2.share1; share2; views = _ } =
    Protocol2.run st ~wire ~parties ~third_party ~modulus ~input_bound:num_actions ~inputs
  in
  (* Per-user masks, jointly drawn as in Protocol 4. *)
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:parties.(1) ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:parties.(0) ~bits:(n * Wire.float_bits));
  let masks = Array.init n (fun _ -> Dist.mask_pair st) in
  let masked shares idx =
    let i, _ = pairs.(idx) in
    masks.(i) *. float_of_int shares.(n + idx)
  in
  (* Masked activity denominators travel in the clear (per user). *)
  let masked_a shares i = masks.(i) *. float_of_int shares.(i) in
  Wire.round wire (fun () ->
      Wire.send wire ~src:parties.(0) ~dst:Wire.Host ~bits:(n * Wire.float_bits);
      Wire.send wire ~src:parties.(1) ~dst:Wire.Host ~bits:(n * Wire.float_bits));
  (* The host retrieves the masked numerator shares of its real arcs
     by oblivious transfer; the providers never learn the indices. *)
  let transfers = ref 0 in
  let fetch shares idx ~sender =
    let messages_hi = Array.make q 0 and messages_lo = Array.make q 0 in
    for k = 0 to q - 1 do
      let hi, lo = float_halves (masked shares k) in
      messages_hi.(k) <- hi;
      messages_lo.(k) <- lo
    done;
    let hi =
      Ot.transfer st ~wire ~sender ~receiver:Wire.Host ~key_bits ~messages:messages_hi
        ~choice:idx
    in
    let lo =
      Ot.transfer st ~wire ~sender ~receiver:Wire.Host ~key_bits ~messages:messages_lo
        ~choice:idx
    in
    transfers := !transfers + 2;
    float_of_halves (hi, lo)
  in
  (* Pair index lookup. *)
  let index = Hashtbl.create q in
  Array.iteri (fun k pair -> Hashtbl.replace index pair k) pairs;
  let strengths =
    Digraph.fold_edges graph ~init:[] ~f:(fun acc u v ->
        let idx = Hashtbl.find index (u, v) in
        let num = fetch share1 idx ~sender:parties.(0) +. fetch share2 idx ~sender:parties.(1) in
        let den = masked_a share1 u +. masked_a share2 u in
        let p = if den = 0. then 0. else num /. den in
        ((u, v), p) :: acc)
    |> List.rev
  in
  { strengths; transfers = !transfers }
