(** Protocol 5 — secure aggregation of the counters of one action class
    (Sec. 5.2, non-exclusive case).

    When the same action can be bought from several providers, a single
    propagation trace is scattered across their logs, and no provider
    can compute window counters alone.  For each action class [A_q] the
    supporting providers obfuscate their class sub-logs, ship them to a
    trusted third party (a provider outside the class, or the host),
    who unifies them, computes every non-zero counter on the obfuscated
    identifiers, and returns them to a representative provider; the
    representative undoes the obfuscation.  From then on the
    representative answers for the whole class in Protocol 4 and all
    providers drop the class records from their logs.

    Two obfuscation methods:
    - {e Basic} — secret uniform permutations rename users and actions;
      time stamps travel in the clear, so the third party sees the
      anonymous temporal activity profile.
    - {e Enhanced} — additionally, time stamps are encrypted with a
      shift cipher of period [T + h], and every time slot is padded to
      a common per-slot record count with fake-user records, so the
      third party cannot locate the wrap-around gap and the temporal
      profile is flattened.  Counters touching a fake user are simply
      discarded by the representative.  The window test still works on
      ciphertexts (inequality (12) — see [Spe_crypto.Shift_cipher]). *)

type obfuscation =
  | Basic
  | Enhanced
      (** Shift-cipher on times plus fake-user padding; the number of
          fake users is sized automatically from the padding demand. *)

type class_counters = {
  a : int array;
      (** Per true user: actions of this class performed anywhere. *)
  c_table : (int * int, int array) Hashtbl.t;
      (** Sparse lag counters: [(i, j) -> [|c^1; ..; c^h|]] on true
          user ids; pairs with all-zero rows are absent. *)
  h : int;
}

val run :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  h:int ->
  providers:Spe_mpc.Wire.party array ->
  trusted:Spe_mpc.Wire.party ->
  logs:Spe_actionlog.Log.t array ->
  obfuscation:obfuscation ->
  class_counters
(** [run st ~wire ~h ~providers ~trusted ~logs ~obfuscation] aggregates
    one class.  [logs.(k)] is the class-filtered log of
    [providers.(k)]; all logs share universe sizes.  [trusted] must not
    be one of the providers.  The representative receiving the counters
    is [providers.(0)].  Consumes 2 wire rounds (logs in, counters
    back). *)

val to_provider_input :
  class_counters list -> pairs:(int * int) array -> Protocol4.provider_input
(** Restriction of (a sum of) class counter sets to a published pair
    set — the representative's contribution to Protocol 4.  All sets
    must share the window width and user universe. *)
