(** A secure Jaccard-estimator variant of Protocol 4.

    Goyal et al.'s Jaccard strength
    [b^h_(i,j) / (a_i + a_j - both_(i,j))] is built from counters that
    are all additive across exclusive providers (each provider can
    compute its local numerator [b] and local denominator contribution
    [a_(i,k) + a_(j,k) - both_k] per published pair), so the paper's
    machinery extends verbatim: batched Protocol 2 over the [2q]
    pair counters, a multiplicative mask per {e pair} (the denominator
    is pair-specific, unlike Eq. 1's per-user [a_i]), masked shares to
    the host, quotients.

    Leakage profile matches Protocol 4: Theorem 4.1 for the sharing,
    Theorems 4.2-4.4 for the masked values. *)

type result = {
  strengths : ((int * int) * float) list;  (** Jaccard strength per real arc. *)
  pairs : (int * int) array;
}

val run_with_logs :
  Spe_rng.State.t ->
  wire:Spe_mpc.Wire.t ->
  graph:Spe_graph.Digraph.t ->
  logs:Spe_actionlog.Log.t array ->
  h:int ->
  c_factor:float ->
  modulus:int ->
  result
(** End-to-end exclusive-case run.  Raises [Invalid_argument] under the
    same conditions as Protocol 4 ([m >= 2], [S > 2A], valid [h]). *)
