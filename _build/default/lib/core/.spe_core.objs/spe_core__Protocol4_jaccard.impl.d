lib/core/protocol4_jaccard.ml: Array Protocol4 Spe_actionlog Spe_graph Spe_influence Spe_mpc Spe_rng
