lib/core/protocol4_jaccard.mli: Spe_actionlog Spe_graph Spe_mpc Spe_rng
