lib/core/driver.ml: Array Protocol4 Protocol5 Protocol6 Spe_actionlog Spe_graph Spe_influence Spe_mpc Spe_rng
