lib/core/protocol4_multi_host.ml: Array Hashtbl List Protocol4 Spe_actionlog Spe_graph Spe_mpc Spe_rng
