lib/core/protocol4.ml: Array Spe_actionlog Spe_graph Spe_influence Spe_mpc Spe_rng
