lib/core/protocol5.mli: Hashtbl Protocol4 Spe_actionlog Spe_mpc Spe_rng
