lib/core/protocol4_oblivious.mli: Spe_actionlog Spe_graph Spe_mpc Spe_rng
