lib/core/protocol6.ml: Array Hashtbl List Protocol4 Spe_actionlog Spe_crypto Spe_graph Spe_influence Spe_mpc Spe_rng
