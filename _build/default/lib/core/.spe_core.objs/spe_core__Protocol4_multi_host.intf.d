lib/core/protocol4_multi_host.mli: Protocol4 Spe_actionlog Spe_graph Spe_mpc Spe_rng
