lib/core/protocol4_oblivious.ml: Array Hashtbl Int64 List Spe_actionlog Spe_graph Spe_influence Spe_mpc Spe_rng
