lib/core/protocol5.ml: Array Hashtbl List Option Protocol4 Spe_actionlog Spe_crypto Spe_mpc Spe_rng
