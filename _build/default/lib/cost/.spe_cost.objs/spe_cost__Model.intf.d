lib/cost/model.mli: Format Spe_mpc
