lib/cost/model.ml: Array Format List Printf Spe_mpc
