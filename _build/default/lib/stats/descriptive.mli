(** Descriptive statistics over float samples.

    Shared by the evaluation harness and the examples (estimate-quality
    reporting, histogram summaries).  All functions raise
    [Invalid_argument] on empty samples. *)

val mean : float array -> float

val variance : float array -> float
(** Population variance (divides by [n]). *)

val stddev : float array -> float

val median : float array -> float

val quantile : float array -> q:float -> float
(** Linear-interpolation quantile, [q] in [[0, 1]]. *)

val min_max : float array -> float * float

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
