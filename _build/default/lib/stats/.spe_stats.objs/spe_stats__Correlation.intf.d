lib/stats/correlation.mli:
