let check name a = if Array.length a = 0 then invalid_arg ("Spe_stats." ^ name ^ ": empty sample")

let mean a =
  check "mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  check "variance" a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a
  /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let quantile a ~q =
  check "quantile" a;
  if q < 0. || q > 1. then invalid_arg "Spe_stats.quantile: q out of [0,1]";
  let sorted = Array.copy a in
  Array.sort Stdlib.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median a = quantile a ~q:0.5

let min_max a =
  check "min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0))
    a

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize a =
  check "summarize" a;
  let lo, hi = min_max a in
  {
    count = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = lo;
    p25 = quantile a ~q:0.25;
    median = median a;
    p75 = quantile a ~q:0.75;
    max = hi;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4f sd=%.4f min=%.4f p25=%.4f med=%.4f p75=%.4f max=%.4f" s.count s.mean
    s.stddev s.min s.p25 s.median s.p75 s.max
