let check2 name a b =
  if Array.length a <> Array.length b then
    invalid_arg ("Spe_stats." ^ name ^ ": length mismatch");
  if Array.length a < 2 then invalid_arg ("Spe_stats." ^ name ^ ": need at least two points")

let pearson a b =
  check2 "pearson" a b;
  let ma = Descriptive.mean a and mb = Descriptive.mean b in
  let num = ref 0. and da = ref 0. and db = ref 0. in
  Array.iteri
    (fun i x ->
      let xa = x -. ma and xb = b.(i) -. mb in
      num := !num +. (xa *. xb);
      da := !da +. (xa *. xa);
      db := !db +. (xb *. xb))
    a;
  !num /. sqrt (!da *. !db)

let ranks a =
  let n = Array.length a in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Stdlib.compare a.(i) a.(j)) idx;
  let out = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    (* Tie block [i, j). *)
    let j = ref (!i + 1) in
    while !j < n && a.(idx.(!j)) = a.(idx.(!i)) do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 1) /. 2. in
    for k = !i to !j - 1 do
      out.(idx.(k)) <- avg_rank
    done;
    i := !j
  done;
  out

let spearman a b =
  check2 "spearman" a b;
  pearson (ranks a) (ranks b)

let kendall a b =
  check2 "kendall" a b;
  let n = Array.length a in
  let concordant = ref 0 and discordant = ref 0 in
  let ties_a = ref 0 and ties_b = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let da = Stdlib.compare a.(i) a.(j) and db = Stdlib.compare b.(i) b.(j) in
      if da = 0 && db = 0 then ()
      else if da = 0 then incr ties_a
      else if db = 0 then incr ties_b
      else if da * db > 0 then incr concordant
      else incr discordant
    done
  done;
  let c = float_of_int !concordant and d = float_of_int !discordant in
  let ta = float_of_int !ties_a and tb = float_of_int !ties_b in
  (c -. d) /. sqrt ((c +. d +. ta) *. (c +. d +. tb))
