(** Correlation coefficients.

    Used to score how well the (securely or locally) learned influence
    estimates track the planted ground truth, and how influence
    rankings relate to structural centralities.  All functions raise
    [Invalid_argument] on mismatched lengths or samples shorter than
    2. *)

val pearson : float array -> float array -> float
(** Linear correlation; [nan] when either sample is constant. *)

val spearman : float array -> float array -> float
(** Rank correlation: Pearson over mid-ranks (ties averaged). *)

val kendall : float array -> float array -> float
(** Kendall's tau-b (tie-corrected), computed in O(n^2) — fine for the
    arc counts used here. *)

val ranks : float array -> float array
(** Mid-ranks (1-based, ties averaged) — exposed for tests. *)
