(** The a-posteriori belief induced by Protocol 3's masking
    (Theorems 4.2-4.4).

    A curious party holds a prior [f] over the private counter
    [X in {0..A}] and observes [Y = R * X], where [M ~ Z] (pdf
    [mu^-2] on [[1, inf)]) and [R | M ~ U(0, M)].

    Marginalising the mask gives the likelihood
    [f(y | x) = (1/(2x)) * min(1, x/y)^2] for [x >= 1], hence the
    closed-form posterior

    {v f(x | y)  ∝  f(x)/x * min(1, x/y)^2 v}

    (zero at [x = 0] for [y > 0]; a point mass at [0] for [y = 0]).
    This is the same distribution as the paper's Theorem 4.4
    decomposition through the per-[mu] conditional [G_mu] and the
    updated mask posterior — the test suite verifies the equivalence by
    numerical integration.  The paper's qualitative claims fall out
    directly: every [x] with positive prior stays possible
    (Theorem 4.3), and every [y > A] induces the {e same} posterior
    [f(x) * x / sum_k f(k) * k]. *)

type prior = private float array
(** A distribution over [{0, .., A}]: non-negative, summing to 1. *)

val prior_of_array : float array -> prior
(** Validate an explicit prior.  Raises [Invalid_argument] on negative
    mass or a sum differing from 1 by more than 1e-9. *)

val uniform_prior : bound:int -> prior
(** Uniform on [{0..A}] — Sec. 7.2, prior (a). *)

val unimodal_prior : bound:int -> prior
(** The paper's triangular prior peaked at [A/2] — Sec. 7.2, prior (b):
    [f(i) = (i+1)/(1+A/2)^2] for [i <= A/2], symmetric above.
    Requires an even [bound]. *)

val geometric_prior : bound:int -> p:float -> prior
(** Truncated geometric, an extra shape for the extended experiments. *)

val bound : prior -> int
(** The [A] of the prior's support. *)

val mean : float array -> float
(** Mean of a distribution over [{0..A}] (prior or posterior). *)

val posterior : prior -> y:float -> float array
(** [posterior f ~y] is the belief over [{0..A}] after observing the
    masked value [y >= 0].  Raises [Invalid_argument] on negative [y],
    and on [y > 0] when the prior puts all mass on [0] (such an
    observation would be impossible). *)

val posterior_ratio : prior -> y:float -> x:int -> float
(** [f(x|y) / f(x)] — the quantity tabulated by Theorem 4.4; [nan] when
    [f(x) = 0]. *)

val entropy : float array -> float
(** Shannon entropy in bits of a distribution over [{0..A}] (zero-mass
    points contribute nothing). *)

val kl_divergence : from_:float array -> to_:float array -> float
(** [KL(from_ || to_)] in bits — how much the posterior sharpened the
    prior.  [infinity] when [from_] puts mass where [to_] has none;
    raises [Invalid_argument] on mismatched lengths. *)

val expected_posterior_entropy :
  Spe_rng.State.t -> prior -> samples:int -> float
(** Monte-Carlo estimate of [E_y H(f(. | y))] under the masking
    process: how uncertain the observer remains on average.  A
    quantitative summary of Theorem 4.3's "all values stay suspicious"
    (compare against [entropy prior]). *)
