module State = Spe_rng.State
module Log = Spe_actionlog.Log
module Counters = Spe_influence.Counters

let laplace_noise st ~scale =
  if scale <= 0. then invalid_arg "Perturbation.laplace_noise: scale must be positive";
  (* Inverse CDF on a symmetric uniform draw. *)
  let u = State.next_float st -. 0.5 in
  let sign = if u < 0. then -1. else 1. in
  -.scale *. sign *. log1p (-.2. *. abs_float u)

let laplace_counters st ~epsilon (ct : Counters.t) =
  if epsilon <= 0. then invalid_arg "Perturbation.laplace_counters: epsilon must be positive";
  let scale = 1. /. epsilon in
  let noisy_a = Array.map (fun a -> float_of_int a +. laplace_noise st ~scale) ct.Counters.a in
  let noisy_b =
    Array.map
      (fun row -> float_of_int (Array.fold_left ( + ) 0 row) +. laplace_noise st ~scale)
      ct.Counters.c
  in
  (noisy_a, noisy_b)

let perturbed_strengths st ~epsilon (ct : Counters.t) =
  let noisy_a, noisy_b = laplace_counters st ~epsilon ct in
  Array.mapi
    (fun k (i, _) ->
      if noisy_a.(i) < 1. then 0.
      else Float.max 0. (Float.min 1. (noisy_b.(k) /. noisy_a.(i))))
    ct.Counters.pairs

let randomized_response st ~p_truth log =
  if p_truth < 0. || p_truth > 1. then
    invalid_arg "Perturbation.randomized_response: p_truth out of [0,1]";
  let num_users = Log.num_users log and num_actions = Log.num_actions log in
  let horizon = 1 + Log.max_time log in
  let flip (r : Log.record) =
    if State.next_float st < p_truth then r
    else
      {
        Log.user = State.next_int st (max 1 num_users);
        action = State.next_int st (max 1 num_actions);
        time = State.next_int st horizon;
      }
  in
  Log.of_records ~num_users ~num_actions (List.map flip (Log.records log))
