(** The Sec. 7.2 experiment: does seeing the masked value help a
    curious party guess the private counter?

    For each true value [x in {1..A}] and each of [trials] rounds, draw
    a mask [r] (Protocol 3's distribution), observe [y = r * x], and
    compare the guessing errors before and after:
    [E_pre = |x - mean(prior)|], [E_post = |x - mean(posterior(y))|].
    The {e gain} is [G = E_pre - E_post]; positive gains mean the
    observation helped.  The paper's Figure 1 histograms these
    [A * trials] gains and reports a tiny positive average — "from an
    information-theoretical point of view, y does reveal some
    information on x; but from a practical point of view the gain is
    insignificant". *)

type histogram = {
  lo : float;  (** Left edge of the first bucket. *)
  width : float;  (** Bucket width. *)
  counts : int array;
}

val histogram_of : ?buckets:int -> float array -> histogram
(** Equal-width histogram over the sample range (default 16 buckets).
    Raises [Invalid_argument] on an empty sample. *)

type result = {
  gains : float array;  (** All [A * trials] gain samples. *)
  average : float;
  positive_fraction : float;  (** Share of strictly positive gains. *)
  histogram : histogram;
}

val run :
  Spe_rng.State.t -> prior:Posterior.prior -> trials_per_x:int -> result
(** The experiment exactly as specified in Sec. 7.2 (the paper uses
    [A = 10] and 1000 trials per [x]). *)

val pp_histogram : Format.formatter -> histogram -> unit
(** ASCII rendering, one bucket per line. *)
