type prior = float array

let prior_of_array f =
  if Array.length f < 1 then invalid_arg "Posterior.prior_of_array: empty prior";
  Array.iter (fun p -> if p < 0. then invalid_arg "Posterior.prior_of_array: negative mass") f;
  let total = Array.fold_left ( +. ) 0. f in
  if abs_float (total -. 1.) > 1e-9 then
    invalid_arg "Posterior.prior_of_array: masses must sum to 1";
  Array.copy f

let uniform_prior ~bound =
  if bound < 0 then invalid_arg "Posterior.uniform_prior: negative bound";
  Array.make (bound + 1) (1. /. float_of_int (bound + 1))

let unimodal_prior ~bound =
  if bound <= 0 || bound mod 2 <> 0 then
    invalid_arg "Posterior.unimodal_prior: bound must be positive and even";
  let half = bound / 2 in
  let denom = float_of_int ((1 + half) * (1 + half)) in
  Array.init (bound + 1) (fun i ->
      if i <= half then float_of_int (i + 1) /. denom
      else float_of_int (bound + 1 - i) /. denom)

let geometric_prior ~bound ~p =
  if bound < 0 then invalid_arg "Posterior.geometric_prior: negative bound";
  if p <= 0. || p >= 1. then invalid_arg "Posterior.geometric_prior: p must be in (0,1)";
  let raw = Array.init (bound + 1) (fun i -> p *. ((1. -. p) ** float_of_int i)) in
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun v -> v /. total) raw

let bound (f : prior) = Array.length f - 1

let mean dist =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (float_of_int i *. p)) dist;
  !acc

let posterior (f : prior) ~y =
  if y < 0. then invalid_arg "Posterior.posterior: negative observation";
  let a = bound f in
  if y = 0. then begin
    (* Y = 0 happens exactly when X = 0 (the mask is positive). *)
    let out = Array.make (a + 1) 0. in
    out.(0) <- 1.;
    out
  end
  else begin
    let weights =
      Array.init (a + 1) (fun x ->
          if x = 0 then 0.
          else
            let xf = float_of_int x in
            let clip = Float.min 1. (xf /. y) in
            f.(x) /. xf *. clip *. clip)
    in
    let total = Array.fold_left ( +. ) 0. weights in
    if total <= 0. then
      invalid_arg "Posterior.posterior: observation impossible under the prior";
    Array.map (fun w -> w /. total) weights
  end

let posterior_ratio f ~y ~x =
  let a = bound f in
  if x < 0 || x > a then invalid_arg "Posterior.posterior_ratio: x out of support";
  if f.(x) = 0. then Float.nan else (posterior f ~y).(x) /. f.(x)

let log2 x = log x /. log 2.

let entropy dist =
  Array.fold_left (fun acc p -> if p > 0. then acc -. (p *. log2 p) else acc) 0. dist

let kl_divergence ~from_ ~to_ =
  if Array.length from_ <> Array.length to_ then
    invalid_arg "Posterior.kl_divergence: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      if p > 0. then
        if to_.(i) > 0. then acc := !acc +. (p *. log2 (p /. to_.(i)))
        else acc := Float.infinity)
    from_;
  !acc

let expected_posterior_entropy st f ~samples =
  if samples < 1 then invalid_arg "Posterior.expected_posterior_entropy: need samples";
  (* Draw x ~ prior, mask it, measure the induced posterior's
     entropy. *)
  let total = ref 0. in
  for _ = 1 to samples do
    let x = Spe_rng.Dist.categorical st (f : prior :> float array) in
    let y = if x = 0 then 0. else Spe_rng.Dist.mask_pair st *. float_of_int x in
    total := !total +. entropy (posterior f ~y)
  done;
  !total /. float_of_int samples
