(** Theorem 4.1 — leak probabilities of Protocol 2, closed form and
    Monte-Carlo.

    For an aggregate [x in [0, A]] shared modulo [S]:
    - player 2 learns a (non-trivial) lower bound with probability
      [x / S], an upper bound with probability [(A - x) / S], nothing
      with probability [(S - A) / S];
    - the third party learns a lower or an upper bound each with
      probability at most [A / (S - A)], nothing with probability at
      least [(S - 3A) / (S - A)];
    - every other player learns nothing.

    {!required_modulus} inverts the bound used in Sec. 5.1.1: to push
    the probability that {e any} of [count] shared counters leaks
    anything to either observer below [epsilon], it suffices to take
    [S >= A * (1 + 2 * count / epsilon)]. *)

type rates = {
  p2_lower : float;
  p2_upper : float;
  p3_lower : float;  (** Upper bound for the third party's rate. *)
  p3_upper : float;  (** Upper bound for the third party's rate. *)
}

val theoretical : modulus:int -> input_bound:int -> x:int -> rates
(** The Theorem 4.1 probabilities for a fixed aggregate [x]. *)

type observed = {
  trials : int;
  p2_lower_hits : int;
  p2_upper_hits : int;
  p3_lower_hits : int;
  p3_upper_hits : int;
}

val monte_carlo :
  Spe_rng.State.t -> modulus:int -> input_bound:int -> x:int -> trials:int -> observed
(** Run Protocol 2 [trials] times on a two-party split of [x] and count
    the leaks each observer actually obtained. *)

val required_modulus : input_bound:int -> counters:int -> epsilon:float -> int
(** The Sec. 5.1.1 sizing rule [S >= A * (1 + 2 * counters / epsilon)]. *)
