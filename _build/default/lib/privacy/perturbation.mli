(** Data perturbation — the {e other} privacy-preserving data mining
    paradigm (Sec. 2's first setting), implemented as a contrast
    baseline.

    The paper's protocols compute influence {e exactly} while hiding
    inputs; perturbation approaches instead add noise to the published
    data and accept estimation error.  Two standard mechanisms over the
    counter interface:

    - {!laplace_counters} — each provider publishes its counters with
      Laplace noise of scale [sensitivity / epsilon].  Since a single
      log record changes [a_i] by one and each [b^h] by at most one,
      per-counter sensitivity is 1 and the mechanism is
      [epsilon]-differentially private per counter.
    - {!randomized_response} — each log record is reported truthfully
      with probability [p] and replaced by a uniformly random record
      otherwise (Warner's classic design), with the unbiased
      frequency correction left to the analyst.

    The bench compares the estimation error of Laplace-perturbed
    Eq. (1) strengths against the exact secure protocol across
    [epsilon] — quantifying the utility price of the perturbation
    paradigm that the paper's MPC approach avoids. *)

val laplace_noise : Spe_rng.State.t -> scale:float -> float
(** One sample of centred Laplace noise. *)

val laplace_counters :
  Spe_rng.State.t -> epsilon:float -> Spe_influence.Counters.t -> float array * float array
(** [(noisy_a, noisy_b)] — the activity and window counters with
    i.i.d. Laplace([1/epsilon]) noise (per-counter sensitivity 1).
    Raises [Invalid_argument] on non-positive [epsilon]. *)

val perturbed_strengths :
  Spe_rng.State.t -> epsilon:float -> Spe_influence.Counters.t -> float array
(** Eq. (1) computed from Laplace-noisy counters, clamped to [[0, 1]];
    pairs whose noisy denominator is below 1 report 0. *)

val randomized_response :
  Spe_rng.State.t -> p_truth:float -> Spe_actionlog.Log.t -> Spe_actionlog.Log.t
(** Each record kept with probability [p_truth], otherwise replaced by
    a uniform (user, action, time) triple over the same universes
    (times up to the log's max time).  [p_truth] in [[0, 1]]. *)
