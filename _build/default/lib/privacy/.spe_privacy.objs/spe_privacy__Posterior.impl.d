lib/privacy/posterior.ml: Array Float Spe_rng
