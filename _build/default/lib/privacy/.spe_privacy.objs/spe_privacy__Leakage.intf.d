lib/privacy/leakage.mli: Spe_rng
