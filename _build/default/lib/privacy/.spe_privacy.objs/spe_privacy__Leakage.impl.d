lib/privacy/leakage.ml: Array Spe_mpc Spe_rng
