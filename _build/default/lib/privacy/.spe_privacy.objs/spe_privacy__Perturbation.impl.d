lib/privacy/perturbation.ml: Array Float List Spe_actionlog Spe_influence Spe_rng
