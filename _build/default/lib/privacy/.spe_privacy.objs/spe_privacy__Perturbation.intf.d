lib/privacy/perturbation.mli: Spe_actionlog Spe_influence Spe_rng
