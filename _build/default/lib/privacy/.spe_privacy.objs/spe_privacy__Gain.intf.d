lib/privacy/gain.mli: Format Posterior Spe_rng
