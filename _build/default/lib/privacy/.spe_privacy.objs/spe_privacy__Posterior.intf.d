lib/privacy/posterior.mli: Spe_rng
