lib/privacy/gain.ml: Array Float Format Posterior Spe_rng String
