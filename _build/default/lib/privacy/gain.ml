module Dist = Spe_rng.Dist

type histogram = { lo : float; width : float; counts : int array }

let histogram_of ?(buckets = 16) samples =
  if Array.length samples = 0 then invalid_arg "Gain.histogram_of: empty sample";
  if buckets < 1 then invalid_arg "Gain.histogram_of: need at least one bucket";
  let lo = Array.fold_left Float.min samples.(0) samples in
  let hi = Array.fold_left Float.max samples.(0) samples in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1. in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun v ->
      let idx = min (buckets - 1) (int_of_float ((v -. lo) /. width)) in
      counts.(idx) <- counts.(idx) + 1)
    samples;
  { lo; width; counts }

type result = {
  gains : float array;
  average : float;
  positive_fraction : float;
  histogram : histogram;
}

let run st ~prior ~trials_per_x =
  if trials_per_x < 1 then invalid_arg "Gain.run: need at least one trial";
  let a = Posterior.bound prior in
  if a < 1 then invalid_arg "Gain.run: prior support must include positive values";
  let prior_mean = Posterior.mean (prior :> float array) in
  let gains = Array.make (a * trials_per_x) 0. in
  let idx = ref 0 in
  for x = 1 to a do
    let e_pre = abs_float (float_of_int x -. prior_mean) in
    for _ = 1 to trials_per_x do
      let r = Dist.mask_pair st in
      let y = r *. float_of_int x in
      let post = Posterior.posterior prior ~y in
      let e_post = abs_float (float_of_int x -. Posterior.mean post) in
      gains.(!idx) <- e_pre -. e_post;
      incr idx
    done
  done;
  let total = Array.fold_left ( +. ) 0. gains in
  let positive = Array.fold_left (fun acc g -> if g > 0. then acc + 1 else acc) 0 gains in
  {
    gains;
    average = total /. float_of_int (Array.length gains);
    positive_fraction = float_of_int positive /. float_of_int (Array.length gains);
    histogram = histogram_of gains;
  }

let pp_histogram fmt h =
  let max_count = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      let left = h.lo +. (float_of_int i *. h.width) in
      let bar = String.make (c * 50 / max_count) '#' in
      Format.fprintf fmt "[%7.3f, %7.3f) %6d %s@." left (left +. h.width) c bar)
    h.counts
