module State = Spe_rng.State
module Wire = Spe_mpc.Wire
module Protocol2 = Spe_mpc.Protocol2

type rates = { p2_lower : float; p2_upper : float; p3_lower : float; p3_upper : float }

let theoretical ~modulus ~input_bound ~x =
  if x < 0 || x > input_bound then invalid_arg "Leakage.theoretical: x out of [0, A]";
  if modulus <= input_bound then invalid_arg "Leakage.theoretical: need S > A";
  let s = float_of_int modulus and a = float_of_int input_bound in
  let p3_rate = a /. (s -. a) in
  {
    p2_lower = float_of_int x /. s;
    p2_upper = (a -. float_of_int x) /. s;
    p3_lower = p3_rate;
    p3_upper = p3_rate;
  }

type observed = {
  trials : int;
  p2_lower_hits : int;
  p2_upper_hits : int;
  p3_lower_hits : int;
  p3_upper_hits : int;
}

let monte_carlo st ~modulus ~input_bound ~x ~trials =
  if trials < 1 then invalid_arg "Leakage.monte_carlo: need at least one trial";
  if x < 0 || x > input_bound then invalid_arg "Leakage.monte_carlo: x out of [0, A]";
  let p2_lower = ref 0 and p2_upper = ref 0 and p3_lower = ref 0 and p3_upper = ref 0 in
  for _ = 1 to trials do
    (* Two-party split of x. *)
    let x1 = State.next_int st (x + 1) in
    let wire = Wire.create () in
    let r =
      Protocol2.run st ~wire
        ~parties:[| Wire.Provider 0; Wire.Provider 1 |]
        ~third_party:Wire.Host ~modulus ~input_bound
        ~inputs:[| [| x1 |]; [| x - x1 |] |]
    in
    (match r.Protocol2.views.Protocol2.p2_leaks.(0) with
    | Protocol2.Lower_bound _ -> incr p2_lower
    | Protocol2.Upper_bound _ -> incr p2_upper
    | Protocol2.Nothing -> ());
    match r.Protocol2.views.Protocol2.p3_leaks.(0) with
    | Protocol2.Lower_bound _ -> incr p3_lower
    | Protocol2.Upper_bound _ -> incr p3_upper
    | Protocol2.Nothing -> ()
  done;
  {
    trials;
    p2_lower_hits = !p2_lower;
    p2_upper_hits = !p2_upper;
    p3_lower_hits = !p3_lower;
    p3_upper_hits = !p3_upper;
  }

let required_modulus ~input_bound ~counters ~epsilon =
  if input_bound < 1 then invalid_arg "Leakage.required_modulus: need A >= 1";
  if counters < 1 then invalid_arg "Leakage.required_modulus: need at least one counter";
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Leakage.required_modulus: epsilon must be in (0,1)";
  let s =
    float_of_int input_bound *. (1. +. (2. *. float_of_int counters /. epsilon))
  in
  int_of_float (ceil s)
