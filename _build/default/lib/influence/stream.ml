module Log = Spe_actionlog.Log

type t = {
  num_actions : int;
  h : int;
  pairs : (int * int) array;
  a : int array;
  b : int array;
  c : int array array;
  both : int array;
  (* For each user, the published pairs it participates in:
     (pair index, partner, partner_is_target). *)
  touching : (int * int * bool) list array;
  (* time_of.(action) maps user -> time for ingested records. *)
  time_of : (int, int) Hashtbl.t array;
  mutable count : int;
}

let create ~num_users ~num_actions ~h ~pairs =
  if h < 1 then invalid_arg "Stream.create: window must be >= 1";
  if num_users < 0 || num_actions < 0 then invalid_arg "Stream.create: negative universe";
  let touching = Array.make num_users [] in
  Array.iteri
    (fun k (i, j) ->
      if i < 0 || i >= num_users || j < 0 || j >= num_users || i = j then
        invalid_arg "Stream.create: bad pair";
      touching.(i) <- (k, j, true) :: touching.(i);
      touching.(j) <- (k, i, false) :: touching.(j))
    pairs;
  {
    num_actions;
    h;
    pairs;
    a = Array.make num_users 0;
    b = Array.make (Array.length pairs) 0;
    c = Array.make_matrix (Array.length pairs) h 0;
    both = Array.make (Array.length pairs) 0;
    touching;
    time_of = Array.init num_actions (fun _ -> Hashtbl.create 8);
    count = 0;
  }

let add t (r : Log.record) =
  if r.Log.user < 0 || r.Log.user >= Array.length t.a then invalid_arg "Stream.add: user out of range";
  if r.Log.action < 0 || r.Log.action >= t.num_actions then
    invalid_arg "Stream.add: action out of range";
  if r.Log.time < 0 then invalid_arg "Stream.add: negative time";
  let table = t.time_of.(r.Log.action) in
  if Hashtbl.mem table r.Log.user then invalid_arg "Stream.add: duplicate (user, action) record";
  Hashtbl.replace table r.Log.user r.Log.time;
  t.a.(r.Log.user) <- t.a.(r.Log.user) + 1;
  t.count <- t.count + 1;
  (* A pair's episode completes when its second endpoint arrives. *)
  List.iter
    (fun (k, partner, user_is_source) ->
      match Hashtbl.find_opt table partner with
      | None -> ()
      | Some partner_time ->
        t.both.(k) <- t.both.(k) + 1;
        let d =
          if user_is_source then partner_time - r.Log.time else r.Log.time - partner_time
        in
        if d >= 1 && d <= t.h then begin
          t.b.(k) <- t.b.(k) + 1;
          t.c.(k).(d - 1) <- t.c.(k).(d - 1) + 1
        end)
    t.touching.(r.Log.user)

let add_log t log = List.iter (add t) (Log.records log)

let records t = t.count

let snapshot t =
  {
    Counters.a = Array.copy t.a;
    b = Array.copy t.b;
    c = Array.map Array.copy t.c;
    both = Array.copy t.both;
    h = t.h;
    pairs = t.pairs;
  }
