(** Propagation graphs and user influence scores (Sec. 3.2), in the
    clear.

    Def. 3.1: the propagation graph [PG(alpha)] of action [alpha] has
    an arc [(v_i, v_j)] labelled [dt = t_j - t_i] whenever [(v_i, v_j)]
    is a social arc and both users performed [alpha] with [dt > 0].

    Def. 3.2: the tau-influence sphere [Inf_tau(v_i, alpha)] is the set
    of nodes reachable from [v_i] in [PG(alpha)] by a path whose label
    sum is at most [tau].  We exclude [v_i] itself — the sphere
    measures {e other} users influenced, matching the leadership
    measures of Goyal et al. and Bakshy et al. that the definition is
    modelled on.

    Def. 3.3: [score(v_i) = (sum_alpha |Inf_tau(v_i, alpha)|) / a_i],
    zero when [a_i = 0]. *)

type labeled_arc = { src : int; dst : int; delta : int }

type t = {
  action : int;
  arcs : labeled_arc array;  (** Sorted by (src, dst). *)
  n : int;  (** Number of users in the universe. *)
}

val of_log : Spe_actionlog.Log.t -> Spe_graph.Digraph.t -> action:int -> t
(** Build [PG(alpha)] from the unified log and the social graph. *)

val of_arcs : n:int -> action:int -> labeled_arc list -> t
(** Build from explicit arcs (the host's reconstruction in Protocol 6).
    Labels must be positive. *)

val all_of_log : Spe_actionlog.Log.t -> Spe_graph.Digraph.t -> t array
(** One propagation graph per action of the universe (actions with no
    records yield empty graphs). *)

val sphere : t -> src:int -> tau:int -> int list
(** [Inf_tau(src, alpha)], ascending, excluding [src]. *)

val sphere_size : t -> src:int -> tau:int -> int

val score : Spe_actionlog.Log.t -> Spe_graph.Digraph.t -> tau:int -> float array
(** The tau-influence score of every user (Def. 3.3). *)

val sphere_totals : t array -> n:int -> tau:int -> int array
(** [sum_alpha |Inf_tau(v, alpha)|] for every user — the numerator of
    Def. 3.3, which the host computes locally from the Protocol 6
    output. *)

val score_from_graphs : t array -> a:int array -> tau:int -> float array
(** Score computation from prebuilt propagation graphs and activity
    counts — the exact computation the host performs at the end of
    Protocol 6. *)

val equal : t -> t -> bool
