module Log = Spe_actionlog.Log
module Digraph = Spe_graph.Digraph

let credits log graph ~h =
  if h < 1 then invalid_arg "Credit.credits: window must be >= 1";
  if Log.num_users log <> Digraph.n graph then
    invalid_arg "Credit.credits: log/graph user universe mismatch";
  let table = Hashtbl.create 256 in
  List.iter
    (fun action ->
      let recs = Log.by_action log action in
      let time = Hashtbl.create (List.length recs) in
      List.iter (fun (u, t) -> Hashtbl.replace time u t) recs;
      List.iter
        (fun (v, tv) ->
          let parents =
            Array.to_list (Digraph.in_neighbors graph v)
            |> List.filter (fun u ->
                   match Hashtbl.find_opt time u with
                   | Some tu -> tv > tu && tv - tu <= h
                   | None -> false)
          in
          match parents with
          | [] -> ()
          | _ ->
            let share = 1. /. float_of_int (List.length parents) in
            List.iter
              (fun u ->
                let arc = (u, v) in
                Hashtbl.replace table arc
                  (share +. Option.value ~default:0. (Hashtbl.find_opt table arc)))
              parents)
        recs)
    (Log.actions_present log);
  table

let strengths log graph ~h =
  let table = credits log graph ~h in
  let a = Log.user_activity log in
  List.map
    (fun (u, v) ->
      let credit = Option.value ~default:0. (Hashtbl.find_opt table (u, v)) in
      ((u, v), if a.(u) = 0 then 0. else credit /. float_of_int a.(u)))
    (Digraph.edges graph)
