(** Attribute-informed influence estimation — the paper's Sec. 8
    future-work setting "users are labeled by attributes (gender,
    location, occupation) that could be used, in conjunction with the
    activity logs, to better estimate the influence strengths",
    implemented as hierarchical shrinkage.

    Users carry a categorical attribute (group).  For every ordered
    group pair [(g, g')] the pooled strength
    [P(g, g') = sum b^h_(i,j) / sum a_i] over the arcs from group [g]
    to group [g'] estimates how strongly members of [g] influence
    members of [g'] on average.  The per-link estimate then shrinks
    toward its group-pair mean:

    {v p~_(i,j) = (b^h_(i,j) + lambda * P(g_i, g_j)) / (a_i + lambda) v}

    — a pseudo-count prior of weight [lambda].  Links with little
    evidence (small [a_i]) follow their demographic prior; links with
    rich evidence keep their empirical rate.  With [lambda = 0] this is
    exactly Eq. (1).

    Everything here is built from the same counters Protocol 4 shares
    securely — pooled numerators and denominators are sums of the
    per-provider counters, so the secure pipeline extends to this
    estimator unchanged (the group map is the host's public input). *)

type grouping = {
  group_of : int array;  (** User -> group id. *)
  num_groups : int;
}

val grouping_of_array : int array -> grouping
(** Validates and infers the group count ([Invalid_argument] on
    negative ids). *)

val random_grouping : Spe_rng.State.t -> n:int -> num_groups:int -> grouping

val pooled_strengths : Counters.t -> grouping -> float array array
(** [P(g, g')] per ordered group pair, from counters over the real arc
    set ([0.] where a group pair has no exposure). *)

val shrunk_strengths :
  Counters.t -> grouping -> lambda:float -> float array
(** The shrinkage estimator per counter pair, in pair order.  [lambda
    >= 0]. *)

val mse_vs_truth :
  estimates:float array ->
  pairs:(int * int) array ->
  truth:(int -> int -> float) ->
  float
(** Mean squared error against a planted ground truth — the metric the
    ablation bench reports when comparing [lambda] settings. *)
