(** The counters of Sec. 3.1, computed in the clear.

    For a unified log [L]:
    - [a_i] — number of (distinct) actions performed by user [i];
    - [b^h_(i,j)] — number of actions alpha with records
      [(v_i, alpha, t)] and [(v_j, alpha, t')] such that
      [t < t' <= t + h]: the episodes in which [j] followed [i] within
      the memory window [h];
    - [c^l_(i,j)] — episodes in which [j] followed [i] {e exactly} [l]
      steps later ([t' = t + l]), so [b^h = sum_(l=1..h) c^l].

    These are the private quantities the secure protocols compute
    additive shares of; this module is both the specification oracle
    for the protocol tests and the engine each provider runs on its
    local log. *)

type t = {
  a : int array;  (** [a.(i)] is [a_i]. *)
  b : int array;  (** [b.(k)] is [b^h] of the k-th published pair. *)
  c : int array array;
      (** [c.(k).(l-1)] is [c^l] of the k-th pair, [1 <= l <= h]. *)
  both : int array;
      (** [both.(k)]: actions performed by {e both} endpoints of the
          k-th pair, in any order and at any distance — the
          denominator ingredient of the Jaccard estimator (Goyal et
          al.'s static models).  Additive across exclusive providers,
          like every other counter here. *)
  h : int;  (** Window width the [b]/[c] counters were computed for. *)
  pairs : (int * int) array;  (** The pair ordering used by [b]/[c]. *)
}

val compute : Spe_actionlog.Log.t -> h:int -> pairs:(int * int) array -> t
(** Compute all counters for the given ordered pair set (typically the
    host's obfuscated [Omega_E']).  [h >= 1].

    Complexity: one probe per (action, pair) — O(|A| * q) — which is
    the right strategy when the pair set is small relative to the
    activity.  See {!compute_sparse} for the dual regime. *)

val compute_sparse : Spe_actionlog.Log.t -> h:int -> pairs:(int * int) array -> t
(** Same result as {!compute}, computed by enumerating the record
    pairs of each action and looking them up in the published set:
    O(sum_alpha k_alpha^2 + q) where [k_alpha] is the action's record
    count.  Wins when actions are small but the published pair set is
    large (e.g. the perfect-hiding variant's n(n-1) pairs).  The test
    suite asserts equality with {!compute} on random inputs; the bench
    reports the crossover. *)

val compute_auto : Spe_actionlog.Log.t -> h:int -> pairs:(int * int) array -> t
(** Picks between the two strategies from the workload's probe-count
    estimates. *)

val compute_graph : Spe_actionlog.Log.t -> h:int -> Spe_graph.Digraph.t -> t
(** Convenience: counters over exactly the arcs of a graph. *)

val b_single : Spe_actionlog.Log.t -> h:int -> i:int -> j:int -> int
(** [b^h_(i,j)] alone (quadratic per call; for tests and spot
    checks). *)

val c_single : Spe_actionlog.Log.t -> l:int -> i:int -> j:int -> int
(** [c^l_(i,j)] alone. *)

val add : t -> t -> t
(** Pointwise sum of two counter sets over the same pair ordering and
    window — the aggregation [a_i = sum_k a_i,k],
    [b = sum_k b_k] used in the exclusive case (Sec. 5.1).  Raises
    [Invalid_argument] on mismatched shapes. *)
