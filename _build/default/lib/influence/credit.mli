(** Partial-credit influence attribution (Goyal, Bonchi & Lakshmanan,
    "Learning influence probabilities in social networks", WSDM 2010).

    When a user activates with several in-neighbours active inside the
    window, Eq. (1)-style counting gives each of them a full success —
    overcounting joint influence.  The partial-credit variant splits
    each activation's unit of credit equally among the candidate
    parents:

    {v credit(u, v) = sum over actions alpha of
         1 / |parents of v in alpha|  (when u is such a parent)
       p_pc(u, v) = credit(u, v) / a_u v}

    Unlike the pairwise counters, the credit numerator depends on the
    {e joint} parent set per activation, which no single provider can
    see in the exclusive case and which the paper's share-based
    protocols do not cover — so this estimator is provided as a
    plaintext reference only (the natural secure extension would run it
    behind Protocol 5's trusted-party aggregation). *)

val credits :
  Spe_actionlog.Log.t -> Spe_graph.Digraph.t -> h:int -> (int * int, float) Hashtbl.t
(** Raw credit per arc (absent = zero). *)

val strengths :
  Spe_actionlog.Log.t -> Spe_graph.Digraph.t -> h:int -> ((int * int) * float) list
(** [p_pc] for every arc of the graph, in lexicographic arc order. *)
