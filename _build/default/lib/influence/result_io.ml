let strengths_to_string strengths =
  let buf = Buffer.create (32 * List.length strengths) in
  Buffer.add_string buf (Printf.sprintf "strengths %d\n" (List.length strengths));
  List.iter
    (fun ((u, v), p) -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" u v p))
    strengths;
  Buffer.contents buf

let scores_to_string scores =
  let buf = Buffer.create (24 * Array.length scores) in
  Buffer.add_string buf (Printf.sprintf "scores %d\n" (Array.length scores));
  Array.iteri (fun u s -> Buffer.add_string buf (Printf.sprintf "%d %.17g\n" u s)) scores;
  Buffer.contents buf

let parse ~kind ~record text =
  let header = ref None in
  let entries = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [] -> ()
      | s :: _ when String.length s > 0 && s.[0] = '#' -> ()
      | [ k; count ] when k = kind -> (
        if !header <> None then failwith (kind ^ " file: duplicate header");
        match int_of_string_opt count with
        | Some c when c >= 0 -> header := Some c
        | _ -> failwith (Printf.sprintf "%s file line %d: bad count" kind lineno))
      | parts -> entries := record lineno parts :: !entries)
    (String.split_on_char '\n' text);
  match !header with
  | None -> failwith (kind ^ " file: missing header")
  | Some expected ->
    let entries = List.rev !entries in
    if List.length entries <> expected then
      failwith (Printf.sprintf "%s file: header says %d entries, found %d" kind expected
                  (List.length entries));
    entries

let strengths_of_string text =
  parse ~kind:"strengths"
    ~record:(fun lineno parts ->
      match parts with
      | [ u; v; p ] -> (
        match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt p) with
        | Some u, Some v, Some p -> ((u, v), p)
        | _ -> failwith (Printf.sprintf "strengths file line %d: bad entry" lineno))
      | _ -> failwith (Printf.sprintf "strengths file line %d: bad entry" lineno))
    text

let scores_of_string text =
  let entries =
    parse ~kind:"scores"
      ~record:(fun lineno parts ->
        match parts with
        | [ u; s ] -> (
          match (int_of_string_opt u, float_of_string_opt s) with
          | Some u, Some s -> (u, s)
          | _ -> failwith (Printf.sprintf "scores file line %d: bad entry" lineno))
        | _ -> failwith (Printf.sprintf "scores file line %d: bad entry" lineno))
      text
  in
  let n = List.length entries in
  let out = Array.make n 0. in
  List.iter
    (fun (u, s) ->
      if u < 0 || u >= n then failwith "scores file: user id out of range";
      out.(u) <- s)
    entries;
  out

let write path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_strengths strengths path = write path (strengths_to_string strengths)
let load_strengths path = strengths_of_string (read path)
let save_scores scores path = write path (scores_to_string scores)
let load_scores path = scores_of_string (read path)
