module Digraph = Spe_graph.Digraph
module State = Spe_rng.State
module Dist = Spe_rng.Dist

type model = { graph : Digraph.t; probability : int -> int -> float }

let of_strengths g strengths =
  let table = Hashtbl.create (List.length strengths) in
  List.iter
    (fun ((u, v), p) -> Hashtbl.replace table (u, v) (Float.max 0. (Float.min 1. p)))
    strengths;
  let probability u v = match Hashtbl.find_opt table (u, v) with Some p -> p | None -> 0. in
  { graph = g; probability }

let eval_count = ref 0

let evaluations () = !eval_count

(* One cascade sample: BFS where each arc fires independently. *)
let sample_spread st model seeds =
  let n = Digraph.n model.graph in
  let active = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not active.(s) then begin
        active.(s) <- true;
        Queue.push s queue
      end)
    seeds;
  let count = ref (Queue.length queue) in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if (not active.(v)) && Dist.bernoulli st ~p:(model.probability u v) then begin
          active.(v) <- true;
          incr count;
          Queue.push v queue
        end)
      (Digraph.out_neighbors model.graph u)
  done;
  float_of_int !count

let spread st model ~seeds ~samples =
  if samples <= 0 then invalid_arg "Maximize.spread: need at least one sample";
  List.iter
    (fun s ->
      if s < 0 || s >= Digraph.n model.graph then invalid_arg "Maximize.spread: seed out of range")
    seeds;
  incr eval_count;
  let total = ref 0. in
  for _ = 1 to samples do
    total := !total +. sample_spread st model seeds
  done;
  !total /. float_of_int samples

let greedy_generic ~n ~spread ~k =
  if k < 0 || k > n then invalid_arg "Maximize: k out of range";
  eval_count := 0;
  let chosen = ref [] in
  let chosen_spread = ref 0. in
  for _ = 1 to k do
    let best = ref (-1) and best_spread = ref neg_infinity in
    for v = 0 to n - 1 do
      if not (List.mem v !chosen) then begin
        let s = spread (v :: !chosen) in
        if s > !best_spread then begin
          best := v;
          best_spread := s
        end
      end
    done;
    chosen := !best :: !chosen;
    chosen_spread := !best_spread
  done;
  (List.rev !chosen, !chosen_spread)

let celf_generic ~n ~spread ~k =
  if k < 0 || k > n then invalid_arg "Maximize: k out of range";
  eval_count := 0;
  if k = 0 then ([], 0.)
  else begin
    (* Priority list of (gain, node, round-of-last-evaluation), kept
       sorted descending by gain. *)
    let initial = List.init n (fun v -> (spread [ v ], v, 0)) in
    let queue = ref (List.sort (fun (a, _, _) (b, _, _) -> Stdlib.compare b a) initial) in
    let chosen = ref [] and chosen_spread = ref 0. and round = ref 0 in
    while List.length !chosen < k do
      match !queue with
      | [] -> assert false (* k <= n guarantees enough candidates *)
      | (gain, v, last) :: rest ->
        if last = !round then begin
          (* Gain is fresh for the current seed set: pick it. *)
          chosen := v :: !chosen;
          chosen_spread := !chosen_spread +. gain;
          incr round;
          queue := rest
        end
        else begin
          (* Stale: re-evaluate the marginal gain and re-insert. *)
          let s = spread (v :: !chosen) in
          let fresh_gain = s -. !chosen_spread in
          let rec insert x = function
            | [] -> [ x ]
            | ((g', _, _) as y) :: tl ->
              let g, _, _ = x in
              if g >= g' then x :: y :: tl else y :: insert x tl
          in
          queue := insert (fresh_gain, v, !round) rest
        end
    done;
    (List.rev !chosen, !chosen_spread)
  end

(* The generic entry points reset the evaluation counter; the closures
   below bump it on every call through [spread]. *)
let greedy st model ~k ~samples =
  greedy_generic ~n:(Digraph.n model.graph) ~spread:(fun seeds -> spread st model ~seeds ~samples) ~k

let celf st model ~k ~samples =
  celf_generic ~n:(Digraph.n model.graph) ~spread:(fun seeds -> spread st model ~seeds ~samples) ~k
