(** Incremental counter maintenance.

    Providers accumulate activity continuously; rebuilding every
    counter from scratch before each protocol run costs
    O(|A| * q) (see {!Counters.compute}).  This accumulator ingests
    records one at a time and keeps the full counter set current, so a
    provider's cost per new record is proportional to the published
    pairs touching that user — after which {!snapshot} is O(q).

    Records may arrive in any time order; the at-most-once-per
    (user, action) rule of the log model is enforced ([Invalid_argument]
    on violations, since silently keeping the earlier record would
    require retracting already-counted episodes). *)

type t

val create :
  num_users:int -> num_actions:int -> h:int -> pairs:(int * int) array -> t
(** An empty accumulator over the published pair set. *)

val add : t -> Spe_actionlog.Log.record -> unit
(** Ingest one record, updating every affected counter. *)

val add_log : t -> Spe_actionlog.Log.t -> unit
(** Ingest a whole log (e.g. a day's batch). *)

val records : t -> int
(** Records ingested so far. *)

val snapshot : t -> Counters.t
(** The current counters (fresh arrays; the accumulator can keep
    ingesting).  Equal to [Counters.compute] over the same records —
    asserted by the test suite on random streams. *)
