(** Link influence strength (Sec. 3.1) in the clear.

    Eq. (1): [p_(i,j) = b^h_(i,j) / a_i] — the fraction of [i]'s
    actions that [j] repeated within [h] steps.

    Eq. (2): [p_(i,j) = (sum_l w_l c^l_(i,j)) / a_i] with positive
    weights summing to [h]; decreasing weight profiles give temporal
    decay — the faster [j] follows, the stronger the evidence.

    Both set [p_(i,j) = 0] when [a_i = 0]. *)

type weights = private float array
(** [w_1 .. w_h], all positive, summing to [h]. *)

val uniform_weights : h:int -> weights
(** [w_l = 1] — makes Eq. (2) coincide with Eq. (1). *)

val linear_decay_weights : h:int -> weights
(** Weights proportional to [h - l + 1], rescaled to sum to [h]. *)

val exponential_decay_weights : h:int -> alpha:float -> weights
(** Weights proportional to [alpha^(l-1)] for [alpha] in [(0, 1)],
    rescaled to sum to [h]. *)

val weights_of_array : float array -> weights
(** Validate an explicit profile: positive entries summing to the
    length (within floating tolerance). *)

val eq1 : Counters.t -> k:int -> float
(** Eq. (1) for the k-th pair of the counter set. *)

val eq2 : Counters.t -> weights -> k:int -> float
(** Eq. (2) for the k-th pair.  The weights length must equal the
    counter window. *)

val all_eq1 : Counters.t -> float array
(** Eq. (1) for every pair, in pair order. *)

val all_eq2 : Counters.t -> weights -> float array

val jaccard : Counters.t -> k:int -> float
(** Goyal et al.'s Jaccard variant:
    [b^h_(i,j) / (a_i + a_j - both_(i,j))] — the fraction of actions
    either endpoint performed in which [j] followed [i].  Robust to
    asymmetric activity volumes; [0.] when the denominator vanishes. *)

val all_jaccard : Counters.t -> float array

val restrict_to_graph :
  Counters.t -> float array -> Spe_graph.Digraph.t -> ((int * int) * float) list
(** Keep only the strengths of real arcs — the host's final step of
    dropping the decoy pairs of [E' \ E]. *)
