module Log = Spe_actionlog.Log
module Digraph = Spe_graph.Digraph

type t = {
  a : int array;
  b : int array;
  c : int array array;
  both : int array;
  h : int;
  pairs : (int * int) array;
}

let compute log ~h ~pairs =
  if h < 1 then invalid_arg "Counters.compute: window must be >= 1";
  let n = Log.num_users log in
  let q = Array.length pairs in
  let a = Log.user_activity log in
  let b = Array.make q 0 in
  let c = Array.make_matrix q h 0 in
  let both = Array.make q 0 in
  (* Per action: a time table over users, then one probe per pair. *)
  let time_of = Array.make n (-1) in
  List.iter
    (fun action ->
      let recs = Log.by_action log action in
      List.iter (fun (u, t) -> time_of.(u) <- t) recs;
      Array.iteri
        (fun k (i, j) ->
          let ti = time_of.(i) and tj = time_of.(j) in
          if ti >= 0 && tj >= 0 then begin
            both.(k) <- both.(k) + 1;
            let d = tj - ti in
            if d >= 1 && d <= h then begin
              b.(k) <- b.(k) + 1;
              c.(k).(d - 1) <- c.(k).(d - 1) + 1
            end
          end)
        pairs;
      List.iter (fun (u, _) -> time_of.(u) <- -1) recs)
    (Log.actions_present log);
  { a; b; c; both; h; pairs }

let compute_sparse log ~h ~pairs =
  if h < 1 then invalid_arg "Counters.compute: window must be >= 1";
  let q = Array.length pairs in
  let a = Log.user_activity log in
  let b = Array.make q 0 in
  let c = Array.make_matrix q h 0 in
  let both = Array.make q 0 in
  let index = Hashtbl.create (2 * q) in
  Array.iteri (fun k pair -> Hashtbl.replace index pair k) pairs;
  List.iter
    (fun action ->
      let recs = Log.by_action log action in
      (* Every ordered record pair of the action, looked up in the
         published set. *)
      List.iter
        (fun (i, ti) ->
          List.iter
            (fun (j, tj) ->
              if i <> j then
                match Hashtbl.find_opt index (i, j) with
                | None -> ()
                | Some k ->
                  both.(k) <- both.(k) + 1;
                  let d = tj - ti in
                  if d >= 1 && d <= h then begin
                    b.(k) <- b.(k) + 1;
                    c.(k).(d - 1) <- c.(k).(d - 1) + 1
                  end)
            recs)
        recs)
    (Log.actions_present log);
  { a; b; c; both; h; pairs }

let compute_auto log ~h ~pairs =
  let q = Array.length pairs in
  let actions = Log.actions_present log in
  let dense_probes = q * List.length actions in
  let sparse_probes =
    List.fold_left
      (fun acc action ->
        let k = List.length (Log.by_action log action) in
        acc + (k * k))
      0 actions
  in
  if sparse_probes < dense_probes then compute_sparse log ~h ~pairs
  else compute log ~h ~pairs

let compute_graph log ~h g =
  compute log ~h ~pairs:(Array.of_list (Digraph.edges g))

let b_single log ~h ~i ~j =
  let counters = compute log ~h ~pairs:[| (i, j) |] in
  counters.b.(0)

let c_single log ~l ~i ~j =
  if l < 1 then invalid_arg "Counters.c_single: lag must be >= 1";
  let counters = compute log ~h:l ~pairs:[| (i, j) |] in
  counters.c.(0).(l - 1)

let add x y =
  if x.h <> y.h then invalid_arg "Counters.add: window mismatch";
  if Array.length x.pairs <> Array.length y.pairs || not (x.pairs = y.pairs) then
    invalid_arg "Counters.add: pair ordering mismatch";
  if Array.length x.a <> Array.length y.a then invalid_arg "Counters.add: user count mismatch";
  {
    a = Array.map2 ( + ) x.a y.a;
    b = Array.map2 ( + ) x.b y.b;
    c = Array.map2 (Array.map2 ( + )) x.c y.c;
    both = Array.map2 ( + ) x.both y.both;
    h = x.h;
    pairs = x.pairs;
  }
