module State = Spe_rng.State

type grouping = { group_of : int array; num_groups : int }

let grouping_of_array group_of =
  let num_groups = ref 0 in
  Array.iter
    (fun g ->
      if g < 0 then invalid_arg "Attributes.grouping_of_array: negative group id";
      num_groups := max !num_groups (g + 1))
    group_of;
  { group_of = Array.copy group_of; num_groups = max 1 !num_groups }

let random_grouping st ~n ~num_groups =
  if num_groups < 1 then invalid_arg "Attributes.random_grouping: need at least one group";
  { group_of = Array.init n (fun _ -> State.next_int st num_groups); num_groups }

let pooled_strengths (ct : Counters.t) grouping =
  let g = grouping.num_groups in
  let num = Array.make_matrix g g 0 and den = Array.make_matrix g g 0 in
  Array.iteri
    (fun k (i, j) ->
      let gi = grouping.group_of.(i) and gj = grouping.group_of.(j) in
      let b = Array.fold_left ( + ) 0 ct.Counters.c.(k) in
      num.(gi).(gj) <- num.(gi).(gj) + b;
      den.(gi).(gj) <- den.(gi).(gj) + ct.Counters.a.(i))
    ct.Counters.pairs;
  Array.mapi
    (fun gi row ->
      Array.mapi
        (fun gj total -> if den.(gi).(gj) = 0 then 0. else float_of_int total /. float_of_int den.(gi).(gj))
        row)
    num

let shrunk_strengths (ct : Counters.t) grouping ~lambda =
  if lambda < 0. then invalid_arg "Attributes.shrunk_strengths: lambda must be non-negative";
  if Array.length grouping.group_of <> Array.length ct.Counters.a then
    invalid_arg "Attributes.shrunk_strengths: grouping size mismatch";
  let pooled = pooled_strengths ct grouping in
  Array.mapi
    (fun k (i, j) ->
      let b = float_of_int (Array.fold_left ( + ) 0 ct.Counters.c.(k)) in
      let a = float_of_int ct.Counters.a.(i) in
      let prior = pooled.(grouping.group_of.(i)).(grouping.group_of.(j)) in
      if a +. lambda = 0. then 0. else (b +. (lambda *. prior)) /. (a +. lambda))
    ct.Counters.pairs

let mse_vs_truth ~estimates ~pairs ~truth =
  if Array.length estimates <> Array.length pairs then
    invalid_arg "Attributes.mse_vs_truth: shape mismatch";
  if Array.length pairs = 0 then invalid_arg "Attributes.mse_vs_truth: no pairs";
  let acc = ref 0. in
  Array.iteri
    (fun k (i, j) ->
      let d = estimates.(k) -. truth i j in
      acc := !acc +. (d *. d))
    pairs;
  !acc /. float_of_int (Array.length pairs)
