module Digraph = Spe_graph.Digraph

type weights = float array

let rescale ~h raw =
  let total = Array.fold_left ( +. ) 0. raw in
  Array.map (fun w -> w *. float_of_int h /. total) raw

let uniform_weights ~h =
  if h < 1 then invalid_arg "Link_strength.uniform_weights: h must be >= 1";
  Array.make h 1.

let linear_decay_weights ~h =
  if h < 1 then invalid_arg "Link_strength.linear_decay_weights: h must be >= 1";
  rescale ~h (Array.init h (fun l -> float_of_int (h - l)))

let exponential_decay_weights ~h ~alpha =
  if h < 1 then invalid_arg "Link_strength.exponential_decay_weights: h must be >= 1";
  if alpha <= 0. || alpha >= 1. then
    invalid_arg "Link_strength.exponential_decay_weights: alpha must be in (0,1)";
  rescale ~h (Array.init h (fun l -> alpha ** float_of_int l))

let weights_of_array w =
  let h = Array.length w in
  if h = 0 then invalid_arg "Link_strength.weights_of_array: empty profile";
  Array.iter (fun x -> if x <= 0. then invalid_arg "Link_strength.weights_of_array: non-positive weight") w;
  let total = Array.fold_left ( +. ) 0. w in
  if abs_float (total -. float_of_int h) > 1e-9 *. float_of_int h then
    invalid_arg "Link_strength.weights_of_array: weights must sum to h";
  Array.copy w

let eq1 (ct : Counters.t) ~k =
  let i, _ = ct.Counters.pairs.(k) in
  let a = ct.Counters.a.(i) in
  if a = 0 then 0. else float_of_int ct.Counters.b.(k) /. float_of_int a

let eq2 (ct : Counters.t) (w : weights) ~k =
  if Array.length w <> ct.Counters.h then invalid_arg "Link_strength.eq2: weight length mismatch";
  let i, _ = ct.Counters.pairs.(k) in
  let a = ct.Counters.a.(i) in
  if a = 0 then 0.
  else begin
    let num = ref 0. in
    Array.iteri (fun l wl -> num := !num +. (wl *. float_of_int ct.Counters.c.(k).(l))) w;
    !num /. float_of_int a
  end

let all_eq1 ct = Array.init (Array.length ct.Counters.pairs) (fun k -> eq1 ct ~k)
let all_eq2 ct w = Array.init (Array.length ct.Counters.pairs) (fun k -> eq2 ct w ~k)

let jaccard (ct : Counters.t) ~k =
  let i, j = ct.Counters.pairs.(k) in
  let den = ct.Counters.a.(i) + ct.Counters.a.(j) - ct.Counters.both.(k) in
  if den <= 0 then 0. else float_of_int ct.Counters.b.(k) /. float_of_int den

let all_jaccard ct = Array.init (Array.length ct.Counters.pairs) (fun k -> jaccard ct ~k)

let restrict_to_graph (ct : Counters.t) strengths g =
  if Array.length strengths <> Array.length ct.Counters.pairs then
    invalid_arg "Link_strength.restrict_to_graph: strength vector shape mismatch";
  let acc = ref [] in
  for k = Array.length ct.Counters.pairs - 1 downto 0 do
    let ((u, v) as pair) = ct.Counters.pairs.(k) in
    if Digraph.mem_edge g u v then acc := (pair, strengths.(k)) :: !acc
  done;
  !acc
