module Log = Spe_actionlog.Log
module Digraph = Spe_graph.Digraph
module Traverse = Spe_graph.Traverse

type labeled_arc = { src : int; dst : int; delta : int }

type t = { action : int; arcs : labeled_arc array; n : int }

let sort_arcs arcs =
  let a = Array.of_list arcs in
  Array.sort (fun x y -> Stdlib.compare (x.src, x.dst) (y.src, y.dst)) a;
  a

let of_arcs ~n ~action arcs =
  List.iter
    (fun { src; dst; delta } ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Propagation.of_arcs: endpoint out of range";
      if delta <= 0 then invalid_arg "Propagation.of_arcs: label must be positive")
    arcs;
  { action; arcs = sort_arcs arcs; n }

let of_log log g ~action =
  let n = Log.num_users log in
  if Digraph.n g <> n then invalid_arg "Propagation.of_log: graph/log size mismatch";
  let recs = Log.by_action log action in
  let time = Hashtbl.create (List.length recs) in
  List.iter (fun (u, t) -> Hashtbl.replace time u t) recs;
  let arcs = ref [] in
  List.iter
    (fun (u, tu) ->
      Array.iter
        (fun v ->
          match Hashtbl.find_opt time v with
          | Some tv when tv > tu -> arcs := { src = u; dst = v; delta = tv - tu } :: !arcs
          | _ -> ())
        (Digraph.out_neighbors g u))
    recs;
  { action; arcs = sort_arcs !arcs; n }

let all_of_log log g =
  Array.init (Log.num_actions log) (fun action -> of_log log g ~action)

(* Adjacency closure over the arc array: arcs are sorted by src, so a
   per-node slice is contiguous; build an index once per graph value. *)
let adjacency t =
  let index = Array.make (t.n + 1) 0 in
  let count = Array.make t.n 0 in
  Array.iter (fun a -> count.(a.src) <- count.(a.src) + 1) t.arcs;
  for v = 0 to t.n - 1 do
    index.(v + 1) <- index.(v) + count.(v)
  done;
  fun u ->
    let lo = index.(u) and hi = index.(u + 1) in
    let rec collect i acc =
      if i < lo then acc else collect (i - 1) ((t.arcs.(i).dst, t.arcs.(i).delta) :: acc)
    in
    collect (hi - 1) []

let sphere t ~src ~tau =
  if src < 0 || src >= t.n then invalid_arg "Propagation.sphere: source out of range";
  if tau < 0 then invalid_arg "Propagation.sphere: negative threshold";
  Traverse.bounded_reachable ~n:t.n ~adj:(adjacency t) ~src ~tau

let sphere_size t ~src ~tau = List.length (sphere t ~src ~tau)

let sphere_totals graphs ~n ~tau =
  let totals = Array.make n 0 in
  Array.iter
    (fun pg ->
      if pg.n <> n then invalid_arg "Propagation.sphere_totals: size mismatch";
      let adj = adjacency pg in
      (* Only sources with outgoing arcs can have non-empty spheres. *)
      let has_out = Array.make n false in
      Array.iter (fun arc -> has_out.(arc.src) <- true) pg.arcs;
      for v = 0 to n - 1 do
        if has_out.(v) then
          totals.(v) <-
            totals.(v) + List.length (Traverse.bounded_reachable ~n ~adj ~src:v ~tau)
      done)
    graphs;
  totals

let score_from_graphs graphs ~a ~tau =
  let n = Array.length a in
  let totals = sphere_totals graphs ~n ~tau in
  Array.mapi
    (fun i total -> if a.(i) = 0 then 0. else float_of_int total /. float_of_int a.(i))
    totals

let score log g ~tau =
  score_from_graphs (all_of_log log g) ~a:(Log.user_activity log) ~tau

let equal x y =
  x.action = y.action && x.n = y.n
  && Array.length x.arcs = Array.length y.arcs
  && Array.for_all2 (fun a b -> a = b) x.arcs y.arcs
