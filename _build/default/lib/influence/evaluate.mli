(** Held-out evaluation of learned influence models.

    Sec. 1 motivates conjoining provider data with {e accuracy}: more
    traces mean less overfitting.  This module provides the standard
    machinery to quantify that — split the action log into training and
    test traces, fit an estimator on the training half, and score it on
    the held-out half — so the claim can be measured for every
    estimator in the library (see the bench's generalisation
    ablation).

    Scoring uses the windowed activation model the estimators share:
    for each test-trace activation with at least one candidate parent,
    the model predicts activation probability
    [1 - prod_(u in parents) (1 - p_(u,v))]; for each exposed
    non-activation it predicts the complement.  We report mean
    predictive log-likelihood per exposure (clamped away from log 0)
    and a simple Brier score. *)

type split = {
  train : Spe_actionlog.Log.t;
  test : Spe_actionlog.Log.t;
}

val split_by_action :
  Spe_rng.State.t -> Spe_actionlog.Log.t -> train_fraction:float -> split
(** Assign each action's whole trace to train or test (traces must not
    straddle the split).  [train_fraction] in [(0, 1)]. *)

type score = {
  log_likelihood : float;  (** Mean per-exposure predictive log-likelihood (nats). *)
  brier : float;  (** Mean squared error of the activation predictions. *)
  exposures : int;  (** Scored events. *)
}

val score :
  probability:(int -> int -> float) ->
  Spe_actionlog.Log.t ->
  Spe_graph.Digraph.t ->
  h:int ->
  score
(** Score an arc-probability model on a (test) log.  Raises
    [Invalid_argument] on universe mismatches or if the log yields no
    exposures. *)
