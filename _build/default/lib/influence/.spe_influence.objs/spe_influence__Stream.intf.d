lib/influence/stream.mli: Counters Spe_actionlog
