lib/influence/counters.ml: Array Hashtbl List Spe_actionlog Spe_graph
