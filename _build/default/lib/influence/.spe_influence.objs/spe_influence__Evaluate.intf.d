lib/influence/evaluate.mli: Spe_actionlog Spe_graph Spe_rng
