lib/influence/ris.mli: Maximize Spe_rng
