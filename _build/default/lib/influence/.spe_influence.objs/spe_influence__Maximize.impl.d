lib/influence/maximize.ml: Array Float Hashtbl List Queue Spe_graph Spe_rng Stdlib
