lib/influence/ris.ml: Array List Maximize Queue Spe_graph Spe_rng
