lib/influence/counters.mli: Spe_actionlog Spe_graph
