lib/influence/threshold.ml: Array Float Hashtbl List Maximize Option Queue Spe_graph Spe_rng
