lib/influence/threshold.mli: Spe_graph Spe_rng
