lib/influence/result_io.mli:
