lib/influence/em.ml: Array Float Hashtbl List Option Spe_actionlog Spe_graph
