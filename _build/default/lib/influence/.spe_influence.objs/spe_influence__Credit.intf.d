lib/influence/credit.mli: Hashtbl Spe_actionlog Spe_graph
