lib/influence/maximize.mli: Spe_graph Spe_rng
