lib/influence/attributes.mli: Counters Spe_rng
