lib/influence/link_strength.ml: Array Counters Spe_graph
