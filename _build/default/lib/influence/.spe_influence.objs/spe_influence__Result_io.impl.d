lib/influence/result_io.ml: Array Buffer Fun List Printf String
