lib/influence/attributes.ml: Array Counters Spe_rng
