lib/influence/propagation.mli: Spe_actionlog Spe_graph
