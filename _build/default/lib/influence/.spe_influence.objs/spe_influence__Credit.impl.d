lib/influence/credit.ml: Array Hashtbl List Option Spe_actionlog Spe_graph
