lib/influence/evaluate.ml: Array Float Hashtbl List Spe_actionlog Spe_graph Spe_rng
