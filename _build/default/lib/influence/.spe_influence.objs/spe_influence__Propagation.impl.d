lib/influence/propagation.ml: Array Hashtbl List Spe_actionlog Spe_graph Stdlib
