lib/influence/stream.ml: Array Counters Hashtbl List Spe_actionlog
