lib/influence/link_strength.mli: Counters Spe_graph
