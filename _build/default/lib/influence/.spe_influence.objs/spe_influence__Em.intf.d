lib/influence/em.mli: Hashtbl Spe_actionlog Spe_graph
