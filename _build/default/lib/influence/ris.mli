(** Reverse Influence Sampling (Borgs, Brautbar, Chayes & Lucier 2014;
    the engine behind TIM/IMM) — the scalable alternative to
    Monte-Carlo greedy for influence maximisation.

    A random {e reverse-reachable (RR) set} is built by picking a
    uniform target node and flipping each incoming arc of the IC model
    independently, collecting every node that can reach the target
    through live arcs.  A seed set's expected spread is proportional to
    the fraction of RR sets it intersects, so maximising coverage of a
    batch of RR sets (greedy set cover, which is fast and exact to
    (1 - 1/e)) maximises spread — with the expensive simulation moved
    into a precomputation that is shared across all candidate seeds.

    The bench compares seed quality and spread-oracle work against
    {!Maximize.celf} on the same learned strengths. *)

type rr_sets
(** A batch of reverse-reachable sets. *)

val sample :
  Spe_rng.State.t -> Maximize.model -> count:int -> rr_sets
(** Draw [count] RR sets from the model.  [count >= 1]. *)

val count : rr_sets -> int

val average_size : rr_sets -> float
(** Mean RR-set cardinality — proportional to the expected spread of a
    uniform random single seed. *)

val select : rr_sets -> k:int -> int list
(** Greedy maximum coverage: [k] seeds covering the most RR sets,
    in pick order. *)

val coverage : rr_sets -> int list -> float
(** Fraction of RR sets hit by the given seed set. *)

val estimate_spread : rr_sets -> n:int -> int list -> float
(** Spread estimate [n * coverage] — unbiased for the IC model the sets
    were sampled from. *)

val select_auto :
  Spe_rng.State.t ->
  Maximize.model ->
  k:int ->
  ?initial:int ->
  ?epsilon:float ->
  ?max_sets:int ->
  unit ->
  int list * int
(** Adaptive sample sizing in the IMM spirit: sample [initial] RR sets
    (default 1000), select, and validate the pick's spread on an
    independent batch; double the sample until two successive rounds
    agree within relative [epsilon] (default 0.05) or [max_sets]
    (default 2^20) is reached.  Returns the seeds and the total RR sets
    drawn. *)
