(** Plain-text persistence for estimation outputs (the CLI's export
    format): link strengths and user scores.

    Strengths format: header ["strengths <count>"], then
    ["<src> <dst> <value>"] per line.  Scores format: header
    ["scores <users>"], then ["<user> <value>"] per line.  ['#']
    comments and blank lines ignored.  Values round-trip through
    ["%.17g"], so saved estimates reload bit-exactly. *)

val save_strengths : ((int * int) * float) list -> string -> unit
val load_strengths : string -> ((int * int) * float) list
(** Raises [Failure] with a line-numbered message on malformed input. *)

val strengths_to_string : ((int * int) * float) list -> string
val strengths_of_string : string -> ((int * int) * float) list

val save_scores : float array -> string -> unit
val load_scores : string -> float array

val scores_to_string : float array -> string
val scores_of_string : string -> float array
