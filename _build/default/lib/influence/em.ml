module Log = Spe_actionlog.Log
module Digraph = Spe_graph.Digraph

type t = {
  probability : (int * int, float) Hashtbl.t;
  iterations : int;
  log_likelihood : float list;
}

(* Probabilities are clamped away from {0, 1} so failed attempts never
   drive the likelihood to -inf. *)
let clamp p = Float.max 1e-9 (Float.min (1. -. 1e-9) p)

(* One success episode: an activated user and the candidate parents
   that may have triggered it. *)
type episode = { child : int; parents : int array }

let prepare log graph ~h =
  if h < 1 then invalid_arg "Em.learn: window must be >= 1";
  if Log.num_users log <> Digraph.n graph then
    invalid_arg "Em.learn: log/graph user universe mismatch";
  let episodes = ref [] in
  (* attempts.(arc) counts every action in which the source activated
     and the target was exposed (successfully or not). *)
  let attempts = Hashtbl.create 1024 in
  let bump_attempt arc =
    Hashtbl.replace attempts arc (1 + Option.value ~default:0 (Hashtbl.find_opt attempts arc))
  in
  List.iter
    (fun action ->
      let recs = Log.by_action log action in
      let time = Hashtbl.create (List.length recs) in
      List.iter (fun (u, t) -> Hashtbl.replace time u t) recs;
      List.iter
        (fun (u, tu) ->
          (* Every follower of an active user is exposed once — except
             followers that were already active when u activated (no
             attempt is possible on them under the IC semantics). *)
          Array.iter
            (fun v ->
              match Hashtbl.find_opt time v with
              | Some tv when tv > tu && tv - tu <= h -> bump_attempt (u, v) (* success *)
              | Some tv when tv > tu -> bump_attempt (u, v) (* too late: failure *)
              | Some _ -> () (* v already active: no attempt *)
              | None -> bump_attempt (u, v) (* v never acted: failure *))
            (Digraph.out_neighbors graph u))
        recs;
      (* Success episodes: activated users with at least one candidate
         parent. *)
      List.iter
        (fun (v, tv) ->
          let parents =
            Array.to_list (Digraph.in_neighbors graph v)
            |> List.filter (fun u ->
                   match Hashtbl.find_opt time u with
                   | Some tu -> tv > tu && tv - tu <= h
                   | None -> false)
          in
          if parents <> [] then
            episodes := { child = v; parents = Array.of_list parents } :: !episodes)
        recs)
    (Log.actions_present log);
  (* Success count per arc (the arc appeared as a candidate parent of
     an activated child). *)
  let successes = Hashtbl.create (Hashtbl.length attempts) in
  List.iter
    (fun { child; parents } ->
      Array.iter
        (fun u ->
          let arc = (u, child) in
          Hashtbl.replace successes arc
            (1 + Option.value ~default:0 (Hashtbl.find_opt successes arc)))
        parents)
    !episodes;
  (!episodes, attempts, successes)

let learn ?(max_iterations = 100) ?(tolerance = 1e-6) ?(initial = 0.1) log graph ~h =
  if max_iterations < 1 then invalid_arg "Em.learn: need at least one iteration";
  if initial <= 0. || initial >= 1. then invalid_arg "Em.learn: initial must be in (0,1)";
  let episodes, attempts, successes = prepare log graph ~h in
  let probability = Hashtbl.create (Hashtbl.length attempts) in
  Hashtbl.iter (fun arc _ -> Hashtbl.replace probability arc initial) attempts;
  let p arc = Option.value ~default:0. (Hashtbl.find_opt probability arc) in
  let ll_history = ref [] in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    (* E-step: distribute credit for each success among its parents,
       accumulating the M-step numerators. *)
    let credit = Hashtbl.create (Hashtbl.length probability) in
    let add_credit arc c =
      Hashtbl.replace credit arc (c +. Option.value ~default:0. (Hashtbl.find_opt credit arc))
    in
    let ll = ref 0. in
    List.iter
      (fun { child; parents } ->
        let fail_all =
          Array.fold_left (fun acc u -> acc *. (1. -. p (u, child))) 1. parents
        in
        let p_any = clamp (1. -. fail_all) in
        ll := !ll +. Float.log p_any;
        Array.iter
          (fun u ->
            let arc = (u, child) in
            add_credit arc (p arc /. p_any))
          parents)
      episodes;
    (* Failure terms of the likelihood. *)
    Hashtbl.iter
      (fun arc total ->
        let failures = total - Option.value ~default:0 (Hashtbl.find_opt successes arc) in
        if failures > 0 then ll := !ll +. (float_of_int failures *. Float.log (clamp (1. -. p arc))))
      attempts;
    (* M-step. *)
    Hashtbl.iter
      (fun arc total ->
        let num = Option.value ~default:0. (Hashtbl.find_opt credit arc) in
        Hashtbl.replace probability arc (clamp (num /. float_of_int total)))
      attempts;
    (match !ll_history with
    | prev :: _ when abs_float (!ll -. prev) < tolerance -> converged := true
    | _ -> ());
    ll_history := !ll :: !ll_history
  done;
  { probability; iterations = !iterations; log_likelihood = List.rev !ll_history }

let probability t u v = Option.value ~default:0. (Hashtbl.find_opt t.probability (u, v))

let to_strengths t graph =
  List.map (fun (u, v) -> ((u, v), probability t u v)) (Digraph.edges graph)
