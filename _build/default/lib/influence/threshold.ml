module Digraph = Spe_graph.Digraph
module State = Spe_rng.State

type model = { graph : Digraph.t; weight : int -> int -> float }

let in_weight_sum model v =
  Array.fold_left
    (fun acc u -> acc +. model.weight u v)
    0.
    (Digraph.in_neighbors model.graph v)

let validate model =
  for v = 0 to Digraph.n model.graph - 1 do
    if in_weight_sum model v > 1. +. 1e-9 then
      invalid_arg "Threshold.validate: in-weights exceed 1"
  done

let of_strengths g strengths =
  let table = Hashtbl.create (List.length strengths) in
  List.iter (fun ((u, v), p) -> Hashtbl.replace table (u, v) (Float.max 0. p)) strengths;
  (* Per-node rescaling when raw in-weights exceed 1. *)
  let scale = Array.make (Digraph.n g) 1. in
  for v = 0 to Digraph.n g - 1 do
    let total =
      Array.fold_left
        (fun acc u -> acc +. Option.value ~default:0. (Hashtbl.find_opt table (u, v)))
        0. (Digraph.in_neighbors g v)
    in
    if total > 1. then scale.(v) <- 1. /. total
  done;
  let weight u v =
    scale.(v) *. Option.value ~default:0. (Hashtbl.find_opt table (u, v))
  in
  { graph = g; weight }

(* One threshold draw: deterministic cascade given theta. *)
let sample_spread st model seeds =
  let n = Digraph.n model.graph in
  let theta = Array.init n (fun _ -> State.next_float st) in
  let pressure = Array.make n 0. in
  let active = Array.make n false in
  let queue = Queue.create () in
  let activate v =
    if not active.(v) then begin
      active.(v) <- true;
      Queue.push v queue
    end
  in
  List.iter activate seeds;
  let count = ref (Queue.length queue) in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if not active.(v) then begin
          pressure.(v) <- pressure.(v) +. model.weight u v;
          if pressure.(v) >= theta.(v) then begin
            activate v;
            incr count
          end
        end)
      (Digraph.out_neighbors model.graph u)
  done;
  float_of_int !count

let spread st model ~seeds ~samples =
  if samples <= 0 then invalid_arg "Threshold.spread: need at least one sample";
  List.iter
    (fun s ->
      if s < 0 || s >= Digraph.n model.graph then
        invalid_arg "Threshold.spread: seed out of range")
    seeds;
  let total = ref 0. in
  for _ = 1 to samples do
    total := !total +. sample_spread st model seeds
  done;
  !total /. float_of_int samples

let greedy st model ~k ~samples =
  Maximize.greedy_generic ~n:(Digraph.n model.graph)
    ~spread:(fun seeds -> spread st model ~seeds ~samples)
    ~k

let celf st model ~k ~samples =
  Maximize.celf_generic ~n:(Digraph.n model.graph)
    ~spread:(fun seeds -> spread st model ~seeds ~samples)
    ~k
