(** Expectation-Maximisation learning of influence probabilities
    (Saito, Nakano & Kimura, 2008) — the baseline estimator the paper
    positions its counting definition against (Sec. 2).

    Under the independent-cascade view, a user [v] activated during
    action [alpha] was triggered by at least one of the in-neighbours
    that activated within the preceding window of [h] steps; a
    neighbour [u] that activated without [v] following represents a
    failed activation attempt.  EM alternates:

    - E-step: credit each success among the candidate parents,
      [gamma_(u,v) = p_(u,v) / (1 - prod_(w in parents) (1 - p_(w,v)))];
    - M-step: [p_(u,v) = (sum of credits) / (number of attempts)],
      where attempts count every action in which [u] activated and [v]
      was exposed.

    The log-likelihood is non-decreasing per iteration (tested), and on
    single-parent structures the fixed point coincides with the
    paper's Eq. (1) counting estimator.  The paper's criticisms —
    cost per iteration proportional to the number of arcs and a
    tendency to overfit sparse logs — are both measurable here (see
    the bench ablation). *)

type t = {
  probability : (int * int, float) Hashtbl.t;
      (** Learned [p_(u,v)] per arc of the social graph (arcs with no
          exposure keep their initial value). *)
  iterations : int;  (** Iterations actually performed. *)
  log_likelihood : float list;
      (** Log-likelihood after each iteration, oldest first. *)
}

val learn :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?initial:float ->
  Spe_actionlog.Log.t ->
  Spe_graph.Digraph.t ->
  h:int ->
  t
(** [learn log graph ~h] runs EM until the log-likelihood improves by
    less than [tolerance] (default [1e-6]) or [max_iterations]
    (default 100) is reached.  [initial] (default 0.1) seeds every
    arc probability.  Raises [Invalid_argument] on a log/graph universe
    mismatch or [h < 1]. *)

val probability : t -> int -> int -> float
(** Learned probability of an arc ([0.] if the arc never appeared). *)

val to_strengths : t -> Spe_graph.Digraph.t -> ((int * int) * float) list
(** All arcs of the graph with their learned probabilities, in
    lexicographic arc order — same shape as Protocol 4's output, so the
    two estimators can feed the same downstream consumers. *)
