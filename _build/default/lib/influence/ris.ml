module Digraph = Spe_graph.Digraph
module State = Spe_rng.State
module Dist = Spe_rng.Dist

type rr_sets = { sets : int array array; n : int }

(* One RR set: reverse BFS from a uniform target, each incoming arc
   live independently with its model probability. *)
let sample_one st (model : Maximize.model) =
  let n = Digraph.n model.Maximize.graph in
  let target = State.next_int st n in
  let visited = Array.make n false in
  visited.(target) <- true;
  let queue = Queue.create () in
  Queue.push target queue;
  let members = ref [ target ] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if (not visited.(u)) && Dist.bernoulli st ~p:(model.Maximize.probability u v) then begin
          visited.(u) <- true;
          members := u :: !members;
          Queue.push u queue
        end)
      (Digraph.in_neighbors model.Maximize.graph v)
  done;
  Array.of_list !members

let sample st model ~count =
  if count < 1 then invalid_arg "Ris.sample: need at least one set";
  let n = Digraph.n model.Maximize.graph in
  if n = 0 then invalid_arg "Ris.sample: empty graph";
  { sets = Array.init count (fun _ -> sample_one st model); n }

let count rr = Array.length rr.sets

let average_size rr =
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 rr.sets in
  float_of_int total /. float_of_int (Array.length rr.sets)

let select rr ~k =
  if k < 0 || k > rr.n then invalid_arg "Ris.select: k out of range";
  (* Greedy max coverage with lazy per-node counts, recomputed after
     each pick over the still-uncovered sets (set counts are small). *)
  let covered = Array.make (Array.length rr.sets) false in
  let chosen = ref [] in
  for _ = 1 to k do
    let gain = Array.make rr.n 0 in
    Array.iteri
      (fun i members ->
        if not covered.(i) then Array.iter (fun v -> gain.(v) <- gain.(v) + 1) members)
      rr.sets;
    (* Exclude already-chosen seeds, then take the best. *)
    List.iter (fun v -> gain.(v) <- -1) !chosen;
    let best = ref 0 in
    for v = 1 to rr.n - 1 do
      if gain.(v) > gain.(!best) then best := v
    done;
    chosen := !best :: !chosen;
    Array.iteri
      (fun i members ->
        if (not covered.(i)) && Array.exists (fun v -> v = !best) members then
          covered.(i) <- true)
      rr.sets
  done;
  List.rev !chosen

let coverage rr seeds =
  let hit = Array.make (Array.length rr.sets) false in
  Array.iteri
    (fun i members ->
      if List.exists (fun s -> Array.exists (fun v -> v = s) members) seeds then hit.(i) <- true)
    rr.sets;
  let covered = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 hit in
  float_of_int covered /. float_of_int (Array.length rr.sets)

let estimate_spread rr ~n seeds = float_of_int n *. coverage rr seeds

let select_auto st model ~k ?(initial = 1000) ?(epsilon = 0.05) ?(max_sets = 1 lsl 20) () =
  if initial < 1 then invalid_arg "Ris.select_auto: initial must be positive";
  if epsilon <= 0. then invalid_arg "Ris.select_auto: epsilon must be positive";
  let n = Digraph.n model.Maximize.graph in
  let rec loop size previous total_drawn =
    let rr = sample st model ~count:size in
    let seeds = select rr ~k in
    (* Validate on an independent batch so the stopping test is not
       fooled by greedy overfitting to the selection sets. *)
    let validation = sample st model ~count:size in
    let est = estimate_spread validation ~n seeds in
    let total = total_drawn + (2 * size) in
    match previous with
    | Some prev when est > 0. && abs_float (est -. prev) /. est < epsilon -> (seeds, total)
    | _ when 2 * size > max_sets -> (seeds, total)
    | _ -> loop (2 * size) (Some est) total
  in
  loop initial None 0
